"""Tests for the cluster topology description and the Fig. 5 performance model."""

import pytest

from repro.parallel import (
    COMMUNICATION_STRATEGIES,
    POLARIS_LIKE,
    SINGLE_NODE_DGX,
    ClusterTopology,
    PerformanceModel,
)


class TestTopology:
    def test_node_mapping(self):
        topo = POLARIS_LIKE
        assert topo.node_of(0) == 0
        assert topo.node_of(3) == 0
        assert topo.node_of(4) == 1
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)
        assert topo.num_nodes(9) == 3

    def test_link_selection(self):
        topo = POLARIS_LIKE
        assert topo.link_bandwidth(0, 1, gpu_direct=True) == topo.intra_node_bandwidth
        assert topo.link_bandwidth(0, 1, gpu_direct=False) == topo.host_staging_bandwidth
        assert topo.link_bandwidth(0, 5, gpu_direct=True) == topo.inter_node_bandwidth
        assert topo.link_latency(0, 1) < topo.link_latency(0, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(gpus_per_node=0, intra_node_bandwidth=1, inter_node_bandwidth=1,
                            host_staging_bandwidth=1, intra_node_latency=0,
                            inter_node_latency=0, gpu_memory_bandwidth=1, gpu_memory_capacity=1)
        with pytest.raises(ValueError):
            ClusterTopology(gpus_per_node=4, intra_node_bandwidth=-1, inter_node_bandwidth=1,
                            host_staging_bandwidth=1, intra_node_latency=0,
                            inter_node_latency=0, gpu_memory_bandwidth=1, gpu_memory_capacity=1)
        with pytest.raises(ValueError):
            POLARIS_LIKE.node_of(-1)


class TestPerformanceModel:
    def test_local_sizes_and_memory_fit(self):
        pm = PerformanceModel(POLARIS_LIKE)
        assert pm.local_states(33, 8) == 1 << 30
        assert pm.local_slice_bytes(33, 8) == (1 << 30) * 16
        # 2^30 amplitudes * 18 B = ~19 GB fits in 40 GB; one more qubit per GPU does not
        assert pm.fits_in_memory(33, 8)
        assert not pm.fits_in_memory(35, 8)

    def test_validation(self):
        pm = PerformanceModel(POLARIS_LIKE)
        with pytest.raises(ValueError):
            pm.local_states(10, 3)
        with pytest.raises(ValueError):
            pm.local_states(4, 8)
        with pytest.raises(ValueError):
            pm.layer_time(30, 8, strategy="smoke-signals")
        with pytest.raises(ValueError):
            PerformanceModel(POLARIS_LIKE, state_bytes=0)
        with pytest.raises(ValueError):
            PerformanceModel(POLARIS_LIKE, congestion_alpha=-1)
        with pytest.raises(ValueError):
            pm.precompute_time(20, 4, 100, device="tpu")

    def test_single_rank_has_no_communication(self):
        pm = PerformanceModel(POLARIS_LIKE)
        breakdown = pm.layer_time(24, 1, "mpi_alltoall")
        assert breakdown.communication_time == 0.0
        assert breakdown.compute_time > 0.0
        assert breakdown.communication_fraction == 0.0

    def test_communication_dominates_at_scale(self):
        """The paper observes the majority of time is spent in communication."""
        pm = PerformanceModel(POLARIS_LIKE)
        for strategy in COMMUNICATION_STRATEGIES:
            breakdown = pm.layer_time(33, 8, strategy)
            assert breakdown.communication_fraction > 0.5

    def test_cusv_strategy_is_faster(self):
        """Fig. 5: the cuStateVec communication path beats staged MPI_Alltoall."""
        pm = PerformanceModel(POLARIS_LIKE)
        for k in (8, 16, 32, 64, 128):
            n = 30 + (k.bit_length() - 1)
            mpi = pm.layer_time(n, k, "mpi_alltoall").total_time
            cusv = pm.layer_time(n, k, "cusv_p2p").total_time
            assert cusv < mpi

    def test_weak_scaling_times_grow_with_cluster_size(self):
        pm = PerformanceModel(POLARIS_LIKE)
        curve = pm.weak_scaling([8, 16, 32, 64, 128], 30, "mpi_alltoall")
        totals = [b.total_time for b in curve]
        assert all(b < a for a, b in zip(totals[1:], totals))  # strictly increasing
        assert curve[0].n_qubits == 33 and curve[-1].n_qubits == 37

    def test_weak_scaling_validates_rank_counts(self):
        pm = PerformanceModel(POLARIS_LIKE)
        with pytest.raises(ValueError):
            pm.weak_scaling([8, 12], 20)

    def test_gpu_precompute_much_faster_than_cpu(self):
        """Fig. 4: GPU precomputation is cheap enough to amortize immediately."""
        pm = PerformanceModel(SINGLE_NODE_DGX)
        n_terms = 2000
        assert pm.precompute_time(26, 1, n_terms, "gpu") < 0.1 * pm.precompute_time(
            26, 1, n_terms, "cpu")

    def test_congestion_increases_time(self):
        lo = PerformanceModel(POLARIS_LIKE, congestion_alpha=0.0)
        hi = PerformanceModel(POLARIS_LIKE, congestion_alpha=0.8)
        assert hi.layer_time(35, 32).total_time > lo.layer_time(35, 32).total_time
