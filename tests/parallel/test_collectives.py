"""Tests for the driver-level alltoall algorithms and traffic accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    ALLTOALL_ALGORITHMS,
    TrafficTrace,
    allgather_buffers,
    allreduce_sum_buffers,
    alltoall,
)


def make_buffers(rng, size, chunk):
    return [rng.normal(size=size * chunk) for _ in range(size)]


class TestAlltoallAlgorithms:
    @pytest.mark.parametrize("algorithm", sorted(ALLTOALL_ALGORITHMS))
    @pytest.mark.parametrize("size,chunk", [(2, 1), (4, 3), (8, 2)])
    def test_transposition_semantics(self, rng, algorithm, size, chunk):
        buffers = make_buffers(rng, size, chunk)
        out, _ = alltoall(buffers, algorithm)
        for dst in range(size):
            for src in range(size):
                np.testing.assert_allclose(
                    out[dst][src * chunk:(src + 1) * chunk],
                    buffers[src][dst * chunk:(dst + 1) * chunk],
                )

    @pytest.mark.parametrize("algorithm", sorted(ALLTOALL_ALGORITHMS))
    def test_double_application_is_identity(self, rng, algorithm):
        buffers = make_buffers(rng, 4, 4)
        once, _ = alltoall(buffers, algorithm)
        twice, _ = alltoall(once, algorithm)
        for a, b in zip(twice, buffers):
            np.testing.assert_allclose(a, b)

    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_all_algorithms_agree(self, k, chunk, seed):
        size = 1 << k
        rng = np.random.default_rng(seed)
        buffers = make_buffers(rng, size, chunk)
        reference, _ = alltoall(buffers, "direct")
        for algorithm in ALLTOALL_ALGORITHMS:
            out, _ = alltoall(buffers, algorithm)
            for a, b in zip(out, reference):
                np.testing.assert_allclose(a, b)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            alltoall([np.zeros(4)], "carrier-pigeon")

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            alltoall([], "direct")
        with pytest.raises(ValueError):
            alltoall([np.zeros(4), np.zeros(6)], "direct")
        with pytest.raises(ValueError):
            alltoall([np.zeros(3), np.zeros(3)], "direct")
        with pytest.raises(ValueError):
            alltoall([np.zeros((2, 2)), np.zeros((2, 2))], "direct")

    def test_power_of_two_requirement(self):
        buffers = [np.zeros(3) for _ in range(3)]
        with pytest.raises(ValueError):
            alltoall(buffers, "pairwise")
        with pytest.raises(ValueError):
            alltoall(buffers, "bruck")
        # ring and direct accept any size
        alltoall(buffers, "ring")
        alltoall(buffers, "direct")


class TestTrafficAccounting:
    def test_direct_traffic_volume(self, rng):
        size, chunk = 8, 4
        buffers = make_buffers(rng, size, chunk)
        _, trace = alltoall(buffers, "direct")
        assert trace.total_bytes == size * (size - 1) * chunk * 8
        assert trace.num_rounds == 1
        assert trace.num_messages == size * (size - 1)
        assert trace.max_bytes_per_rank() == (size - 1) * chunk * 8

    def test_pairwise_and_ring_same_volume_more_rounds(self, rng):
        size, chunk = 8, 2
        buffers = make_buffers(rng, size, chunk)
        _, direct = alltoall(buffers, "direct")
        _, pairwise = alltoall(buffers, "pairwise")
        _, ring = alltoall(buffers, "ring")
        assert pairwise.total_bytes == direct.total_bytes
        assert ring.total_bytes == direct.total_bytes
        assert pairwise.num_rounds == size - 1
        assert ring.num_rounds == size - 1

    def test_bruck_fewer_rounds_more_bytes(self, rng):
        size, chunk = 16, 2
        buffers = make_buffers(rng, size, chunk)
        _, direct = alltoall(buffers, "direct")
        _, bruck = alltoall(buffers, "bruck")
        assert bruck.num_rounds == 4  # log2(16)
        assert bruck.total_bytes > direct.total_bytes

    def test_trace_ignores_self_and_empty_messages(self):
        trace = TrafficTrace()
        trace.add(0, 0, 100, 0)
        trace.add(0, 1, 0, 0)
        trace.add(0, 1, 10, 0)
        assert trace.num_messages == 1
        assert trace.total_bytes == 10

    def test_empty_trace(self):
        trace = TrafficTrace()
        assert trace.total_bytes == 0
        assert trace.num_rounds == 0
        assert trace.max_bytes_per_rank() == 0


class TestOtherCollectives:
    def test_allgather_buffers(self, rng):
        buffers = [rng.normal(size=3) for _ in range(4)]
        out = allgather_buffers(buffers)
        full = np.concatenate(buffers)
        for o in out:
            np.testing.assert_allclose(o, full)
        with pytest.raises(ValueError):
            allgather_buffers([])

    def test_allreduce_sum_buffers(self):
        out = allreduce_sum_buffers([1.0, 2.0, 3.0])
        assert out == [6.0, 6.0, 6.0]
        arrays = allreduce_sum_buffers([np.ones(2), 2 * np.ones(2)])
        for a in arrays:
            np.testing.assert_allclose(a, 3.0)
        with pytest.raises(ValueError):
            allreduce_sum_buffers([])
