"""Tests for the thread-based virtual-cluster communicator."""

import numpy as np
import pytest

from repro.parallel import ThreadCluster


class TestThreadCluster:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            ThreadCluster(0)

    def test_allreduce_sum_scalar_and_array(self):
        cluster = ThreadCluster(4)

        def spmd(comm):
            scalar = comm.allreduce_sum(float(comm.rank))
            arr = comm.allreduce_sum(np.full(3, comm.rank, dtype=np.float64))
            return scalar, arr

        results = cluster.run(spmd)
        for scalar, arr in results:
            assert scalar == pytest.approx(6.0)
            np.testing.assert_allclose(arr, 6.0)

    def test_alltoall_transposition_semantics(self):
        cluster = ThreadCluster(4)

        def spmd(comm):
            # element j*chunk+c encodes (sender, destination, offset)
            chunk = 2
            buf = np.array([comm.rank * 100 + j * 10 + c
                            for j in range(comm.size) for c in range(chunk)], dtype=np.float64)
            return comm.alltoall(buf)

        results = cluster.run(spmd)
        for rank, recv in enumerate(results):
            for src in range(4):
                for c in range(2):
                    assert recv[src * 2 + c] == src * 100 + rank * 10 + c

    def test_alltoall_divisibility_check(self):
        cluster = ThreadCluster(4)

        def spmd(comm):
            return comm.alltoall(np.zeros(6))

        with pytest.raises(ValueError):
            cluster.run(spmd)

    def test_allgather_and_bcast(self):
        cluster = ThreadCluster(3)

        def spmd(comm):
            gathered = comm.allgather(np.array([comm.rank], dtype=np.int64))
            value = comm.bcast({"root_rank": comm.rank} if comm.rank == 1 else None, root=1)
            return gathered, value

        for gathered, value in cluster.run(spmd):
            assert [int(g[0]) for g in gathered] == [0, 1, 2]
            assert value == {"root_rank": 1}

    def test_bcast_invalid_root(self):
        cluster = ThreadCluster(2)

        def spmd(comm):
            return comm.bcast(1, root=5)

        with pytest.raises(ValueError):
            cluster.run(spmd)

    def test_sendrecv_pairwise_exchange(self):
        cluster = ThreadCluster(4)

        def spmd(comm):
            peer = comm.rank ^ 1
            out = comm.sendrecv(np.full(2, comm.rank, dtype=np.float64), peer)
            return peer, out

        for rank, (peer, out) in enumerate(cluster.run(spmd)):
            np.testing.assert_allclose(out, peer)

    def test_sendrecv_self(self):
        cluster = ThreadCluster(1)

        def spmd(comm):
            return comm.sendrecv(np.array([1.0, 2.0]), 0)

        np.testing.assert_allclose(cluster.run(spmd)[0], [1.0, 2.0])

    def test_exception_propagates_without_deadlock(self):
        cluster = ThreadCluster(3)

        def spmd(comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            comm.barrier()
            return comm.rank

        with pytest.raises(RuntimeError):
            cluster.run(spmd)

    def test_per_rank_args(self):
        cluster = ThreadCluster(3)

        def spmd(comm, offset):
            return comm.rank + offset

        assert cluster.run(spmd, [(10,), (20,), (30,)]) == [10, 21, 32]

    def test_repeated_collectives_stay_consistent(self):
        """Back-to-back collectives must not race on the shared slots."""
        cluster = ThreadCluster(4)

        def spmd(comm):
            total = 0.0
            for round_ in range(10):
                buf = np.full(4, comm.rank + round_, dtype=np.float64)
                out = comm.alltoall(buf)
                total += float(comm.allreduce_sum(out.sum()))
            return total

        results = cluster.run(spmd)
        assert len(set(results)) == 1
