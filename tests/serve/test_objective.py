"""ServedQAOAObjective: the serving-backed twin of QAOAObjective."""

import numpy as np
import pytest

import repro
import repro.serve
from repro.qaoa import get_qaoa_objective

N = 8
TERMS = [(0.5, (i, (i + 1) % N)) for i in range(N)]
P = 2


@pytest.fixture
def service():
    with repro.serve(backend="python", window_ms=1.0) as svc:
        yield svc


class TestServedObjective:
    def test_matches_direct_objective(self, service, seeded_rng):
        theta = seeded_rng.uniform(0, 1, size=2 * P)
        direct = get_qaoa_objective(N, P, terms=TERMS, backend="python")
        served = service.objective(N, P, TERMS)
        assert served(theta) == pytest.approx(direct(theta), rel=1e-12)

    def test_lazy_export_from_package(self):
        from repro.serve import ServedQAOAObjective
        from repro.serve.objective import ServedQAOAObjective as direct

        assert ServedQAOAObjective is direct

    def test_bookkeeping_matches_direct_objective(self, service, seeded_rng):
        thetas = seeded_rng.uniform(0, 1, size=(4, 2 * P))
        direct = get_qaoa_objective(N, P, terms=TERMS, backend="python")
        served = service.objective(N, P, TERMS)
        for theta in thetas:
            direct(theta)
            served(theta)
        assert served.n_evaluations == direct.n_evaluations == 4
        assert served.best_value == pytest.approx(direct.best_value, rel=1e-12)
        np.testing.assert_allclose(served.best_parameters,
                                   direct.best_parameters)
        np.testing.assert_allclose(served.history, direct.history, rtol=1e-12)
        served.reset_statistics()
        assert served.n_evaluations == 0
        assert served.history == []

    def test_evaluate_batch_micro_batches(self, service, seeded_rng):
        thetas = seeded_rng.uniform(0, 1, size=(6, 2 * P))
        served = service.objective(N, P, TERMS)
        values = served.evaluate_batch(thetas)

        sim = repro.simulator(N, terms=TERMS, backend="python")
        expected = sim.get_expectation_batch(thetas[:, :P], thetas[:, P:])
        np.testing.assert_allclose(values, expected, rtol=1e-12)
        assert served.n_evaluations == 6
        # the concurrent submissions flushed as fewer engine batches than rows
        assert service.stats.batches < 6
        assert service.stats.completed == 6

    def test_duplicate_rows_coalesce(self, service, seeded_rng):
        row = seeded_rng.uniform(0, 1, size=2 * P)
        thetas = np.tile(row, (5, 1))
        served = service.objective(N, P, TERMS)
        values = served.evaluate_batch(thetas)
        assert np.unique(values).size == 1
        assert service.stats.coalesced_hits >= 1

    def test_validates_parameter_shapes(self, service):
        served = service.objective(N, P, TERMS)
        with pytest.raises(ValueError, match="objective expects p"):
            served(np.zeros(6))
        with pytest.raises(ValueError, match="thetas must be"):
            served.evaluate_batch(np.zeros((2, 5)))
        with pytest.raises(ValueError, match="p must be positive"):
            service.objective(N, 0, TERMS)

    def test_scipy_minimize_drives_served_objective(self, service):
        from scipy.optimize import minimize

        served = service.objective(N, 1, TERMS)
        result = minimize(served, np.array([0.2, 0.2]),
                          method="COBYLA", options={"maxiter": 12})
        assert np.isfinite(result.fun)
        assert served.n_evaluations >= 12
        assert served.best_value <= served.history[0] + 1e-12
