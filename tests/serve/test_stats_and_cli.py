"""Unit tests for the metrics surface and the ``python -m repro.serve`` CLI."""

import json

import pytest

from repro.serve import LatencyRecorder, ServiceStats
from repro.serve.__main__ import main


class TestLatencyRecorder:
    def test_empty_recorder_reports_none(self):
        rec = LatencyRecorder()
        assert rec.count == 0
        assert rec.percentiles() == {"p50": None, "p95": None, "p99": None}
        snapshot = rec.as_dict()
        assert snapshot["count"] == 0
        assert snapshot["mean_s"] is None
        assert snapshot["p50_s"] is None

    def test_percentiles_over_samples(self):
        rec = LatencyRecorder()
        rec.record_many(float(i) for i in range(1, 101))
        pct = rec.percentiles()
        assert pct["p50"] == pytest.approx(50.5)
        assert pct["p95"] == pytest.approx(95.05)
        assert rec.count == 100
        assert rec.total_seconds == pytest.approx(5050.0)
        assert rec.as_dict()["mean_s"] == pytest.approx(50.5)

    def test_window_bounds_retained_samples(self):
        rec = LatencyRecorder(max_samples=10)
        rec.record_many(float(i) for i in range(100))
        # count keeps the lifetime total, percentiles only the window
        assert rec.count == 100
        assert rec.percentiles()["p50"] == pytest.approx(94.5)

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            LatencyRecorder(max_samples=0)


class TestServiceStats:
    def test_batch_accounting_identity(self):
        stats = ServiceStats()
        for _ in range(3):
            stats.record_admitted()
        stats.record_batch(size=3, unique=2, queue_waits=[0.001] * 3,
                          execution_s=0.01)
        assert stats.requests == 3
        assert stats.completed == 3
        assert stats.coalesced_hits == 1
        assert stats.evaluated_rows == 2
        assert stats.batches == 1
        assert stats.batch_size_histogram() == {3: 1}
        assert stats.queue_wait.count == 3
        assert stats.execution.count == 1

    def test_invalid_batch_accounting_rejected(self):
        stats = ServiceStats()
        with pytest.raises(ValueError):
            stats.record_batch(size=2, unique=0, queue_waits=[], execution_s=0.0)
        with pytest.raises(ValueError):
            stats.record_batch(size=2, unique=3, queue_waits=[], execution_s=0.0)

    def test_shed_and_rejected_are_not_requests(self):
        stats = ServiceStats()
        stats.record_shed()
        stats.record_rejected()
        stats.record_batch_failure(2)
        assert stats.requests == 0
        assert stats.shed == 1
        assert stats.rejected == 1
        assert stats.failed == 2

    def test_as_dict_round_trips_through_json(self):
        stats = ServiceStats()
        stats.record_admitted()
        stats.record_batch(size=1, unique=1, queue_waits=[0.002],
                          execution_s=0.005)
        stats.record_simulator_constructed()
        payload = json.loads(json.dumps(stats.as_dict()))
        assert payload["completed"] == 1
        assert payload["batch_size_histogram"] == {"1": 1}
        assert payload["simulators_constructed"] == 1
        assert payload["execution"]["count"] == 1
        assert payload["queue_wait"]["p50_s"] == pytest.approx(0.002)


class TestCli:
    def test_describe_prints_registry_and_defaults(self, capsys):
        assert main(["--describe"]) == 0
        out = capsys.readouterr().out
        assert "Backend registry:" in out
        assert "python" in out
        assert "window_ms" in out
        assert "coalesced_hits" in out
        # capability tiers are part of the operational surface
        assert "tensornet" in out
        assert "expectation-only" in out

    def test_json_mode_emits_parseable_snapshot(self, capsys):
        assert main(["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"backends", "config", "stats",
                                "live_simulators"}
        assert payload["config"]["overload"] == "shed"
        assert payload["stats"]["requests"] == 0

    def test_no_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "--describe" in capsys.readouterr().out
