"""Coalescing semantics: N identical concurrent requests cost one evaluation.

These tests pin the headline serving property end to end, using the engine's
own counters (``EngineStats``) and the process-wide diagonal cache counters
as ground truth — not just the service's bookkeeping about itself.
"""

import asyncio
import dataclasses

import numpy as np
import pytest

import repro
from repro.fur.cache import diagonal_cache
from repro.serve import QAOAService

N = 8
TERMS = [(0.5, (i, (i + 1) % N)) for i in range(N)]
GAMMAS = (0.12, 0.34)
BETAS = (0.56, 0.07)


def reference_value():
    sim = repro.simulator(N, terms=TERMS, backend="python")
    return float(sim.get_expectation_batch(np.array([GAMMAS]),
                                           np.array([BETAS]))[0])


class TestExactDuplicateCoalescing:
    def test_identical_requests_share_one_engine_evaluation(self):
        """16 identical concurrent submissions -> one engine batch with one
        row, one diagonal-cache resolution, and 15 coalesced hits."""
        diagonal_cache.clear()
        misses_before = diagonal_cache.stats.misses

        async def run():
            async with QAOAService(backend="python", window_ms=100.0,
                                   max_batch=16) as svc:
                values = await asyncio.gather(*[
                    svc.submit(N, TERMS, GAMMAS, BETAS) for _ in range(16)
                ])
                return values, svc.stats, svc.live_simulators()

        values, stats, live = asyncio.run(run())

        expected = reference_value()
        assert all(v == pytest.approx(expected, rel=1e-12) for v in values)

        # service accounting: one batch of 16, one evaluated row
        assert stats.requests == 16
        assert stats.completed == 16
        assert stats.batches == 1
        assert stats.coalesced_hits == 15
        assert stats.evaluated_rows == 1
        assert stats.batch_size_histogram() == {16: 1}

        # engine ground truth: the flush became exactly one (1, 2^n) batch
        (sim,) = live.values()
        engine = sim.engine.stats
        assert engine.rows_executed == 1
        assert engine.blocks_executed == 1

        # the problem's diagonal was resolved exactly once process-wide
        # (the service's construction plus the reference simulator share it)
        assert diagonal_cache.stats.misses == misses_before + 1

    def test_mixed_duplicates_group_per_schedule(self):
        """8 requests over 3 distinct schedules -> one batch, 3 rows."""
        rows = [GAMMAS, (0.9, 0.8), (0.7, 0.6)]
        plan = [rows[i] for i in (0, 0, 1, 0, 2, 1, 0, 2)]  # 4x, 2x, 2x

        async def run():
            async with QAOAService(backend="python", window_ms=100.0,
                                   max_batch=8) as svc:
                values = await asyncio.gather(*[
                    svc.submit(N, TERMS, g, BETAS) for g in plan
                ])
                return values, svc.stats, svc.live_simulators()

        values, stats, live = asyncio.run(run())

        sim = repro.simulator(N, terms=TERMS, backend="python")
        expected = sim.get_expectation_batch(
            np.array(rows), np.array([BETAS] * 3))
        lookup = {rows[i]: expected[i] for i in range(3)}
        for g, v in zip(plan, values):
            assert v == pytest.approx(lookup[g], rel=1e-12)

        assert stats.batches == 1
        assert stats.evaluated_rows == 3
        assert stats.coalesced_hits == 5
        (served_sim,) = live.values()
        assert served_sim.engine.stats.rows_executed == 3

    def test_sequential_duplicates_still_hit_caches(self):
        """Duplicates arriving in separate batches are separate evaluations
        (no cross-batch memoization of values) but reuse the compiled plan."""
        with repro.serve(backend="python") as svc:
            v1 = svc.submit_sync(N, TERMS, GAMMAS, BETAS)
            v2 = svc.submit_sync(N, TERMS, GAMMAS, BETAS)
            stats = svc.stats
            (sim,) = svc.live_simulators().values()
            plan_hits = sim.engine.stats.plan_cache_hits
        assert v1 == v2
        assert stats.batches == 2
        assert stats.coalesced_hits == 0
        assert plan_hits >= 1


class TestFailureFanOut:
    def test_engine_failure_fans_out_to_all_waiters(self):
        """A failing flush rejects every waiting future (duplicates included)
        and the service keeps serving afterwards."""

        async def run():
            async with QAOAService(backend="python", window_ms=100.0,
                                   max_batch=4) as svc:
                boom = RuntimeError("kernel exploded")

                def failing_evaluate(key, gammas, betas):
                    raise boom

                svc._evaluate = failing_evaluate
                results = await asyncio.gather(*[
                    svc.submit(N, TERMS, GAMMAS, BETAS) for _ in range(4)
                ], return_exceptions=True)

                # restore and verify the service still serves
                del svc._evaluate
                recovered = await svc.submit(N, TERMS, GAMMAS, BETAS)
                return results, recovered, svc.stats

        results, recovered, stats = asyncio.run(run())
        assert len(results) == 4
        assert all(isinstance(r, RuntimeError) for r in results)
        assert stats.failed == 4
        assert stats.completed == 1
        assert recovered == pytest.approx(reference_value(), rel=1e-12)


class TestRouteKeyHygiene:
    def test_route_key_is_hashable_and_frozen(self):
        key = repro.serve.RouteKey(fingerprint="abc", n_qubits=4,
                                   backend="python", mixer="x",
                                   precision="double", optimize="default", p=2)
        assert key in {key}
        with pytest.raises(dataclasses.FrozenInstanceError):
            key.p = 3
