"""Service-level behavior: routing, lifecycle, admission, overload, LRU."""

import asyncio

import numpy as np
import pytest

import repro
import repro.serve
from repro.serve import (
    AdmissionError,
    QAOAService,
    RouteKey,
    ServiceClosedError,
    ServiceOverloadedError,
)


def ring_terms(n):
    return [(0.5, (i, (i + 1) % n)) for i in range(n)]


N = 8
TERMS = ring_terms(N)
GAMMAS = [0.1, 0.25]
BETAS = [0.3, 0.15]


def reference_value(n=N, terms=TERMS, gammas=GAMMAS, betas=BETAS, **kwargs):
    sim = repro.simulator(n, terms=terms, backend="python", **kwargs)
    return float(sim.get_expectation_batch(np.array([gammas]),
                                           np.array([betas]))[0])


class TestSubmission:
    def test_submit_sync_matches_direct_simulation(self):
        with repro.serve(backend="python") as svc:
            value = svc.submit_sync(N, TERMS, GAMMAS, BETAS)
        assert value == pytest.approx(reference_value(), rel=1e-12)

    def test_async_submit_matches_direct_simulation(self):
        async def run():
            async with QAOAService(backend="python") as svc:
                return await svc.submit(N, TERMS, GAMMAS, BETAS)

        assert asyncio.run(run()) == pytest.approx(reference_value(), rel=1e-12)

    def test_module_is_callable_facade(self):
        svc = repro.serve(backend="python", window_ms=0.5, max_batch=4)
        assert isinstance(svc, QAOAService)
        assert svc.config()["max_batch"] == 4
        svc.close()

    def test_submit_future_collects_concurrent_requests(self):
        rng = np.random.default_rng(7)
        schedules = rng.uniform(0, 1, size=(6, 4))
        with repro.serve(backend="python") as svc:
            futures = [svc.submit_future(N, TERMS, row[:2], row[2:])
                       for row in schedules]
            values = [f.result(30) for f in futures]
        sim = repro.simulator(N, terms=TERMS, backend="python")
        expected = sim.get_expectation_batch(schedules[:, :2], schedules[:, 2:])
        np.testing.assert_allclose(values, expected, rtol=1e-12)

    def test_per_call_precision_override(self):
        with repro.serve(backend="python") as svc:
            value = svc.submit_sync(N, TERMS, GAMMAS, BETAS, precision="single")
        assert value == pytest.approx(reference_value(precision="single"),
                                      rel=1e-5)


class TestCapabilityRouting:
    def test_expectation_only_backend_is_routable(self):
        # the service only issues expectation traffic, so tensornet
        # (expectation-only tier) is a legal route
        n, terms = 4, ring_terms(4)
        with repro.serve(backend="python") as svc:
            value = svc.submit_sync(n, terms, [0.1], [0.2], backend="tensornet")
            assert svc.live_simulators()  # a tensornet sim was constructed
        assert value == pytest.approx(
            reference_value(n, terms, [0.1], [0.2]), rel=1e-9)

    def test_backend_without_expectation_sheds_typed_error(self):
        from repro.fur import UnsupportedCapabilityError
        from repro.fur.registry import BackendSpec, registry

        registry.register(BackendSpec(name="amponly", loader=dict,
                                      mixers=("x",),
                                      capabilities="amplitude-only",
                                      priority=-99))
        try:
            with repro.serve(backend="python") as svc:
                with pytest.raises(UnsupportedCapabilityError,
                                   match="amplitude-only"):
                    svc.submit_sync(N, TERMS, GAMMAS, BETAS, backend="amponly")
                assert svc.stats.rejected == 1
        finally:
            registry.unregister("amponly")


class TestRouting:
    def test_equivalent_spellings_share_routing_key(self):
        svc = QAOAService(backend="python")
        key1, _, _ = svc._route(N, TERMS, GAMMAS, BETAS, None, None, None, None)
        # alias + explicit defaults must land on the same key
        key2, _, _ = svc._route(N, list(TERMS), GAMMAS, BETAS, "numpy", "x",
                                "double", "default")
        assert key1 == key2
        svc.close()

    def test_depth_is_part_of_the_key(self):
        svc = QAOAService(backend="python")
        key1, _, _ = svc._route(N, TERMS, [0.1], [0.2], None, None, None, None)
        key2, _, _ = svc._route(N, TERMS, [0.1, 0.1], [0.2, 0.2],
                                None, None, None, None)
        assert key1.p == 1 and key2.p == 2 and key1 != key2
        svc.close()

    def test_mixed_keys_never_cross_batch(self):
        """Traffic on two problems makes two batchers, two simulators, and
        each simulator's engine sees only its own key's rows."""
        other = ring_terms(N)[:-1]  # different problem, same n

        async def run():
            async with QAOAService(backend="python", window_ms=20.0,
                                   max_batch=4) as svc:
                submissions = [svc.submit(N, TERMS, GAMMAS, BETAS)
                               for _ in range(4)]
                submissions += [svc.submit(N, other, GAMMAS, BETAS)
                                for _ in range(4)]
                await asyncio.gather(*submissions)
                return svc, svc.live_simulators()

        svc, live = asyncio.run(run())
        assert len(live) == 2
        assert len(svc._batchers) == 2
        for key, sim in live.items():
            assert isinstance(key, RouteKey)
            # each engine executed exactly one batch of 1 unique row
            # (4 duplicates coalesced into one evaluation per key)
            assert sim.engine.stats.rows_executed == 1
        hist = svc.stats.batch_size_histogram()
        assert hist == {4: 2}
        assert svc.stats.coalesced_hits == 6

    def test_max_batch_splits_flushes(self):
        async def run():
            rng = np.random.default_rng(3)
            thetas = rng.uniform(0, 1, size=(8, 4))
            async with QAOAService(backend="python", window_ms=50.0,
                                   max_batch=4) as svc:
                await asyncio.gather(*[
                    svc.submit(N, TERMS, row[:2], row[2:]) for row in thetas
                ])
                return svc.stats.batch_size_histogram()

        # 8 distinct requests with max_batch=4: two full flushes
        assert asyncio.run(run()) == {4: 2}


class TestAdmission:
    def test_unservable_request_rejected_with_stats(self):
        with repro.serve(backend="python") as svc:
            with pytest.raises(AdmissionError, match="state vector"):
                svc.submit_sync(40, [(1.0, (0, 1))], GAMMAS, BETAS)
            assert svc.stats.rejected == 1
            assert svc.stats.requests == 0

    def test_max_qubits_ceiling(self):
        with repro.serve(backend="python", max_qubits=6) as svc:
            with pytest.raises(AdmissionError, match="max_qubits"):
                svc.submit_sync(N, TERMS, GAMMAS, BETAS)

    def test_overload_sheds_with_typed_exception(self):
        async def run():
            async with QAOAService(backend="python", window_ms=200.0,
                                   max_pending=2, overload="shed") as svc:
                first = [asyncio.ensure_future(
                    svc.submit(N, TERMS, [g, g], BETAS)) for g in (0.1, 0.2)]
                await asyncio.sleep(0)  # let both get admitted
                with pytest.raises(ServiceOverloadedError):
                    await svc.submit(N, TERMS, [0.3, 0.3], BETAS)
                shed = svc.stats.shed
                await asyncio.gather(*first)
                return shed, svc.stats.requests

        shed, requests = asyncio.run(run())
        assert shed == 1
        assert requests == 2

    def test_overload_wait_applies_backpressure(self):
        async def run():
            async with QAOAService(backend="python", window_ms=1.0,
                                   max_pending=2, overload="wait") as svc:
                values = await asyncio.gather(*[
                    svc.submit(N, TERMS, [0.01 * i, 0.02], BETAS)
                    for i in range(6)
                ])
                return values, svc.stats

        values, stats = asyncio.run(run())
        assert len(values) == 6
        assert stats.shed == 0
        assert stats.completed == 6

    def test_effective_max_batch_clamped_by_memory_budget(self):
        # budget for ~4 rows of 2^8 complex128 with the ping-pong factor
        budget = 4 * 2 * (1 << N) * 16
        svc = QAOAService(backend="python", max_batch=64, memory_budget=budget)
        key, _, _ = svc._route(N, TERMS, GAMMAS, BETAS, None, None, None, None)
        assert svc._batcher_for(key).max_batch == 4
        svc.close()


class TestLifecycle:
    def test_closed_service_refuses_submissions(self):
        svc = repro.serve(backend="python")
        with svc:
            svc.submit_sync(N, TERMS, GAMMAS, BETAS)
        with pytest.raises(ServiceClosedError):
            svc.submit_sync(N, TERMS, GAMMAS, BETAS)
        with pytest.raises(ServiceClosedError):
            asyncio.run(svc.submit(N, TERMS, GAMMAS, BETAS))

    def test_async_close_refuses_submissions(self):
        async def run():
            async with QAOAService(backend="python") as svc:
                await svc.submit(N, TERMS, GAMMAS, BETAS)
            with pytest.raises(ServiceClosedError):
                await svc.submit(N, TERMS, GAMMAS, BETAS)

        asyncio.run(run())

    def test_simulator_lru_evicts_and_counts(self):
        problems = [ring_terms(N), ring_terms(N)[:-1], ring_terms(N)[:-2]]
        with repro.serve(backend="python", max_live_simulators=1) as svc:
            for terms in problems:
                svc.submit_sync(N, terms, GAMMAS, BETAS)
            assert svc.stats.simulators_constructed == 3
            assert svc.stats.simulators_evicted == 2
            assert len(svc.live_simulators()) == 1

    def test_live_simulators_reused_across_batches(self):
        with repro.serve(backend="python") as svc:
            svc.submit_sync(N, TERMS, GAMMAS, BETAS)
            svc.submit_sync(N, TERMS, [0.9, 0.9], BETAS)
            assert svc.stats.simulators_constructed == 1
            (sim,) = svc.live_simulators().values()
            # second batch reused the compiled plan of the first
            assert sim.engine.stats.plan_cache_hits >= 1

    def test_service_bound_to_one_loop(self):
        svc = QAOAService(backend="python")

        async def bind():
            svc._ensure_loop_state()

        asyncio.run(bind())
        with pytest.raises(RuntimeError, match="different event loop"):
            asyncio.run(bind())
        svc.close()

    def test_describe_is_json_serializable(self):
        import json

        with repro.serve(backend="python") as svc:
            svc.submit_sync(N, TERMS, GAMMAS, BETAS)
            snapshot = svc.describe()
        payload = json.loads(json.dumps(snapshot))
        assert payload["config"]["backend"] == "python"
        assert payload["stats"]["completed"] == 1
        assert len(payload["live_simulators"]) == 1
        assert payload["live_simulators"][0]["engine"]["rows_executed"] == 1


class TestValidation:
    def test_constructor_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="window_ms"):
            QAOAService(window_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            QAOAService(max_batch=0)
        with pytest.raises(ValueError, match="max_live_simulators"):
            QAOAService(max_live_simulators=0)
        with pytest.raises(ValueError, match="overload"):
            QAOAService(overload="panic")

    def test_mismatched_angles_rejected(self):
        with repro.serve(backend="python") as svc:
            with pytest.raises(ValueError):
                svc.submit_sync(N, TERMS, [0.1, 0.2], [0.3])
