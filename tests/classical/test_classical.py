"""Tests for the classical reference solvers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classical import (
    IncrementalEvaluator,
    brute_force_maximize,
    brute_force_minimize,
    memetic_tabu_search,
    random_spins,
    simulated_annealing,
    steepest_descent,
    tabu_search,
)
from repro.problems import labs, maxcut
from repro.problems.terms import evaluate_terms_on_spins

from repro.testing import random_terms


class TestBruteForce:
    def test_labs_optimum(self):
        n = 10
        result = brute_force_minimize(labs.get_terms(n), n)
        assert result.value == labs.KNOWN_OPTIMAL_ENERGIES[n]
        assert len(result.indices) >= 4
        assert result.spins(n).shape == (n,)

    def test_maxcut_optimum(self):
        g = maxcut.random_regular_graph(3, 8, seed=0)
        terms = maxcut.maxcut_terms_from_graph(g)
        best_cut, _ = maxcut.maxcut_optimal_cut_bruteforce(g)
        assert brute_force_minimize(terms, 8).value == pytest.approx(-best_cut)

    def test_maximize(self):
        terms = [(1.0, (0,)), (1.0, (1,))]
        assert brute_force_maximize(terms, 2).value == pytest.approx(2.0)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            brute_force_minimize([(1.0, (0,))], 30)


class TestIncrementalEvaluator:
    def test_set_spins_value(self, rng):
        n = 6
        terms = random_terms(rng, n, 10, max_order=4)
        ev = IncrementalEvaluator(terms, n)
        spins = random_spins(n, rng)
        assert ev.set_spins(spins) == pytest.approx(evaluate_terms_on_spins(terms, spins))

    def test_flip_delta_matches_recompute(self, rng):
        n = 7
        terms = random_terms(rng, n, 12, max_order=4)
        ev = IncrementalEvaluator(terms, n)
        spins = random_spins(n, rng)
        ev.set_spins(spins)
        for i in range(n):
            flipped = spins.copy()
            flipped[i] *= -1
            expected_delta = (evaluate_terms_on_spins(terms, flipped)
                              - evaluate_terms_on_spins(terms, spins))
            assert ev.flip_delta(i) == pytest.approx(expected_delta, abs=1e-9)

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_property_chain_of_flips_stays_consistent(self, n, seed, n_flips):
        rng = np.random.default_rng(seed)
        terms = random_terms(rng, n, int(rng.integers(1, 10)), max_order=min(4, n))
        ev = IncrementalEvaluator(terms, n)
        spins = random_spins(n, rng)
        ev.set_spins(spins)
        for _ in range(n_flips):
            i = int(rng.integers(0, n))
            ev.flip(i)
            spins[i] *= -1
        assert ev.value == pytest.approx(evaluate_terms_on_spins(terms, spins), abs=1e-8)
        np.testing.assert_array_equal(ev.spins, spins)

    def test_requires_state(self, rng):
        ev = IncrementalEvaluator(random_terms(rng, 4, 3), 4)
        with pytest.raises(RuntimeError):
            ev.flip_delta(0)

    def test_validation(self, rng):
        ev = IncrementalEvaluator(random_terms(rng, 4, 3), 4)
        with pytest.raises(ValueError):
            ev.set_spins(np.array([1, -1, 1]))
        with pytest.raises(ValueError):
            ev.set_spins(np.array([1, -1, 0, 1]))
        ev.set_spins(np.array([1, -1, 1, 1]))
        with pytest.raises(ValueError):
            ev.flip_delta(9)

    def test_steepest_descent_never_increases(self, rng):
        n = 8
        terms = labs.get_terms(n)
        ev = IncrementalEvaluator(terms, n)
        start = random_spins(n, rng)
        start_value = evaluate_terms_on_spins(terms, start)
        _, value = steepest_descent(ev, start)
        assert value <= start_value + 1e-12


class TestHeuristics:
    def test_tabu_finds_labs_optimum(self):
        n = 10
        result = tabu_search(labs.get_terms(n), n, max_iterations=500, n_restarts=2, seed=0)
        assert result.value == labs.KNOWN_OPTIMAL_ENERGIES[n]

    def test_tabu_target_value_early_stop(self):
        n = 10
        target = labs.KNOWN_OPTIMAL_ENERGIES[n] + 4
        result = tabu_search(labs.get_terms(n), n, max_iterations=2000, n_restarts=3,
                             seed=1, target_value=target)
        assert result.value <= target

    def test_tabu_validation(self):
        with pytest.raises(ValueError):
            tabu_search([(1.0, (0,))], 1, max_iterations=0)

    def test_annealing_reaches_good_solution(self):
        n = 10
        result = simulated_annealing(labs.get_terms(n), n, n_sweeps=300, seed=2)
        assert result.value <= 1.8 * labs.KNOWN_OPTIMAL_ENERGIES[n]

    def test_annealing_validation(self):
        with pytest.raises(ValueError):
            simulated_annealing([(1.0, (0,))], 1, n_sweeps=0)
        with pytest.raises(ValueError):
            simulated_annealing([(1.0, (0,))], 1, t_final=0)

    def test_annealing_with_initial_spins(self):
        n = 8
        spins = np.ones(n, dtype=np.int64)
        result = simulated_annealing(labs.get_terms(n), n, n_sweeps=100, seed=3,
                                     initial_spins=spins)
        assert result.value <= labs.energy_from_spins(spins)

    def test_memetic_finds_labs_optimum(self):
        n = 11
        result = memetic_tabu_search(labs.get_terms(n), n, population_size=4,
                                     n_generations=4, tabu_iterations=200, seed=0)
        assert result.value == labs.KNOWN_OPTIMAL_ENERGIES[n]
        assert result.evaluations > 0

    def test_memetic_validation(self):
        with pytest.raises(ValueError):
            memetic_tabu_search([(1.0, (0,))], 2, population_size=1)
        with pytest.raises(ValueError):
            memetic_tabu_search([(1.0, (0,))], 2, n_generations=0)

    def test_maxcut_heuristic_matches_bruteforce(self):
        g = maxcut.random_regular_graph(3, 10, seed=4)
        terms = maxcut.maxcut_terms_from_graph(g)
        best_cut, _ = maxcut.maxcut_optimal_cut_bruteforce(g)
        result = tabu_search(terms, 10, max_iterations=500, n_restarts=2, seed=5)
        assert result.value == pytest.approx(-best_cut)
