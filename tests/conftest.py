"""Shared fixtures and helpers for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems import labs, maxcut
from repro.testing import random_terms

__all__ = ["random_terms"]


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_labs_terms():
    """LABS terms for n=6 (includes 2- and 4-body terms plus an offset)."""
    return labs.get_terms(6)


@pytest.fixture
def small_maxcut():
    """A 6-node 3-regular MaxCut instance (graph, terms)."""
    graph = maxcut.random_regular_graph(3, 6, seed=7)
    return graph, maxcut.maxcut_terms_from_graph(graph)


@pytest.fixture
def qaoa_angles():
    """A generic two-layer (γ, β) schedule used across backend tests."""
    return [0.17, 0.42], [0.33, 0.21]
