"""Shared fixtures and helpers for the repro test-suite."""

from __future__ import annotations

import os
import zlib

import numpy as np
import pytest

from repro.problems import labs, maxcut
from repro.testing import random_terms

__all__ = ["random_terms"]

#: Default session seed for the randomized parity harnesses.  Tier-1 runs are
#: deterministic out of the box; export ``REPRO_TEST_SEED`` to replay the
#: seed a failure report printed (or to explore a different draw).
_DEFAULT_TEST_SEED = 20230717


def _session_seed() -> int:
    env = os.environ.get("REPRO_TEST_SEED")
    return int(env) if env else _DEFAULT_TEST_SEED


def pytest_report_header(config) -> str:
    return (f"repro test seed: {_session_seed()} "
            "(set REPRO_TEST_SEED to override)")


@pytest.fixture(scope="session")
def test_seed() -> int:
    """The session-wide seed every randomized harness derives from.

    Honours ``REPRO_TEST_SEED`` and is printed in the pytest header, so a
    randomized parity failure reproduces exactly from the printed seed.
    """
    return _session_seed()


@pytest.fixture
def seeded_rng(request, test_seed) -> np.random.Generator:
    """Per-test RNG derived from the session seed and the test's node id.

    The node-id component makes each test's stream independent of execution
    order (running one test alone draws the same values as the full suite),
    while the session seed keeps the whole run reproducible.
    """
    node_key = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng([test_seed, node_key])


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_labs_terms():
    """LABS terms for n=6 (includes 2- and 4-body terms plus an offset)."""
    return labs.get_terms(6)


@pytest.fixture
def small_maxcut():
    """A 6-node 3-regular MaxCut instance (graph, terms)."""
    graph = maxcut.random_regular_graph(3, 6, seed=7)
    return graph, maxcut.maxcut_terms_from_graph(graph)


@pytest.fixture
def qaoa_angles():
    """A generic two-layer (γ, β) schedule used across backend tests."""
    return [0.17, 0.42], [0.33, 0.21]
