"""The memory-traffic cost model that orders the structural rewrite passes."""

import pytest

from repro.fur.costmodel import PlanCostModel, order_structural_passes
from repro.fur.rewrite import (
    STRUCTURAL_PASSES,
    ExpectationOp,
    FoldInitialPhase,
    FusedMixerExpectationOp,
    FusedPhaseMixerOp,
    FusePhaseIntoMixer,
    InitialPhaseOp,
    MergedMixerOp,
    MergedPhaseOp,
    MixerOp,
    PhaseOp,
)


class _Flags:
    def __init__(self, **attrs):
        self.__dict__.update(attrs)


@pytest.fixture
def model():
    return PlanCostModel(n_qubits=8)


class TestOpPrices:
    def test_prices_are_positive_integers(self, model):
        ops = [PhaseOp(0), InitialPhaseOp(0), MergedPhaseOp((0, 1)),
               MixerOp(0), MergedMixerOp((0, 1)), FusedPhaseMixerOp(0),
               FusedMixerExpectationOp(0), ExpectationOp()]
        for op in ops:
            price = model.op_bytes(op)
            assert isinstance(price, int) and price > 0
        assert isinstance(model.stage_bytes(), int)

    def test_fused_ops_are_cheaper_than_their_parts(self, model):
        split = model.op_bytes(PhaseOp(0)) + model.op_bytes(MixerOp(0))
        assert model.op_bytes(FusedPhaseMixerOp(0)) < split
        tail = model.op_bytes(MixerOp(0)) + model.op_bytes(ExpectationOp())
        assert model.op_bytes(FusedMixerExpectationOp(0)) < tail
        # folding the head phase into staging beats a standalone phase sweep
        assert model.op_bytes(InitialPhaseOp(0)) < model.op_bytes(PhaseOp(0))

    def test_merged_ops_cost_one_sweep(self, model):
        assert model.op_bytes(MergedPhaseOp((0, 1, 2))) == model.op_bytes(PhaseOp(0))
        assert model.op_bytes(MergedMixerOp((0, 1))) == model.op_bytes(MixerOp(0))

    def test_trotterization_scales_mixer_cost(self, model):
        assert model.op_bytes(MixerOp(0, n_trotters=3)) == 3 * model.op_bytes(MixerOp(0))

    def test_plan_bytes_includes_staging(self, model):
        ops = (PhaseOp(0), MixerOp(0), ExpectationOp())
        assert model.plan_bytes(ops) == (model.stage_bytes()
                                         + sum(model.op_bytes(op) for op in ops))
        assert model.plan_time(ops) > 0.0


class TestPassOrdering:
    OPS = (PhaseOp(0), MixerOp(0), PhaseOp(1), MixerOp(1), ExpectationOp())

    def test_unmodellable_simulator_keeps_declared_order(self):
        # no n_qubits attribute -> identity, no scoring
        assert order_structural_passes(STRUCTURAL_PASSES, self.OPS,
                                       object()) == STRUCTURAL_PASSES

    def test_single_pass_needs_no_ordering(self):
        passes = (FusePhaseIntoMixer(),)
        assert order_structural_passes(passes, self.OPS,
                                       _Flags(n_qubits=8)) == passes

    def test_ties_keep_declared_order(self):
        # a provider with no fused kernels: every permutation produces the
        # same (unchanged) op stream, so the declared order must win
        sim = _Flags(n_qubits=8)
        assert order_structural_passes(STRUCTURAL_PASSES, self.OPS,
                                       sim) == STRUCTURAL_PASSES

    def test_fold_and_fuse_tie_resolves_to_declared_order(self):
        # FusePhaseIntoMixer and FoldInitialPhase compete for PhaseOp(0),
        # and both save exactly one read-modify-write of the state on the
        # head layer — a genuine cost tie.  The declared order must decide,
        # deterministically, in whichever direction it is declared.
        sim = _Flags(n_qubits=8, supports_fused_phase_mixer=True,
                     supports_staged_phase=True,
                     supports_fused_mixer_expectation=True)

        def apply(order):
            rewritten = self.OPS
            for rewrite in order:
                rewritten, _ = rewrite.run(rewritten, sim)
            return rewritten

        fuse_first = (FusePhaseIntoMixer(), FoldInitialPhase())
        fold_first = (FoldInitialPhase(), FusePhaseIntoMixer())
        model = PlanCostModel(8)
        assert (model.plan_bytes(apply(fuse_first))
                == model.plan_bytes(apply(fold_first)))
        assert order_structural_passes(fuse_first, self.OPS, sim) == fuse_first
        assert order_structural_passes(fold_first, self.OPS, sim) == fold_first
        # STRUCTURAL_PASSES declares fusion first, so the engine's canonical
        # X-mixer plan is the fully-fused one
        assert apply(order_structural_passes(STRUCTURAL_PASSES, self.OPS, sim))[0] \
            == FusedPhaseMixerOp(0)

    def test_chosen_order_minimizes_plan_bytes(self):
        from itertools import permutations

        sim = _Flags(n_qubits=8, supports_fused_phase_mixer=True,
                     supports_staged_phase=True,
                     supports_fused_mixer_expectation=True)
        model = PlanCostModel(8)

        def cost(order):
            rewritten = self.OPS
            for rewrite in order:
                rewritten, _ = rewrite.run(rewritten, sim)
            return model.plan_bytes(rewritten)

        chosen = order_structural_passes(STRUCTURAL_PASSES, self.OPS, sim)
        assert cost(chosen) == min(cost(p)
                                   for p in permutations(STRUCTURAL_PASSES))
