"""Tests for the CPU QAOA simulator backends (python and c)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from functools import partial

from repro.fur import get_simulator_class
from repro.fur.cvect import KernelWorkspace, apply_su2_blocked, furxy_blocked
from repro.problems import labs, maxcut

from repro.testing import random_terms

BACKENDS = ["python", "c"]
CHOOSERS = {
    "x": partial(get_simulator_class, mixer="x"),
    "xyring": partial(get_simulator_class, mixer="xyring"),
    "xycomplete": partial(get_simulator_class, mixer="xycomplete"),
}


class TestPhaseOperator:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_beta_zero_applies_pure_phases(self, backend, small_labs_terms):
        """With β=0 the layer is diagonal: probabilities stay uniform."""
        n = 6
        sim = get_simulator_class(backend)(n, terms=small_labs_terms)
        res = sim.simulate_qaoa([0.7], [0.0])
        probs = sim.get_probabilities(res)
        np.testing.assert_allclose(probs, 1.0 / (1 << n), atol=1e-12)
        # and the phases match exp(-i*gamma*costs)
        sv = np.asarray(sim.get_statevector(res))
        expected = np.exp(-1j * 0.7 * sim.get_cost_diagonal()) / np.sqrt(1 << n)
        np.testing.assert_allclose(sv, expected, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gamma_zero_leaves_plus_state(self, backend, small_labs_terms):
        """With γ=0 the phase is trivial and |+>^n is a mixer eigenstate."""
        n = 6
        sim = get_simulator_class(backend)(n, terms=small_labs_terms)
        res = sim.simulate_qaoa([0.0], [0.4])
        probs = sim.get_probabilities(res)
        np.testing.assert_allclose(probs, 1.0 / (1 << n), atol=1e-12)


class TestBackendEquivalence:
    @pytest.mark.parametrize("mixer", ["x", "xyring", "xycomplete"])
    def test_python_and_c_agree(self, mixer, small_labs_terms, qaoa_angles):
        n = 6
        gammas, betas = qaoa_angles
        svs = {}
        for backend in BACKENDS:
            sim = CHOOSERS[mixer](backend)(n, terms=small_labs_terms)
            svs[backend] = np.asarray(sim.get_statevector(sim.simulate_qaoa(gammas, betas)))
        np.testing.assert_allclose(svs["python"], svs["c"], atol=1e-12)

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_property_backends_agree_on_random_problems(self, n, seed, p):
        rng = np.random.default_rng(seed)
        terms = random_terms(rng, n, int(rng.integers(1, 8)), max_order=min(3, n))
        gammas = rng.uniform(-1, 1, p)
        betas = rng.uniform(-1, 1, p)
        results = []
        for backend in BACKENDS:
            sim = get_simulator_class(backend)(n, terms=terms)
            results.append(np.asarray(sim.get_statevector(sim.simulate_qaoa(gammas, betas))))
        np.testing.assert_allclose(results[0], results[1], atol=1e-10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_norm_preserved_deep_circuit(self, backend, small_labs_terms):
        n, p = 6, 50
        rng = np.random.default_rng(0)
        sim = get_simulator_class(backend)(n, terms=small_labs_terms)
        res = sim.simulate_qaoa(rng.uniform(0, 1, p), rng.uniform(0, 1, p))
        assert np.linalg.norm(np.asarray(sim.get_statevector(res))) == pytest.approx(1.0, abs=1e-9)


class TestExpectationAndOverlap:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_expectation_matches_manual_inner_product(self, backend, small_maxcut, qaoa_angles):
        graph, terms = small_maxcut
        gammas, betas = qaoa_angles
        sim = get_simulator_class(backend)(6, terms=terms)
        res = sim.simulate_qaoa(gammas, betas)
        sv = np.asarray(sim.get_statevector(res))
        manual = float(np.dot(np.abs(sv) ** 2, sim.get_cost_diagonal()))
        assert sim.get_expectation(res) == pytest.approx(manual, abs=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_expectation_bounded_by_spectrum(self, backend, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = get_simulator_class(backend)(6, terms=small_labs_terms)
        res = sim.simulate_qaoa(gammas, betas)
        diag = sim.get_cost_diagonal()
        e = sim.get_expectation(res)
        assert diag.min() - 1e-9 <= e <= diag.max() + 1e-9

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_overlap_defaults_to_ground_states(self, backend, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = get_simulator_class(backend)(n, terms=terms)
        res = sim.simulate_qaoa(gammas, betas)
        probs = sim.get_probabilities(res)
        gs = labs.ground_state_indices(n)
        assert sim.get_overlap(res) == pytest.approx(float(probs[gs].sum()), abs=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_probabilities_sum_to_one(self, backend, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = get_simulator_class(backend)(6, terms=small_labs_terms)
        probs = sim.get_probabilities(sim.simulate_qaoa(gammas, betas))
        assert probs.sum() == pytest.approx(1.0, abs=1e-10)

    def test_qaoa_improves_over_random_guess(self):
        """A coarse p=1 angle scan already beats the uniform-sampling average on MaxCut."""
        graph = maxcut.random_regular_graph(3, 8, seed=5)
        terms = maxcut.maxcut_terms_from_graph(graph)
        sim = get_simulator_class("c")(8, terms=terms)
        mean_cost = float(sim.get_cost_diagonal().mean())
        best = np.inf
        for gamma in np.linspace(-0.7, 0.7, 8):
            for beta in np.linspace(-0.7, 0.7, 8):
                best = min(best, sim.get_expectation(sim.simulate_qaoa([gamma], [beta])))
        assert best < mean_cost - 0.5


class TestSimulateKwargs:
    def test_unexpected_kwargs_rejected(self, small_labs_terms):
        for backend in BACKENDS:
            sim = get_simulator_class(backend)(6, terms=small_labs_terms)
            with pytest.raises(TypeError):
                sim.simulate_qaoa([0.1], [0.1], bogus=3)

    def test_invalid_trotter_count(self, small_labs_terms):
        sim = get_simulator_class("c", mixer="xyring")(6, terms=small_labs_terms)
        with pytest.raises(ValueError):
            sim.simulate_qaoa([0.1], [0.1], n_trotters=0)

    def test_xy_trotterization_converges(self, small_labs_terms):
        """More Trotter slices converge towards the exact XY-mixer evolution."""
        from scipy.linalg import expm

        n = 4
        terms = labs.get_terms(n)
        sim_cls = get_simulator_class("python", mixer="xyring")
        beta, gamma = 0.4, 0.3

        # exact mixer: expm(-i beta sum_{ring} (XX+YY)/2) applied after the phase
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        y = np.array([[0, -1j], [1j, 0]], dtype=complex)

        def two_site(op, i, j):
            mats = [np.eye(2, dtype=complex)] * n
            mats[i], mats[j] = op, op
            full = np.array([[1.0]])
            for q in range(n):
                full = np.kron(mats[q], full)
            return full

        from repro.fur.python.furxy import ring_edges

        ham = sum((two_site(x, i, j) + two_site(y, i, j)) / 2 for i, j in ring_edges(n))
        sim = sim_cls(n, terms=terms)
        sv0 = np.full(1 << n, 1 / np.sqrt(1 << n), dtype=complex)
        phase = np.exp(-1j * gamma * sim.get_cost_diagonal())
        exact = expm(-1j * beta * ham) @ (phase * sv0)

        errors = []
        for n_trotters in (1, 4, 16):
            sv = np.asarray(sim.get_statevector(
                sim.simulate_qaoa([gamma], [beta], n_trotters=n_trotters)))
            errors.append(np.abs(sv - exact).max())
        assert errors[1] < errors[0] and errors[2] < errors[1]
        assert errors[2] < errors[0] / 5
        assert errors[2] < 5e-3


class TestBlockedKernels:
    """The c backend's blocked kernels must agree with the plain kernels for any block size."""

    @pytest.mark.parametrize("block_size", [1, 3, 8, 64, 100000])
    def test_su2_blocked_matches_reference(self, rng, block_size):
        import repro.fur.python.furx as furx

        n = 6
        sv = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        a, b = furx.su2_x_rotation(0.3)
        for q in (0, 3, 5):
            ref = furx.apply_su2(sv.copy(), a, b, q)
            ws = KernelWorkspace(1 << n, block_size)
            out = apply_su2_blocked(sv.copy(), a, b, q, ws)
            np.testing.assert_allclose(out, ref, atol=1e-12)

    @pytest.mark.parametrize("block_size", [1, 5, 32, 100000])
    def test_furxy_blocked_matches_reference(self, rng, block_size):
        import repro.fur.python.furxy as furxy

        n = 6
        sv = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        for (i, j) in [(0, 1), (2, 5), (5, 2), (4, 0)]:
            ref = furxy.furxy(sv.copy(), 0.41, i, j)
            ws = KernelWorkspace(1 << n, block_size)
            out = furxy_blocked(sv.copy(), 0.41, i, j, ws)
            np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_c_backend_small_blocks_full_run(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        ref_sim = get_simulator_class("python")(6, terms=small_labs_terms)
        ref = np.asarray(ref_sim.get_statevector(ref_sim.simulate_qaoa(gammas, betas)))
        sim = get_simulator_class("c")(6, terms=small_labs_terms, block_size=16)
        out = np.asarray(sim.get_statevector(sim.simulate_qaoa(gammas, betas)))
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_workspace_validation(self):
        with pytest.raises(ValueError):
            KernelWorkspace(64, 0)
