"""Tests for the in-process sharded backend: slab-swap bookkeeping,
shard-count invariance, exchange accounting, per-shard admission and the
shard telemetry surface."""

import numpy as np
import pytest

import repro
from repro import fur
from repro.fur.sharded import (
    QAOAFURXSimulatorSharded,
    ShardedStateVector,
    ShardLayout,
    resolve_n_shards,
    resolve_n_workers,
    shard_report,
    sharded_state_bytes,
)
from repro.fur.sharded.inner import INNER_NAMES, resolve_inner

TERMS = [(0.5, (0, 1)), (-0.25, (1, 2)), (1.0, (0,))]


def few_value_costs(rng, n):
    """A diagonal with few unique values, so every shard slice gets a phase
    table (keeps the single-precision table path identical across shard
    counts — the bitwise-invariance precondition)."""
    return rng.choice([-2.0, -1.0, 0.0, 1.0], size=1 << n)


class TestShardLayout:
    def test_starts_at_identity(self):
        layout = ShardLayout(6, 4)
        assert layout.is_identity()
        assert [layout.position_of(q) for q in range(6)] == list(range(6))
        assert all(layout.is_local(q) for q in range(4))
        assert not layout.is_local(4) and not layout.is_local(5)

    def test_global_local_relabel_round_trip(self):
        layout = ShardLayout(6, 4)
        # relabel global qubit 5 (shard bit 1) into local position 2 ...
        layout.swap_positions(2, 5)
        assert layout.position_of(5) == 2
        assert layout.position_of(2) == 5
        assert layout.is_local(5) and not layout.is_local(2)
        assert not layout.is_identity()
        # ... and the same transposition restores the canonical order
        layout.swap_positions(2, 5)
        assert layout.is_identity()
        layout.assert_identity()

    def test_assert_identity_raises_on_unbalanced_relabel(self):
        layout = ShardLayout(5, 3)
        layout.swap_positions(0, 4)
        with pytest.raises(RuntimeError, match="permuted state"):
            layout.assert_identity()

    def test_position_validation(self):
        layout = ShardLayout(4, 2)
        with pytest.raises(ValueError, match="out of range"):
            layout.swap_positions(0, 4)
        with pytest.raises(ValueError, match="out of range"):
            layout.position_of(7)

    def test_perm_is_a_copy(self):
        layout = ShardLayout(4, 2)
        layout.perm[0] = 99
        assert layout.is_identity()


class TestShardResolution:
    def test_explicit_count_validated(self):
        assert resolve_n_shards(8, 4) == 4
        with pytest.raises(ValueError, match="power of two"):
            resolve_n_shards(8, 3)
        with pytest.raises(ValueError, match="power of two"):
            resolve_n_shards(8, 0)
        with pytest.raises(ValueError, match="global qubits"):
            resolve_n_shards(8, 16, max_global=2)

    def test_env_override_rounded_and_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_SHARDS", "6")
        assert resolve_n_shards(10) == 4  # rounded down to a power of two
        assert resolve_n_shards(10, max_global=1) == 2  # clamped, not rejected
        monkeypatch.setenv("REPRO_NUM_SHARDS", "not-a-number")
        assert resolve_n_shards(10) >= 1  # falls back to the core count

    def test_worker_budget(self):
        assert resolve_n_workers(4, 2) == 2
        assert resolve_n_workers(4, 99) == 4  # never more workers than shards
        with pytest.raises(ValueError, match="positive"):
            resolve_n_workers(4, 0)

    def test_sharded_state_bytes_counts_slab_plus_staging(self):
        slab = (1 << 10) * 16 // 4
        assert sharded_state_bytes(10, 16, 4) == slab + slab // 2
        # one shard degenerates to the monolithic state (plus staging)
        assert sharded_state_bytes(10, 16, 1) == (1 << 10) * 16 * 3 // 2

    def test_resolve_inner_names(self):
        for name in INNER_NAMES:
            assert resolve_inner(name).name in ("jit", "c", "python")
        with pytest.raises(ValueError, match="unknown inner provider"):
            resolve_inner("fortran")

    def test_shard_report_shape(self):
        report = shard_report()
        assert "shards=" in report and "workers=" in report
        assert "inner=" in report


class TestShardedSimulation:
    @pytest.mark.parametrize("mixer", ["x", "xyring", "xycomplete"])
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_matches_python_backend(self, mixer, n_shards, rng):
        n = 6
        terms = [(float(rng.normal()), (i, (i + 1) % n)) for i in range(n)]
        gammas, betas = rng.normal(size=(2, 3))
        ref = repro.simulator(n, terms=terms, backend="python", mixer=mixer)
        expected = ref.get_statevector(ref.simulate_qaoa(gammas, betas))
        sim = repro.simulator(n, terms=terms, backend="sharded", mixer=mixer,
                              n_shards=n_shards)
        sv = sim.get_statevector(sim.simulate_qaoa(gammas, betas))
        np.testing.assert_allclose(sv, expected, atol=1e-12)

    def test_trotterized_xy_matches_python(self, rng):
        n = 5
        gammas, betas = rng.normal(size=(2, 2))
        ref = repro.simulator(n, terms=TERMS, backend="python", mixer="xyring")
        expected = ref.get_statevector(
            ref.simulate_qaoa(gammas, betas, n_trotters=3))
        sim = repro.simulator(n, terms=TERMS, backend="sharded", mixer="xyring",
                              n_shards=2)
        sv = sim.get_statevector(sim.simulate_qaoa(gammas, betas, n_trotters=3))
        np.testing.assert_allclose(sv, expected, atol=1e-12)

    @pytest.mark.parametrize("precision", ["double", "single"])
    def test_bitwise_invariant_under_shard_count(self, precision, rng):
        # The blocked c inner's pair update is position-independent and the
        # expectation reduction uses a fixed segment grid, so results must be
        # *bitwise* identical at 1, 2, 4 and 8 shards.
        n = 8
        costs = few_value_costs(rng, n)
        gammas, betas = rng.normal(size=(2, 3, 2))
        reference = None
        for n_shards in (1, 2, 4, 8):
            sim = repro.simulator(n, costs=costs, backend="sharded",
                                  precision=precision, n_shards=n_shards,
                                  inner="c")
            results = sim.simulate_qaoa_batch(gammas, betas)
            states = np.stack([sim.get_statevector(r) for r in results])
            energies = np.asarray(sim.get_expectation_batch(gammas, betas))
            if reference is None:
                reference = (states, energies)
            else:
                assert np.array_equal(reference[0], states)
                assert np.array_equal(reference[1], energies)

    def test_exchange_count_independent_of_batch_size(self, rng):
        n = 7
        counts = []
        for rows in (2, 8):
            sim = repro.simulator(n, terms=TERMS, backend="sharded",
                                  n_shards=4, inner="c")
            sim.get_expectation_batch(rng.normal(size=(rows, 2)),
                                      rng.normal(size=(rows, 2)))
            counts.append(sim.engine.stats.shard_exchanges)
        assert counts[0] > 0
        # coalesced exchanges: one message per slab pair per transposition,
        # regardless of how many batch rows ride the slab
        assert counts[0] == counts[1]

    def test_engine_telemetry_recorded(self, rng):
        sim = repro.simulator(6, terms=TERMS, backend="sharded", n_shards=4,
                              inner="c")
        sim.get_expectation_batch(rng.normal(size=(3, 2)),
                                  rng.normal(size=(3, 2)))
        stats = sim.engine.stats
        assert stats.shard_exchanges > 0
        assert stats.exchange_bytes > 0
        fractions = stats.shard_busy_fractions()
        assert set(fractions) == {"0", "1", "2", "3"}
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        as_dict = stats.as_dict()
        assert as_dict["shard_exchanges"] == stats.shard_exchanges
        assert as_dict["exchange_bytes"] == stats.exchange_bytes

    def test_result_gather_and_shard_views(self, rng):
        sim = repro.simulator(5, terms=TERMS, backend="sharded", n_shards=2)
        result = sim.simulate_qaoa([0.1], [0.2])
        assert isinstance(result, ShardedStateVector)
        assert result.n_shards == 2
        slabs = sim.get_statevector(result, gather=False)
        gathered = sim.get_statevector(result)
        assert gathered.shape == (32,)
        assert len(slabs) == 2 and all(s.shape == (16,) for s in slabs)
        np.testing.assert_array_equal(np.concatenate(slabs), gathered)
        probs = sim.get_probabilities(result)
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-12)

    def test_shard_count_capped_by_mixer_budget(self):
        # X relabels g global qubits into the top g local positions, which
        # needs 2g <= n; XY additionally needs two free local positions.
        with pytest.raises(ValueError, match="global qubits"):
            repro.simulator(4, terms=TERMS, backend="sharded", n_shards=8)
        sim = repro.simulator(4, terms=TERMS, backend="sharded", n_shards=4)
        assert sim.n_shards == 4

    def test_constructor_metadata(self):
        sim = repro.simulator(6, terms=TERMS, backend="sharded", n_shards=4,
                              n_workers=2, inner="c")
        assert sim.backend_name == "sharded"
        assert sim.n_shards == 4
        assert sim.n_global_qubits == 2
        assert sim.n_local_qubits == 4
        assert sim.n_shard_workers == 2
        assert sim.inner_name == "c"
        assert sim.supports_coalesced_exchange


class TestPerShardAdmission:
    def test_sharded_admits_what_single_array_guard_rejects(self, monkeypatch):
        import repro.fur.base as base

        n = 10
        itemsize = 16  # complex128
        # Guard sized between the monolithic state and one shard's footprint.
        monkeypatch.setattr(base, "MAX_STATE_BYTES",
                            (1 << n) * itemsize - 1)
        with pytest.raises(ValueError, match="refusing"):
            repro.simulator(n, terms=TERMS, backend="c")
        sim = repro.simulator(n, terms=TERMS, backend="sharded", n_shards=4)
        assert sim.n_shards == 4

    def test_serve_admission_is_per_shard(self):
        from repro.serve.admission import AdmissionController, AdmissionError

        n = 10
        guard = (1 << n) * 16 - 1  # below the monolithic complex128 state
        ctrl = AdmissionController(max_state_bytes=guard)
        with pytest.raises(AdmissionError, match="rejecting"):
            ctrl.check(n, "double")
        ctrl.check(n, "double", n_shards=4)  # per-shard slab fits

    def test_service_routes_shard_count_into_admission(self):
        from repro.serve import QAOAService
        from repro.serve.admission import AdmissionError

        n = 10
        guard = (1 << n) * 16 - 1
        svc = QAOAService(backend="sharded", n_shards=4)
        svc._admission.max_state_bytes = guard
        key, _, _ = svc._route(n, TERMS, [0.1], [0.2], None, None, None, None)
        assert key.backend == "sharded"
        mono = QAOAService(backend="c")
        mono._admission.max_state_bytes = guard
        with pytest.raises(AdmissionError, match="rejecting"):
            mono._route(n, TERMS, [0.1], [0.2], None, None, None, None)

    def test_service_rejects_invalid_shard_knob(self):
        from repro.serve import QAOAService
        from repro.serve.admission import AdmissionError

        svc = QAOAService(backend="sharded", n_shards=3)
        with pytest.raises(AdmissionError, match="power of two"):
            svc._route(6, TERMS, [0.1], [0.2], None, None, None, None)


class TestServeShardTelemetry:
    def test_service_stats_harvest_shard_traffic(self):
        from repro.serve import QAOAService

        with QAOAService(backend="sharded", n_shards=4, window_ms=0.0) as svc:
            value = svc.submit_sync(6, TERMS, [0.1], [0.2])
            assert np.isfinite(value)
            snapshot = svc.stats.as_dict()
        assert snapshot["shard_exchanges"] > 0
        assert snapshot["exchange_bytes"] > 0
        config = svc.config()
        assert config["n_shards"] == 4

    def test_monolithic_routes_record_zero_shard_traffic(self):
        from repro.serve import QAOAService

        with QAOAService(backend="c", window_ms=0.0) as svc:
            svc.submit_sync(5, TERMS, [0.1], [0.2])
            snapshot = svc.stats.as_dict()
        assert snapshot["shard_exchanges"] == 0
        assert snapshot["exchange_bytes"] == 0

    def test_describe_extra_reports_shards(self):
        from repro.fur.registry import registry

        text = registry.describe()
        assert "sharded" in text
        assert "shards=" in text and "inner=" in text


class TestCostModelShardPricing:
    def test_exchange_priced_only_with_shards(self):
        from repro.fur.costmodel import PlanCostModel

        mono = PlanCostModel(10)
        assert mono.exchange_bytes() == 0
        sharded = PlanCostModel(10, n_shards=4, coalesced_exchange=True)
        assert sharded.exchange_bytes() > 0
        # the per-row path pays more message overhead at equal byte volume
        per_row = PlanCostModel(10, n_shards=4, coalesced_exchange=False)
        assert per_row.exchange_bytes() > sharded.exchange_bytes()

    def test_worker_split_reduces_compute_price(self):
        from repro.fur.costmodel import PlanCostModel
        from repro.fur.rewrite import MixerOp

        op = MixerOp(layer=0, n_trotters=1)
        solo = PlanCostModel(10)
        pooled = PlanCostModel(10, n_workers=4)
        assert pooled.op_bytes(op) < solo.op_bytes(op)
