"""Tests for the backend registry, the simulator facade, the diagonal cache
and the batched-evaluation API."""

import numpy as np
import pytest

import repro
from repro import fur
from repro.fur import diagonal_cache
from repro.fur.cache import DiagonalCache, problem_fingerprint
from repro.fur.cvect import (
    QAOAFURXSimulatorC,
    QAOAFURXYCompleteSimulatorC,
    QAOAFURXYRingSimulatorC,
)
from repro.fur.python import (
    QAOAFURXSimulator,
    QAOAFURXYCompleteSimulator,
    QAOAFURXYRingSimulator,
)
from repro.fur.registry import BackendSpec, registry
from repro.testing import random_terms

TERMS = [(0.5, (0, 1)), (-0.25, (1, 2)), (1.0, (0,))]


@pytest.fixture
def numpy_rung(monkeypatch):
    """Pin the jit tier to its numpy delegation rung for one test.

    The jit family's *dynamic* priority outranks ``c`` whenever a compiled
    path (numba or the runtime-built C library) is live, so tests asserting
    the static ``auto`` order pin the ladder to ``numpy`` via
    ``REPRO_JIT_PATH`` and reset the cached resolution around the test.
    """
    from repro.fur.jit import kernels

    monkeypatch.setenv("REPRO_JIT_PATH", "numpy")
    kernels._reset_path_cache()
    yield
    kernels._reset_path_cache()

CPU_CLASSES = {
    ("c", "x"): QAOAFURXSimulatorC,
    ("c", "xyring"): QAOAFURXYRingSimulatorC,
    ("c", "xycomplete"): QAOAFURXYCompleteSimulatorC,
    ("python", "x"): QAOAFURXSimulator,
    ("python", "xyring"): QAOAFURXYRingSimulator,
    ("python", "xycomplete"): QAOAFURXYCompleteSimulator,
}


class TestRegistryResolution:
    def test_canonical_names(self):
        assert set(fur.available_backends()) == {
            "python", "c", "jit", "sharded", "gpu", "gpumpi", "cusvmpi",
            "gates", "tensornet",
        }

    def test_alias_resolution(self):
        assert fur.get_backend("numpy").name == "python"
        assert fur.get_backend("cpu").name == "c"
        assert fur.get_backend("nbcuda").name == "gpu"
        assert fur.get_backend("custatevec").name == "cusvmpi"
        assert fur.get_backend("numba").name == "jit"
        assert fur.get_backend("multidevice").name == "sharded"

    def test_auto_resolves_to_highest_priority(self, numpy_rung):
        assert fur.get_backend("auto").name == "c"
        assert fur.get_simulator_class("auto") is QAOAFURXSimulatorC

    def test_capability_metadata(self):
        spec = fur.get_backend("gpumpi")
        assert spec.mixers == ("x",)
        assert spec.distributed
        assert spec.device == "gpu"
        assert not fur.get_backend("c").distributed

    def test_unknown_backend_lists_names_and_aliases_separately(self):
        with pytest.raises(ValueError, match=r"backends: .*; aliases: "):
            fur.get_backend("pyton")

    def test_unknown_backend_suggests_close_matches(self):
        with pytest.raises(ValueError, match="Did you mean 'python'"):
            fur.get_backend("pyton")

    def test_capability_filtering_names_alternatives(self):
        with pytest.raises(ValueError, match="backends implementing 'xyring'"):
            fur.get_simulator_class("gpumpi", "xyring")

    def test_unknown_mixer_is_value_error(self):
        with pytest.raises(ValueError, match="unknown mixer"):
            fur.get_backend("auto", mixer="nope")

    def test_available_backends_filters_by_mixer(self):
        xy = fur.available_backends(mixer="xyring")
        assert "gpumpi" not in xy and "cusvmpi" not in xy
        assert {"c", "python", "gpu"} <= set(xy)

    def test_describe_mentions_every_backend(self):
        text = registry.describe()
        for name in fur.available_backends():
            assert name in text

    def test_describe_mentions_capability_tiers(self):
        text = registry.describe()
        assert "expectation-only" in text
        assert "full" in text


class TestCapabilityTiers:
    def test_baseline_backends_resolve_by_name_and_alias(self):
        assert fur.get_backend("gates").name == "gates"
        assert fur.get_backend("statevector").name == "gates"
        assert fur.get_backend("tensornet").name == "tensornet"
        assert fur.get_backend("tn").name == "tensornet"

    def test_tier_metadata(self):
        assert fur.get_backend("tensornet").capabilities == "expectation-only"
        assert fur.get_backend("gates").capabilities == "full"
        assert fur.get_backend("c").capabilities == "full"

    def test_auto_never_picks_a_non_full_tier(self, numpy_rung):
        # tensornet is registered and importable but expectation-only, so a
        # capability-less auto request must not resolve to it.
        assert fur.get_backend("auto").capabilities == "full"
        assert fur.get_backend("auto", capability="expectation").name == "c"

    def test_available_backends_capability_filter(self):
        sv = fur.available_backends(capability="statevector")
        exp = fur.available_backends(capability="expectation")
        assert "tensornet" not in sv
        assert "tensornet" in exp
        assert {"c", "python", "gates"} <= set(sv)

    def test_explicit_name_with_unsupported_capability_raises(self):
        from repro.fur import UnsupportedCapabilityError

        with pytest.raises(UnsupportedCapabilityError, match="expectation-only"):
            fur.get_backend("tensornet", capability="statevector")
        # supported operation passes through
        assert fur.get_backend("tensornet", capability="expectation").name == "tensornet"

    def test_tensornet_constructs_and_serves_expectations(self):
        from repro.fur import UnsupportedCapabilityError

        sim = repro.simulator(3, terms=TERMS, backend="tensornet")
        assert sim.backend_name == "tensornet"
        assert sim.capability_tier == "expectation-only"
        result = sim.simulate_qaoa([0.1], [0.2])
        energy = sim.get_expectation(result)
        costs = sim.get_cost_diagonal()
        assert costs.min() - 1e-9 <= energy <= costs.max() + 1e-9
        with pytest.raises(UnsupportedCapabilityError, match="statevector"):
            sim.get_statevector(result)

    def test_gates_backend_constructs_through_facade(self):
        sim = repro.simulator(3, terms=TERMS, backend="gates", mixer="xyring")
        assert sim.backend_name == "gates"
        assert sim.mixer_name == "xyring"
        result = sim.simulate_qaoa([0.1], [0.2])
        probs = sim.get_probabilities(result)
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-12)

    def test_capability_helpers(self):
        from repro.fur import (
            UnsupportedCapabilityError,
            require_capability,
            resolve_capability_tier,
            tier_supports,
        )

        assert resolve_capability_tier("full") == "full"
        with pytest.raises(ValueError, match="unknown capability tier"):
            resolve_capability_tier("partial")
        assert tier_supports("expectation-only", "expectation")
        assert not tier_supports("expectation-only", "amplitude")
        with pytest.raises(ValueError, match="unknown operation"):
            tier_supports("full", "teleportation")
        # tier names, objects with a tier attribute, and objects without one
        require_capability("full", "statevector")
        with pytest.raises(UnsupportedCapabilityError, match="amplitude-only"):
            require_capability("amplitude-only", "expectation", backend="toy")

        class Tiered:
            capability_tier = "expectation-only"
            backend_name = "tiered"

        require_capability(Tiered(), "expectation")
        with pytest.raises(UnsupportedCapabilityError, match="'tiered'"):
            require_capability(Tiered(), "statevector")
        require_capability(object(), "amplitude")  # no attribute -> full


class TestAutoFallback:
    def test_auto_skips_backend_whose_import_fails(self, numpy_rung):
        def broken_loader():
            raise ImportError("optional dependency missing")

        registry.register(BackendSpec(name="brokenfast", loader=broken_loader,
                                      mixers=("x",), priority=10_000))
        try:
            # brokenfast outranks everything, but auto must fall back to c.
            assert fur.get_backend("auto").name == "c"
            assert fur.get_simulator_class("auto") is QAOAFURXSimulatorC
            # explicit selection still surfaces the import error
            with pytest.raises(ImportError, match="optional dependency"):
                fur.get_simulator_class("brokenfast")
        finally:
            registry.unregister("brokenfast")

    def test_name_and_alias_collisions_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(BackendSpec(name="c", loader=dict))
        with pytest.raises(ValueError, match="already registered"):
            registry.register(BackendSpec(name="fresh", aliases=("numpy",), loader=dict))
        with pytest.raises(ValueError, match="reserved"):
            registry.register(BackendSpec(name="auto", loader=dict))

    def test_overwrite_drops_stale_aliases(self):
        registry.register(BackendSpec(name="tmpbk", aliases=("tmpalias",),
                                      loader=dict, priority=-50))
        try:
            registry.register(BackendSpec(name="tmpbk", aliases=(), loader=dict,
                                          priority=-50), overwrite=True)
            with pytest.raises(ValueError, match="unknown simulator backend"):
                registry.spec("tmpalias")
        finally:
            registry.unregister("tmpbk")

    def test_legacy_views_track_registrations(self):
        registry.register(BackendSpec(name="tmpbk2", loader=dict, priority=-50))
        try:
            assert "tmpbk2" in fur.SIMULATORS
        finally:
            registry.unregister("tmpbk2")
        assert "tmpbk2" not in fur.SIMULATORS

    def test_register_backend_decorator_roundtrip(self, numpy_rung):
        @fur.register_backend("toy", aliases=("plaything",), mixers=("x",),
                              priority=-5, description="test-only")
        def _load_toy():
            return {"x": QAOAFURXSimulator}

        try:
            assert fur.get_backend("plaything").name == "toy"
            assert fur.get_simulator_class("toy") is QAOAFURXSimulator
            # negative priority: auto still prefers the real backends
            assert fur.get_backend("auto").name == "c"
        finally:
            registry.unregister("toy")


class TestDynamicPriority:
    """Satellite: jit outranks c in ``auto`` iff its compiled path is live."""

    def test_effective_priority_defaults_to_static(self):
        spec = BackendSpec(name="static", loader=dict, priority=17)
        assert spec.effective_priority() == 17

    def test_effective_priority_uses_callable(self):
        spec = BackendSpec(name="dyn", loader=dict, priority=17,
                           dynamic_priority=lambda: 170)
        assert spec.effective_priority() == 170

    def test_effective_priority_falls_back_on_probe_failure(self):
        def exploding() -> int:
            raise OSError("probe failed")

        spec = BackendSpec(name="dyn", loader=dict, priority=17,
                           dynamic_priority=exploding)
        assert spec.effective_priority() == 17

    def test_auto_orders_by_dynamic_priority(self, numpy_rung):
        # Static priority below everything, dynamic priority above: auto
        # must pick it, while names() keeps the static (probe-free) order.
        registry.register(BackendSpec(
            name="hotshot", loader=lambda: {"x": QAOAFURXSimulator},
            mixers=("x",), priority=-50, dynamic_priority=lambda: 10_000))
        try:
            assert fur.get_backend("auto").name == "hotshot"
            assert registry.names()[-1] == "hotshot"
        finally:
            registry.unregister("hotshot")

    def test_jit_outranks_c_when_compiled_path_live(self, monkeypatch):
        from repro.fur.jit import kernels

        monkeypatch.setenv("REPRO_JIT_PATH", "cc")
        kernels._reset_path_cache()
        try:
            if kernels.active_path() == "numpy":
                pytest.skip("no compiled jit path on this machine")
            assert fur.get_backend("auto").name == "jit"
        finally:
            kernels._reset_path_cache()

    def test_numpy_rung_restores_static_order(self, numpy_rung):
        from repro.fur.jit import kernels

        assert kernels.active_path() == "numpy"
        assert fur.get_backend("auto").name == "c"


class TestSimulatorFacade:
    @pytest.mark.parametrize("backend", ["c", "python"])
    @pytest.mark.parametrize("mixer", ["x", "xyring", "xycomplete"])
    def test_constructs_every_cpu_backend_mixer_combination(self, backend, mixer):
        sim = repro.simulator(4, terms=TERMS, backend=backend, mixer=mixer)
        assert type(sim) is CPU_CLASSES[(backend, mixer)]
        assert sim.backend_name == backend
        assert sim.mixer_name == mixer

    def test_accepts_class_and_instance(self):
        sim = repro.simulator(4, terms=TERMS, backend=QAOAFURXSimulator)
        assert type(sim) is QAOAFURXSimulator
        assert repro.simulator(4, backend=sim) is sim

    def test_rejects_non_simulator_backend(self):
        with pytest.raises(TypeError):
            repro.simulator(4, terms=TERMS, backend=42)

    def test_forwards_constructor_kwargs(self):
        sim = repro.simulator(4, terms=TERMS, backend="c", block_size=8)
        assert sim.workspace.block_size == 8

    def test_matches_resolved_class(self):
        cls = fur.get_simulator_class("c")
        assert type(repro.simulator(4, terms=TERMS, backend="c")) is cls

    def test_chooser_shims_are_gone(self):
        # the v1.0 `choose_simulator*` deprecation shims were removed in v1.3
        for shim in ["choose_simulator", "choose_simulator_xyring",
                     "choose_simulator_xycomplete"]:
            with pytest.raises(AttributeError):
                getattr(fur, shim)

    def test_listing1_flow(self):
        """The paper's Listing 1, modulo the package name and registry API."""
        simclass = fur.get_simulator_class("auto")
        n = 6
        terms = [(0.3, (i, j)) for i in range(n) for j in range(i + 1, n)]
        sim = simclass(n, terms=terms)
        costs = sim.get_cost_diagonal()
        assert costs.shape == (64,)
        result = sim.simulate_qaoa([0.1], [0.2])
        energy = sim.get_expectation(result)
        assert costs.min() - 1e-9 <= energy <= costs.max() + 1e-9


class TestLegacyViews:
    def test_legacy_simulators_view_matches_registry(self):
        assert set(fur.SIMULATORS) == set(fur.available_backends())
        assert fur.SIMULATORS["c"]()["x"] is QAOAFURXSimulatorC


class TestDiagonalCache:
    @pytest.fixture(autouse=True)
    def clean_cache(self):
        diagonal_cache.clear()
        yield
        diagonal_cache.clear()

    def test_hit_miss_accounting(self):
        repro.simulator(5, terms=TERMS, backend="c")
        assert diagonal_cache.stats.misses == 1
        assert diagonal_cache.stats.hits == 0
        repro.simulator(5, terms=TERMS, backend="python")
        assert diagonal_cache.stats.hits == 1
        # different problem -> miss
        repro.simulator(5, terms=[(1.0, (0, 2))], backend="c")
        assert diagonal_cache.stats.misses == 2

    def test_repeated_objective_precomputes_once(self, monkeypatch):
        import repro.fur.cache as cache_mod
        from repro.qaoa import get_qaoa_objective

        calls = {"n": 0}
        real = cache_mod.precompute_cost_diagonal

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(cache_mod, "precompute_cost_diagonal", counting)
        obj1 = get_qaoa_objective(5, 2, terms=TERMS, backend="c")
        obj2 = get_qaoa_objective(5, 2, terms=TERMS, backend="c")
        assert calls["n"] == 1
        # the cached diagonal is shared, not recomputed or copied
        assert obj1.simulator.get_cost_diagonal() is obj2.simulator.get_cost_diagonal()

    def test_cached_diagonal_is_read_only_and_correct(self, rng):
        terms = random_terms(rng, 5, 8)
        sim = repro.simulator(5, terms=terms, backend="python")
        diag = sim.get_cost_diagonal()
        assert not diag.flags.writeable
        from repro.fur import precompute_cost_diagonal
        np.testing.assert_allclose(diag, precompute_cost_diagonal(terms, 5))

    def test_costs_constructor_bypasses_cache(self):
        costs = np.arange(16, dtype=np.float64)
        repro.simulator(4, costs=costs, backend="c")
        assert diagonal_cache.stats.misses == 0
        assert len(diagonal_cache) == 0

    def test_eviction_respects_maxsize(self):
        small = DiagonalCache(maxsize=2)
        t = [[(1.0, (0, i))] for i in range(1, 4)]
        from repro.problems.terms import validate_terms
        for terms in t:
            small.get(validate_terms(terms, 4), 4)
        assert len(small) == 2
        assert small.stats.evictions == 1

    def test_eviction_respects_byte_budget(self):
        from repro.problems.terms import validate_terms

        entry_bytes = 8 * (1 << 6)  # one float64 diagonal at n=6
        small = DiagonalCache(maxsize=100, max_bytes=2 * entry_bytes)
        for i in range(1, 4):
            small.get(validate_terms([(1.0, (0, i))], 6), 6)
        assert len(small) == 2
        assert small.currsize_bytes() <= small.max_bytes
        assert small.stats.evictions == 1

    def test_oversized_entry_not_cached_and_writable(self):
        from repro.problems.terms import validate_terms

        tiny = DiagonalCache(maxsize=100, max_bytes=8)  # smaller than any diagonal
        diag = tiny.get(validate_terms([(1.0, (0, 1))], 4), 4)
        assert len(tiny) == 0
        assert diag.flags.writeable  # private array, safe to mutate

    def test_disable_forces_recompute(self):
        diagonal_cache.disable()
        try:
            repro.simulator(4, terms=TERMS, backend="c")
            repro.simulator(4, terms=TERMS, backend="c")
            assert diagonal_cache.stats.hits == 0
            assert diagonal_cache.stats.misses == 2
        finally:
            diagonal_cache.enable()

    def test_fingerprint_stability(self):
        fp1 = problem_fingerprint(TERMS, 5)
        fp2 = problem_fingerprint(list(TERMS), 5)
        assert fp1 == fp2
        assert fp1 != problem_fingerprint(TERMS, 6)
        assert fp1 != problem_fingerprint([(0.5, (0, 1))], 5)


class TestBatchedEvaluation:
    @pytest.mark.parametrize("backend", ["c", "python"])
    def test_batch_matches_sequential(self, backend, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = repro.simulator(5, terms=TERMS, backend=backend)
        gb = np.array([gammas, [0.5, -0.1], [0.0, 0.9]])
        bb = np.array([betas, [0.2, 0.4], [1.1, -0.3]])
        batched = sim.get_expectation_batch(gb, bb)
        sequential = [sim.get_expectation(sim.simulate_qaoa(g, b))
                      for g, b in zip(gb, bb)]
        np.testing.assert_allclose(batched, sequential, rtol=1e-12)

    def test_simulate_qaoa_batch_returns_per_schedule_results(self):
        sim = repro.simulator(4, terms=TERMS, backend="python")
        results = sim.simulate_qaoa_batch([[0.1], [0.2]], [[0.3], [0.4]])
        assert len(results) == 2
        assert not np.allclose(results[0], results[1])

    def test_batch_shape_validation(self):
        sim = repro.simulator(4, terms=TERMS, backend="c")
        with pytest.raises(ValueError, match="same shape"):
            sim.simulate_qaoa_batch([[0.1, 0.2]], [[0.3]])
        with pytest.raises(ValueError, match="finite"):
            sim.get_expectation_batch([[np.nan]], [[0.1]])

    def test_single_schedule_promoted_to_batch_of_one(self):
        sim = repro.simulator(4, terms=TERMS, backend="c")
        vals = sim.get_expectation_batch([0.1, 0.2], [0.3, 0.4])
        assert vals.shape == (1,)
        ref = sim.get_expectation(sim.simulate_qaoa([0.1, 0.2], [0.3, 0.4]))
        np.testing.assert_allclose(vals[0], ref)

    def test_objective_evaluate_batch_bookkeeping(self):
        from repro.qaoa import get_qaoa_objective

        obj = get_qaoa_objective(5, 2, terms=TERMS, backend="c")
        thetas = np.array([[0.1, 0.2, 0.3, 0.4],
                           [0.5, 0.6, 0.7, 0.8],
                           [0.0, 0.0, 0.0, 0.0]])
        values = obj.evaluate_batch(thetas)
        assert values.shape == (3,)
        assert obj.n_evaluations == 3
        assert obj.best_value == pytest.approx(values.min())
        singles = [obj(theta) for theta in thetas]
        np.testing.assert_allclose(values, singles, rtol=1e-12)

    def test_objective_evaluate_batch_overlap_mode(self):
        from repro.qaoa import get_qaoa_objective

        obj = get_qaoa_objective(4, 1, terms=TERMS, backend="python",
                                 objective="overlap")
        values = obj.evaluate_batch(np.array([[0.1, 0.2], [0.3, 0.4]]))
        assert np.all(values <= 0)  # negated overlap
        assert obj.n_evaluations == 2


class TestEntryPointDiscovery:
    """Satellite: third-party backends via the repro.fur.backends entry-point
    group (scanned once at repro.fur import time)."""

    @staticmethod
    def _stub_entry_point(name, target):
        class StubEntryPoint:
            def load(self):
                return target

        ep = StubEntryPoint()
        ep.name = name
        return ep

    def _patched_group(self, monkeypatch, entry_points):
        import importlib

        # ``repro.fur.registry`` the *attribute* is the registry instance;
        # fetch the module itself to patch the entry-point iterator.
        registry_mod = importlib.import_module("repro.fur.registry")
        monkeypatch.setattr(registry_mod, "_iter_entry_points",
                            lambda group: list(entry_points))

    def test_spec_entry_point_registers(self, monkeypatch):
        from repro.fur.registry import (
            BackendRegistry,
            BackendSpec,
            load_entry_point_backends,
        )

        spec = BackendSpec(name="plugin", aliases=("thirdparty",),
                           loader=lambda: {"x": QAOAFURXSimulator},
                           mixers=("x",), priority=7)
        self._patched_group(monkeypatch, [self._stub_entry_point("plugin", spec)])
        target = BackendRegistry()
        assert load_entry_point_backends(target) == ["plugin"]
        assert target.simulator_class("plugin", "x") is QAOAFURXSimulator
        assert target.spec("thirdparty").name == "plugin"

    def test_callable_entry_point_registers(self, monkeypatch):
        from repro.fur.registry import (
            BackendRegistry,
            BackendSpec,
            load_entry_point_backends,
        )

        def make_spec():
            return BackendSpec(name="factoryplugin",
                               loader=lambda: {"x": QAOAFURXSimulatorC})

        self._patched_group(monkeypatch,
                            [self._stub_entry_point("factoryplugin", make_spec)])
        target = BackendRegistry()
        assert load_entry_point_backends(target) == ["factoryplugin"]
        assert target.simulator_class("factoryplugin", "x") is QAOAFURXSimulatorC

    def test_broken_entry_point_is_skipped_with_warning(self, monkeypatch):
        from repro.fur.registry import BackendRegistry, load_entry_point_backends

        class ExplodingEntryPoint:
            name = "broken"

            def load(self):
                raise ImportError("plugin dependency missing")

        self._patched_group(monkeypatch, [ExplodingEntryPoint()])
        target = BackendRegistry()
        with pytest.warns(RuntimeWarning, match="broken"):
            assert load_entry_point_backends(target) == []
        assert "broken" not in target

    def test_non_spec_entry_point_is_skipped_with_warning(self, monkeypatch):
        from repro.fur.registry import BackendRegistry, load_entry_point_backends

        self._patched_group(monkeypatch,
                            [self._stub_entry_point("bogus", object())])
        target = BackendRegistry()
        with pytest.warns(RuntimeWarning, match="bogus"):
            assert load_entry_point_backends(target) == []

    def test_name_collision_with_builtin_is_skipped(self, monkeypatch):
        from repro.fur.registry import (
            BackendSpec,
            load_entry_point_backends,
            registry as process_registry,
        )

        hijack = BackendSpec(name="python", loader=lambda: {"x": QAOAFURXSimulatorC})
        self._patched_group(monkeypatch, [self._stub_entry_point("python", hijack)])
        before = process_registry.spec("python").loader
        with pytest.warns(RuntimeWarning, match="already registered"):
            assert load_entry_point_backends() == []
        assert process_registry.spec("python").loader is before
