"""Tests for the shared layered execution-plan engine (repro.fur.engine).

Covers

* plan-cache hit/invalidate semantics: repeated evaluation at the same
  ``(p, n_trotters, budget)`` reuses the compiled plan, any change (including
  the simulator precision) recompiles,
* fused-vs-looped parity *via the shared engine* across backends x mixers x
  precisions,
* the new distributed fused path (``gpumpi``/``cusvmpi`` kernel providers
  over per-rank slice blocks, and the 2-rank SPMD batched program),
* engine statistics and execution-mode validation,
* the read-only guarantees of ``get_cost_diagonal()`` and the plan/phase
  caches (the PR 1 shared-diagonal mutation hazard).
"""

import numpy as np
import pytest

import repro
from repro.fur import compress_diagonal
from repro.fur.engine import ExpectationOp, MixerOp, PhaseOp
from repro.fur.mpi.spmd import run_distributed_qaoa_batch
from repro.problems import labs

BACKENDS = ["python", "c", "gpu"]
MIXERS = ["x", "xyring", "xycomplete"]
PRECISIONS = ["double", "single"]
N = 6


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


class TestPlanCompilation:
    def test_ops_sequence_is_declarative(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        plan = sim.engine.plan(3, reduce=True, optimize="none")
        assert plan.ops == (
            PhaseOp(0), MixerOp(0, 1),
            PhaseOp(1), MixerOp(1, 1),
            PhaseOp(2), MixerOp(2, 1),
            ExpectationOp(),
        )
        assert plan.p == 3 and plan.reduce
        assert plan.mixer == "x" and plan.precision == "double"
        assert plan.optimize == "none" and plan.rewrites == ()
        assert plan.compile_time_s >= 0.0

    def test_simulate_plan_has_no_reduction(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        plan = sim.engine.plan(2, reduce=False)
        assert not any(isinstance(op, ExpectationOp) for op in plan.ops)

    def test_plan_carries_phase_table(self):
        # LABS diagonals are highly repetitive -> the table must resolve.
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        plan = sim.engine.plan(2)
        assert plan.phase_tables is not None
        assert plan.phase_tables is sim._diagonal_phase_table()

    def test_invalid_plan_arguments(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        with pytest.raises(ValueError, match="p must be positive"):
            sim.engine.plan(0)
        with pytest.raises(ValueError, match="n_trotters"):
            sim.engine.plan(2, n_trotters=0)


class TestPlanCacheSemantics:
    def test_same_shape_hits_cache(self, rng):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="c")
        gb = rng.uniform(0, 1, (4, 3))
        bb = rng.uniform(0, 1, (4, 3))
        sim.get_expectation_batch(gb, bb)
        compiles = sim.engine.stats.plan_compiles
        sim.get_expectation_batch(gb, bb)
        sim.get_expectation_batch(gb, bb)
        assert sim.engine.stats.plan_compiles == compiles
        assert sim.engine.stats.plan_cache_hits >= 2
        # identical key -> the very same plan object
        assert sim.engine.plan(3) is sim.engine.plan(3)

    def test_p_change_recompiles(self, rng):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        sim.get_expectation_batch(rng.uniform(0, 1, (2, 2)), rng.uniform(0, 1, (2, 2)))
        before = sim.engine.stats.plan_compiles
        sim.get_expectation_batch(rng.uniform(0, 1, (2, 4)), rng.uniform(0, 1, (2, 4)))
        assert sim.engine.stats.plan_compiles == before + 1

    def test_n_trotters_change_recompiles(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python",
                              mixer="xyring")
        p1 = sim.engine.plan(2, n_trotters=1)
        p2 = sim.engine.plan(2, n_trotters=3)
        assert p1 is not p2
        assert p2.ops[1] == MixerOp(0, 3)

    def test_memory_budget_change_recompiles(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        assert sim.engine.plan(2) is not sim.engine.plan(2, memory_budget=2.0 ** 20)

    def test_precision_is_part_of_the_key(self):
        terms = labs.get_terms(N)
        double = repro.simulator(N, terms=terms, backend="c")
        single = repro.simulator(N, terms=terms, backend="c", precision="single")
        kd = double.engine.plan(2).key
        ks = single.engine.plan(2).key
        assert kd != ks
        # only the precision component differs (the key ends in
        # (..., precision, optimize))
        assert kd[:-2] == ks[:-2] and kd[-1] == ks[-1]

    def test_clear_plans_forces_recompile(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        first = sim.engine.plan(2)
        assert sim.engine.plan_cache_size() == 1
        sim.engine.clear_plans()
        assert sim.engine.plan_cache_size() == 0
        assert sim.engine.plan(2) is not first


class TestEngineParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mixer", MIXERS)
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_fused_matches_looped(self, backend, mixer, precision, rng):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend=backend,
                              mixer=mixer, precision=precision)
        gb = rng.uniform(-1, 1, (4, 2))
        bb = rng.uniform(-1, 1, (4, 2))
        fused = sim.get_expectation_batch(gb, bb, mode="fused")
        looped = sim.get_expectation_batch(gb, bb, mode="looped")
        tol = 1e-12 if precision == "double" else 2e-5
        np.testing.assert_allclose(fused, looped, rtol=tol, atol=tol)
        assert fused.dtype == np.float64  # float64 accumulation policy

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_compressed_diagonal_construction(self, backend, rng):
        terms = labs.get_terms(N)
        reference = repro.simulator(N, terms=terms, backend="python")
        costs = reference.get_cost_diagonal().copy()
        sim = repro.simulator(N, costs=compress_diagonal(costs), backend=backend)
        gb = rng.uniform(0, 1, (3, 2))
        bb = rng.uniform(0, 1, (3, 2))
        np.testing.assert_allclose(sim.get_expectation_batch(gb, bb),
                                   reference.get_expectation_batch(gb, bb),
                                   atol=1e-12)


class TestDistributedFused:
    @pytest.mark.parametrize("backend", ["gpumpi", "cusvmpi"])
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_fused_matches_looped_and_single_node(self, backend, n_ranks, rng):
        terms = labs.get_terms(8)
        sim = repro.simulator(8, terms=terms, backend=backend, n_ranks=n_ranks)
        reference = repro.simulator(8, terms=terms, backend="python")
        gb = rng.uniform(0, 1, (5, 3))
        bb = rng.uniform(0, 1, (5, 3))
        fused = sim.get_expectation_batch(gb, bb)
        np.testing.assert_allclose(fused,
                                   sim.get_expectation_batch(gb, bb, mode="looped"),
                                   atol=1e-12)
        np.testing.assert_allclose(fused, reference.get_expectation_batch(gb, bb),
                                   atol=1e-10)

    @pytest.mark.parametrize("backend", ["gpumpi", "cusvmpi"])
    def test_fused_batch_results_match_per_schedule(self, backend, rng):
        terms = labs.get_terms(6)
        sim = repro.simulator(6, terms=terms, backend=backend, n_ranks=2)
        gb = rng.uniform(0, 1, (3, 2))
        bb = rng.uniform(0, 1, (3, 2))
        results = sim.simulate_qaoa_batch(gb, bb)
        assert len(results) == 3
        for res, (g, b) in zip(results, zip(gb, bb)):
            assert res.n_ranks == 2
            np.testing.assert_allclose(res.gather(),
                                       sim.simulate_qaoa(g, b).gather(),
                                       atol=1e-12)

    def test_fused_distributed_single_precision(self, rng):
        terms = labs.get_terms(8)
        sim = repro.simulator(8, terms=terms, backend="gpumpi", n_ranks=2,
                              precision="single")
        reference = repro.simulator(8, terms=terms, backend="python")
        gb = rng.uniform(0, 1, (3, 2))
        bb = rng.uniform(0, 1, (3, 2))
        fused = sim.get_expectation_batch(gb, bb)
        ref = reference.get_expectation_batch(gb, bb)
        scale = np.maximum(np.abs(ref), 1.0)
        assert np.max(np.abs(fused - ref) / scale) <= 1e-5

    def test_cusvmpi_batched_exchange_message_count_is_rows_independent(self, rng):
        # The batched index-bit swap exchanges whole (rows, half) blocks, so
        # the message count matches a single looped layer while the looped
        # path pays one exchange per schedule.
        terms = labs.get_terms(6)
        gb = rng.uniform(0, 1, (4, 1))
        bb = rng.uniform(0, 1, (4, 1))
        fused_sim = repro.simulator(6, terms=terms, backend="cusvmpi", n_ranks=2)
        fused_sim.get_expectation_batch(gb, bb, mode="fused")
        fused_msgs = sum(t.num_messages for t in fused_sim.traffic_log)
        looped_sim = repro.simulator(6, terms=terms, backend="cusvmpi", n_ranks=2)
        looped_sim.get_expectation_batch(gb, bb, mode="looped")
        looped_msgs = sum(t.num_messages for t in looped_sim.traffic_log)
        assert fused_msgs < looped_msgs
        assert looped_msgs == 4 * fused_msgs  # one exchange set per schedule

    def test_memory_budget_splits_distributed_batches(self, rng):
        terms = labs.get_terms(6)
        sim = repro.simulator(6, terms=terms, backend="gpumpi", n_ranks=2)
        gb = rng.uniform(0, 1, (5, 2))
        bb = rng.uniform(0, 1, (5, 2))
        whole = sim.get_expectation_batch(gb, bb)
        blocks_before = sim.engine.stats.blocks_executed
        split = sim.get_expectation_batch(gb, bb, memory_budget=16 * (1 << 6))
        np.testing.assert_allclose(split, whole, atol=1e-12)
        assert sim.engine.stats.blocks_executed - blocks_before == 5

    def test_spmd_batched_program_two_ranks(self, rng):
        terms = labs.get_terms(6)
        gb = rng.uniform(0, 1, (3, 2))
        bb = rng.uniform(0, 1, (3, 2))
        out = run_distributed_qaoa_batch(6, terms, gb, bb, n_ranks=2)
        reference = repro.simulator(6, terms=terms, backend="python")
        np.testing.assert_allclose(out["expectations"],
                                   reference.get_expectation_batch(gb, bb),
                                   atol=1e-10)
        states = [np.asarray(reference.simulate_qaoa(g, b))
                  for g, b in zip(gb, bb)]
        np.testing.assert_allclose(out["statevectors"], np.stack(states),
                                   atol=1e-12)
        # coalesced exchange (the default): 2 alltoalls per layer, B-independent
        assert out["ranks"][0]["n_alltoall"] == 2 * 2

    def test_spmd_per_schedule_exchange_matches_coalesced(self, rng):
        terms = labs.get_terms(6)
        gb = rng.uniform(0, 1, (3, 2))
        bb = rng.uniform(0, 1, (3, 2))
        coalesced = run_distributed_qaoa_batch(6, terms, gb, bb, n_ranks=2)
        per_row = run_distributed_qaoa_batch(6, terms, gb, bb, n_ranks=2,
                                             coalesce=False)
        # the historical per-schedule path: 2 alltoalls per layer per schedule
        assert per_row["ranks"][0]["n_alltoall"] == 2 * 3 * 2
        np.testing.assert_array_equal(coalesced["statevectors"],
                                      per_row["statevectors"])
        np.testing.assert_array_equal(coalesced["expectations"],
                                      per_row["expectations"])


class TestEngineStatsAndModes:
    def test_blocks_and_rows_counted(self, rng):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="python")
        gb = rng.uniform(0, 1, (7, 2))
        bb = rng.uniform(0, 1, (7, 2))
        # a budget of one state vector (x2 blocks for the X-mixer scratch)
        sim.get_expectation_batch(gb, bb, memory_budget=2 * 16 * (1 << 5))
        assert sim.engine.stats.blocks_executed == 7
        assert sim.engine.stats.rows_executed == 7

    def test_looped_evaluations_counted(self, rng):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="python")
        sim.get_expectation_batch(rng.uniform(0, 1, (3, 2)),
                                  rng.uniform(0, 1, (3, 2)), mode="looped")
        assert sim.engine.stats.looped_evaluations == 3
        assert sim.engine.stats.blocks_executed == 0

    def test_unknown_mode_rejected(self, rng):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="python")
        with pytest.raises(ValueError, match="unknown execution mode"):
            sim.get_expectation_batch([[0.1]], [[0.2]], mode="warp")

    def test_fused_mode_requires_a_kernel_provider(self):
        from repro.gates.qaoa import QAOAGateBasedSimulator

        # every registered family is a kernel provider now, so degrade one
        class NoEngine(QAOAGateBasedSimulator):
            supports_fused_engine = False

        sim = NoEngine(4, terms=[(1.0, (0, 1))])
        with pytest.raises(ValueError, match="kernel-provider"):
            sim.get_expectation_batch([[0.1]], [[0.2]], mode="fused")
        # auto falls back to the looped path instead
        values = sim.get_expectation_batch([[0.1]], [[0.2]])
        assert values.shape == (1,)
        # the real gates simulator runs the fused engine path
        fused = QAOAGateBasedSimulator(4, terms=[(1.0, (0, 1))])
        assert fused.supports_fused_engine
        np.testing.assert_allclose(
            fused.get_expectation_batch([[0.1]], [[0.2]], mode="fused"),
            values, rtol=1e-12)

    def test_fused_rejects_unknown_kwargs(self, rng):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="python")
        with pytest.raises(TypeError, match="unexpected keyword"):
            sim.get_expectation_batch([[0.1]], [[0.2]], bogus=1)


class TestReadOnlyDiagonals:
    """Regression: the PR 1 shared-diagonal mutation hazard."""

    @pytest.mark.parametrize("construction", ["terms", "costs", "compressed"])
    def test_get_cost_diagonal_is_read_only(self, construction):
        terms = labs.get_terms(N)
        if construction == "terms":
            sim = repro.simulator(N, terms=terms, backend="python")
        else:
            costs = repro.simulator(N, terms=terms,
                                    backend="python").get_cost_diagonal().copy()
            if construction == "compressed":
                costs = compress_diagonal(costs)
            sim = repro.simulator(N, costs=costs, backend="python")
        diag = sim.get_cost_diagonal()
        with pytest.raises(ValueError, match="read-only"):
            diag[0] = 123.0

    def test_mutation_cannot_corrupt_the_shared_cache(self, rng):
        terms = labs.get_terms(7)
        first = repro.simulator(7, terms=terms, backend="python")
        value = first.get_expectation_batch([[0.4]], [[0.3]])[0]
        with pytest.raises(ValueError):
            first.get_cost_diagonal()[:] = 0.0
        # A second simulator of the same problem shares the cached diagonal
        # and must still see unmutated values.
        second = repro.simulator(7, terms=terms, backend="c")
        assert second.get_expectation_batch([[0.4]], [[0.3]])[0] == pytest.approx(value)

    def test_plan_phase_tables_are_read_only(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        plan = sim.engine.plan(2)
        table = plan.phase_tables
        assert table is not None
        with pytest.raises(ValueError):
            table.inverse[0] = 1
        with pytest.raises(ValueError):
            table.unique_values[0] = -1.0

    def test_copy_remains_writable(self):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend="python")
        copy = sim.get_cost_diagonal().copy()
        copy[0] = 5.0  # the documented escape hatch
        assert copy[0] == 5.0
