"""Tests for the fused batched evaluation engine and its hot-path bugfixes.

Covers

* fused == looped equivalence across backends x mixers x problem
  constructions (``terms`` / ``costs`` array / ``CompressedDiagonal``),
* sub-batch splitting under a memory budget,
* the batched kernels against their per-row references,
* the diagonal phase table,
* regressions: ``CompressedDiagonal.decompress`` with ``np.dtype`` instances,
  one-decompression-per-simulator on deep circuits, single default-diagonal
  resolution in the looped batch default, and contiguous in-place
  probabilities on the ``python`` backend.
"""

import numpy as np
import pytest

import repro
from repro.fur import CompressedDiagonal, batch_block_rows, build_phase_table, compress_diagonal
from repro.fur.base import QAOAFastSimulatorBase
from repro.fur.cvect.kernels import (
    KernelWorkspace,
    apply_phase_batch_inplace,
    apply_phase_inplace,
    apply_su2_batch_blocked,
    apply_su2_blocked,
    expectation_batch_inplace,
    furxy_batch_blocked,
    furxy_blocked,
)
from repro.fur.python.furx import apply_su2, apply_su2_batch, furx_all, furx_all_batch
from repro.fur.python.furxy import (
    apply_xy_su2,
    apply_xy_su2_batch,
    furxy_complete,
    furxy_complete_batch,
    furxy_ring,
    furxy_ring_batch,
)
from repro.problems import labs
from repro.testing import random_terms

BACKENDS = ["python", "c", "gpu"]
MIXERS = ["x", "xyring", "xycomplete"]
N = 6


def _make_simulator(backend, mixer, construction, n=N):
    """Simulator over the LABS problem via the requested construction path."""
    terms = labs.get_terms(n)
    if construction == "terms":
        return repro.simulator(n, terms=terms, backend=backend, mixer=mixer)
    reference = repro.simulator(n, terms=terms, backend="python")
    costs = reference.get_cost_diagonal().copy()
    if construction == "costs":
        return repro.simulator(n, costs=costs, backend=backend, mixer=mixer)
    assert construction == "compressed"
    return repro.simulator(n, costs=compress_diagonal(costs),
                           backend=backend, mixer=mixer)


def _random_block(rng, rows, n_states):
    block = rng.standard_normal((rows, n_states)) + 1j * rng.standard_normal((rows, n_states))
    return np.ascontiguousarray(block / np.linalg.norm(block, axis=1, keepdims=True))


class TestFusedBatchEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mixer", MIXERS)
    @pytest.mark.parametrize("construction", ["terms", "costs", "compressed"])
    def test_fused_matches_looped(self, backend, mixer, construction):
        sim = _make_simulator(backend, mixer, construction)
        rng = np.random.default_rng(hash((backend, mixer, construction)) % (2 ** 32))
        batch, p = 5, 3
        gb = rng.uniform(-1.0, 1.0, (batch, p))
        bb = rng.uniform(-1.0, 1.0, (batch, p))

        fused_states = [np.asarray(sim.get_statevector(r))
                        for r in sim.simulate_qaoa_batch(gb, bb)]
        for state, (g, b) in zip(fused_states, zip(gb, bb)):
            looped = np.asarray(sim.get_statevector(sim.simulate_qaoa(g, b)))
            np.testing.assert_allclose(state, looped, atol=1e-12)

        fused_values = sim.get_expectation_batch(gb, bb)
        looped_values = [sim.get_expectation(sim.simulate_qaoa(g, b))
                         for g, b in zip(gb, bb)]
        np.testing.assert_allclose(fused_values, looped_values, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_respects_sv0_and_trotters(self, backend):
        from repro.fur import dicke_state

        sim = repro.simulator(N, terms=labs.get_terms(N), backend=backend,
                              mixer="xyring")
        rng = np.random.default_rng(7)
        gb = rng.uniform(0, 1, (3, 2))
        bb = rng.uniform(0, 1, (3, 2))
        sv0 = dicke_state(N, 3)
        fused = [np.asarray(sim.get_statevector(r))
                 for r in sim.simulate_qaoa_batch(gb, bb, sv0=sv0, n_trotters=3)]
        for state, (g, b) in zip(fused, zip(gb, bb)):
            looped = np.asarray(sim.get_statevector(
                sim.simulate_qaoa(g, b, sv0=sv0, n_trotters=3)))
            np.testing.assert_allclose(state, looped, atol=1e-12)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_explicit_costs(self, backend):
        sim = repro.simulator(N, terms=labs.get_terms(N), backend=backend)
        rng = np.random.default_rng(11)
        other = rng.uniform(-2, 2, 1 << N)
        gb = rng.uniform(0, 1, (4, 2))
        bb = rng.uniform(0, 1, (4, 2))
        fused = sim.get_expectation_batch(gb, bb, costs=other)
        looped = [sim.get_expectation(sim.simulate_qaoa(g, b), costs=other)
                  for g, b in zip(gb, bb)]
        np.testing.assert_allclose(fused, looped, atol=1e-12)


class TestSubBatchSplitting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tiny_budget_matches_unsplit(self, backend):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend=backend)
        rng = np.random.default_rng(3)
        gb = rng.uniform(0, 1, (7, 2))
        bb = rng.uniform(0, 1, (7, 2))
        # a budget of one state vector forces one-row sub-batches
        split = sim.get_expectation_batch(gb, bb, memory_budget=16 * (1 << 5))
        unsplit = sim.get_expectation_batch(gb, bb)
        np.testing.assert_allclose(split, unsplit, atol=1e-12)
        results = sim.simulate_qaoa_batch(gb, bb, memory_budget=16 * (1 << 5))
        assert len(results) == 7
        for res, (g, b) in zip(results, zip(gb, bb)):
            np.testing.assert_allclose(np.asarray(sim.get_statevector(res)),
                                       np.asarray(sim.get_statevector(sim.simulate_qaoa(g, b))),
                                       atol=1e-12)

    def test_batch_block_rows(self):
        # default budget comfortably holds 32 rows of a 2^16 state
        assert batch_block_rows(32, 1 << 16) == 32
        # a one-byte budget still yields one row per sub-batch
        assert batch_block_rows(8, 1 << 10, memory_budget=1) == 1
        # never more rows than the batch has
        assert batch_block_rows(3, 4, memory_budget=1 << 30) == 3
        # exact accounting: blocks * 16 bytes per amplitude
        assert batch_block_rows(100, 1 << 10, memory_budget=16 * (1 << 10) * 2 * 5,
                                blocks=2) == 5
        with pytest.raises(ValueError, match="memory_budget"):
            batch_block_rows(4, 16, memory_budget=0)
        with pytest.raises(ValueError, match="batch_size"):
            batch_block_rows(0, 16)

    def test_gpu_expectation_batch_frees_device_blocks(self):
        sim = repro.simulator(8, terms=labs.get_terms(8), backend="gpu")
        rng = np.random.default_rng(5)
        before = sim.device.stats.allocated_bytes
        sim.get_expectation_batch(rng.uniform(0, 1, (6, 2)), rng.uniform(0, 1, (6, 2)))
        assert sim.device.stats.allocated_bytes == before

    def test_gpu_simulate_batch_respects_device_capacity_across_sub_batches(self):
        from repro.fur.simgpu.device import DeviceSpec

        # Capacity for the diagonal plus exactly 10 state vectors: per-row
        # results retained from earlier sub-batches must shrink later
        # sub-batches instead of crashing the allocator mid-run.
        n = 6
        sv_bytes = 16 * (1 << n)
        spec = DeviceSpec(name="tiny",
                          memory_capacity=8 * (1 << n) + 10 * sv_bytes,
                          memory_bandwidth=1e12, pcie_bandwidth=1e10,
                          kernel_launch_overhead=1e-6)
        sim = repro.simulator(n, terms=labs.get_terms(n), backend="gpu",
                              device_spec=spec)
        rng = np.random.default_rng(9)
        gb = rng.uniform(0, 1, (8, 2))
        bb = rng.uniform(0, 1, (8, 2))
        results = sim.simulate_qaoa_batch(gb, bb)
        assert len(results) == 8
        # reference states from a host backend — the tiny device has no room
        # for extra single-schedule runs next to the 8 retained results
        reference = repro.simulator(n, terms=labs.get_terms(n), backend="c")
        for res, (g, b) in zip(results, zip(gb, bb)):
            np.testing.assert_allclose(
                np.asarray(sim.get_statevector(res)),
                reference.simulate_qaoa(g, b),
                atol=1e-12)

    def test_gpu_simulate_batch_returns_device_rows(self):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="gpu")
        rng = np.random.default_rng(6)
        before = sim.device.stats.allocated_bytes
        results = sim.simulate_qaoa_batch(rng.uniform(0, 1, (4, 2)),
                                          rng.uniform(0, 1, (4, 2)))
        assert len(results) == 4
        # the evolved block is freed; only the per-row results remain
        assert sim.device.stats.allocated_bytes == before + 4 * 16 * (1 << 5)


class TestBatchedKernels:
    def test_apply_su2_batch_matches_per_row(self):
        rng = np.random.default_rng(0)
        block = _random_block(rng, 4, 1 << 5)
        betas = rng.uniform(-1, 1, 4)
        a = np.cos(betas).astype(complex)
        b = (-1j * np.sin(betas)).astype(complex)
        expected = block.copy()
        for r in range(4):
            apply_su2(expected[r], complex(a[r]), complex(b[r]), qubit=2)
        apply_su2_batch(block, a, b, qubit=2)
        np.testing.assert_allclose(block, expected, atol=1e-14)
        # scalar coefficients broadcast to every row
        block2 = expected.copy()
        apply_su2_batch(block2, complex(a[0]), complex(b[0]), qubit=0)
        for r in range(4):
            apply_su2(expected[r], complex(a[0]), complex(b[0]), qubit=0)
        np.testing.assert_allclose(block2, expected, atol=1e-14)

    def test_furx_all_batch_matches_per_row(self):
        rng = np.random.default_rng(1)
        for n in (1, 3, 5, 7):  # exercises partial gemm groups and stride-1 path
            block = _random_block(rng, 3, 1 << n)
            betas = rng.uniform(-1, 1, 3)
            expected = np.stack([furx_all(block[r].copy(), betas[r], n)
                                 for r in range(3)])
            furx_all_batch(block, betas, n)
            np.testing.assert_allclose(block, expected, atol=1e-13)

    def test_xy_batch_kernels_match_per_row(self):
        rng = np.random.default_rng(2)
        n = 5
        block = _random_block(rng, 4, 1 << n)
        betas = rng.uniform(-1, 1, 4)
        a = np.cos(betas).astype(complex)
        b = (-1j * np.sin(betas)).astype(complex)
        expected = block.copy()
        for r in range(4):
            apply_xy_su2(expected[r], complex(a[r]), complex(b[r]), 3, 1)
        apply_xy_su2_batch(block, a, b, 3, 1)
        np.testing.assert_allclose(block, expected, atol=1e-14)
        for batch_fn, row_fn in ((furxy_ring_batch, furxy_ring),
                                 (furxy_complete_batch, furxy_complete)):
            blk = _random_block(rng, 4, 1 << n)
            exp = np.stack([row_fn(blk[r].copy(), betas[r], n) for r in range(4)])
            batch_fn(blk, betas, n)
            np.testing.assert_allclose(blk, exp, atol=1e-13)

    def test_blocked_batch_kernels_match_per_row(self):
        rng = np.random.default_rng(3)
        n = 6
        n_states = 1 << n
        # a tiny block size forces chunking in every kernel
        ws = KernelWorkspace(n_states, block_size=16)
        block = _random_block(rng, 3, n_states)
        betas = rng.uniform(-1, 1, 3)
        a = np.cos(betas).astype(complex)
        b = (-1j * np.sin(betas)).astype(complex)

        expected = block.copy()
        for r in range(3):
            apply_su2_blocked(expected[r], complex(a[r]), complex(b[r]), 4, ws)
        apply_su2_batch_blocked(block, a, b, 4, ws)
        np.testing.assert_allclose(block, expected, atol=1e-14)

        expected = block.copy()
        for r in range(3):
            furxy_blocked(expected[r], float(betas[r]), 0, 5, ws)
        furxy_batch_blocked(block, betas, 0, 5, ws)
        np.testing.assert_allclose(block, expected, atol=1e-14)

        costs = rng.uniform(-3, 3, n_states)
        gammas = rng.uniform(-1, 1, 3)
        expected = block.copy()
        for r in range(3):
            apply_phase_inplace(expected[r], costs, float(gammas[r]), ws)
        apply_phase_batch_inplace(block, costs, gammas, ws)
        np.testing.assert_allclose(block, expected, atol=1e-14)

        values = expectation_batch_inplace(block, costs, ws)
        probs = np.abs(block) ** 2
        np.testing.assert_allclose(values, probs @ costs, atol=1e-12)

    def test_phase_batch_with_table_matches_direct(self):
        rng = np.random.default_rng(4)
        n_states = 64
        costs = rng.integers(0, 5, n_states).astype(np.float64)
        table = build_phase_table(costs)
        assert table is not None and table.n_unique <= 5
        ws = KernelWorkspace(n_states, block_size=16)
        block = _random_block(rng, 3, n_states)
        gammas = rng.uniform(-1, 1, 3)
        expected = block * np.exp(np.multiply.outer(-1j * gammas, costs))
        apply_phase_batch_inplace(block, costs, gammas, ws, phase_table=table)
        np.testing.assert_allclose(block, expected, atol=1e-13)


class TestDiagonalPhaseTable:
    def test_repetitive_diagonal_builds_table(self):
        costs = np.tile([0.0, 1.0, 3.0, 1.0], 64)
        table = build_phase_table(costs)
        assert table is not None
        assert table.n_unique == 3
        assert len(table) == costs.size
        gamma = 0.37
        np.testing.assert_allclose(table.phases(gamma),
                                   np.exp(-1j * gamma * costs), atol=1e-15)
        out = np.empty(costs.size, dtype=np.complex128)
        assert table.phases(gamma, out=out) is out
        factors = table.factors_batch([0.1, 0.2])
        assert factors.shape == (2, 3)
        np.testing.assert_allclose(factors[1], np.exp(-1j * 0.2 * table.unique_values))

    def test_generic_diagonal_declines_table(self):
        rng = np.random.default_rng(0)
        assert build_phase_table(rng.uniform(0, 1, 256)) is None

    def test_invalid_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            build_phase_table(np.empty(0))
        with pytest.raises(ValueError, match="max_unique_fraction"):
            build_phase_table(np.ones(4), max_unique_fraction=0.0)


class TestHotPathRegressions:
    def test_decompress_accepts_dtype_instance(self):
        compressed = compress_diagonal(np.array([0.0, 1.0, 2.0, 3.0]))
        # np.dtype instances satisfy the annotated `np.dtype | type` contract
        out = compressed.decompress(np.dtype(np.float32))
        assert out.dtype == np.float32
        np.testing.assert_allclose(out, [0.0, 1.0, 2.0, 3.0])
        out64 = compressed.decompress(np.dtype("float64"))
        assert out64.dtype == np.float64
        # the scalar-type spelling keeps working
        np.testing.assert_allclose(compressed.decompress(np.float32), out)

    @pytest.mark.parametrize("backend", ["python", "c"])
    def test_deep_compressed_simulation_decompresses_once(self, backend, monkeypatch):
        costs = repro.simulator(N, terms=labs.get_terms(N),
                                backend="python").get_cost_diagonal().copy()
        compressed = compress_diagonal(costs)
        calls = {"n": 0}
        original = CompressedDiagonal.decompress

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(CompressedDiagonal, "decompress", counting)
        sim = repro.simulator(N, costs=compressed, backend=backend)
        rng = np.random.default_rng(0)
        p = 50
        result = sim.simulate_qaoa(rng.uniform(0, 1, p), rng.uniform(0, 1, p))
        sim.get_expectation(result)
        assert calls["n"] == 1

    def test_default_batch_resolves_default_costs_once(self, monkeypatch):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="python")
        calls = {"n": 0}
        original = type(sim).get_cost_diagonal

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(type(sim), "get_cost_diagonal", counting)
        rng = np.random.default_rng(1)
        sim.get_expectation_batch(rng.uniform(0, 1, (6, 2)),
                                  rng.uniform(0, 1, (6, 2)), mode="looped")
        assert calls["n"] == 1

    def test_python_inplace_probabilities_contiguous(self):
        sim = repro.simulator(5, terms=labs.get_terms(5), backend="python")
        result = sim.simulate_qaoa([0.3], [0.4])
        reference = sim.get_probabilities(result, preserve_state=True)
        probs = sim.get_probabilities(result, preserve_state=False)
        assert probs.dtype == np.float64
        assert probs.flags["C_CONTIGUOUS"]
        np.testing.assert_allclose(probs, reference, atol=1e-14)
