"""Tests for the jit backend: single-pass fused kernels and their fallback ladder.

Covers

* kernel parity against the python backend's multi-pass reference kernels
  within the established envelopes (1e-12 double / 1e-5 single) for every
  mixer, both phase modes (unique-value table gather and direct cos/sin),
  and the fused mixer+expectation reduction,
* the fallback ladder: the numpy path is exercised unconditionally (via
  ``REPRO_JIT_PATH``) so the suite pins the delegation contract even on
  machines where numba or a C compiler is available; numba-specific checks
  are skipped without numba,
* ``ensure_kernels`` compile-time accounting (new seconds once per
  signature, 0.0 when warm) and its flow into
  ``EngineStats.kernel_compile_time_s``,
* the ``REPRO_NUM_THREADS`` knob and ``effective_num_threads`` resolution,
* registry integration: the ``numba`` alias, capability tiers, and the
  ``describe()`` extra line reporting the active path,
* edge/argument validation (bad XY kind, non-contiguous blocks, phase
  without table or costs) and XY edge-order equivalence with the ordered
  ``python`` kernels.
"""

import numpy as np
import pytest

import repro
import repro.fur as fur
from repro.fur.diagonal import build_phase_table
from repro.fur.jit import kernels
from repro.fur.python.furx import furx_all_batch, furx_phase_all_batch
from repro.fur.python.furxy import (
    complete_edges,
    furxy_complete_batch,
    furxy_ring_batch,
    ring_edges,
)
from repro.fur.python.qaoa_simulator import _block_expectations
from repro.problems import labs

PRECISIONS = ("double", "single")
DTYPES = {"double": np.complex128, "single": np.complex64}
ATOL = {"double": 1e-12, "single": 1e-5}

#: The resolved ladder path plus the numpy delegation path; identical on
#: machines with neither numba nor a compiler (both cheap, so just run both).
PATHS = ("active", "numpy")


@pytest.fixture(params=PATHS)
def jit_path(request, monkeypatch):
    """Run the test body on one implementation path, restoring afterwards."""
    if request.param == "numpy":
        monkeypatch.setenv("REPRO_JIT_PATH", "numpy")
    else:
        monkeypatch.delenv("REPRO_JIT_PATH", raising=False)
    kernels._reset_path_cache()
    yield kernels.active_path()
    kernels._reset_path_cache()


def random_block(rng, rows, n_qubits, dtype):
    shape = (rows, 1 << n_qubits)
    block = rng.normal(size=shape) + 1j * rng.normal(size=shape)
    block /= np.linalg.norm(block, axis=1, keepdims=True)
    return np.ascontiguousarray(block.astype(dtype))


def labs_costs(n_qubits):
    sim = repro.simulator(n_qubits, terms=labs.get_terms(n_qubits),
                          backend="python")
    return np.asarray(sim.get_cost_diagonal(), dtype=np.float64)


class TestFurxKernels:
    N = 6
    ROWS = 5

    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("phase_mode", ["table", "costs", "none"])
    def test_fused_phase_mixer_matches_python(self, rng, jit_path, precision,
                                              phase_mode):
        dtype, atol = DTYPES[precision], ATOL[precision]
        costs = labs_costs(self.N).astype(
            np.float32 if precision == "single" else np.float64)
        block = random_block(rng, self.ROWS, self.N, dtype)
        expected = block.copy()
        gammas = np.linspace(0.1, 0.9, self.ROWS)
        betas = np.linspace(-0.7, 0.6, self.ROWS)
        table = build_phase_table(costs)
        assert table is not None  # LABS diagonals have few unique values
        scratch = np.empty_like(expected)
        if phase_mode == "none":
            kernels.furx_block(block, betas)
            furx_all_batch(expected, betas, self.N, scratch=scratch)
        elif phase_mode == "table":
            kernels.furx_phase_block(block, gammas, betas, phase_table=table)
            furx_phase_all_batch(expected, gammas, betas, self.N,
                                 phase_table=table, scratch=scratch)
        else:
            kernels.furx_phase_block(block, gammas, betas, costs=costs)
            furx_phase_all_batch(expected, gammas, betas, self.N,
                                 costs=costs, scratch=scratch)
        np.testing.assert_allclose(block, expected, atol=atol)

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_small_tile_matches_default_tile(self, rng, jit_path, precision):
        """Tiling is an implementation detail: tile_q must not change values."""
        dtype, atol = DTYPES[precision], ATOL[precision]
        block = random_block(rng, 3, self.N, dtype)
        reference = block.copy()
        betas = np.array([0.3, -0.2, 0.85])
        kernels.furx_block(block, betas, tile_q=2)
        kernels.furx_block(reference, betas)
        np.testing.assert_allclose(block, reference, atol=atol)

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_fused_expectation_matches_separate(self, rng, jit_path,
                                                precision):
        dtype, atol = DTYPES[precision], ATOL[precision]
        costs = labs_costs(self.N)
        block = random_block(rng, self.ROWS, self.N, dtype)
        expected_block = block.copy()
        gammas = np.linspace(-0.4, 0.8, self.ROWS)
        betas = np.linspace(0.2, 1.1, self.ROWS)
        table = build_phase_table(costs)
        out = kernels.furx_expectation_block(block, gammas, betas, costs,
                                             phase_table=table)
        scratch = np.empty_like(expected_block)
        furx_phase_all_batch(expected_block, gammas, betas, self.N,
                             phase_table=table, scratch=scratch)
        # the block still holds the evolved state, and the reduction is the
        # plain per-row sum of c|psi|^2 over that state
        np.testing.assert_allclose(block, expected_block, atol=atol)
        np.testing.assert_allclose(
            out, _block_expectations(expected_block, costs),
            atol=10 * atol)
        assert out.dtype == np.float64

    def test_expectation_reduction_accuracy_large_block(self, rng, jit_path):
        """The chunked accumulation keeps the reduction inside the envelope."""
        n = 10
        costs = labs_costs(n)
        block = random_block(rng, 2, n, np.complex128)
        out = kernels.expectation_block(block, costs)
        expected = np.einsum("rx,x->r", np.abs(block) ** 2, costs)
        np.testing.assert_allclose(out, expected, rtol=1e-12)


class TestFurxyKernels:
    N = 5
    ROWS = 4

    @pytest.mark.parametrize("precision", PRECISIONS)
    @pytest.mark.parametrize("kind", ["ring", "complete"])
    @pytest.mark.parametrize("n_trotters", [1, 3])
    def test_matches_python_ordered_product(self, rng, jit_path, precision,
                                            kind, n_trotters):
        dtype, atol = DTYPES[precision], ATOL[precision]
        costs = labs_costs(self.N)
        block = random_block(rng, self.ROWS, self.N, dtype)
        expected = block.copy()
        gammas = np.linspace(0.15, 0.75, self.ROWS)
        betas = np.linspace(-0.5, 0.9, self.ROWS)
        table = build_phase_table(costs)
        kernels.furxy_block(block, gammas, betas, kind=kind,
                            n_trotters=n_trotters, phase_table=table)
        factors = table.factors_batch(gammas, dtype=dtype)
        for r in range(self.ROWS):
            expected[r] *= factors[r][table.inverse]
        apply = furxy_ring_batch if kind == "ring" else furxy_complete_batch
        sub = np.asarray(betas) / n_trotters
        for _ in range(n_trotters):
            apply(expected, sub, self.N)
        np.testing.assert_allclose(block, expected, atol=atol)

    def test_edge_order_matches_python_kernels(self):
        for kind, reference in (("ring", ring_edges),
                                ("complete", complete_edges)):
            edges = kernels.mixer_edges(kind, self.N)
            expected = [(min(i, j), max(i, j)) for i, j in reference(self.N)]
            assert [tuple(e) for e in edges.tolist()] == expected
            assert edges.dtype == np.int64

    def test_bad_kind_rejected(self, rng, jit_path):
        block = random_block(rng, 1, 3, np.complex128)
        with pytest.raises(ValueError, match="ring"):
            kernels.furxy_block(block, None, np.array([0.1]), kind="star")


class TestPhaseAndValidation:
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_phase_block_direct_costs(self, rng, jit_path, precision):
        dtype, atol = DTYPES[precision], ATOL[precision]
        n, rows = 6, 3
        costs = labs_costs(n)
        block = random_block(rng, rows, n, dtype)
        gammas = np.array([0.2, -0.9, 1.4])
        expected = block * np.exp(-1j * gammas[:, None] * costs[None, :])
        kernels.phase_block(block, gammas, costs=costs)
        np.testing.assert_allclose(block, expected.astype(dtype), atol=atol)

    def test_phase_without_table_or_costs_rejected(self, rng, jit_path):
        block = random_block(rng, 1, 3, np.complex128)
        with pytest.raises(ValueError, match="phase_table or costs"):
            kernels.phase_block(block, np.array([0.3]))

    def test_non_contiguous_block_rejected(self, rng):
        block = random_block(rng, 4, 3, np.complex128)[:, ::2]
        with pytest.raises(ValueError, match="C-contiguous"):
            kernels.furx_block(block, np.zeros(4))
        with pytest.raises(ValueError, match="C-contiguous"):
            kernels.furx_block(random_block(rng, 2, 3, np.complex128)[0],
                               np.zeros(1))

    def test_non_power_of_two_block_rejected(self):
        block = np.zeros((2, 6), dtype=np.complex128)
        with pytest.raises(ValueError, match="power of two"):
            kernels.furx_block(block, np.zeros(2))


class TestPathLadderAndCompileAccounting:
    def test_active_path_is_known(self):
        kernels._reset_path_cache()
        assert kernels.active_path() in kernels.KNOWN_PATHS

    def test_forced_numpy_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PATH", "numpy")
        kernels._reset_path_cache()
        try:
            assert kernels.active_path() == "numpy"
            assert kernels.effective_num_threads() == 1
        finally:
            kernels._reset_path_cache()

    def test_unknown_forced_path_falls_back_to_ladder(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT_PATH", "quantum-accelerator")
        kernels._reset_path_cache()
        try:
            assert kernels.active_path() in kernels.KNOWN_PATHS
        finally:
            kernels._reset_path_cache()

    def test_ensure_kernels_reports_new_seconds_once(self, jit_path):
        first = kernels.ensure_kernels(np.complex128, 7, "x")
        again = kernels.ensure_kernels(np.complex128, 7, "x")
        assert isinstance(first, float) and first >= 0.0
        assert again == 0.0

    @pytest.mark.skipif(not kernels.NUMBA_AVAILABLE,
                        reason="numba not installed")
    def test_numba_is_preferred_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_JIT_PATH", raising=False)
        kernels._reset_path_cache()
        try:
            assert kernels.active_path() == "numba"
        finally:
            kernels._reset_path_cache()


class TestThreadKnob:
    def test_requested_num_threads_parses_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert kernels.requested_num_threads() is None
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert kernels.requested_num_threads() == 3
        monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
        assert kernels.requested_num_threads() is None
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        assert kernels.requested_num_threads() is None

    def test_effective_threads_capped_by_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "100000")
        assert 1 <= kernels.effective_num_threads() <= 100000

    def test_parity_is_thread_count_independent(self, rng, monkeypatch):
        """Row slicing must not change values (pure per-row parallelism)."""
        block = random_block(rng, 8, 5, np.complex128)
        reference = block.copy()
        betas = np.linspace(-1.0, 1.0, 8)
        monkeypatch.setenv("REPRO_NUM_THREADS", "4")
        kernels.furx_block(block, betas)
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")
        kernels.furx_block(reference, betas)
        np.testing.assert_array_equal(block, reference)


class TestRegistryIntegration:
    def test_jit_registered_with_numba_alias(self):
        spec = fur.get_backend("jit")
        assert spec.name == "jit"
        assert fur.get_backend("numba").name == "jit"
        assert set(spec.mixers) == {"x", "xyring", "xycomplete"}
        assert set(spec.precisions) == {"double", "single"}

    def test_describe_reports_active_path(self):
        text = fur.registry.describe()
        assert "jit" in text
        assert f"path={kernels.active_path()}" in text
        assert "REPRO_NUM_THREADS" in text

    @pytest.mark.parametrize("mixer", ["x", "xyring", "xycomplete"])
    def test_statevector_parity_with_python(self, mixer, small_labs_terms,
                                            qaoa_angles):
        n = 6
        gammas, betas = qaoa_angles
        svs = {}
        for backend in ("python", "jit"):
            sim = repro.simulator(n, terms=small_labs_terms, backend=backend,
                                  mixer=mixer)
            svs[backend] = np.asarray(
                sim.get_statevector(sim.simulate_qaoa(gammas, betas)))
        np.testing.assert_allclose(svs["jit"], svs["python"], atol=1e-12)

    def test_fused_batch_matches_python_and_books_compile_time(
            self, rng, small_labs_terms):
        n, batch, p = 6, 4, 2
        gb = rng.uniform(-1.0, 1.0, (batch, p))
        bb = rng.uniform(-1.0, 1.0, (batch, p))
        jit_sim = repro.simulator(n, terms=small_labs_terms, backend="jit")
        ref_sim = repro.simulator(n, terms=small_labs_terms,
                                  backend="python")
        np.testing.assert_allclose(jit_sim.get_expectation_batch(gb, bb),
                                   ref_sim.get_expectation_batch(gb, bb),
                                   atol=1e-10)
        stats = jit_sim.engine.stats.as_dict()
        assert "kernel_compile_time_s" in stats
        assert stats["kernel_compile_time_s"] >= 0.0

    def test_single_pass_flag_only_on_x_mixer(self):
        from repro.fur.jit import (
            QAOAFURXSimulatorJIT,
            QAOAFURXYCompleteSimulatorJIT,
            QAOAFURXYRingSimulatorJIT,
        )

        assert QAOAFURXSimulatorJIT.supports_single_pass
        assert not QAOAFURXYRingSimulatorJIT.supports_single_pass
        assert not QAOAFURXYCompleteSimulatorJIT.supports_single_pass
