"""Tests for the Hamming-weight-preserving XY mixer kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.fur.python.furxy as furxy
from repro.gates import gate as G
from repro.gates.statevector import apply_gate


def random_state(rng: np.random.Generator, n: int) -> np.ndarray:
    sv = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return sv / np.linalg.norm(sv)


class TestEdges:
    def test_ring_edges(self):
        assert furxy.ring_edges(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert furxy.ring_edges(2) == [(0, 1)]

    def test_complete_edges(self):
        assert furxy.complete_edges(3) == [(0, 1), (0, 2), (1, 2)]
        assert len(furxy.complete_edges(6)) == 15

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            furxy.ring_edges(1)
        with pytest.raises(ValueError):
            furxy.complete_edges(1)


class TestFurxyGate:
    @pytest.mark.parametrize("qubits", [(0, 1), (1, 0), (0, 2), (2, 0), (1, 3), (3, 1)])
    def test_matches_gate_library_xx_plus_yy(self, rng, qubits):
        n, beta = 4, 0.53
        sv = random_state(rng, n)
        expected = apply_gate(sv.copy(), G.xx_plus_yy(beta, *qubits), n)
        out = furxy.furxy(sv.copy(), beta, *qubits)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_same_qubit_rejected(self, rng):
        with pytest.raises(ValueError):
            furxy.furxy(random_state(rng, 3), 0.1, 1, 1)

    def test_qubit_out_of_range(self, rng):
        with pytest.raises(ValueError):
            furxy.furxy(random_state(rng, 3), 0.1, 0, 3)

    def test_identity_on_aligned_bits(self):
        """|00> and |11> components are untouched."""
        n = 2
        for x in (0, 3):
            sv = np.zeros(4, dtype=np.complex128)
            sv[x] = 1.0
            out = furxy.furxy(sv.copy(), 0.7, 0, 1)
            np.testing.assert_allclose(out, sv, atol=1e-12)

    def test_swap_at_pi_over_2(self):
        """At β = π/2 the gate maps |01> to −i|10> (full transfer)."""
        sv = np.zeros(4, dtype=np.complex128)
        sv[1] = 1.0  # |01>: qubit0=1, qubit1=0
        out = furxy.furxy(sv, np.pi / 2, 0, 1)
        expected = np.zeros(4, dtype=np.complex128)
        expected[2] = -1j
        np.testing.assert_allclose(out, expected, atol=1e-12)

    @given(st.integers(min_value=2, max_value=6),
           st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_norm_preserved(self, n, beta, seed):
        rng = np.random.default_rng(seed)
        i, j = rng.choice(n, size=2, replace=False)
        sv = random_state(rng, n)
        furxy.furxy(sv, beta, int(i), int(j))
        assert np.linalg.norm(sv) == pytest.approx(1.0, abs=1e-10)


class TestMixers:
    @pytest.mark.parametrize("mixer,apply", [
        ("ring", furxy.furxy_ring), ("complete", furxy.furxy_complete),
    ])
    def test_hamming_weight_preserved(self, rng, mixer, apply):
        n = 6
        idx = np.arange(1 << n, dtype=np.uint64)
        weights = np.bitwise_count(idx)
        for w in (1, 3):
            sv = np.where(weights == w, 1.0, 0.0).astype(np.complex128)
            sv /= np.linalg.norm(sv)
            out = apply(sv.copy(), 0.63, n)
            leaked = np.abs(out[weights != w]) ** 2
            assert leaked.sum() == pytest.approx(0.0, abs=1e-20)
            assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-10)

    def test_ring_matches_sequential_gates(self, rng):
        n, beta = 5, 0.29
        sv = random_state(rng, n)
        expected = sv.copy()
        for i, j in furxy.ring_edges(n):
            expected = apply_gate(expected, G.xx_plus_yy(beta, i, j), n)
        np.testing.assert_allclose(furxy.furxy_ring(sv.copy(), beta, n), expected, atol=1e-12)

    def test_complete_matches_sequential_gates(self, rng):
        n, beta = 4, 0.31
        sv = random_state(rng, n)
        expected = sv.copy()
        for i, j in furxy.complete_edges(n):
            expected = apply_gate(expected, G.xx_plus_yy(beta, i, j), n)
        np.testing.assert_allclose(furxy.furxy_complete(sv.copy(), beta, n), expected, atol=1e-12)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            furxy.furxy_ring(random_state(rng, 3), 0.1, 4)
        with pytest.raises(ValueError):
            furxy.furxy_complete(random_state(rng, 3), 0.1, 4)
