"""Tests for the simulator base class, initial states and angle validation."""

import numpy as np
import pytest

from repro.fur import base as B
from repro.fur.diagonal import compress_diagonal
from repro.fur.python import QAOAFURXSimulator


class TestInitialStates:
    def test_uniform_superposition(self):
        sv = B.uniform_superposition(5)
        assert sv.shape == (32,)
        np.testing.assert_allclose(sv, 1 / np.sqrt(32))
        assert np.linalg.norm(sv) == pytest.approx(1.0)

    def test_uniform_superposition_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            B.uniform_superposition(0)

    def test_dicke_state_support_and_norm(self):
        sv = B.dicke_state(5, 2)
        idx = np.flatnonzero(np.abs(sv) > 0)
        assert len(idx) == 10  # C(5, 2)
        assert all(bin(int(x)).count("1") == 2 for x in idx)
        assert np.linalg.norm(sv) == pytest.approx(1.0)

    def test_dicke_state_extremes(self):
        assert B.dicke_state(4, 0)[0] == pytest.approx(1.0)
        assert B.dicke_state(4, 4)[-1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            B.dicke_state(4, 5)


class TestValidateAngles:
    def test_accepts_equal_length(self):
        g, b = B.validate_angles([0.1, 0.2], (0.3, 0.4))
        assert g.shape == b.shape == (2,)

    def test_scalar_promoted(self):
        g, b = B.validate_angles(0.1, 0.2)
        assert g.shape == (1,)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            B.validate_angles([0.1], [0.2, 0.3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            B.validate_angles([], [])

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            B.validate_angles([np.nan], [0.1])

    def test_rejects_matrices(self):
        with pytest.raises(ValueError):
            B.validate_angles([[0.1]], [[0.2]])


class TestConstructor:
    def test_terms_xor_costs_required(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulator(3)
        with pytest.raises(ValueError):
            QAOAFURXSimulator(3, terms=[(1.0, (0,))], costs=np.zeros(8))

    def test_nonpositive_qubits_rejected(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulator(0, terms=[(1.0, (0,))])

    def test_huge_qubit_count_rejected(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulator(40, terms=[(1.0, (0,))])

    def test_costs_shape_checked(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulator(3, costs=np.zeros(5))

    def test_costs_array_accepted(self):
        costs = np.arange(8, dtype=float)
        sim = QAOAFURXSimulator(3, costs=costs)
        np.testing.assert_allclose(sim.get_cost_diagonal(), costs)
        assert sim.terms is None

    def test_compressed_costs_accepted(self):
        costs = np.arange(8, dtype=float)
        sim = QAOAFURXSimulator(3, costs=compress_diagonal(costs))
        np.testing.assert_allclose(sim.get_cost_diagonal(), costs)

    def test_compressed_costs_wrong_length(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulator(4, costs=compress_diagonal(np.arange(8.0)))

    def test_terms_retrievable(self):
        terms = [(1.0, (0, 1)), (0.5, (2,))]
        sim = QAOAFURXSimulator(3, terms=terms)
        assert sim.terms == [(1.0, (0, 1)), (0.5, (2,))]
        assert sim.n_qubits == 3
        assert sim.n_states == 8

    def test_out_of_range_term_rejected(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulator(3, terms=[(1.0, (7,))])


class TestOutputHelpers:
    def test_resolve_costs_validation(self):
        sim = QAOAFURXSimulator(3, terms=[(1.0, (0, 1))])
        res = sim.simulate_qaoa([0.1], [0.2])
        with pytest.raises(ValueError):
            sim.get_expectation(res, costs=np.zeros(4))

    def test_custom_costs_override(self):
        sim = QAOAFURXSimulator(3, terms=[(1.0, (0, 1))])
        res = sim.simulate_qaoa([0.1], [0.2])
        # constant costs -> expectation equals the constant
        assert sim.get_expectation(res, costs=np.full(8, 2.5)) == pytest.approx(2.5)

    def test_overlap_with_explicit_indices(self):
        sim = QAOAFURXSimulator(3, terms=[(1.0, (0,))])
        res = sim.simulate_qaoa([0.0], [0.0])
        # state is still |+>^3: each basis state has probability 1/8
        assert sim.get_overlap(res, indices=[0, 1]) == pytest.approx(0.25)

    def test_overlap_index_validation(self):
        sim = QAOAFURXSimulator(3, terms=[(1.0, (0,))])
        res = sim.simulate_qaoa([0.1], [0.1])
        with pytest.raises(ValueError):
            sim.get_overlap(res, indices=[])
        with pytest.raises(ValueError):
            sim.get_overlap(res, indices=[100])

    def test_invalid_sv0_shape(self):
        sim = QAOAFURXSimulator(3, terms=[(1.0, (0,))])
        with pytest.raises(ValueError):
            sim.simulate_qaoa([0.1], [0.1], sv0=np.zeros(4))

    def test_sv0_not_mutated(self):
        sim = QAOAFURXSimulator(3, terms=[(1.0, (0,))])
        sv0 = np.full(8, 1 / np.sqrt(8), dtype=np.complex128)
        sv0_copy = sv0.copy()
        sim.simulate_qaoa([0.3], [0.4], sv0=sv0)
        np.testing.assert_array_equal(sv0, sv0_copy)
