"""Tests for the cost-diagonal precomputation (Sec. III-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fur import diagonal as D
from repro.problems import labs, maxcut
from repro.problems.terms import brute_force_cost_vector

from repro.testing import random_terms


class TestMasks:
    def test_term_mask(self):
        assert D.term_mask((0, 2, 5)) == 0b100101
        assert D.term_mask(()) == 0

    def test_masks_and_weights_split_offset(self):
        masks, weights, offset = D.term_masks_and_weights(
            [(1.0, (0, 1)), (2.0, ()), (3.0, (2,)), (-1.0, ())], 3
        )
        assert offset == 1.0
        assert set(masks.tolist()) == {0b011, 0b100}
        assert sorted(weights.tolist()) == [1.0, 3.0]

    def test_masks_validate_range(self):
        with pytest.raises(ValueError):
            D.term_masks_and_weights([(1.0, (5,))], 3)


class TestPrecompute:
    def test_matches_bruteforce_random(self, rng):
        n = 7
        terms = random_terms(rng, n, 12, max_order=4)
        diag = D.precompute_cost_diagonal(terms, n)
        np.testing.assert_allclose(diag, brute_force_cost_vector(terms, n), atol=1e-10)

    def test_matches_labs_energies(self):
        n = 10
        diag = D.precompute_cost_diagonal(labs.get_terms(n), n)
        np.testing.assert_allclose(diag, labs.energies_all_sequences(n))

    def test_matches_maxcut_cuts(self):
        g = maxcut.random_regular_graph(3, 8, seed=2, weighted=True)
        terms = maxcut.maxcut_terms_from_graph(g)
        diag = D.precompute_cost_diagonal(terms, 8)
        cuts = np.array([maxcut.cut_value_from_index(g, x) for x in range(256)])
        np.testing.assert_allclose(diag, -cuts, atol=1e-10)

    def test_infers_n_from_terms(self):
        diag = D.precompute_cost_diagonal([(1.0, (0, 3))])
        assert diag.shape == (16,)

    def test_constant_only_needs_n(self):
        with pytest.raises(ValueError):
            D.precompute_cost_diagonal([(1.0, ())])
        diag = D.precompute_cost_diagonal([(1.0, ())], 3)
        np.testing.assert_allclose(diag, 1.0)

    def test_small_chunks_agree(self, rng):
        n = 6
        terms = random_terms(rng, n, 8)
        full = D.precompute_cost_diagonal(terms, n)
        chunked = D.precompute_cost_diagonal(terms, n, chunk_size=7)
        np.testing.assert_allclose(full, chunked)

    def test_out_buffer_and_dtype(self, rng):
        n = 5
        terms = random_terms(rng, n, 5)
        out = np.empty(1 << n, dtype=np.float32)
        result = D.precompute_cost_diagonal(terms, n, dtype=np.float32, out=out)
        assert result is out
        assert result.dtype == np.float32

    def test_invalid_arguments(self, rng):
        terms = random_terms(rng, 4, 3)
        with pytest.raises(ValueError):
            D.precompute_cost_diagonal(terms, 4, chunk_size=0)
        with pytest.raises(ValueError):
            D.precompute_cost_diagonal(terms, 4, out=np.empty(3))

    @given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_bruteforce(self, n, seed):
        rng = np.random.default_rng(seed)
        terms = random_terms(rng, n, int(rng.integers(1, 10)), max_order=min(4, n))
        diag = D.precompute_cost_diagonal(terms, n)
        np.testing.assert_allclose(diag, brute_force_cost_vector(terms, n), atol=1e-9)


class TestSlices:
    def test_slice_concatenation_equals_full(self, rng):
        n = 8
        terms = random_terms(rng, n, 10, max_order=4)
        full = D.precompute_cost_diagonal(terms, n)
        parts = [D.precompute_cost_diagonal_slice(terms, n, s, s + 64) for s in range(0, 256, 64)]
        np.testing.assert_allclose(np.concatenate(parts), full)

    def test_empty_and_invalid_slices(self, rng):
        terms = random_terms(rng, 4, 3)
        assert D.precompute_cost_diagonal_slice(terms, 4, 3, 3).shape == (0,)
        with pytest.raises(ValueError):
            D.precompute_cost_diagonal_slice(terms, 4, 10, 20)
        with pytest.raises(ValueError):
            D.apply_terms_to_slice(np.array([], dtype=np.uint64), np.array([]), 0.0, 5, 3)


class TestFromFunction:
    def test_scalar_function(self):
        n = 4
        diag = D.precompute_cost_diagonal_from_function(lambda bits: float(bits.sum()), n)
        idx = np.arange(1 << n, dtype=np.uint64)
        np.testing.assert_allclose(diag, np.bitwise_count(idx).astype(float))

    def test_vectorized_function(self):
        n = 5
        diag = D.precompute_cost_diagonal_from_function(
            lambda bits: bits.sum(axis=1).astype(float), n, vectorized=True
        )
        idx = np.arange(1 << n, dtype=np.uint64)
        np.testing.assert_allclose(diag, np.bitwise_count(idx).astype(float))

    def test_vectorized_shape_error(self):
        with pytest.raises(ValueError):
            D.precompute_cost_diagonal_from_function(lambda bits: np.zeros(3), 4, vectorized=True)

    def test_function_matches_terms(self):
        n = 6
        terms = labs.get_terms(n)
        from repro.problems.terms import evaluate_terms_on_bits

        diag_fn = D.precompute_cost_diagonal_from_function(
            lambda bits: evaluate_terms_on_bits(terms, bits), n
        )
        np.testing.assert_allclose(diag_fn, D.precompute_cost_diagonal(terms, n))


class TestCompression:
    def test_labs_diagonal_compresses_to_uint16(self):
        n = 12
        diag = D.precompute_cost_diagonal(labs.get_terms(n), n)
        comp = D.compress_diagonal(diag)
        assert comp.values.dtype == np.uint16
        assert comp.scale == 1.0
        np.testing.assert_allclose(comp.decompress(), diag)
        # footprint reduced 4x vs float64
        assert comp.nbytes == diag.nbytes // 4

    def test_compressed_getitem_slice(self):
        diag = np.array([0.0, 3.0, 7.0, 1.0])
        comp = D.compress_diagonal(diag)
        np.testing.assert_allclose(comp[1:3], [3.0, 7.0])
        assert len(comp) == 4

    def test_non_integer_costs_rejected(self):
        # 0.3 is not representable on the uint16 grid spanned by [0, 1]
        with pytest.raises(ValueError):
            D.compress_diagonal(np.array([0.0, 0.3, 1.0]))

    def test_constant_diagonal(self):
        comp = D.compress_diagonal(np.full(8, 5.0))
        np.testing.assert_allclose(comp.decompress(), 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            D.compress_diagonal(np.array([]))

    def test_negative_integer_costs_shifted(self):
        diag = np.array([-3.0, 0.0, 5.0])
        comp = D.compress_diagonal(diag)
        np.testing.assert_allclose(comp.decompress(), diag)

    def test_uint8_overflow_detected(self):
        with pytest.raises(ValueError):
            D.compress_diagonal(np.array([0.0, 1.0, 300.0, 301.5]), dtype=np.uint8)


class TestMemoryAccounting:
    def test_uint16_overhead_is_12_5_percent(self):
        """The abstract's claim: the (uint16) cost vector adds 12.5 % to the footprint."""
        assert D.diagonal_memory_overhead(20, diag_dtype=np.uint16) == pytest.approx(0.125)

    def test_float64_overhead_is_50_percent(self):
        assert D.diagonal_memory_overhead(20) == pytest.approx(0.5)

    def test_memory_bytes(self):
        assert D.diagonal_memory_bytes(10) == 1024 * 8
        assert D.diagonal_memory_bytes(10, np.uint16) == 1024 * 2
