"""Tests for the fast SU(2) kernels (Algorithms 1 and 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.fur.python.furx as furx


def random_state(rng: np.random.Generator, n: int) -> np.ndarray:
    sv = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return sv / np.linalg.norm(sv)


def dense_single_qubit_operator(u: np.ndarray, qubit: int, n: int) -> np.ndarray:
    """Reference dense operator I ⊗ … ⊗ U ⊗ … ⊗ I (little-endian convention)."""
    op = np.array([[1.0]])
    for q in range(n):
        factor = u if q == qubit else np.eye(2)
        op = np.kron(factor, op)  # qubit q occupies bit q => later qubits go on the left
    return op


class TestApplySU2:
    def test_x_rotation_parameters(self):
        a, b = furx.su2_x_rotation(0.3)
        mat = np.array([[a, -np.conj(b)], [b, np.conj(a)]])
        expected = np.cos(0.3) * np.eye(2) - 1j * np.sin(0.3) * np.array([[0, 1], [1, 0]])
        np.testing.assert_allclose(mat, expected, atol=1e-12)

    @pytest.mark.parametrize("n,qubit", [(1, 0), (3, 0), (3, 1), (3, 2), (5, 3)])
    def test_matches_dense_operator(self, rng, n, qubit):
        sv = random_state(rng, n)
        theta = 0.7
        a, b = furx.su2_x_rotation(theta)
        expected = dense_single_qubit_operator(
            np.array([[a, -np.conj(b)], [b, np.conj(a)]]), qubit, n
        ) @ sv
        out = furx.apply_su2(sv.copy(), a, b, qubit)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_in_place_semantics(self, rng):
        sv = random_state(rng, 4)
        out = furx.furx(sv, 0.2, 1)
        assert out is sv

    def test_qubit_out_of_range(self, rng):
        sv = random_state(rng, 3)
        with pytest.raises(ValueError):
            furx.apply_su2(sv, 1.0, 0.0, 3)
        with pytest.raises(ValueError):
            furx.apply_su2(sv, 1.0, 0.0, -1)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=5),
           st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_norm_preserved(self, n, qubit, beta, seed):
        qubit = qubit % n
        sv = random_state(np.random.default_rng(seed), n)
        furx.furx(sv, beta, qubit)
        assert np.linalg.norm(sv) == pytest.approx(1.0, abs=1e-10)

    def test_identity_at_zero_angle(self, rng):
        sv = random_state(rng, 4)
        out = furx.furx(sv.copy(), 0.0, 2)
        np.testing.assert_allclose(out, sv, atol=1e-15)


class TestFurxAll:
    def test_matches_sequential_dense(self, rng):
        n, beta = 4, 0.37
        sv = random_state(rng, n)
        a, b = furx.su2_x_rotation(beta)
        u = np.array([[a, -np.conj(b)], [b, np.conj(a)]])
        expected = sv.copy()
        for q in range(n):
            expected = dense_single_qubit_operator(u, q, n) @ expected
        out = furx.furx_all(sv.copy(), beta, n)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_pi_over_2_is_global_bit_flip(self, rng):
        """At β = π/2 each factor becomes −iX, so the mixer is (−i)^n · X⊗…⊗X."""
        n = 5
        sv = random_state(rng, n)
        mixed = furx.furx_all(sv.copy(), np.pi / 2, n)
        np.testing.assert_allclose(mixed, (-1j) ** n * sv[::-1], atol=1e-10)

    def test_mixer_equals_hadamard_conjugated_z_rotations(self, rng):
        """exp(-iβΣX) = H^{⊗n}·exp(-iβΣZ)·H^{⊗n} — the WHT-sandwich identity the
        paper contrasts its one-pass kernel against (Sec. VII)."""
        n, beta = 4, 0.37
        sv = random_state(rng, n)
        direct = furx.furx_all(sv.copy(), beta, n)
        # H^{⊗n} = FWHT / sqrt(N); exp(-iβΣZ) is diagonal with phases per popcount.
        size = 1 << n
        work = furx.fwht_inplace(sv.copy()) / np.sqrt(size)
        idx = np.arange(size, dtype=np.uint64)
        pop = np.bitwise_count(idx).astype(np.float64)
        z_eigen = n - 2 * pop  # sum of Z eigenvalues
        work *= np.exp(-1j * beta * z_eigen)
        work = furx.fwht_inplace(work) / np.sqrt(size)
        np.testing.assert_allclose(direct, work, atol=1e-10)

    def test_uniform_state_is_fixed_up_to_phase(self):
        """|+>^n is an eigenstate of the mixer: exp(-iβΣX)|+>^n = e^{-iβn}|+>^n."""
        n, beta = 6, 0.41
        sv = np.full(1 << n, 1.0 / np.sqrt(1 << n), dtype=np.complex128)
        out = furx.furx_all(sv.copy(), beta, n)
        np.testing.assert_allclose(out, np.exp(-1j * beta * n) * sv, atol=1e-12)

    def test_inverse_by_negative_angle(self, rng):
        n = 5
        sv = random_state(rng, n)
        out = furx.furx_all(sv.copy(), 0.3, n)
        out = furx.furx_all(out, -0.3, n)
        np.testing.assert_allclose(out, sv, atol=1e-12)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            furx.furx_all(random_state(rng, 3), 0.1, 4)


class TestFWHT:
    def test_fwht_matches_hadamard_matrix(self, rng):
        n = 4
        sv = random_state(rng, n)
        h = np.array([[1, 1], [1, -1]], dtype=float)
        full = np.array([[1.0]])
        for _ in range(n):
            full = np.kron(h, full)
        np.testing.assert_allclose(furx.fwht_inplace(sv.copy()), full @ sv, atol=1e-12)

    def test_fwht_involution(self, rng):
        sv = random_state(rng, 5)
        out = furx.fwht_inplace(furx.fwht_inplace(sv.copy())) / (1 << 5)
        np.testing.assert_allclose(out, sv, atol=1e-12)

    def test_fwht_requires_power_of_two(self):
        with pytest.raises(ValueError):
            furx.fwht_inplace(np.zeros(6, dtype=np.complex128))
