"""End-to-end tests of the configurable-precision (complex64) simulation path.

Covers

* precision resolution (names, aliases, dtypes) and the registry capability
  metadata / facade validation,
* the single-precision state dtype across every backend and mixer, in looped
  and fused-batch modes, including fused == looped parity at single precision,
* the pinned numerical policy: expectations accumulate in float64 and stay
  within the 1e-5 relative error envelope of double precision on the Fig. 2
  MaxCut workload,
* memory accounting: ``batch_block_rows`` and the simulated device both fit
  twice the rows at single precision,
* regressions: a caller-supplied complex64 ``sv0`` is honoured (not upcast),
  ``compress_diagonal`` round-trips through a float32 decompression, and the
  vectorized brute-force index helpers match the scalar definitions.
"""

import numpy as np
import pytest

import repro
from repro.fur import (
    PrecisionSpec,
    batch_block_rows,
    build_phase_table,
    compress_diagonal,
    resolve_precision,
    uniform_superposition,
)
from repro.fur.base import QAOAFastSimulatorBase
from repro.fur.precision import DOUBLE, SINGLE
from repro.fur.registry import BackendSpec, registry
from repro.problems import maxcut
from repro.problems.terms import (
    bits_from_index,
    index_from_bits,
    index_from_spins,
    spins_from_index,
)
from repro.qaoa import get_qaoa_objective

BACKENDS = ["python", "c", "gpu"]
MIXERS = ["x", "xyring", "xycomplete"]

#: Pinned single-precision error envelope for expectation values.
SINGLE_RTOL = 1e-5


@pytest.fixture(scope="module")
def fig2_workload():
    """The Fig. 2-scale workload: 3-regular MaxCut at n=12, p=6."""
    n, p = 12, 6
    graph = maxcut.random_regular_graph(3, n, seed=12)
    terms = maxcut.maxcut_terms_from_graph(graph)
    rng = np.random.default_rng(99)
    gammas = rng.uniform(0.0, 1.0, p)
    betas = rng.uniform(0.0, 1.0, p)
    return n, terms, gammas, betas


class TestResolvePrecision:
    def test_canonical_names(self):
        assert resolve_precision("double") is DOUBLE
        assert resolve_precision("single") is SINGLE
        assert resolve_precision(None) is DOUBLE

    @pytest.mark.parametrize("alias,expected", [
        ("fp64", "double"), ("complex128", "double"), ("float64", "double"),
        ("fp32", "single"), ("complex64", "single"), ("float32", "single"),
        ("SINGLE", "single"), (" double ", "double"),
    ])
    def test_aliases(self, alias, expected):
        assert resolve_precision(alias).name == expected

    def test_dtypes_accepted(self):
        assert resolve_precision(np.complex64).name == "single"
        assert resolve_precision(np.dtype("float32")).name == "single"
        assert resolve_precision(np.complex128).name == "double"

    def test_spec_passthrough(self):
        assert resolve_precision(SINGLE) is SINGLE

    def test_spec_fields(self):
        assert SINGLE.complex_dtype == np.complex64
        assert SINGLE.real_dtype == np.float32
        assert SINGLE.complex_itemsize == 8
        assert DOUBLE.complex_itemsize == 16
        assert DOUBLE.is_double and not SINGLE.is_double

    @pytest.mark.parametrize("bad", ["half", "quad", np.int32, object()])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ValueError):
            resolve_precision(bad)


class TestRegistryPrecisionCapability:
    def test_builtin_backends_declare_single(self):
        for name in ("python", "c", "gpu", "gpumpi", "cusvmpi"):
            spec = registry.spec(name)
            assert spec.supports_precision("single")
            assert spec.supports_precision("complex64")  # alias-aware

    def test_spec_default_is_double_only(self):
        spec = BackendSpec(name="thirdparty", loader=dict)
        assert spec.supports_precision("double")
        assert not spec.supports_precision("single")

    def test_facade_rejects_unsupported_precision(self):
        @repro.fur.register_backend("dbl_only", mixers=("x",), priority=-100)
        def _load():
            from repro.fur.python import QAOAFURXSimulator
            return {"x": QAOAFURXSimulator}

        try:
            with pytest.raises(ValueError, match="does not implement 'single'"):
                repro.simulator(4, terms=[(1.0, (0, 1))], backend="dbl_only",
                                precision="single")
        finally:
            registry.unregister("dbl_only")

    def test_auto_resolution_filters_by_precision(self):
        spec = registry.resolve("auto", precision="single")
        assert spec.supports_precision("single")

    def test_available_backends_precision_filter(self):
        names = repro.fur.available_backends(precision="single")
        assert {"python", "c", "gpu"} <= set(names)

    def test_facade_rejects_instance_precision_mismatch(self):
        sim = repro.simulator(4, terms=[(1.0, (0, 1))], backend="python")
        with pytest.raises(ValueError, match="precision"):
            repro.simulator(4, terms=[(1.0, (0, 1))], backend=sim,
                            precision="single")
        # matching precision passes the instance through unchanged
        assert repro.simulator(4, terms=[(1.0, (0, 1))], backend=sim,
                               precision="double") is sim

    def test_facade_passes_instances_through_when_precision_unspecified(self):
        # a single-precision instance must survive the optimization-loop
        # passthrough (make_simulator/get_qaoa_objective forward it untouched)
        single = repro.simulator(4, terms=[(1.0, (0, 1))], backend="python",
                                 precision="single")
        assert repro.simulator(4, terms=[(1.0, (0, 1))], backend=single) is single
        obj = get_qaoa_objective(4, 2, terms=[(1.0, (0, 1))], backend=single)
        assert obj.simulator is single


class TestSinglePrecisionStateDtype:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mixer", MIXERS)
    def test_statevector_dtype_and_norm(self, backend, mixer, qaoa_angles):
        terms = [(1.0, (0, 1)), (0.5, (1, 2)), (-0.25, (0, 2, 3))]
        sim = repro.simulator(5, terms=terms, backend=backend, mixer=mixer,
                              precision="single")
        assert sim.precision == "single"
        assert sim.complex_dtype == np.complex64
        assert sim.real_dtype == np.float32
        result = sim.simulate_qaoa(*qaoa_angles)
        sv = sim.get_statevector(result)
        assert sv.dtype == np.complex64
        assert np.abs(np.vdot(sv, sv) - 1.0) < 1e-5
        probs = sim.get_probabilities(sim.simulate_qaoa(*qaoa_angles))
        assert probs.dtype == np.float64  # output/accumulation policy
        assert probs.sum() == pytest.approx(1.0, abs=1e-5)

    def test_initial_state_follows_precision(self):
        terms = [(1.0, (0, 1))]
        single = repro.simulator(4, terms=terms, backend="python", precision="single")
        double = repro.simulator(4, terms=terms, backend="python")
        assert single.initial_state().dtype == np.complex64
        assert double.initial_state().dtype == np.complex128
        # an explicit dtype still wins
        assert single.initial_state(dtype=np.complex128).dtype == np.complex128

    def test_uniform_superposition_dtype(self):
        sv = uniform_superposition(5, dtype=np.complex64)
        assert sv.dtype == np.complex64
        assert np.abs(np.vdot(sv, sv) - 1.0) < 1e-6


class TestSv0DtypeRegression:
    """A caller-supplied complex64 sv0 is honoured, never silently upcast."""

    def test_complex64_sv0_not_upcast_on_single(self, qaoa_angles):
        sim = repro.simulator(4, terms=[(1.0, (0, 1))], backend="python",
                              precision="single")
        sv0 = uniform_superposition(4, dtype=np.complex64)
        validated = sim._validate_sv0(sv0)
        assert validated.dtype == np.complex64
        result = sim.simulate_qaoa(*qaoa_angles, sv0=sv0)
        assert sim.get_statevector(result).dtype == np.complex64
        # the input buffer is copied, not evolved in place
        np.testing.assert_array_equal(sv0, uniform_superposition(4, dtype=np.complex64))

    def test_sv0_copied_to_simulator_precision_on_double(self):
        sim = repro.simulator(4, terms=[(1.0, (0, 1))], backend="python")
        sv0 = uniform_superposition(4, dtype=np.complex64)
        assert sim._validate_sv0(sv0).dtype == np.complex128

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_complex64_sv0_across_backends(self, backend, qaoa_angles):
        sim = repro.simulator(4, terms=[(1.0, (0, 1))], backend=backend,
                              precision="single")
        sv0 = np.zeros(16, dtype=np.complex64)
        sv0[3] = 1.0
        result = sim.simulate_qaoa(*qaoa_angles, sv0=sv0)
        sv = sim.get_statevector(result)
        assert sv.dtype == np.complex64
        assert np.abs(np.vdot(sv, sv) - 1.0) < 1e-5


class TestNumericalPolicy:
    """Single precision stays within 1e-5 relative of double (Fig. 2 scale)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fig2_maxcut_expectation_envelope(self, backend, fig2_workload):
        n, terms, gammas, betas = fig2_workload
        double = repro.simulator(n, terms=terms, backend=backend)
        single = repro.simulator(n, terms=terms, backend=backend,
                                 precision="single")
        e_double = double.get_expectation(double.simulate_qaoa(gammas, betas))
        e_single = single.get_expectation(single.simulate_qaoa(gammas, betas))
        assert abs(e_single - e_double) <= SINGLE_RTOL * max(abs(e_double), 1.0)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fig2_maxcut_batched_envelope(self, backend, fig2_workload):
        n, terms, gammas, betas = fig2_workload
        gb = np.stack([gammas, gammas * 0.7, gammas * 1.2])
        bb = np.stack([betas, betas * 1.1, betas * 0.8])
        double = repro.simulator(n, terms=terms, backend=backend)
        single = repro.simulator(n, terms=terms, backend=backend,
                                 precision="single")
        e_double = double.get_expectation_batch(gb, bb)
        e_single = single.get_expectation_batch(gb, bb)
        assert e_single.dtype == np.float64  # float64 accumulation policy
        scale = np.maximum(np.abs(e_double), 1.0)
        assert np.max(np.abs(e_single - e_double) / scale) <= SINGLE_RTOL

    def test_objective_factory_precision_kwarg(self, fig2_workload):
        n, terms, gammas, betas = fig2_workload
        obj = get_qaoa_objective(n, len(gammas), terms=terms, backend="c",
                                 precision="single")
        assert obj.simulator.precision == "single"
        theta = np.concatenate([gammas, betas])
        ref = get_qaoa_objective(n, len(gammas), terms=terms, backend="c")
        assert obj(theta) == pytest.approx(ref(theta), rel=SINGLE_RTOL, abs=SINGLE_RTOL)


class TestFusedLoopedParitySingle:
    """Satellite: the fused-vs-looped parity matrix repeated at single precision."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("mixer", MIXERS)
    def test_fused_matches_looped(self, backend, mixer, rng):
        n, batch, p = 6, 5, 3
        terms = [(float(w), idx) for w, idx in
                 [(1.0, (0, 1)), (0.5, (2, 3)), (-0.75, (1, 4)), (0.25, (0, 5))]]
        sim = repro.simulator(n, terms=terms, backend=backend, mixer=mixer,
                              precision="single")
        gb = rng.uniform(0.0, 1.0, (batch, p))
        bb = rng.uniform(0.0, 1.0, (batch, p))
        fused = sim.get_expectation_batch(gb, bb)
        looped = sim.get_expectation_batch(gb, bb, mode="looped")
        np.testing.assert_allclose(fused, looped, rtol=2e-5, atol=2e-5)
        fused_states = [sim.get_statevector(r)
                        for r in sim.simulate_qaoa_batch(gb, bb)]
        for i, sv in enumerate(fused_states):
            assert sv.dtype == np.complex64
            ref = sim.get_statevector(sim.simulate_qaoa(gb[i], bb[i]))
            np.testing.assert_allclose(sv, ref, rtol=2e-4, atol=2e-5)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_sub_batch_splitting_single(self, backend, rng):
        n, batch, p = 6, 7, 2
        terms = [(1.0, (0, 1)), (0.5, (2, 3))]
        sim = repro.simulator(n, terms=terms, backend=backend, precision="single")
        gb = rng.uniform(0.0, 1.0, (batch, p))
        bb = rng.uniform(0.0, 1.0, (batch, p))
        whole = sim.get_expectation_batch(gb, bb)
        # budget of exactly 2 single-precision rows (state + scratch blocks)
        budget = 2 * 2 * (1 << n) * 8
        split = sim.get_expectation_batch(gb, bb, memory_budget=budget)
        np.testing.assert_allclose(split, whole, rtol=1e-6, atol=1e-6)


class TestMemoryAccounting:
    def test_batch_block_rows_itemsize(self):
        n_states = 1 << 10
        budget = 64 * 16 * n_states  # exactly 32 double rows at blocks=2
        double_rows = batch_block_rows(1024, n_states, budget, blocks=2, itemsize=16)
        single_rows = batch_block_rows(1024, n_states, budget, blocks=2, itemsize=8)
        assert single_rows == 2 * double_rows

    def test_batch_block_rows_rejects_bad_itemsize(self):
        with pytest.raises(ValueError):
            batch_block_rows(4, 16, itemsize=0)

    def test_fused_mixin_uses_precision_itemsize(self):
        terms = [(1.0, (0, 1))]
        double = repro.simulator(8, terms=terms, backend="python")
        single = repro.simulator(8, terms=terms, backend="python",
                                 precision="single")
        budget = 4 * 2 * 16 * (1 << 8)  # 4 double rows incl. scratch block
        assert double._batch_rows(1024, budget) == 4
        assert single._batch_rows(1024, budget) == 8

    def test_device_capacity_doubles_at_single(self):
        from repro.fur.simgpu.device import DeviceSpec, SimulatedDevice

        n = 8
        spec = DeviceSpec(name="tiny", memory_capacity=6 * 16 * (1 << n) + 8 * (1 << n),
                          memory_bandwidth=1e12, pcie_bandwidth=1e10,
                          kernel_launch_overhead=0.0)
        terms = [(1.0, (0, 1))]
        double = repro.simulator(n, terms=terms, backend="gpu",
                                 device=SimulatedDevice(spec))
        single = repro.simulator(n, terms=terms, backend="gpu",
                                 device=SimulatedDevice(spec), precision="single")
        # single precision fits twice the device rows in the same free memory
        assert single._batch_rows(64, None) >= 2 * double._batch_rows(64, None)

    def test_single_state_memory_halved(self):
        terms = [(1.0, (0, 1))]
        double = repro.simulator(10, terms=terms, backend="gpu")
        single = repro.simulator(10, terms=terms, backend="gpu",
                                 precision="single")
        d_res = double.simulate_qaoa([0.1], [0.2])
        s_res = single.simulate_qaoa([0.1], [0.2])
        assert s_res.nbytes * 2 == d_res.nbytes

    def test_state_size_guard_mentions_precision(self):
        # the guard is byte-based: n=35 complex128 exceeds the 256 GiB cap
        # (and fails before any allocation happens)
        with pytest.raises(ValueError, match="double-precision"):
            repro.fur.QAOAFURXSimulator(35, terms=[(1.0, (0, 1))])


class TestPhaseTableAndDiagonalDtypes:
    def test_phase_table_factor_dtype(self):
        table = build_phase_table(np.tile([0.0, 1.0, 2.0, 1.0], 8))
        assert table is not None
        assert table.factors(0.3).dtype == np.complex128
        assert table.factors(0.3, dtype=np.complex64).dtype == np.complex64
        batch = table.factors_batch(np.array([0.1, 0.2]), dtype=np.complex64)
        assert batch.dtype == np.complex64
        np.testing.assert_allclose(
            batch, table.factors_batch(np.array([0.1, 0.2])), rtol=1e-6)
        out = np.empty(len(table), dtype=np.complex64)
        assert table.phases(0.3, out=out) is out
        np.testing.assert_allclose(out, table.phases(0.3), rtol=1e-6)

    def test_phase_costs_view_cached_and_float32(self):
        sim = repro.simulator(5, terms=[(1.0, (0, 1)), (2.0, (2, 3))],
                              backend="python", precision="single")
        phase = sim._phase_costs()
        assert phase.dtype == np.float32
        assert sim._phase_costs() is phase  # cached, one cast total
        np.testing.assert_allclose(phase, sim.get_cost_diagonal(), rtol=1e-6)
        # double precision: the float64 diagonal is shared, not copied
        dbl = repro.simulator(5, terms=[(1.0, (0, 1)), (2.0, (2, 3))],
                              backend="python")
        assert dbl._phase_costs() is dbl._default_costs()

    def test_compress_decompress_float32_roundtrip(self):
        """Satellite: CompressedDiagonal round-trips to float32 losslessly.

        LABS/MaxCut cost values are small integers, exactly representable in
        float32 — decompressing at single precision must change nothing but
        the dtype (no precision-policy violation on the stored values).
        """
        costs = np.array([0.0, 3.0, 7.0, 3.0, 12.0, 0.0, 7.0, 1.0])
        compressed = compress_diagonal(costs)
        f32 = compressed.decompress(np.float32)
        assert f32.dtype == np.float32
        np.testing.assert_array_equal(f32.astype(np.float64), costs)
        round_tripped = compress_diagonal(f32.astype(np.float64))
        np.testing.assert_array_equal(round_tripped.decompress(), costs)

    def test_gpu_device_diagonal_dtype(self):
        sim = repro.simulator(5, terms=[(1.0, (0, 1))], backend="gpu",
                              precision="single")
        assert sim._costs_device.dtype == np.float32
        # host mirror stays float64 (expectation accumulation policy)
        assert sim.get_cost_diagonal().dtype == np.float64


class TestDistributedSinglePrecision:
    @pytest.mark.parametrize("backend", ["gpumpi", "cusvmpi"])
    def test_distributed_matches_single_node(self, backend, qaoa_angles):
        from repro.fur.registry import get_simulator_class

        n = 6
        terms = [(1.0, (0, 1)), (0.5, (2, 3)), (-0.25, (1, 4))]
        cls = get_simulator_class(backend, "x", precision="single")
        dist = cls(n, terms=terms, n_ranks=4, precision="single")
        result = dist.simulate_qaoa(*qaoa_angles)
        sv = dist.get_statevector(result)
        assert sv.dtype == np.complex64
        ref = repro.simulator(n, terms=terms, backend="python",
                              precision="single")
        ref_sv = ref.get_statevector(ref.simulate_qaoa(*qaoa_angles))
        np.testing.assert_allclose(sv, ref_sv, rtol=1e-5, atol=1e-6)
        e_ref = ref.get_expectation(ref.simulate_qaoa(*qaoa_angles))
        assert dist.get_expectation(result) == pytest.approx(e_ref, rel=1e-5)

    def test_spmd_program_single_precision(self, qaoa_angles):
        from repro.fur.mpi.spmd import run_distributed_qaoa

        n = 6
        terms = [(1.0, (0, 1)), (0.5, (2, 3))]
        out = run_distributed_qaoa(n, terms, *qaoa_angles, n_ranks=4,
                                   precision="single")
        assert out["statevector"].dtype == np.complex64
        ref = repro.simulator(n, terms=terms, backend="python")
        e_ref = ref.get_expectation(ref.simulate_qaoa(*qaoa_angles))
        assert out["expectation"] == pytest.approx(e_ref, rel=1e-5)


class TestVectorizedBruteForceHelpers:
    """Satellite: shift/mask broadcasts replace the per-element Python loops."""

    def test_bits_from_index_matches_scalar_definition(self):
        for n in (1, 5, 13):
            for x in (0, 1, (1 << n) - 1, (1 << n) // 3):
                expected = [(x >> q) & 1 for q in range(n)]
                got = bits_from_index(x, n)
                assert got.dtype == np.int64
                assert got.tolist() == expected

    def test_bits_from_index_range_check(self):
        with pytest.raises(ValueError):
            bits_from_index(8, 3)
        with pytest.raises(ValueError):
            bits_from_index(-1, 3)

    def test_index_round_trips(self):
        rng = np.random.default_rng(3)
        for n in (1, 7, 20):
            for x in rng.integers(0, 1 << n, size=5):
                x = int(x)
                assert index_from_bits(bits_from_index(x, n)) == x
                assert index_from_spins(spins_from_index(x, n)) == x

    def test_index_from_bits_beyond_uint64(self):
        # n >= 64 must use arbitrary-precision ints, not overflow silently
        assert index_from_bits([0] * 64 + [1]) == 1 << 64
        assert index_from_spins([1] * 64 + [-1]) == 1 << 64

    def test_index_from_bits_validation(self):
        with pytest.raises(ValueError, match="not 0/1"):
            index_from_bits([0, 2, 1])
        with pytest.raises(ValueError, match="not ±1"):
            index_from_spins([1, 0, -1])

    def test_evaluate_terms_rejects_2d_spins(self):
        from repro.problems.terms import evaluate_terms_on_spins

        with pytest.raises(ValueError, match="one-dimensional"):
            evaluate_terms_on_spins([(1.0, (0, 1))], np.array([[1, -1], [-1, 1]]))
