"""Thread-safety of the caches underneath the serving layer.

The serving layer executes engine batches on a thread pool, so the
process-wide diagonal cache, the per-simulator plan cache and the lazily
built derived tables must tolerate concurrent access.  The diagonal cache is
additionally *single-flight*: concurrent misses for the same problem must
cost exactly one precomputation.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.fur.cache import DiagonalCache
from repro.problems.terms import validate_terms

N = 8
TERMS = validate_terms([(0.5, (i, (i + 1) % N)) for i in range(N)], N)
N_THREADS = 8


def run_in_threads(fn, n_threads=N_THREADS):
    """Run ``fn(worker_index)`` in n threads after a common barrier."""
    barrier = threading.Barrier(n_threads)

    def task(i):
        barrier.wait()
        return fn(i)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return [f.result(30) for f in [pool.submit(task, i)
                                       for i in range(n_threads)]]


class TestDiagonalCacheSingleFlight:
    def test_concurrent_misses_cost_one_precomputation(self):
        cache = DiagonalCache()
        results = run_in_threads(lambda i: cache.get(TERMS, N))
        # one miss (the single precomputation), everyone else waited and hit
        assert cache.stats.misses == 1
        assert cache.stats.hits == N_THREADS - 1
        # every thread got the same shared read-only array
        first = results[0]
        assert all(r is first for r in results)
        assert not first.flags.writeable

    def test_unrelated_problems_precompute_concurrently(self):
        cache = DiagonalCache()
        problems = [validate_terms([(0.5, (i, (i + 1) % N))
                                    for i in range(N - k)], N)
                    for k in range(N_THREADS)]
        run_in_threads(lambda i: cache.get(problems[i], N))
        assert cache.stats.misses == N_THREADS
        assert cache.stats.hits == 0
        assert len(cache) == N_THREADS

    def test_oversize_diagonal_not_cached_but_all_threads_served(self):
        # budget below one n=8 diagonal (2^8 * 8 bytes): never stored
        cache = DiagonalCache(max_bytes=64)
        results = run_in_threads(lambda i: cache.get(TERMS, N))
        assert len(cache) == 0
        assert cache.stats.misses == N_THREADS  # each waiter recomputes
        reference = np.asarray(results[0])
        for r in results:
            np.testing.assert_array_equal(r, reference)

    def test_single_flight_leaves_no_pending_entries(self):
        cache = DiagonalCache()
        run_in_threads(lambda i: cache.get(TERMS, N))
        assert cache._pending == {}


class TestEnginePlanCache:
    def test_concurrent_plan_requests_compile_once(self):
        sim = repro.simulator(N, terms=TERMS, backend="python")
        plans = run_in_threads(lambda i: sim.engine.plan(4))
        assert sim.engine.stats.plan_compiles == 1
        assert sim.engine.stats.plan_cache_hits == N_THREADS - 1
        first = plans[0]
        assert all(p is first for p in plans)
        assert sim.engine.plan_cache_size() == 1

    def test_concurrent_batched_evaluation_is_consistent(self):
        sim = repro.simulator(N, terms=TERMS, backend="python")
        rng = np.random.default_rng(11)
        gammas = rng.uniform(0, 1, size=(4, 2))
        betas = rng.uniform(0, 1, size=(4, 2))
        expected = sim.get_expectation_batch(gammas, betas)

        results = run_in_threads(
            lambda i: sim.get_expectation_batch(gammas, betas))
        for values in results:
            np.testing.assert_allclose(values, expected, rtol=1e-12)
        # every evaluation after the first hit the compiled plan
        assert sim.engine.stats.plan_compiles == 1


class TestLazyDerivedCaches:
    def test_concurrent_lazy_initialization_builds_once(self):
        sim = repro.simulator(N, terms=TERMS, backend="python")
        costs = run_in_threads(lambda i: sim._default_costs())
        first = costs[0]
        assert all(c is first for c in costs)

    def test_concurrent_phase_table_resolution_is_shared(self):
        sim = repro.simulator(N, terms=TERMS, backend="python")
        tables = run_in_threads(lambda i: sim._diagonal_phase_table())
        first = tables[0]
        assert all(t is first for t in tables)

    def test_engine_property_returns_one_instance(self):
        sim = repro.simulator(N, terms=TERMS, backend="python")
        engines = run_in_threads(lambda i: sim.engine)
        first = engines[0]
        assert all(e is first for e in engines)
