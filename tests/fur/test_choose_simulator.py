"""Tests for the legacy chooser functions (Listings 1–3 API, now deprecated).

The registry itself is covered in ``test_registry.py``; these tests pin the
backwards-compatible behaviour of the ``choose_simulator*`` shims: they warn,
but keep resolving to exactly the classes the seed API returned.
"""

import pytest

from repro import fur
from repro.fur.cvect import QAOAFURXSimulatorC, QAOAFURXYRingSimulatorC
from repro.fur.python import QAOAFURXSimulator


def choose(shim, *args, **kwargs):
    with pytest.warns(DeprecationWarning, match="deprecated"):
        return shim(*args, **kwargs)


class TestChoosers:
    def test_default_is_c_backend(self):
        assert choose(fur.choose_simulator) is QAOAFURXSimulatorC
        assert choose(fur.choose_simulator, "auto") is QAOAFURXSimulatorC

    def test_explicit_backends(self):
        assert choose(fur.choose_simulator, "python") is QAOAFURXSimulator
        assert choose(fur.choose_simulator, "c") is QAOAFURXSimulatorC
        assert choose(fur.choose_simulator, "gpu").backend_name == "gpu"
        assert choose(fur.choose_simulator, "gpumpi").backend_name == "gpumpi"
        assert choose(fur.choose_simulator, "cusvmpi").backend_name == "cusvmpi"

    def test_aliases(self):
        assert choose(fur.choose_simulator, "numpy") is QAOAFURXSimulator
        assert choose(fur.choose_simulator, "nbcuda").backend_name == "gpu"
        assert choose(fur.choose_simulator, "custatevec").backend_name == "cusvmpi"

    def test_xy_choosers(self):
        assert choose(fur.choose_simulator_xyring, "c") is QAOAFURXYRingSimulatorC
        assert choose(fur.choose_simulator_xyring, "python").mixer_name == "xyring"
        assert choose(fur.choose_simulator_xycomplete, "gpu").mixer_name == "xycomplete"

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            choose(fur.choose_simulator, "does-not-exist")

    def test_distributed_backends_only_support_x_mixer(self):
        with pytest.raises(ValueError):
            choose(fur.choose_simulator_xyring, "gpumpi")
        with pytest.raises(ValueError):
            choose(fur.choose_simulator_xycomplete, "cusvmpi")

    def test_available_backends(self):
        assert set(fur.available_backends()) == {"python", "c", "gpu", "gpumpi", "cusvmpi"}

    def test_listing1_flow(self):
        """The paper's Listing 1, verbatim modulo the package name."""
        simclass = choose(fur.choose_simulator, name="auto")
        n = 6
        terms = [(0.3, (i, j)) for i in range(n) for j in range(i + 1, n)]
        sim = simclass(n, terms=terms)
        costs = sim.get_cost_diagonal()
        assert costs.shape == (64,)
        result = sim.simulate_qaoa([0.1], [0.2])
        energy = sim.get_expectation(result)
        assert costs.min() - 1e-9 <= energy <= costs.max() + 1e-9
