"""Tests for the distributed simulators (Algorithm 4 and the index-swap variant)."""

import numpy as np
import pytest

from repro.fur import get_simulator_class
from repro.fur.mpi import (
    QAOAFURXSimulatorCUSVMPI,
    QAOAFURXSimulatorGPUMPI,
    run_distributed_qaoa,
)
from repro.problems import labs, maxcut

DISTRIBUTED_CLASSES = [QAOAFURXSimulatorGPUMPI, QAOAFURXSimulatorCUSVMPI]


def reference_state(n, terms, gammas, betas):
    sim = get_simulator_class("c")(n, terms=terms)
    res = sim.simulate_qaoa(gammas, betas)
    return sim, np.asarray(sim.get_statevector(res))


class TestDistributedCorrectness:
    @pytest.mark.parametrize("cls", DISTRIBUTED_CLASSES)
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
    def test_matches_single_node_labs(self, cls, n_ranks):
        n, p = 8, 2
        terms = labs.get_terms(n)
        rng = np.random.default_rng(n_ranks)
        gammas, betas = rng.uniform(0, 1, p), rng.uniform(0, 1, p)
        ref_sim, ref = reference_state(n, terms, gammas, betas)
        sim = cls(n, terms=terms, n_ranks=n_ranks)
        res = sim.simulate_qaoa(gammas, betas)
        np.testing.assert_allclose(sim.get_statevector(res), ref, atol=1e-12)
        assert sim.get_expectation(res) == pytest.approx(
            ref_sim.get_expectation(ref_sim.simulate_qaoa(gammas, betas)), abs=1e-10)

    @pytest.mark.parametrize("cls", DISTRIBUTED_CLASSES)
    def test_matches_single_node_maxcut(self, cls, small_maxcut, qaoa_angles):
        graph, terms = small_maxcut
        gammas, betas = qaoa_angles
        _, ref = reference_state(6, terms, gammas, betas)
        sim = cls(6, terms=terms, n_ranks=4)
        np.testing.assert_allclose(
            sim.get_statevector(sim.simulate_qaoa(gammas, betas)), ref, atol=1e-12)

    @pytest.mark.parametrize("algorithm", ["direct", "pairwise", "ring", "bruck"])
    def test_gpumpi_alltoall_algorithms_agree(self, algorithm, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        _, ref = reference_state(n, terms, gammas, betas)
        sim = QAOAFURXSimulatorGPUMPI(n, terms=terms, n_ranks=4, alltoall_algorithm=algorithm)
        np.testing.assert_allclose(
            sim.get_statevector(sim.simulate_qaoa(gammas, betas)), ref, atol=1e-12)

    @pytest.mark.parametrize("cls", DISTRIBUTED_CLASSES)
    def test_parallel_local_threads_agree(self, cls, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        _, ref = reference_state(n, terms, gammas, betas)
        sim = cls(n, terms=terms, n_ranks=4, parallel_local=True)
        np.testing.assert_allclose(
            sim.get_statevector(sim.simulate_qaoa(gammas, betas)), ref, atol=1e-12)

    @pytest.mark.parametrize("cls", DISTRIBUTED_CLASSES)
    def test_custom_initial_state(self, cls, qaoa_angles):
        n = 6
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        rng = np.random.default_rng(3)
        sv0 = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        sv0 /= np.linalg.norm(sv0)
        ref_sim = get_simulator_class("c")(n, terms=terms)
        ref = np.asarray(ref_sim.get_statevector(ref_sim.simulate_qaoa(gammas, betas, sv0=sv0)))
        sim = cls(n, terms=terms, n_ranks=4)
        np.testing.assert_allclose(
            sim.get_statevector(sim.simulate_qaoa(gammas, betas, sv0=sv0)), ref, atol=1e-12)


class TestDistributedOutputs:
    def test_slices_and_gather(self, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = QAOAFURXSimulatorGPUMPI(n, terms=terms, n_ranks=4)
        res = sim.simulate_qaoa(gammas, betas)
        slices = sim.get_statevector(res, mpi_gather=False)
        assert len(slices) == 4
        assert all(s.shape == (64,) for s in slices)
        np.testing.assert_allclose(np.concatenate(slices), sim.get_statevector(res))
        probs = sim.get_probabilities(res)
        assert probs.sum() == pytest.approx(1.0, abs=1e-10)

    def test_overlap_matches_single_node(self, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        ref_sim = get_simulator_class("c")(n, terms=terms)
        ref_ov = ref_sim.get_overlap(ref_sim.simulate_qaoa(gammas, betas))
        sim = QAOAFURXSimulatorCUSVMPI(n, terms=terms, n_ranks=8)
        assert sim.get_overlap(sim.simulate_qaoa(gammas, betas)) == pytest.approx(ref_ov, abs=1e-10)

    def test_cost_slices_are_local_precomputations(self):
        """Each rank's cost slice equals the corresponding slice of the full diagonal."""
        n = 8
        terms = labs.get_terms(n)
        sim = QAOAFURXSimulatorGPUMPI(n, terms=terms, n_ranks=4)
        full = sim.get_cost_diagonal()
        np.testing.assert_allclose(full, labs.energies_all_sequences(n))
        s = sim.local_states
        for r, sl in enumerate(sim._cost_slices):
            np.testing.assert_allclose(sl, full[r * s:(r + 1) * s])

    def test_costs_constructor_path(self, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        from repro.fur import precompute_cost_diagonal

        costs = precompute_cost_diagonal(terms, n)
        gammas, betas = qaoa_angles
        _, ref = reference_state(n, terms, gammas, betas)
        sim = QAOAFURXSimulatorGPUMPI(n, costs=costs, n_ranks=4)
        np.testing.assert_allclose(
            sim.get_statevector(sim.simulate_qaoa(gammas, betas)), ref, atol=1e-12)


class TestCommunicationPatterns:
    def test_gpumpi_traffic_two_alltoalls_per_layer(self, qaoa_angles):
        n, p = 8, 2
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = QAOAFURXSimulatorGPUMPI(n, terms=terms, n_ranks=4)
        sim.simulate_qaoa(gammas, betas)
        assert len(sim.traffic_log) == 2 * p
        # each alltoall moves (K-1)/K of the state vector (counting both directions once)
        slice_bytes = (1 << n) // 4 * 16
        expected = 4 * 3 * (slice_bytes // 4)
        assert all(t.total_bytes == expected for t in sim.traffic_log)

    def test_cusvmpi_traffic_is_pairwise(self, qaoa_angles):
        n, p = 8, 2
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = QAOAFURXSimulatorCUSVMPI(n, terms=terms, n_ranks=4)
        sim.simulate_qaoa(gammas, betas)
        assert len(sim.traffic_log) == p
        for trace in sim.traffic_log:
            # every message is half a slice, between ranks differing in one bit
            for msg in trace.messages:
                assert msg.nbytes == (1 << n) // 4 // 2 * 16
                assert bin(msg.source ^ msg.dest).count("1") == 1

    def test_single_rank_no_communication(self, qaoa_angles):
        n = 6
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = QAOAFURXSimulatorGPUMPI(n, terms=terms, n_ranks=1)
        sim.simulate_qaoa(gammas, betas)
        assert sim.traffic_log == []


class TestValidation:
    def test_rank_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulatorGPUMPI(8, terms=[(1.0, (0,))], n_ranks=3)

    def test_too_many_ranks_for_qubits(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulatorGPUMPI(4, terms=[(1.0, (0,))], n_ranks=8)

    def test_unknown_alltoall_algorithm(self):
        with pytest.raises(ValueError):
            QAOAFURXSimulatorGPUMPI(8, terms=[(1.0, (0,))], n_ranks=4, alltoall_algorithm="magic")


class TestSPMDPath:
    def test_spmd_matches_reference(self):
        n, p = 8, 2
        terms = labs.get_terms(n)
        rng = np.random.default_rng(0)
        gammas, betas = rng.uniform(0, 1, p), rng.uniform(0, 1, p)
        ref_sim, ref = reference_state(n, terms, gammas, betas)
        out = run_distributed_qaoa(n, terms, gammas, betas, n_ranks=4)
        np.testing.assert_allclose(out["statevector"], ref, atol=1e-12)
        assert out["expectation"] == pytest.approx(
            ref_sim.get_expectation(ref_sim.simulate_qaoa(gammas, betas)), abs=1e-10)
        assert all(r["n_alltoall"] == 2 * p for r in out["ranks"])

    def test_spmd_rejects_bad_rank_count(self):
        terms = labs.get_terms(6)
        with pytest.raises(ValueError):
            run_distributed_qaoa(6, terms, [0.1], [0.1], n_ranks=3)
        with pytest.raises(ValueError):
            run_distributed_qaoa(4, terms[:3], [0.1], [0.1], n_ranks=8)
