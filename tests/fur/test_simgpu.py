"""Tests for the simulated-GPU backend (device accounting + numerical parity)."""

import numpy as np
import pytest

from repro.fur import get_simulator_class
from repro.fur.simgpu import (
    A100_40GB,
    A100_80GB,
    DeviceSpec,
    QAOAFURXSimulatorGPU,
    QAOAFURXYRingSimulatorGPU,
    SimulatedDevice,
)
from repro.problems import labs


class TestSimulatedDevice:
    def test_allocation_accounting(self):
        dev = SimulatedDevice(A100_80GB)
        arr = dev.empty(1024)
        assert dev.stats.allocated_bytes == arr.nbytes
        arr.free()
        assert dev.stats.allocated_bytes == 0
        assert dev.stats.peak_allocated_bytes == 16 * 1024

    def test_out_of_memory(self):
        tiny = DeviceSpec(name="tiny", memory_capacity=1024, memory_bandwidth=1e9,
                          pcie_bandwidth=1e9, kernel_launch_overhead=0.0)
        dev = SimulatedDevice(tiny)
        with pytest.raises(MemoryError):
            dev.empty(1 << 20)

    def test_transfer_and_kernel_charges(self):
        dev = SimulatedDevice(A100_40GB)
        host = np.ones(256, dtype=np.complex128)
        arr = dev.to_device(host)
        assert dev.stats.host_to_device_bytes == host.nbytes
        t0 = dev.modeled_time
        dev.charge_kernel(10_000)
        assert dev.modeled_time > t0
        assert dev.stats.kernels_launched == 1
        out = arr.copy_to_host()
        np.testing.assert_array_equal(out, host)
        assert dev.stats.device_to_host_bytes == host.nbytes

    def test_invalid_charges(self):
        dev = SimulatedDevice()
        with pytest.raises(ValueError):
            dev.charge_kernel(-1)

    def test_reset_clock_keeps_allocations(self):
        dev = SimulatedDevice()
        dev.empty(128)
        dev.charge_kernel(1000)
        dev.reset_clock()
        assert dev.modeled_time == 0.0
        assert dev.stats.allocated_bytes > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(name="bad", memory_capacity=0, memory_bandwidth=1, pcie_bandwidth=1,
                       kernel_launch_overhead=0)


class TestGPUSimulatorParity:
    @pytest.mark.parametrize("p", [1, 3])
    def test_matches_cpu_backend(self, small_labs_terms, p):
        n = 6
        rng = np.random.default_rng(p)
        gammas, betas = rng.uniform(0, 1, p), rng.uniform(0, 1, p)
        ref_sim = get_simulator_class("c")(n, terms=small_labs_terms)
        ref = np.asarray(ref_sim.get_statevector(ref_sim.simulate_qaoa(gammas, betas)))
        gpu_sim = get_simulator_class("gpu")(n, terms=small_labs_terms)
        res = gpu_sim.simulate_qaoa(gammas, betas)
        np.testing.assert_allclose(gpu_sim.get_statevector(res), ref, atol=1e-12)
        assert gpu_sim.get_expectation(res) == pytest.approx(ref_sim.get_expectation(
            ref_sim.simulate_qaoa(gammas, betas)), abs=1e-10)

    def test_xy_ring_gpu_matches_cpu(self, small_labs_terms, qaoa_angles):
        from repro.fur import get_simulator_class

        gammas, betas = qaoa_angles
        ref_sim = get_simulator_class("c", mixer="xyring")(6, terms=small_labs_terms)
        ref = np.asarray(ref_sim.get_statevector(ref_sim.simulate_qaoa(gammas, betas)))
        gpu = QAOAFURXYRingSimulatorGPU(6, terms=small_labs_terms)
        np.testing.assert_allclose(gpu.get_statevector(gpu.simulate_qaoa(gammas, betas)),
                                   ref, atol=1e-12)

    def test_probabilities_preserve_state_flag(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = QAOAFURXSimulatorGPU(6, terms=small_labs_terms)
        res = sim.simulate_qaoa(gammas, betas)
        probs_preserved = sim.get_probabilities(res, preserve_state=True)
        # state still intact: expectation consistent with preserved probabilities
        manual = float(np.dot(probs_preserved, sim.get_cost_diagonal()))
        assert sim.get_expectation(res) == pytest.approx(manual, abs=1e-10)
        # now destroy the state in place; probabilities must still be correct
        probs_destroyed = sim.get_probabilities(res, preserve_state=False)
        np.testing.assert_allclose(probs_destroyed, probs_preserved, atol=1e-12)

    def test_overlap_matches_cpu(self, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        cpu = get_simulator_class("c")(n, terms=terms)
        gpu = get_simulator_class("gpu")(n, terms=terms)
        ov_cpu = cpu.get_overlap(cpu.simulate_qaoa(gammas, betas))
        ov_gpu = gpu.get_overlap(gpu.simulate_qaoa(gammas, betas))
        assert ov_gpu == pytest.approx(ov_cpu, abs=1e-10)

    def test_expectation_with_custom_costs(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = QAOAFURXSimulatorGPU(6, terms=small_labs_terms)
        res = sim.simulate_qaoa(gammas, betas)
        assert sim.get_expectation(res, costs=np.full(64, 3.0)) == pytest.approx(3.0)

    def test_costs_constructor_path(self, small_labs_terms):
        from repro.fur import precompute_cost_diagonal

        costs = precompute_cost_diagonal(small_labs_terms, 6)
        sim = QAOAFURXSimulatorGPU(6, costs=costs)
        np.testing.assert_allclose(sim.get_cost_diagonal(), costs)


class TestDeviceTimeModel:
    def test_modeled_time_accumulates_and_scales_with_depth(self, small_labs_terms):
        sim = QAOAFURXSimulatorGPU(6, terms=small_labs_terms)
        t_pre = sim.modeled_device_time()
        assert t_pre > 0  # precomputation charged
        sim.simulate_qaoa([0.1], [0.2])
        t1 = sim.modeled_device_time()
        sim.simulate_qaoa([0.1] * 4, [0.2] * 4)
        t4 = sim.modeled_device_time()
        assert t1 > t_pre
        # four layers cost roughly four times one layer (same kernels per layer)
        assert (t4 - t1) > 2.5 * (t1 - t_pre)

    def test_reset_device_clock(self, small_labs_terms):
        sim = QAOAFURXSimulatorGPU(6, terms=small_labs_terms)
        sim.simulate_qaoa([0.1], [0.2])
        sim.reset_device_clock()
        assert sim.modeled_device_time() == 0.0

    def test_larger_problem_processes_more_bytes(self):
        """The bandwidth term of the model scales with the state-vector size.

        (At these tiny sizes the modeled *time* is dominated by the fixed
        kernel-launch overhead, so the byte counter is the meaningful check.)
        """
        bytes_processed = {}
        for n in (8, 10):
            sim = QAOAFURXSimulatorGPU(n, terms=labs.get_terms(n))
            sim.reset_device_clock()
            sim.simulate_qaoa([0.1], [0.2])
            bytes_processed[n] = sim.device.stats.bytes_processed
        assert bytes_processed[10] > 3 * bytes_processed[8]
