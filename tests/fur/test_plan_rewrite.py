"""Plan-rewrite optimizer passes (repro.fur.rewrite) and their parity pins.

Covers

* the randomized cross-backend parity harness: random terms, angles, mixers,
  precisions and batch shapes (seeded via the session ``seeded_rng`` fixture,
  reproducible from the seed printed in the pytest header), asserting
  optimized == unoptimized == looped within the established envelopes
  (1e-5 single / 1e-12 double) for every importable backend,
* unit semantics of the six passes (FusePhaseIntoMixer, CoalesceExchanges,
  FoldInitialPhase, FuseMixerIntoExpectation, EliminateNoOps,
  ReorderCommuting), including capability gating and fused-op demotion,
* the ``optimize`` knob: constructor default, per-call override, facade
  validation and plan-cache key membership,
* the coalesced gpumpi exchange: bitwise consistency with the per-row path
  at 2 and 4 ranks, and the batch-size-independent message count,
* engine statistics for rewrites (fused ops counted distinctly,
  ops-before/after per pass).
"""

import numpy as np
import pytest

import repro
from repro.fur import available_backends, get_backend
from repro.fur.engine import (
    ExpectationOp,
    FusedMixerExpectationOp,
    FusedPhaseMixerOp,
    InitialPhaseOp,
    MergedMixerOp,
    MergedPhaseOp,
    MixerOp,
    PhaseOp,
)
from repro.fur.rewrite import (
    DEFAULT_PASSES,
    CoalesceExchanges,
    EliminateNoOps,
    FoldInitialPhase,
    FuseMixerIntoExpectation,
    FusePhaseIntoMixer,
    ReorderCommuting,
    resolve_optimize,
    run_passes,
)
from repro.problems import labs
from repro.testing import random_terms

#: Every backend importable in this environment participates in the harness.
BACKENDS = available_backends(importable_only=True)
PRECISIONS = ("double", "single")

#: Established parity envelopes (relative, applied against the looped path).
ENVELOPE = {"double": 1e-12, "single": 1e-5}

#: Random configurations drawn per backend x precision cell.
N_TRIALS = 3


def _random_config(rng, spec):
    """One random problem/schedule configuration for a backend spec."""
    if spec.capabilities != "full":
        # expectation-only backends (tensornet) contract all 2^n output
        # amplitudes per schedule row — keep the randomized cell small.
        n = int(rng.integers(4, 6))
        p = int(rng.integers(1, 3))
        batch = int(rng.integers(1, 3))
    else:
        n = int(rng.integers(5, 9))
        p = int(rng.integers(1, 5))
        batch = int(rng.integers(1, 6))
    mixer = str(rng.choice(spec.mixers))
    terms = random_terms(rng, n, n_terms=int(rng.integers(3, 9)))
    gammas = rng.uniform(-2.0, 2.0, (p,))[None, :] * rng.uniform(0.5, 1.0, (batch, 1))
    betas = rng.uniform(-2.0, 2.0, (batch, p))
    gammas = np.ascontiguousarray(gammas)
    # Randomly zero whole angle columns so EliminateNoOps fires (a column is
    # a no-op only when zero across the entire batch).
    if rng.random() < 0.5:
        gammas[:, int(rng.integers(p))] = 0.0
    if rng.random() < 0.5:
        betas[:, int(rng.integers(p))] = 0.0
    kwargs = {}
    if spec.distributed:
        kwargs["n_ranks"] = int(rng.choice([2, 4]))
    return n, mixer, terms, gammas, betas, kwargs


class TestRandomizedParityHarness:
    """optimized == unoptimized == looped, across everything, from one seed."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_optimized_matches_unoptimized_and_looped(self, backend, precision,
                                                      seeded_rng):
        spec = get_backend(backend)
        if not spec.supports_precision(precision):
            pytest.skip(f"{backend} does not implement {precision}")
        for trial in range(N_TRIALS):
            n, mixer, terms, gb, bb, kwargs = _random_config(seeded_rng, spec)
            sim = repro.simulator(n, terms=terms, backend=backend,
                                  mixer=mixer, precision=precision, **kwargs)
            optimized = sim.get_expectation_batch(gb, bb)
            unoptimized = sim.get_expectation_batch(gb, bb, optimize="none")
            looped = sim.get_expectation_batch(gb, bb, mode="looped")
            tol = ENVELOPE[precision] * max(1.0, float(np.max(np.abs(looped))))
            context = (f"backend={backend} precision={precision} "
                       f"trial={trial} n={n} mixer={mixer} "
                       f"shape={gb.shape} kwargs={kwargs} "
                       "(reproduce via the seed in the pytest header)")
            np.testing.assert_allclose(optimized, unoptimized, atol=tol,
                                       err_msg=f"optimized vs unoptimized: {context}")
            np.testing.assert_allclose(optimized, looped, atol=tol,
                                       err_msg=f"optimized vs looped: {context}")
            np.testing.assert_allclose(unoptimized, looped, atol=tol,
                                       err_msg=f"unoptimized vs looped: {context}")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_simulate_batch_states_match_unoptimized(self, backend, seeded_rng):
        """The evolved states (not just expectations) survive the rewrites."""
        spec = get_backend(backend)
        if not spec.supports_capability("statevector"):
            pytest.skip(f"{backend} is {spec.capabilities}: no statevectors")
        kwargs = {"n_ranks": 2} if spec.distributed else {}
        terms = labs.get_terms(6)
        gb = seeded_rng.uniform(-1.0, 1.0, (3, 2))
        bb = seeded_rng.uniform(-1.0, 1.0, (3, 2))
        sim = repro.simulator(6, terms=terms, backend=backend, **kwargs)
        optimized = sim.simulate_qaoa_batch(gb, bb)
        unoptimized = sim.simulate_qaoa_batch(gb, bb, optimize="none")
        for opt_res, unopt_res in zip(optimized, unoptimized):
            np.testing.assert_allclose(
                np.asarray(sim.get_statevector(opt_res)),
                np.asarray(sim.get_statevector(unopt_res)), atol=1e-12)


class TestPassSemantics:
    def test_fuse_pass_merges_x_layers(self):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python")
        plan = sim.engine.plan(3)
        assert plan.optimize == "default"
        # every layer fuses phase+mixer; the tail additionally absorbs the
        # expectation reduction (FuseMixerIntoExpectation)
        assert plan.ops == (FusedPhaseMixerOp(0), FusedPhaseMixerOp(1),
                            FusedMixerExpectationOp(2, with_phase=True))
        fuse = [r for r in plan.rewrites if r.pass_name == "fuse-phase-mixer"]
        assert fuse and fuse[0].rewrites == 3
        assert fuse[0].ops_before == 7 and fuse[0].ops_after == 4
        fme = [r for r in plan.rewrites if r.pass_name == "fuse-mixer-expectation"]
        assert fme and fme[0].rewrites == 1
        assert fme[0].ops_before == 4 and fme[0].ops_after == 3

    def test_xy_mixers_keep_split_ops(self):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python",
                              mixer="xyring")
        plan = sim.engine.plan(2)
        # no fused XY kernels, but the head phase folds into block staging
        assert plan.ops == (InitialPhaseOp(0), MixerOp(0, 1),
                            PhaseOp(1), MixerOp(1, 1), ExpectationOp())
        fold = [r for r in plan.rewrites if r.pass_name == "fold-initial-phase"]
        assert fold and fold[0].rewrites == 1
        assert all(r.rewrites == 0 for r in plan.rewrites
                   if r.pass_name != "fold-initial-phase")

    def test_coalesce_marks_gpumpi_ops_only(self):
        terms = labs.get_terms(6)
        gpumpi = repro.simulator(6, terms=terms, backend="gpumpi", n_ranks=2)
        plan = gpumpi.engine.plan(2)
        assert plan.ops[:2] == (FusedPhaseMixerOp(0, coalesce=True),
                                FusedPhaseMixerOp(1, coalesce=True))
        cusvmpi = repro.simulator(6, terms=terms, backend="cusvmpi", n_ranks=2)
        assert cusvmpi.engine.plan(2).ops[0] == FusedPhaseMixerOp(0)

    def test_fuse_gated_on_provider_capability(self):
        class NoFusion:
            supports_fused_phase_mixer = False
            supports_coalesced_exchange = False

        ops = (PhaseOp(0), MixerOp(0), ExpectationOp())
        out, reports = run_passes(ops, NoFusion(), stage="compile")
        assert out == ops
        assert all(r.rewrites == 0 for r in reports)

    def test_eliminate_drops_zero_angle_columns(self):
        ops = (PhaseOp(0), MixerOp(0), PhaseOp(1), MixerOp(1), ExpectationOp())
        gammas = np.array([[0.0, 0.3], [0.0, 0.5]])
        betas = np.array([[0.4, 0.0], [0.1, 0.0]])
        out, reports = run_passes(ops, object(), gammas=gammas, betas=betas,
                                  stage="execute")
        # elimination drops the zero columns; the surviving PhaseOp(1) then
        # trails into the expectation and the reorder pass drops it too
        assert out == (MixerOp(0), ExpectationOp())
        assert reports[0].pass_name == "eliminate-noops"
        assert reports[0].rewrites == 2
        assert reports[1].pass_name == "reorder-commuting"
        assert reports[1].rewrites == 1

    def test_eliminate_requires_column_zero_across_whole_batch(self):
        ops = (PhaseOp(0), MixerOp(0))
        gammas = np.array([[0.0], [0.7]])  # only one row is zero
        betas = np.array([[0.2], [0.3]])
        out, _ = run_passes(ops, object(), gammas=gammas, betas=betas,
                            stage="execute")
        assert out == ops

    def test_eliminate_demotes_fused_ops(self):
        ops = (FusedPhaseMixerOp(0, coalesce=True), FusedPhaseMixerOp(1),
               FusedPhaseMixerOp(2), ExpectationOp())
        gammas = np.array([[0.0, 0.4, 0.0]])
        betas = np.array([[0.3, 0.0, 0.0]])
        out, reports = run_passes(ops, object(), gammas=gammas, betas=betas,
                                  stage="execute")
        # layer 0: zero gamma -> mixer half survives (coalesce preserved);
        # layer 1: zero beta -> phase half survives but trails into the
        # expectation and is dropped by reorder; layer 2: fully dropped.
        assert out == (MixerOp(0, coalesce=True), ExpectationOp())
        assert reports[0].rewrites == 3

    def test_all_zero_schedule_reduces_to_initial_state(self):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python")
        values = sim.get_expectation_batch(np.zeros((2, 3)), np.zeros((2, 3)))
        diag = sim.get_cost_diagonal()
        expected = float(diag.mean())  # uniform superposition expectation
        np.testing.assert_allclose(values, [expected, expected], atol=1e-12)
        # compile plan is (F0, F1, FME2): the two fused layers drop outright
        # and the tail op demotes to a bare expectation (3 ops -> 1 op)
        assert sim.engine.stats.ops_eliminated == 2

    def test_default_pipeline_order(self):
        kinds = [type(p) for p in DEFAULT_PASSES]
        assert kinds == [FusePhaseIntoMixer, CoalesceExchanges,
                         FoldInitialPhase, FuseMixerIntoExpectation,
                         EliminateNoOps, ReorderCommuting]
        assert not FusePhaseIntoMixer.needs_angles
        assert not CoalesceExchanges.needs_angles
        assert not FoldInitialPhase.needs_angles
        assert not FuseMixerIntoExpectation.needs_angles
        assert EliminateNoOps.needs_angles
        assert ReorderCommuting.needs_angles

    def test_run_passes_rejects_unknown_stage(self):
        with pytest.raises(ValueError, match="unknown rewrite stage"):
            run_passes((), object(), stage="later")


class _Flags:
    """Minimal stand-in provider exposing only the given capability flags."""

    def __init__(self, **flags):
        self.__dict__.update(flags)


class TestNewPassSemantics:
    """Unit semantics of FoldInitialPhase, FuseMixerIntoExpectation and
    ReorderCommuting against stub providers."""

    def test_fold_initial_phase_only_rewrites_the_head_op(self):
        fold = FoldInitialPhase()
        staged = _Flags(supports_staged_phase=True)
        ops = (PhaseOp(0), MixerOp(0), PhaseOp(1), ExpectationOp())
        out, n = fold.run(ops, staged)
        assert out == (InitialPhaseOp(0), MixerOp(0), PhaseOp(1), ExpectationOp())
        assert n == 1
        # a non-phase head op is not a known state: no fold
        tail_first = (MixerOp(0), PhaseOp(1), ExpectationOp())
        assert fold.run(tail_first, staged) == (tail_first, 0)
        # gated on the provider capability
        assert fold.run(ops, _Flags()) == (ops, 0)

    def test_fuse_mixer_into_expectation_rewrites_the_tail(self):
        fme = FuseMixerIntoExpectation()
        cap = _Flags(supports_fused_mixer_expectation=True)
        ops = (PhaseOp(0), MixerOp(1, 2), ExpectationOp())
        out, n = fme.run(ops, cap)
        assert out == (PhaseOp(0), FusedMixerExpectationOp(1, n_trotters=2))
        assert n == 1
        # a fused phase+mixer tail keeps its phase half (with_phase=True)
        out2, n2 = fme.run((FusedPhaseMixerOp(1), ExpectationOp()), cap)
        assert out2 == (FusedMixerExpectationOp(1, with_phase=True),)
        assert n2 == 1
        # coalesced (distributed) tails are left alone
        coalesced = (MixerOp(1, coalesce=True), ExpectationOp())
        assert fme.run(coalesced, cap) == (coalesced, 0)
        # gated on the provider capability
        assert fme.run(ops, _Flags()) == (ops, 0)

    def test_reorder_merges_adjacent_commuting_sweeps(self):
        reorder = ReorderCommuting()
        ops = (PhaseOp(0), PhaseOp(1), MixerOp(0), MixerOp(1), MixerOp(2),
               ExpectationOp())
        out, n = reorder.run(ops, _Flags(mixer_self_commutes=True))
        assert out == (MergedPhaseOp((0, 1)), MergedMixerOp((0, 1, 2)),
                       ExpectationOp())
        assert n == 3
        # a non-self-commuting mixer blocks the mixer merge only
        out2, n2 = reorder.run(ops, _Flags())
        assert out2 == (MergedPhaseOp((0, 1)), MixerOp(0), MixerOp(1),
                        MixerOp(2), ExpectationOp())
        assert n2 == 1
        # mismatched Trotterization blocks the merge too
        ops3 = (MixerOp(0, 2), MixerOp(1, 3), ExpectationOp())
        assert reorder.run(ops3, _Flags(mixer_self_commutes=True)) == (ops3, 0)

    def test_reorder_drops_trailing_diagonals(self):
        reorder = ReorderCommuting()
        ops = (MixerOp(0), PhaseOp(1), MergedPhaseOp((2, 3)), ExpectationOp())
        out, n = reorder.run(ops, _Flags())
        assert out == (MixerOp(0), ExpectationOp())
        assert n == 2


class TestOptimizeKnob:
    def test_optimize_is_part_of_the_plan_key(self):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python")
        default = sim.engine.plan(2)
        none = sim.engine.plan(2, optimize="none")
        assert default is not none
        assert default.key != none.key
        assert default.key[:-1] == none.key[:-1]  # only optimize differs
        assert none.ops == (PhaseOp(0), MixerOp(0, 1),
                            PhaseOp(1), MixerOp(1, 1), ExpectationOp())

    def test_constructor_knob_sets_the_default(self):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python",
                              optimize="none")
        assert sim.optimize == "none"
        assert sim.engine.plan(2).optimize == "none"
        # the per-call override still enables the pipeline
        assert sim.engine.plan(2, optimize="default").ops[0] == FusedPhaseMixerOp(0)

    @pytest.mark.parametrize("backend", ["python", "c", "gpu"])
    def test_facade_forwards_optimize(self, backend):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend=backend,
                              optimize="none")
        assert sim.optimize == "none"

    def test_invalid_optimize_rejected(self):
        terms = labs.get_terms(6)
        with pytest.raises(ValueError, match="unknown optimize level"):
            repro.simulator(6, terms=terms, optimize="aggressive")
        with pytest.raises(ValueError, match="unknown optimize level"):
            resolve_optimize("fast")
        sim = repro.simulator(6, terms=terms, backend="python")
        with pytest.raises(ValueError, match="unknown optimize level"):
            sim.get_expectation_batch([[0.1]], [[0.2]], optimize="fast")

    def test_instance_passthrough_checks_optimize(self):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python",
                              optimize="none")
        assert repro.simulator(6, backend=sim, terms=None) is sim
        with pytest.raises(ValueError, match="optimize"):
            repro.simulator(6, backend=sim, terms=None, optimize="default")

    def test_backend_spec_advertises_rewrites(self):
        assert get_backend("python").supports_rewrite("fuse-phase-mixer")
        assert get_backend("python").supports_rewrite("fold-initial-phase")
        assert get_backend("c").supports_rewrite("fuse-mixer-expectation")
        assert get_backend("gpumpi").supports_rewrite("coalesce-exchanges")
        assert not get_backend("cusvmpi").supports_rewrite("coalesce-exchanges")
        # the baselines only have kernels for the angle-merging rewrites
        assert get_backend("gates").supports_rewrite("reorder-commuting")
        assert not get_backend("gates").supports_rewrite("fuse-phase-mixer")
        assert get_backend("tensornet").supports_rewrite("reorder-commuting")


class TestCoalescedExchange:
    """The gpumpi block-wide Alltoall vs the per-row path."""

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_bitwise_consistent_with_per_row_path(self, n_ranks, seeded_rng):
        terms = labs.get_terms(8)
        gb = seeded_rng.uniform(0.0, 1.0, (3, 2))
        bb = seeded_rng.uniform(0.0, 1.0, (3, 2))
        coalesced = repro.simulator(8, terms=terms, backend="gpumpi",
                                    n_ranks=n_ranks)
        per_row = repro.simulator(8, terms=terms, backend="gpumpi",
                                  n_ranks=n_ranks, optimize="none")
        res_c = coalesced.simulate_qaoa_batch(gb, bb)
        res_p = per_row.simulate_qaoa_batch(gb, bb)
        for a, b in zip(res_c, res_p):
            np.testing.assert_array_equal(a.gather(), b.gather())
        np.testing.assert_array_equal(
            coalesced.get_expectation_batch(gb, bb),
            per_row.get_expectation_batch(gb, bb, optimize="none"))

    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_message_count_is_batch_size_independent(self, n_ranks, seeded_rng):
        terms = labs.get_terms(8)
        p = 2
        counts = {}
        for batch in (2, 5):
            sim = repro.simulator(8, terms=terms, backend="gpumpi",
                                  n_ranks=n_ranks)
            sim.get_expectation_batch(seeded_rng.uniform(0.3, 1.0, (batch, p)),
                                      seeded_rng.uniform(0.3, 1.0, (batch, p)))
            counts[batch] = sum(t.num_messages for t in sim.traffic_log)
        # coalesced: 2 exchanges per layer x K(K-1) messages, regardless of B
        assert counts[2] == counts[5]
        assert counts[2] == p * 2 * n_ranks * (n_ranks - 1)

    def test_per_row_message_count_scales_with_batch(self, seeded_rng):
        terms = labs.get_terms(8)
        counts = {}
        for batch in (2, 5):
            sim = repro.simulator(8, terms=terms, backend="gpumpi", n_ranks=2,
                                  optimize="none")
            sim.get_expectation_batch(seeded_rng.uniform(0.3, 1.0, (batch, 2)),
                                      seeded_rng.uniform(0.3, 1.0, (batch, 2)))
            counts[batch] = sum(t.num_messages for t in sim.traffic_log)
        assert counts[5] == counts[2] * 5 // 2

    @pytest.mark.parametrize("algorithm", ["direct", "pairwise", "ring", "bruck"])
    def test_alltoall_algorithms_stay_consistent(self, algorithm, seeded_rng):
        terms = labs.get_terms(6)
        gb = seeded_rng.uniform(0.0, 1.0, (3, 2))
        bb = seeded_rng.uniform(0.0, 1.0, (3, 2))
        sim = repro.simulator(6, terms=terms, backend="gpumpi", n_ranks=2,
                              alltoall_algorithm=algorithm)
        reference = repro.simulator(6, terms=terms, backend="python")
        np.testing.assert_allclose(sim.get_expectation_batch(gb, bb),
                                   reference.get_expectation_batch(gb, bb),
                                   atol=1e-10)

    def test_non_direct_algorithm_keeps_the_per_row_path(self, seeded_rng):
        # The coalesced exchange is the direct algorithm over block slabs;
        # requesting another algorithm must keep the per-row exchanges (and
        # their algorithm-shaped traffic traces) instead of silently
        # ignoring the knob.
        terms = labs.get_terms(6)
        sim = repro.simulator(6, terms=terms, backend="gpumpi", n_ranks=2,
                              alltoall_algorithm="bruck")
        assert not sim.supports_coalesced_exchange
        plan = sim.engine.plan(2)
        assert plan.ops[0] == FusedPhaseMixerOp(0)  # fusion still applies
        assert not plan.ops[0].coalesce
        gb = seeded_rng.uniform(0.3, 1.0, (3, 2))
        bb = seeded_rng.uniform(0.3, 1.0, (3, 2))
        sim.get_expectation_batch(gb, bb)
        assert sim.engine.stats.coalesced_exchange_ops == 0
        # one trace per schedule row per exchange: the per-row path
        assert len(sim.traffic_log) == 3 * 2 * 2


class TestRewriteStats:
    def test_fused_ops_counted_distinctly(self, seeded_rng):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python")
        gb = seeded_rng.uniform(0.3, 1.0, (4, 3))
        bb = seeded_rng.uniform(0.3, 1.0, (4, 3))
        sim.get_expectation_batch(gb, bb)
        stats = sim.engine.stats.as_dict()
        assert stats["fused_ops_executed"] == 3  # one per layer, one block
        assert stats["mixer_expectation_fused_ops"] == 1  # the plan tail
        assert stats["rewrites"]["fuse-phase-mixer"]["rewrites"] == 3
        assert stats["rewrites"]["fuse-phase-mixer"]["ops_before"] == 7
        assert stats["rewrites"]["fuse-phase-mixer"]["ops_after"] == 4
        assert stats["rewrites"]["fuse-mixer-expectation"]["rewrites"] == 1

    def test_staged_phase_counted(self, seeded_rng):
        # the XY families have no fused kernels, so the head phase op folds
        # into the staging write (InitialPhaseOp) and is counted as such
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python",
                              mixer="xyring")
        gb = seeded_rng.uniform(0.3, 1.0, (2, 2))
        bb = seeded_rng.uniform(0.3, 1.0, (2, 2))
        sim.get_expectation_batch(gb, bb)
        stats = sim.engine.stats.as_dict()
        assert stats["staged_phase_ops"] == 1  # one block staged with phase
        assert stats["rewrites"]["fold-initial-phase"]["rewrites"] == 1

    def test_merged_mixers_counted_and_exact(self, seeded_rng):
        # all-zero gammas demote every fused layer to its mixer half; the
        # X mixer self-commutes so the adjacent sweeps merge into one op
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python")
        gb = np.zeros((2, 3))
        bb = seeded_rng.uniform(0.3, 1.0, (2, 3))
        values = sim.get_expectation_batch(gb, bb)
        stats = sim.engine.stats.as_dict()
        assert stats["merged_ops_executed"] == 1       # MixerOp(0)+MixerOp(1)
        assert stats["mixer_expectation_fused_ops"] == 1  # demoted FME tail
        np.testing.assert_allclose(
            values, sim.get_expectation_batch(gb, bb, optimize="none"),
            atol=1e-12)

    def test_merged_phases_counted_and_exact(self, seeded_rng):
        # zero betas in the first two layers leave two adjacent phase sweeps
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python")
        gb = seeded_rng.uniform(0.3, 1.0, (2, 3))
        bb = np.concatenate([np.zeros((2, 2)),
                             seeded_rng.uniform(0.3, 1.0, (2, 1))], axis=1)
        values = sim.get_expectation_batch(gb, bb)
        assert sim.engine.stats.merged_ops_executed == 1  # MergedPhaseOp((0,1))
        np.testing.assert_allclose(
            values, sim.get_expectation_batch(gb, bb, optimize="none"),
            atol=1e-12)

    def test_coalesced_exchanges_counted(self, seeded_rng):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="gpumpi",
                              n_ranks=2)
        gb = seeded_rng.uniform(0.3, 1.0, (2, 2))
        bb = seeded_rng.uniform(0.3, 1.0, (2, 2))
        sim.get_expectation_batch(gb, bb)
        assert sim.engine.stats.coalesced_exchange_ops == 2

    def test_unoptimized_runs_record_no_rewrites(self, seeded_rng):
        sim = repro.simulator(6, terms=labs.get_terms(6), backend="python",
                              optimize="none")
        sim.get_expectation_batch(seeded_rng.uniform(0.3, 1.0, (2, 2)),
                                  seeded_rng.uniform(0.3, 1.0, (2, 2)))
        stats = sim.engine.stats.as_dict()
        assert stats["fused_ops_executed"] == 0
        assert stats["ops_eliminated"] == 0
        assert stats["rewrites"] == {}
