"""Tests for measurement sampling from evolved QAOA states."""

import numpy as np
import pytest

from repro.fur import get_simulator_class
from repro.problems import labs


class TestSampleBitstrings:
    def test_shape_and_dtype(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = get_simulator_class("c")(6, terms=small_labs_terms)
        res = sim.simulate_qaoa(gammas, betas)
        samples = sim.sample_bitstrings(res, 50, seed=0)
        assert samples.shape == (50, 6)
        assert set(np.unique(samples)).issubset({0, 1})

    def test_reproducible_with_seed(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = get_simulator_class("c")(6, terms=small_labs_terms)
        res = sim.simulate_qaoa(gammas, betas)
        a = sim.sample_bitstrings(res, 20, seed=7)
        b = sim.sample_bitstrings(res, 20, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_deterministic_state_sampling(self):
        """A basis state produces only that bitstring."""
        n = 4
        sim = get_simulator_class("python")(n, terms=[(1.0, (0,))])
        sv0 = np.zeros(1 << n, dtype=np.complex128)
        sv0[5] = 1.0  # bits 1010 little-endian => qubits 0 and 2 are 1
        res = sim.simulate_qaoa([0.0], [0.0], sv0=sv0)
        samples = sim.sample_bitstrings(res, 10, seed=1)
        np.testing.assert_array_equal(samples, np.tile([1, 0, 1, 0], (10, 1)))

    def test_empirical_frequencies_match_probabilities(self, qaoa_angles):
        n = 6
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = get_simulator_class("c")(n, terms=terms)
        res = sim.simulate_qaoa(gammas, betas)
        probs = sim.get_probabilities(res)
        samples = sim.sample_bitstrings(res, 20000, seed=3)
        indices = (samples.astype(np.int64) * (1 << np.arange(n))).sum(axis=1)
        freq = np.bincount(indices, minlength=1 << n) / samples.shape[0]
        assert np.max(np.abs(freq - probs)) < 0.02

    def test_sampled_energies_match_expectation(self, qaoa_angles):
        n = 8
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = get_simulator_class("c")(n, terms=terms)
        res = sim.simulate_qaoa(gammas, betas)
        expectation = sim.get_expectation(res)
        samples = sim.sample_bitstrings(res, 20000, seed=11)
        energies = [labs.energy_from_spins(1 - 2 * s) for s in samples]
        assert np.mean(energies) == pytest.approx(expectation, rel=0.05)

    def test_validation(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        sim = get_simulator_class("c")(6, terms=small_labs_terms)
        res = sim.simulate_qaoa(gammas, betas)
        with pytest.raises(ValueError):
            sim.sample_bitstrings(res, 0)

    @pytest.mark.parametrize("backend", ["python", "gpu", "gpumpi"])
    def test_all_backends_support_sampling(self, backend, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        kwargs = {"n_ranks": 2} if backend == "gpumpi" else {}
        sim = get_simulator_class(backend)(6, terms=small_labs_terms, **kwargs)
        res = sim.simulate_qaoa(gammas, betas)
        samples = sim.sample_bitstrings(res, 25, seed=5)
        assert samples.shape == (25, 6)
