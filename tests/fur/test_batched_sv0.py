"""Per-row initial-state blocks through the batched execution engine.

The circuit-cutting pipeline feeds every fragment variant a *different*
initial state via a ``(B, 2^n)`` ``sv0`` block.  These tests pin the
engine contract: per-row blocks ride the fused path on providers that
declare ``supports_batched_sv0``, silently fall back to the looped path
elsewhere under ``mode="auto"``, and fail loudly under an explicit
``mode="fused"``.
"""

import numpy as np
import pytest

import repro
from repro.fur import available_backends

BATCHED_SV0_BACKENDS = ["python", "c", "jit", "gates", "sharded"]


def _random_problem(rng, n=5, batch=4, p=2):
    terms = [(float(rng.normal()), (i, (i + 1) % n)) for i in range(n)]
    g = rng.normal(size=(batch, p))
    b = rng.normal(size=(batch, p))
    sv0 = rng.normal(size=(batch, 2 ** n)) + 1j * rng.normal(size=(batch, 2 ** n))
    sv0 /= np.linalg.norm(sv0, axis=1, keepdims=True)
    return terms, g, b, sv0


@pytest.mark.parametrize("backend", BATCHED_SV0_BACKENDS)
def test_per_row_sv0_matches_individual_evolution(backend, seeded_rng):
    n = 5
    terms, g, b, sv0 = _random_problem(seeded_rng, n=n)
    sim = repro.simulator(n, terms=terms, backend=backend)
    assert sim.supports_batched_sv0
    want = np.array([
        sim.get_expectation(sim.simulate_qaoa(g[i], b[i], sv0=sv0[i]))
        for i in range(g.shape[0])
    ])
    for mode in ("fused", "looped", "auto"):
        got = sim.engine.expectation_batch(g, b, sv0=sv0, mode=mode)
        np.testing.assert_allclose(got, want, atol=1e-12, err_msg=mode)


@pytest.mark.parametrize("backend", BATCHED_SV0_BACKENDS)
def test_per_row_sv0_statevectors(backend, seeded_rng):
    n = 5
    terms, g, b, sv0 = _random_problem(seeded_rng, n=n, batch=3)
    sim = repro.simulator(n, terms=terms, backend=backend)
    results = sim.engine.simulate_batch(g, b, sv0=sv0)
    one = sim.get_statevector(sim.simulate_qaoa(g[1], b[1], sv0=sv0[1]))
    np.testing.assert_allclose(sim.get_statevector(results[1]), one,
                               atol=1e-12)


def test_shared_1d_sv0_still_broadcasts(seeded_rng):
    """The pre-existing contract: a 1-D sv0 is shared by every row."""
    n = 5
    terms, g, b, _ = _random_problem(seeded_rng, n=n, batch=3)
    shared = seeded_rng.normal(size=2 ** n) + 1j * seeded_rng.normal(size=2 ** n)
    shared /= np.linalg.norm(shared)
    sim = repro.simulator(n, terms=terms, backend="python")
    want = np.array([
        sim.get_expectation(sim.simulate_qaoa(g[i], b[i], sv0=shared))
        for i in range(3)
    ])
    got = sim.engine.expectation_batch(g, b, sv0=shared)
    np.testing.assert_allclose(got, want, atol=1e-12)


def test_row_count_mismatch_raises(seeded_rng):
    n = 5
    terms, g, b, sv0 = _random_problem(seeded_rng, n=n, batch=4)
    sim = repro.simulator(n, terms=terms, backend="python")
    with pytest.raises(ValueError, match="rows for a batch of"):
        sim.engine.expectation_batch(g, b, sv0=sv0[:2])
    with pytest.raises(ValueError, match="rows for a batch of"):
        sim.engine.simulate_batch(g, b, sv0=sv0[:2])


def test_wrong_block_shape_raises(seeded_rng):
    n = 5
    terms, g, b, _ = _random_problem(seeded_rng, n=n, batch=4)
    sim = repro.simulator(n, terms=terms, backend="python")
    bad = np.ones((4, 2 ** n - 1), dtype=complex)
    with pytest.raises(ValueError, match="initial-state block has shape"):
        sim.engine.expectation_batch(g, b, sv0=bad)


@pytest.mark.skipif("gpu" not in available_backends(importable_only=True),
                    reason="simulated-GPU backend unavailable")
def test_unsupported_provider_falls_back_to_looped(seeded_rng):
    """Providers without the flag serve per-row blocks via the looped path."""
    n = 5
    terms, g, b, sv0 = _random_problem(seeded_rng, n=n, batch=3)
    sim = repro.simulator(n, terms=terms, backend="gpu")
    assert not sim.supports_batched_sv0
    before = sim.engine.stats.looped_evaluations
    got = sim.engine.expectation_batch(g, b, sv0=sv0, mode="auto")
    assert sim.engine.stats.looped_evaluations == before + g.shape[0]
    want = np.array([
        sim.get_expectation(sim.simulate_qaoa(g[i], b[i], sv0=sv0[i]))
        for i in range(3)
    ])
    np.testing.assert_allclose(got, want, atol=1e-12)
    with pytest.raises(ValueError, match="per-row initial-state blocks"):
        sim.engine.expectation_batch(g, b, sv0=sv0, mode="fused")
