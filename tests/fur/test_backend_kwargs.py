"""Facade validation of backend-specific constructor kwargs.

Regression tests for the raw ``TypeError`` that used to leak out of
``repro.simulator(6, backend="c", n_shards=4)``: the facade now validates
backend-specific kwargs at resolution time and raises the typed
:class:`repro.fur.UnsupportedBackendKwargError` naming the backend and the
backends that do accept the kwarg.
"""

import pytest

import repro
from repro.fur import UnsupportedBackendKwargError, registry

TERMS = [(1.0, (0, 1))]


class TestTypedKwargError:
    def test_n_shards_on_c_backend(self):
        """The ISSUE's exact reproducer."""
        with pytest.raises(UnsupportedBackendKwargError) as exc:
            repro.simulator(6, terms=TERMS, backend="c", n_shards=4)
        msg = str(exc.value)
        assert "'c'" in msg
        assert "'n_shards'" in msg
        assert "sharded" in msg  # names the backends that accept it

    def test_inner_on_non_sharded_backend(self):
        with pytest.raises(UnsupportedBackendKwargError) as exc:
            repro.simulator(6, terms=TERMS, backend="python", inner="c")
        assert "sharded" in str(exc.value)

    def test_is_a_typeerror_subclass(self):
        """Existing ``except TypeError`` call sites keep working."""
        assert issubclass(UnsupportedBackendKwargError, TypeError)
        with pytest.raises(TypeError):
            repro.simulator(6, terms=TERMS, backend="c", n_shards=4)

    def test_error_lists_accepted_kwargs(self):
        with pytest.raises(UnsupportedBackendKwargError,
                           match="it accepts: .*block_size"):
            repro.simulator(6, terms=TERMS, backend="c", bogus=1)

    def test_unknown_everywhere_kwarg(self):
        with pytest.raises(UnsupportedBackendKwargError) as exc:
            repro.simulator(6, terms=TERMS, backend="python",
                            definitely_not_a_kwarg=1)
        # nothing accepts it, so no "backends accepting" hint is offered
        assert "backends accepting" not in str(exc.value)

    def test_alias_resolves_to_canonical_name(self):
        with pytest.raises(UnsupportedBackendKwargError, match="'c'"):
            repro.simulator(6, terms=TERMS, backend="cpu", n_shards=4)

    def test_multiple_bad_kwargs_all_reported(self):
        with pytest.raises(UnsupportedBackendKwargError,
                           match="'inner', 'n_shards'"):
            repro.simulator(6, terms=TERMS, backend="c",
                            n_shards=4, inner="python")


class TestValidKwargsStillBind:
    def test_backend_specific_kwargs(self):
        assert repro.simulator(6, terms=TERMS, backend="sharded",
                               n_shards=4).backend_name == "sharded"
        repro.simulator(6, terms=TERMS, backend="c", block_size=64)
        repro.simulator(6, terms=TERMS, backend="gates",
                        phase_strategy="ladder")

    def test_precision_and_optimize_for_every_backend(self):
        for backend in ("python", "c", "jit", "sharded", "gates"):
            sim = repro.simulator(6, terms=TERMS, backend=backend,
                                  precision="single", optimize="none")
            assert sim.precision == "single"


class TestRegistryMetadata:
    def test_backends_accepting_kwarg(self):
        assert registry.backends_accepting_kwarg("n_shards") == ["sharded"]
        assert "sharded" in registry.backends_accepting_kwarg("inner")
        accepting_bs = registry.backends_accepting_kwarg("block_size")
        assert "c" in accepting_bs and "sharded" in accepting_bs
        assert registry.backends_accepting_kwarg("no_such_kwarg") == []

    def test_metadata_matches_constructor_signatures(self):
        """The declared constructor_kwargs must actually bind (no drift)."""
        import inspect

        for name in registry.names():
            spec = registry.spec(name)
            if not spec.available or not spec.constructor_kwargs:
                continue
            for mixer, cls in spec.load().items():
                params = inspect.signature(cls.__init__).parameters
                if any(p.kind is inspect.Parameter.VAR_KEYWORD
                       for p in params.values()):
                    continue
                for kwarg in spec.constructor_kwargs:
                    assert kwarg in params, (
                        f"backend {name!r} declares constructor kwarg "
                        f"{kwarg!r} its {mixer} class does not accept")
