"""Tests for the QAOA objective factory and the optimization drivers."""

import numpy as np
import pytest

from repro.fur import dicke_state, get_simulator_class
from repro.gates import QAOAGateBasedSimulator
from repro.problems import labs, maxcut
from repro.qaoa import (
    get_qaoa_objective,
    grid_scan_qaoa,
    linear_ramp_parameters,
    make_simulator,
    minimize_qaoa,
    population_optimize,
    progressive_depth_optimization,
    stack_parameters,
)


class TestMakeSimulator:
    def test_by_name_and_class_and_instance(self, small_labs_terms):
        sim1 = make_simulator(6, terms=small_labs_terms, backend="python")
        assert sim1.backend_name == "python"
        sim2 = make_simulator(6, terms=small_labs_terms, backend=QAOAGateBasedSimulator)
        assert sim2.backend_name == "gates"
        assert make_simulator(6, backend=sim1) is sim1

    def test_mixer_selection(self, small_labs_terms):
        sim = make_simulator(6, terms=small_labs_terms, backend="c", mixer="xyring")
        assert sim.mixer_name == "xyring"
        with pytest.raises(ValueError):
            make_simulator(6, terms=small_labs_terms, backend="c", mixer="nope")


class TestObjective:
    def test_callable_matches_manual_simulation(self, small_maxcut, qaoa_angles):
        _, terms = small_maxcut
        gammas, betas = qaoa_angles
        obj = get_qaoa_objective(6, 2, terms=terms, backend="c")
        value = obj(stack_parameters(gammas, betas))
        sim = get_simulator_class("c")(6, terms=terms)
        expected = sim.get_expectation(sim.simulate_qaoa(gammas, betas))
        assert value == pytest.approx(expected, abs=1e-12)

    def test_bookkeeping(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 1, terms=terms, backend="c")
        theta_a = np.array([0.1, 0.2])
        theta_b = np.array([0.4, 0.3])
        va, vb = obj(theta_a), obj(theta_b)
        assert obj.n_evaluations == 2
        assert obj.history == [va, vb]
        assert obj.best_value == min(va, vb)
        obj.reset_statistics()
        assert obj.n_evaluations == 0 and obj.history == []

    def test_overlap_objective_is_negated(self, qaoa_angles):
        n = 6
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        obj = get_qaoa_objective(n, 2, terms=terms, backend="c", objective="overlap")
        value = obj(stack_parameters(gammas, betas))
        sim = get_simulator_class("c")(n, terms=terms)
        overlap = sim.get_overlap(sim.simulate_qaoa(gammas, betas))
        assert value == pytest.approx(-overlap, abs=1e-12)

    def test_wrong_parameter_length_rejected(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 2, terms=terms, backend="c")
        with pytest.raises(ValueError):
            obj(np.array([0.1, 0.2]))

    def test_invalid_objective_kind(self, small_maxcut):
        _, terms = small_maxcut
        with pytest.raises(ValueError):
            get_qaoa_objective(6, 1, terms=terms, objective="fidelity")

    def test_backends_give_same_objective(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        theta = stack_parameters(gammas, betas)
        values = []
        for backend in ("python", "c", "gpu", QAOAGateBasedSimulator):
            obj = get_qaoa_objective(6, 2, terms=small_labs_terms, backend=backend)
            values.append(obj(theta))
        np.testing.assert_allclose(values, values[0], atol=1e-9)

    def test_custom_initial_state(self, qaoa_angles):
        """XY-mixer objective over a Dicke initial state stays in the weight sector."""
        n = 6
        from repro.problems import portfolio

        prob = portfolio.random_portfolio_problem(n, budget=2, seed=0)
        terms = portfolio.portfolio_terms(prob)
        sv0 = dicke_state(n, 2)
        obj = get_qaoa_objective(n, 2, terms=terms, backend="c", mixer="xyring", sv0=sv0)
        gammas, betas = qaoa_angles
        value = obj(stack_parameters(gammas, betas))
        feasible = portfolio.hamming_weight_indices(n, 2)
        costs = portfolio.portfolio_cost_vector(prob)
        assert costs[feasible].min() - 1e-9 <= value <= costs[feasible].max() + 1e-9


class TestMinimize:
    def test_optimization_improves_on_initial_point(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 2, terms=terms, backend="c")
        g0, b0 = linear_ramp_parameters(2)
        initial_value = obj.evaluate(g0, b0)
        result = minimize_qaoa(obj, g0, b0, method="COBYLA", maxiter=60)
        assert result.value <= initial_value + 1e-12
        assert result.n_evaluations > 5
        assert result.p == 2
        assert len(result.history) == result.n_evaluations
        assert result.wall_time > 0

    def test_methods_and_validation(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 1, terms=terms, backend="c")
        with pytest.raises(ValueError):
            minimize_qaoa(obj, method="gradient-descent-from-memory")
        with pytest.raises(ValueError):
            minimize_qaoa(obj, maxiter=0)
        with pytest.raises(ValueError):
            minimize_qaoa(obj, np.array([0.1]), np.array([0.1, 0.2]))

    def test_nelder_mead_also_works(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 1, terms=terms, backend="c")
        result = minimize_qaoa(obj, method="Nelder-Mead", maxiter=40)
        diag = obj.simulator.get_cost_diagonal()
        assert diag.min() - 1e-9 <= result.value <= diag.max() + 1e-9

    def test_progressive_depth_improves_or_matches(self):
        n = 8
        terms = labs.get_terms(n)

        def factory(p):
            return get_qaoa_objective(n, p, terms=terms, backend="c")

        results = progressive_depth_optimization(factory, max_p=3, maxiter_per_depth=40)
        assert [r.p for r in results] == [1, 2, 3]
        # deeper QAOA should not be (meaningfully) worse than p=1
        assert results[-1].value <= results[0].value + 1e-6

    def test_progressive_depth_validation(self):
        with pytest.raises(ValueError):
            progressive_depth_optimization(lambda p: None, max_p=0)

    def test_factory_depth_mismatch_detected(self, small_maxcut):
        _, terms = small_maxcut

        def bad_factory(p):
            return get_qaoa_objective(6, 1, terms=terms, backend="c")

        with pytest.raises(ValueError):
            progressive_depth_optimization(bad_factory, max_p=2)


class TestBatchedDrivers:
    def test_grid_scan_matches_single_evaluations(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 1, terms=terms, backend="c")
        gammas = np.linspace(0.0, 1.0, 4)
        betas = np.linspace(0.0, 0.8, 5)
        scan = grid_scan_qaoa(obj, gammas, betas)
        assert scan.values.shape == (4, 5)
        assert scan.n_evaluations == 20
        assert scan.best_value == pytest.approx(scan.values.min())
        # spot-check grid entries against independent single evaluations
        check = get_qaoa_objective(6, 1, terms=terms, backend="c")
        for gi, bi in ((0, 0), (2, 3), (3, 4)):
            single = check(np.array([gammas[gi], betas[bi]]))
            assert scan.values[gi, bi] == pytest.approx(single, rel=1e-12)
        assert scan.values[np.searchsorted(gammas, scan.best_gamma),
                           np.searchsorted(betas, scan.best_beta)] \
            == pytest.approx(scan.best_value)

    def test_grid_scan_requires_depth_one(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 2, terms=terms, backend="c")
        with pytest.raises(ValueError, match="p=1"):
            grid_scan_qaoa(obj, [0.1], [0.2])
        obj1 = get_qaoa_objective(6, 1, terms=terms, backend="c")
        with pytest.raises(ValueError, match="non-empty"):
            grid_scan_qaoa(obj1, [], [0.2])

    def test_population_optimize_improves_on_first_generation(self):
        n = 6
        terms = labs.get_terms(n)
        obj = get_qaoa_objective(n, 2, terms=terms, backend="c")
        result = population_optimize(obj, generations=6, population_size=16, seed=0)
        assert result.method == "population"
        assert result.n_evaluations == 6 * 16
        assert result.p == 2
        # the best-seen value can only improve over the first generation
        assert result.value <= min(result.history[:16]) + 1e-12
        diag = obj.simulator.get_cost_diagonal()
        assert diag.min() - 1e-9 <= result.value <= diag.max() + 1e-9

    def test_population_optimize_validation(self, small_maxcut):
        _, terms = small_maxcut
        obj = get_qaoa_objective(6, 1, terms=terms, backend="c")
        with pytest.raises(ValueError):
            population_optimize(obj, generations=0)
        with pytest.raises(ValueError):
            population_optimize(obj, elite_fraction=1.5)

    def test_batch_memory_budget_plumbed_through_objective(self, small_maxcut):
        _, terms = small_maxcut
        thetas = np.array([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        tiny = get_qaoa_objective(6, 1, terms=terms, backend="python",
                                  batch_memory_budget=16 * (1 << 6))
        default = get_qaoa_objective(6, 1, terms=terms, backend="python")
        np.testing.assert_allclose(tiny.evaluate_batch(thetas),
                                   default.evaluate_batch(thetas), atol=1e-12)
