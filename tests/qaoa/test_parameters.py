"""Tests for QAOA parameter initialization and transfer strategies."""

import numpy as np
import pytest

from repro.qaoa import parameters as P


class TestLinearRamp:
    def test_shapes_and_monotonicity(self):
        gammas, betas = P.linear_ramp_parameters(6)
        assert gammas.shape == betas.shape == (6,)
        assert np.all(np.diff(gammas) > 0)
        assert np.all(np.diff(betas) < 0)

    def test_symmetry(self):
        gammas, betas = P.linear_ramp_parameters(5, delta_t=1.0)
        np.testing.assert_allclose(gammas, betas[::-1])

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            P.linear_ramp_parameters(0)

    def test_tqa_matches_linear_ramp_scaling(self):
        g1, b1 = P.tqa_initialization(4)
        g2, b2 = P.linear_ramp_parameters(4)
        np.testing.assert_allclose(g1, g2)
        np.testing.assert_allclose(b1, b2)
        g3, _ = P.tqa_initialization(4, total_time=8.0)
        assert g3[-1] > g1[-1]

    def test_random_initialization(self):
        g, b = P.random_initialization(5, seed=3)
        assert g.shape == (5,)
        assert np.all((g >= 0) & (g <= np.pi))
        assert np.all((b >= 0) & (b <= np.pi / 2))
        g2, _ = P.random_initialization(5, seed=3)
        np.testing.assert_allclose(g, g2)
        with pytest.raises(ValueError):
            P.random_initialization(0)


class TestInterp:
    def test_preserves_schedule_endpoints_approximately(self):
        gammas = np.linspace(0.1, 1.0, 4)
        betas = np.linspace(1.0, 0.1, 4)
        g2, b2 = P.interp_extrapolate(gammas, betas, 8)
        assert g2.shape == (8,)
        assert g2[0] <= g2[-1]
        assert abs(g2[0] - gammas[0]) < 0.2
        assert abs(g2[-1] - gammas[-1]) < 0.2

    def test_default_extends_by_one(self):
        g, b = P.interp_extrapolate([0.1, 0.2], [0.2, 0.1])
        assert g.shape == (3,)

    def test_same_p_is_copy(self):
        g, b = P.interp_extrapolate([0.1, 0.2], [0.2, 0.1], 2)
        np.testing.assert_allclose(g, [0.1, 0.2])

    def test_linear_schedule_is_fixed_point(self):
        """A linear ramp interpolates onto the linear ramp of the larger depth."""
        g4, b4 = P.linear_ramp_parameters(4, delta_t=1.0)
        g8, b8 = P.interp_extrapolate(g4, b4, 8)
        g8_direct, b8_direct = P.linear_ramp_parameters(8, delta_t=1.0)
        # interior points follow the same line; endpoints are clamped by np.interp
        np.testing.assert_allclose(g8[1:-1], g8_direct[1:-1], atol=1e-12)
        np.testing.assert_allclose(b8[1:-1], b8_direct[1:-1], atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            P.interp_extrapolate([0.1, 0.2], [0.1], 4)
        with pytest.raises(ValueError):
            P.interp_extrapolate([0.1, 0.2], [0.2, 0.1], 1)


class TestFourier:
    def test_roundtrip_with_full_basis(self):
        rng = np.random.default_rng(0)
        p = 6
        gammas, betas = rng.uniform(0, 1, p), rng.uniform(0, 1, p)
        u, v = P.schedule_to_fourier(gammas, betas, p)
        g2, b2 = P.fourier_to_schedule(u, v, p)
        np.testing.assert_allclose(g2, gammas, atol=1e-8)
        np.testing.assert_allclose(b2, betas, atol=1e-8)

    def test_low_frequency_compression(self):
        p = 10
        gammas, betas = P.linear_ramp_parameters(p)
        u, v = P.schedule_to_fourier(gammas, betas, 3)
        g2, b2 = P.fourier_to_schedule(u, v, p)
        assert np.max(np.abs(g2 - gammas)) < 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            P.schedule_to_fourier([0.1, 0.2], [0.1, 0.2], 5)
        with pytest.raises(ValueError):
            P.fourier_to_schedule([0.1], [0.1, 0.2], 4)


class TestStackSplit:
    def test_roundtrip(self):
        g, b = np.array([0.1, 0.2]), np.array([0.3, 0.4])
        theta = P.stack_parameters(g, b)
        g2, b2 = P.split_parameters(theta)
        np.testing.assert_allclose(g2, g)
        np.testing.assert_allclose(b2, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            P.stack_parameters([0.1], [0.1, 0.2])
        with pytest.raises(ValueError):
            P.split_parameters([0.1, 0.2, 0.3])
