"""Pipeline-level tests: telemetry, objective bookkeeping, admission."""

import numpy as np
import pytest

import repro
import repro.fur.base as fur_base
from repro.cutting import CutQAOAObjective, CutQAOAPipeline

RING = [(0.7, (i, (i + 1) % 8)) for i in range(8)]


class TestCuttingStats:
    def test_counters_accumulate(self):
        pipe = CutQAOAPipeline(8, RING, backend="python", partition=range(4))
        k = pipe.spec.n_cuts
        pipe.expectation([0.1], [0.2])
        pipe.expectation([0.3], [0.4])
        stats = pipe.stats
        assert stats.evaluations == 2
        assert stats.fragments_evaluated == 4
        assert stats.variants_evaluated == 2 * (1 + 4 ** k)
        assert stats.cut_qubits == k
        assert stats.recombined_terms == 2 * len(RING)
        assert stats.tensor_contractions == 2 * len(RING)
        assert stats.fragment_wall_s > 0
        assert stats.recombine_wall_s > 0

    def test_as_dict_is_json_ready(self):
        import json

        pipe = CutQAOAPipeline(8, RING, backend="python")
        pipe.expectation([0.1], [0.2])
        payload = json.loads(json.dumps(pipe.stats.as_dict()))
        assert payload["evaluations"] == 1
        assert set(payload) == set(vars(pipe.stats))

    def test_reset_preserves_cut_width(self):
        pipe = CutQAOAPipeline(8, RING, backend="python")
        pipe.expectation([0.1], [0.2])
        pipe.stats.reset()
        assert pipe.stats.evaluations == 0
        assert pipe.stats.cut_qubits == pipe.spec.n_cuts


class TestCutQAOAObjective:
    def test_bookkeeping_matches_monolithic_objective(self):
        obj = CutQAOAObjective.build(8, RING, backend="python")
        v1 = obj([0.1, 0.2])
        v2 = obj([0.3, 0.4])
        assert obj.n_evaluations == 2
        assert obj.history == [v1, v2]
        assert obj.best_value == min(v1, v2)
        best = [0.1, 0.2] if v1 <= v2 else [0.3, 0.4]
        np.testing.assert_allclose(obj.best_parameters, best)
        obj.reset_statistics()
        assert obj.n_evaluations == 0
        assert obj.history == []
        assert obj.best_parameters is None

    def test_objective_value_matches_uncut(self):
        sim = repro.simulator(8, terms=RING, backend="python")
        want = sim.get_expectation(sim.simulate_qaoa([0.13], [0.27]))
        obj = CutQAOAObjective.build(8, RING, backend="python")
        assert obj([0.13, 0.27]) == pytest.approx(want, abs=1e-12)

    def test_stats_passthrough(self):
        obj = CutQAOAObjective.build(8, RING, backend="python")
        obj([0.1, 0.2])
        assert obj.stats.evaluations == 1


class TestBeyondMemoryAdmission:
    def test_cut_pipeline_admits_what_the_state_guard_rejects(self, monkeypatch):
        """The tentpole's acceptance criterion, in miniature.

        With the admission ceiling shrunk so the monolithic 2^10 state is
        rejected, the cut pipeline (largest fragment 2^6) still evaluates
        — and still matches the value computed without the ceiling.
        """
        n = 10
        terms = [(0.5, (i, (i + 1) % n)) for i in range(n)]
        sim = repro.simulator(n, terms=terms, backend="python")
        want = sim.get_expectation(sim.simulate_qaoa([0.21], [0.43]))

        monkeypatch.setattr(fur_base, "MAX_STATE_BYTES", 2 ** 9 * 16)
        with pytest.raises(ValueError, match="state"):
            repro.simulator(n, terms=terms, backend="python")
        got = repro.cut_qaoa_expectation(n, terms, [0.21], [0.43],
                                         backend="python",
                                         partition=range(5))
        assert got == pytest.approx(want, abs=1e-12)

    def test_serial_worker_pool_matches_concurrent(self):
        pipe_par = CutQAOAPipeline(8, RING, backend="python")
        pipe_ser = CutQAOAPipeline(8, RING, backend="python", n_workers=1)
        assert pipe_ser.expectation([0.1], [0.2]) == pytest.approx(
            pipe_par.expectation([0.1], [0.2]), abs=1e-14)
