"""Unit tests for the variant-enumeration ingredients."""

import numpy as np
import pytest

from repro.cutting import coefficient_matrix, conjugated_paulis
from repro.cutting.variants import (
    PAULIS,
    PREP_STATES,
    apply_one_qubit,
    variant_digits,
    variant_initial_states,
)


def test_paulis_and_prep_states_are_what_they_claim():
    assert np.allclose(PAULIS[1] @ PAULIS[1], np.eye(2))
    assert np.allclose(PAULIS[2] @ PAULIS[2], np.eye(2))
    for state in PREP_STATES:
        assert np.isclose(np.vdot(state, state), 1.0)


def test_coefficient_matrix_reconstructs_every_pauli():
    """The defining identity: σ_m = Σ_s C[m, s] |s⟩⟨s|, exactly."""
    c = coefficient_matrix()
    for m in range(4):
        built = sum(c[m, s] * np.outer(PREP_STATES[s],
                                       PREP_STATES[s].conj())
                    for s in range(4))
        np.testing.assert_allclose(built, PAULIS[m], atol=1e-15)


@pytest.mark.parametrize("beta", [0.0, 0.3, -1.2, np.pi / 2])
def test_conjugated_paulis_undo_the_mixer_rotation(beta):
    """⟨ψ|σ̃|ψ⟩ must equal ⟨U†ψ|σ|U†ψ⟩ for U = exp(-iβX)."""
    sigmas = conjugated_paulis(beta)
    c, s = np.cos(beta), np.sin(beta)
    u = np.array([[c, -1j * s], [-1j * s, c]])
    rng = np.random.default_rng(5)
    psi = rng.normal(size=2) + 1j * rng.normal(size=2)
    psi /= np.linalg.norm(psi)
    pre = u.conj().T @ psi
    for m in range(4):
        lhs = np.vdot(psi, sigmas[m] @ psi)
        rhs = np.vdot(pre, PAULIS[m] @ pre)
        assert np.isclose(lhs, rhs, atol=1e-14)
        # σ̃ stays Hermitian, so the measured table is real
        np.testing.assert_allclose(sigmas[m], sigmas[m].conj().T, atol=1e-15)


def test_conjugated_paulis_at_zero_are_the_paulis():
    np.testing.assert_allclose(conjugated_paulis(0.0), PAULIS, atol=1e-15)


def test_apply_one_qubit_little_endian():
    # |00> --X on qubit 1--> |10> (index 2 little-endian)
    sv = np.zeros(4, dtype=complex)
    sv[0] = 1.0
    out = apply_one_qubit(sv, PAULIS[1], 1, 2)
    assert np.isclose(out[2], 1.0)
    out = apply_one_qubit(sv, PAULIS[1], 0, 2)
    assert np.isclose(out[1], 1.0)


def test_variant_digits_little_endian():
    assert variant_digits(0, 3) == (0, 0, 0)
    assert variant_digits(1, 3) == (1, 0, 0)   # cut 0 in the lowest digit
    assert variant_digits(4, 3) == (0, 1, 0)
    assert variant_digits(0b100100 + 2, 3) == (2, 1, 2)


def test_variant_initial_states_layout():
    # n=3, one slot (qubit 2): row v prepares slot in PREP_STATES[v]
    block = variant_initial_states(3, 1)
    assert block.shape == (4, 8)
    plus2 = np.full(4, 0.5)
    for v in range(4):
        expected = np.kron(PREP_STATES[v], plus2)
        np.testing.assert_allclose(block[v], expected, atol=1e-15)
        assert np.isclose(np.vdot(block[v], block[v]), 1.0)


def test_variant_initial_states_two_slots_digit_order():
    # slot 0 = qubit 1 (low), slot 1 = qubit 2 (high); variant v = 4*d1+d0
    block = variant_initial_states(3, 2)
    assert block.shape == (16, 8)
    plus1 = np.full(2, 1 / np.sqrt(2))
    v = 4 * 3 + 1  # slot 0 -> |1>, slot 1 -> |+i>
    expected = np.kron(PREP_STATES[3], np.kron(PREP_STATES[1], plus1))
    np.testing.assert_allclose(block[v], expected, atol=1e-15)


def test_variant_initial_states_dtype():
    assert variant_initial_states(3, 1, dtype=np.complex64).dtype == np.complex64
