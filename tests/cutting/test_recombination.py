"""Unit tests for the tensor recombination contraction."""

import itertools

import numpy as np
import pytest

from repro.cutting import coefficient_matrix, recombine_term, recombine_terms
from repro.cutting.variants import variant_digits


def brute_force_recombine(m_table, r_table, k):
    """Literal evaluation of (1/2^k) Σ_{m,s} M[m] Π_q C[m_q, s_q] R[s]."""
    c = coefficient_matrix()
    total = 0.0
    for m in range(4 ** k):
        md = variant_digits(m, k)
        for s in range(4 ** k):
            sd = variant_digits(s, k)
            factor = 1.0
            for q in range(k):
                factor *= c[md[q], sd[q]]
            total += m_table[m] * factor * r_table[s]
    return total * 0.5 ** k


def test_k0_is_a_plain_product():
    assert recombine_term([2.5], [3.0], 0) == pytest.approx(7.5)


@pytest.mark.parametrize("k", [1, 2, 3])
def test_contraction_matches_brute_force(k, seeded_rng):
    m_table = seeded_rng.normal(size=4 ** k)
    r_table = seeded_rng.normal(size=4 ** k)
    got = recombine_term(m_table, r_table, k)
    want = brute_force_recombine(m_table, r_table, k)
    assert got == pytest.approx(want, abs=1e-12)


def test_identity_channel_roundtrip():
    """M measured on a pure qubit state must reconstruct through C exactly.

    For a single cut carrying state |ψ⟩, M[m] = ⟨ψ|σ_m|ψ⟩ and
    R[s] = |⟨s|ψ⟩|² (fragment 2 measures the prep-state overlap); the
    recombination then reproduces ⟨ψ|ψ⟩ = 1 for the identity observable.
    """
    from repro.cutting.variants import PAULIS, PREP_STATES

    rng = np.random.default_rng(11)
    psi = rng.normal(size=2) + 1j * rng.normal(size=2)
    psi /= np.linalg.norm(psi)
    m_table = np.array([np.vdot(psi, p @ psi).real for p in PAULIS])
    r_table = np.array([abs(np.vdot(s, psi)) ** 2 for s in PREP_STATES])
    # R here plays the role of Tr(prep · ρ) with ρ = |ψ><ψ|; recombining
    # gives Tr(ρ²) = 1 for a pure state
    assert recombine_term(m_table, r_table, 1) == pytest.approx(1.0, abs=1e-12)


def test_table_size_validated():
    with pytest.raises(ValueError, match="4\\^1"):
        recombine_term([1.0, 2.0], [1.0] * 4, 1)


def test_recombine_terms_weighted_sum(seeded_rng):
    k = 2
    weights = [0.5, -1.5, 2.0]
    m = seeded_rng.normal(size=(3, 4 ** k))
    r = seeded_rng.normal(size=(3, 4 ** k))
    want = sum(w * brute_force_recombine(m[t], r[t], k)
               for t, w in enumerate(weights))
    assert recombine_terms(weights, m, r, k) == pytest.approx(want, abs=1e-12)


def test_recombine_terms_shape_mismatch():
    with pytest.raises(ValueError, match="per term"):
        recombine_terms([1.0, 2.0], np.ones((1, 4)), np.ones((2, 4)), 1)
