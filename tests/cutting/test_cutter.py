"""Unit tests for cut selection and term assignment."""

import pytest

from repro.cutting import (
    CutSpec,
    InvalidCutError,
    assign_terms,
    choose_cut,
)

RING8 = [(1.0, (i, (i + 1) % 8)) for i in range(8)]


class TestCutSpec:
    def test_valid_spec(self):
        spec = CutSpec(4, (0, 1), (2, 3), (1,))
        assert spec.n_cuts == 1
        assert spec.n_variants == 4

    def test_overlapping_fragments_rejected(self):
        with pytest.raises(InvalidCutError, match="overlap"):
            CutSpec(4, (0, 1, 2), (2, 3), ())

    def test_uncovered_qubits_rejected(self):
        with pytest.raises(InvalidCutError, match="cover"):
            CutSpec(4, (0, 1), (3,), ())

    def test_cut_outside_fragment_a_rejected(self):
        with pytest.raises(InvalidCutError, match="not in fragment A"):
            CutSpec(4, (0, 1), (2, 3), (2,))

    def test_empty_fragment_rejected(self):
        with pytest.raises(InvalidCutError, match="non-empty"):
            CutSpec(2, (0, 1), (), ())


class TestChooseCut:
    def test_explicit_partition(self):
        spec = choose_cut(RING8, 8, partition=range(4))
        assert spec.fragment_a in ((0, 1, 2, 3), (4, 5, 6, 7))
        # a ring crossing the 3|4 and 7|0 boundaries exposes two qubits
        assert spec.n_cuts == 2

    def test_explicit_cut_qubits_validated(self):
        spec = choose_cut(RING8, 8, partition=range(4), cut_qubits=(0, 3))
        assert spec.cut_qubits == (0, 3)
        with pytest.raises(InvalidCutError, match="does not cover"):
            choose_cut(RING8, 8, partition=range(4), cut_qubits=(0,))
        with pytest.raises(InvalidCutError, match="not in fragment A"):
            choose_cut(RING8, 8, partition=range(4), cut_qubits=(5,))

    def test_heuristic_finds_block_structure(self):
        # two dense 4-cliques joined by a single bridge edge: the greedy
        # sweep must find the 1-edge cut regardless of the bridge position
        clique = lambda qs: [(0.5, (a, b)) for i, a in enumerate(qs)
                             for b in qs[i + 1:]]
        terms = clique((0, 1, 2, 3)) + clique((4, 5, 6, 7)) + [(1.0, (1, 6))]
        spec = choose_cut(terms, 8)
        assert spec.n_cuts == 1
        assert set(spec.fragment_a) in ({0, 1, 2, 3}, {4, 5, 6, 7})

    def test_side_with_fewer_boundary_qubits_hosts_the_cut(self):
        # star: qubit 0 couples to everything in 4..7 — cutting on the
        # B side would need 4 cut qubits, on the A side just one
        terms = [(1.0, (0, q)) for q in (4, 5, 6, 7)] + [(1.0, (1, 2))]
        spec = choose_cut(terms, 8, partition=range(4))
        assert spec.cut_qubits == (0,)

    def test_max_cuts_guard(self):
        with pytest.raises(InvalidCutError, match="max_cuts"):
            choose_cut(RING8, 8, partition=range(4), max_cuts=1)

    def test_bad_partition_rejected(self):
        with pytest.raises(InvalidCutError):
            choose_cut(RING8, 8, partition=range(8))
        with pytest.raises(InvalidCutError):
            choose_cut(RING8, 8, partition=[0, 99])


class TestAssignTerms:
    def test_phase_terms_split_and_relocalized(self):
        terms = [(1.0, (0, 1)), (2.0, (2, 3)), (3.0, (1, 2)), (0.5, ())]
        spec = choose_cut(terms, 4, partition=(0, 1))
        assignment = assign_terms(terms, spec)
        # (0,1) is A-internal; (2,3) and the crossing (1,2) run in B
        assert assignment.f1_terms == ((1.0, (0, 1)),)
        assert assignment.offset == 0.5
        assert len(assignment.f2_terms) == 2
        # fragment B register: its own qubits (2, 3) then the slot for 1
        assert assignment.f2_qubits == (2, 3) + spec.cut_qubits
        # the crossing term maps qubit 1 to the slot (local index 2)
        assert (3.0, (0, 2)) in assignment.f2_terms

    def test_measured_masks(self):
        terms = [(1.0, (0, 1)), (3.0, (1, 2))]
        spec = choose_cut(terms, 4, partition=(0, 1))
        assert spec.cut_qubits == (1,)
        assignment = assign_terms(terms, spec)
        by_weight = {w: (m1, m2) for w, m1, m2 in assignment.measured}
        # (0,1): qubit 0 is non-cut A (bit 0 of fragment A), qubit 1 is
        # the cut qubit -> measured on fragment B's slot (local qubit 2)
        assert by_weight[1.0] == (0b01, 0b100)
        # (1,2): cut qubit 1 -> slot bit 2; qubit 2 -> B-local bit 0
        assert by_weight[3.0] == (0, 0b101)

    def test_uncoverable_term_rejected(self):
        # a term touching a non-cut A qubit and B cannot be assigned
        terms = [(1.0, (1, 2))]
        spec = CutSpec(4, (0, 1), (2, 3), ())
        with pytest.raises(InvalidCutError, match="outside the cut set"):
            assign_terms(terms, spec)
