"""Cut-vs-uncut parity: the pipeline must reproduce the monolithic value.

Random seeded problems are evaluated both ways on every importable
full-tier backend, at both precisions, with tolerances matching the
repo-wide parity discipline (1e-12 double, 1e-5 single).
"""

import numpy as np
import pytest

import repro
from repro.cutting import CutUnsupportedError, cut_qaoa_expectation
from repro.fur import available_backends
from repro.fur.capabilities import UnsupportedCapabilityError
from repro.testing import random_terms

FULL_TIER = [b for b in available_backends(mixer="x", capability="statevector",
                                           importable_only=True)
             if b not in ("gpumpi", "cusvmpi")]  # distributed: exercised in
# the cross-backend suites; the fragment pipeline adds nothing new there.

TOLERANCES = {"double": 1e-12, "single": 1e-5}


def _uncut(n, terms, gammas, betas, precision):
    sim = repro.simulator(n, terms=terms, backend="python",
                         precision=precision)
    return sim.get_expectation(sim.simulate_qaoa(gammas, betas))


@pytest.mark.parametrize("backend", FULL_TIER)
@pytest.mark.parametrize("precision", ["double", "single"])
def test_cut_matches_uncut_random_problems(backend, precision, seeded_rng):
    tol = TOLERANCES[precision]
    for trial in range(3):
        n = int(seeded_rng.integers(6, 9))
        terms = random_terms(seeded_rng, n, n_terms=2 * n, max_order=3)
        gamma = float(seeded_rng.uniform(-1, 1))
        beta = float(seeded_rng.uniform(-1, 1))
        want = _uncut(n, terms, [gamma], [beta], "double")
        got = cut_qaoa_expectation(n, terms, [gamma], [beta],
                                   backend=backend, precision=precision)
        assert got == pytest.approx(want, abs=tol), (
            f"trial {trial}: backend={backend} precision={precision} n={n}")


@pytest.mark.parametrize("backend", FULL_TIER)
def test_cut_matches_uncut_structured_problems(backend, qaoa_angles):
    """Ring, bridge-block and star cost graphs, explicit and chosen cuts."""
    gammas, betas = [qaoa_angles[0][0]], [qaoa_angles[1][0]]
    ring = [(0.7, (i, (i + 1) % 8)) for i in range(8)]
    clique = lambda qs: [(0.5, (a, b)) for i, a in enumerate(qs)
                         for b in qs[i + 1:]]
    blocks = clique((0, 1, 2, 3)) + clique((4, 5, 6, 7)) + [(1.0, (1, 6))]
    star = [(0.4, (0, q)) for q in range(1, 7)] + [(0.3, (3,)), (0.2, ())]
    for terms, kwargs in [
        (ring, dict(partition=range(4))),
        (ring, {}),
        (blocks, {}),
        (star, dict(partition=[0, 1, 2], cut_qubits=[0])),
    ]:
        n = 8 if terms is not star else 7
        want = _uncut(n, terms, gammas, betas, "double")
        got = cut_qaoa_expectation(n, terms, gammas, betas,
                                   backend=backend, **kwargs)
        assert got == pytest.approx(want, abs=1e-12)


@pytest.mark.parametrize("mode", ["fused", "looped"])
def test_fragment_execution_mode_parity(mode, seeded_rng):
    """Fused and looped fragment evaluation agree to machine precision."""
    n = 8
    terms = random_terms(seeded_rng, n, n_terms=12)
    want = _uncut(n, terms, [0.31], [0.57], "double")
    got = cut_qaoa_expectation(n, terms, [0.31], [0.57],
                               backend="python", mode=mode)
    assert got == pytest.approx(want, abs=1e-12)


def test_p2_raises_typed_error():
    terms = [(1.0, (0, 5))]
    with pytest.raises(CutUnsupportedError, match="p=2"):
        cut_qaoa_expectation(8, terms, [0.1, 0.2], [0.3, 0.4],
                             backend="python")


def test_xy_mixer_raises_typed_error():
    terms = [(1.0, (0, 5))]
    with pytest.raises(CutUnsupportedError, match="mixer"):
        cut_qaoa_expectation(8, terms, [0.1], [0.3], mixer="xyring",
                             backend="python")


def test_expectation_only_backend_rejected_up_front():
    terms = [(1.0, (0, 5))]
    with pytest.raises(UnsupportedCapabilityError, match="tensornet"):
        cut_qaoa_expectation(8, terms, [0.1], [0.3], backend="tensornet")


def test_typed_errors_are_capability_errors():
    """CutUnsupportedError follows the UnsupportedCapabilityError discipline."""
    assert issubclass(CutUnsupportedError, UnsupportedCapabilityError)
    assert issubclass(CutUnsupportedError, RuntimeError)
