"""Tests for the tensor-network substrate (tensors, networks, contraction, simulator)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import QuantumCircuit, StatevectorSimulator, build_qaoa_circuit
from repro.gates import gate as G
from repro.problems import labs, maxcut
from repro.tensornet import (
    TensorNetworkSimulator,
    Tensor,
    TensorNetwork,
    circuit_to_network,
    contract_network,
    contraction_width,
    contract_pair,
    elimination_order,
    greedy_contraction_order,
)


class TestTensor:
    def test_rank_and_label_validation(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), (0,))
        with pytest.raises(ValueError):
            Tensor(np.zeros((2, 2)), (0, 0))

    def test_relabel_and_transpose(self):
        t = Tensor(np.arange(4).reshape(2, 2), (5, 7))
        assert t.relabel({5: 1}).indices == (1, 7)
        tt = t.transpose_to((7, 5))
        np.testing.assert_array_equal(tt.data, t.data.T)
        with pytest.raises(ValueError):
            t.transpose_to((1, 2))

    def test_contract_pair_matches_einsum(self, rng):
        a = Tensor(rng.normal(size=(2, 2, 2)), (0, 1, 2))
        b = Tensor(rng.normal(size=(2, 2)), (1, 3))
        out = contract_pair(a, b)
        expected = np.einsum("ijk,jl->ikl", a.data, b.data)
        assert out.indices == (0, 2, 3)
        np.testing.assert_allclose(out.data, expected)

    def test_contract_pair_no_shared_is_outer_product(self, rng):
        a = Tensor(rng.normal(size=2), (0,))
        b = Tensor(rng.normal(size=2), (1,))
        out = contract_pair(a, b)
        np.testing.assert_allclose(out.data, np.outer(a.data, b.data))


class TestNetworkConstruction:
    def test_circuit_to_network_counts(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).rz(0.3, 2)
        net = circuit_to_network(qc)
        # 3 input tensors + 3 gates + 3 projections
        assert net.num_tensors == 9
        assert net.open_indices() == []

    def test_output_bits_validation(self):
        qc = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError):
            circuit_to_network(qc, [0])
        with pytest.raises(ValueError):
            circuit_to_network(qc, [0, 2])
        with pytest.raises(ValueError):
            circuit_to_network(qc, [0, 0], initial_state="bogus")

    def test_index_graph_structure(self):
        qc = QuantumCircuit(2).cnot(0, 1)
        net = circuit_to_network(qc)
        g = net.index_graph()
        assert g.number_of_nodes() == len(net.all_indices())


class TestContraction:
    def test_contract_simple_scalar(self):
        net = TensorNetwork([Tensor(np.array([1.0, 2.0]), (0,)),
                             Tensor(np.array([3.0, 4.0]), (0,))])
        result = contract_network(net)
        assert result.rank == 0
        assert float(result.data) == pytest.approx(11.0)

    def test_contract_disconnected_components(self):
        net = TensorNetwork([
            Tensor(np.array([1.0, 2.0]), (0,)), Tensor(np.array([1.0, 1.0]), (0,)),
            Tensor(np.array([5.0, 1.0]), (1,)), Tensor(np.array([1.0, 1.0]), (1,)),
        ])
        assert float(contract_network(net).data) == pytest.approx(3.0 * 6.0)

    def test_contract_empty_network_rejected(self):
        with pytest.raises(ValueError):
            contract_network(TensorNetwork([]))

    def test_greedy_order_executes(self, rng):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).rzz(0.3, 1, 2).rx(0.2, 2)
        net = circuit_to_network(qc)
        order = greedy_contraction_order(net)
        assert len(order) == net.num_tensors - 1
        result = contract_network(net, order)
        assert result.rank == 0

    def test_elimination_order_covers_all_indices(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).cnot(1, 2)
        net = circuit_to_network(qc)
        for heuristic in ("min_degree", "min_fill"):
            order = elimination_order(net, heuristic=heuristic)
            assert sorted(order) == sorted(net.all_indices())
        with pytest.raises(ValueError):
            elimination_order(net, heuristic="nope")

    def test_width_of_product_state_circuit_is_small(self):
        qc = QuantumCircuit(6)
        for q in range(6):
            qc.h(q)
        net = circuit_to_network(qc)
        assert contraction_width(net) <= 2

    def test_width_grows_for_deep_labs_qaoa(self):
        """Deep, dense LABS circuits force contraction width ≈ n (Sec. V-A)."""
        n = 8
        sim = TensorNetworkSimulator()
        width_p1 = sim.qaoa_contraction_width(labs.get_terms(n), 1, n)
        assert width_p1 >= n


class TestAmplitudes:
    @pytest.mark.parametrize("x", [0, 3, 11, 25])
    def test_amplitude_matches_statevector(self, rng, x):
        n = 5
        qc = QuantumCircuit(n)
        for q in range(n):
            qc.h(q)
        qc.cnot(0, 3).rzz(0.4, 1, 2).rx(0.3, 4).rz(0.2, 0)
        sv = StatevectorSimulator().run(qc)
        bits = [(x >> q) & 1 for q in range(n)]
        amp = TensorNetworkSimulator().amplitude(qc, bits)
        assert amp == pytest.approx(sv[x], abs=1e-12)

    def test_qaoa_amplitude_matches_statevector(self, small_maxcut, qaoa_angles):
        graph, terms = small_maxcut
        gammas, betas = qaoa_angles
        n = 6
        circuit = build_qaoa_circuit(terms, gammas, betas, n)
        sv = StatevectorSimulator().run(circuit)
        sim = TensorNetworkSimulator()
        for x in (0, 21, 63):
            bits = [(x >> q) & 1 for q in range(n)]
            amp = sim.qaoa_amplitude(terms, gammas, betas, n, bits)
            assert amp == pytest.approx(sv[x], abs=1e-10)

    def test_batch_amplitudes_norm(self, qaoa_angles):
        n = 4
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = TensorNetworkSimulator()
        outputs = [[(x >> q) & 1 for q in range(n)] for x in range(1 << n)]
        circuit = build_qaoa_circuit(terms, gammas, betas, n, include_initial_state=False)
        amps = sim.batch_amplitudes(circuit, outputs, initial_state="plus")
        assert np.sum(np.abs(amps) ** 2) == pytest.approx(1.0, abs=1e-10)

    def test_amplitude_with_stats(self, qaoa_angles):
        n = 4
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        circuit = build_qaoa_circuit(terms, gammas, betas, n, include_initial_state=False)
        result = TensorNetworkSimulator().amplitude_with_stats(circuit, initial_state="plus")
        assert result.num_tensors > 0
        assert result.contraction_width >= 1
        sv = StatevectorSimulator().run(build_qaoa_circuit(terms, gammas, betas, n))
        assert result.amplitude == pytest.approx(sv[0], abs=1e-10)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_property_random_circuit_amplitudes(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        qc = QuantumCircuit(n)
        for q in range(n):
            qc.h(q)
        for _ in range(6):
            kind = rng.integers(0, 3)
            q1, q2 = rng.choice(n, size=2, replace=False)
            if kind == 0:
                qc.rx(float(rng.uniform(0, 1)), int(q1))
            elif kind == 1:
                qc.cnot(int(q1), int(q2))
            else:
                qc.rzz(float(rng.uniform(0, 1)), int(q1), int(q2))
        sv = StatevectorSimulator().run(qc)
        x = int(rng.integers(0, 1 << n))
        bits = [(x >> q) & 1 for q in range(n)]
        amp = TensorNetworkSimulator().amplitude(qc, bits)
        assert amp == pytest.approx(sv[x], abs=1e-10)
