"""Tests for the LABS problem (the paper's headline workload)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import labs
from repro.problems.terms import evaluate_terms_on_index


class TestEnergyDefinition:
    def test_autocorrelations_simple(self):
        # s = (+,+,-): C_1 = s0 s1 + s1 s2 = 1 - 1 = 0; C_2 = s0 s2 = -1.
        np.testing.assert_array_equal(labs.autocorrelations([1, 1, -1]), [0, -1])

    def test_autocorrelations_validation(self):
        with pytest.raises(ValueError):
            labs.autocorrelations([1, 0, 1])
        with pytest.raises(ValueError):
            labs.autocorrelations([[1, 1], [1, 1]])

    def test_energy_constant_sequence(self):
        # all-ones sequence: C_k = n-k, E = sum (n-k)^2
        n = 6
        expected = sum((n - k) ** 2 for k in range(1, n))
        assert labs.energy_from_spins([1] * n) == expected

    def test_energy_from_index_matches_spins(self):
        for x in [0, 5, 13, 42]:
            bits = [(x >> q) & 1 for q in range(6)]
            spins = [1 - 2 * b for b in bits]
            assert labs.energy_from_index(x, 6) == labs.energy_from_spins(spins)

    def test_merit_factor(self):
        assert labs.merit_factor_from_energy(8, 8) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            labs.merit_factor_from_energy(0, 8)

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=1023))
    @settings(max_examples=60, deadline=None)
    def test_energy_symmetries(self, n, x):
        """LABS energy is invariant under global flip and sequence reversal."""
        x = x % (1 << n)
        bits = np.array([(x >> q) & 1 for q in range(n)])
        spins = 1 - 2 * bits
        e = labs.energy_from_spins(spins)
        assert labs.energy_from_spins(-spins) == e
        assert labs.energy_from_spins(spins[::-1]) == e


class TestTermGeneration:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 8, 10])
    def test_terms_reproduce_energies(self, n):
        terms = labs.get_terms(n)
        energies = labs.energies_all_sequences(n)
        for x in range(1 << n):
            assert evaluate_terms_on_index(terms, x, n) == pytest.approx(float(energies[x]))

    def test_terms_without_offset_differ_by_constant(self):
        n = 7
        offset = n * (n - 1) / 2
        with_off = labs.get_terms(n, include_offset=True)
        without = labs.get_terms(n, include_offset=False)
        for x in [0, 3, 77, 127]:
            assert (evaluate_terms_on_index(with_off, x, n)
                    - evaluate_terms_on_index(without, x, n)) == pytest.approx(offset)

    def test_term_orders_are_two_and_four(self):
        terms = labs.get_terms(12, include_offset=False)
        orders = {len(idx) for _, idx in terms}
        assert orders == {2, 4}

    def test_number_of_terms_grows_quadratically(self):
        # The paper quotes ≈75·n terms for n=31; the count is Θ(n²) and for the
        # exact expansion it exceeds n²/2 well before that.
        counts = {n: labs.number_of_terms(n) for n in (8, 16, 24)}
        assert counts[16] > 3 * counts[8]
        assert counts[24] > 2 * counts[16]

    def test_labs_polynomial_wrapper(self):
        poly = labs.labs_polynomial(6)
        assert poly.n == 6
        assert poly.max_order == 4
        assert poly.offset == 6 * 5 / 2

    def test_terms_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            labs.get_terms(1)


class TestKnownOptima:
    @pytest.mark.parametrize("n", range(3, 15))
    def test_table_matches_bruteforce_small(self, n):
        assert labs.KNOWN_OPTIMAL_ENERGIES[n] == labs.optimal_energy_bruteforce(n)

    def test_true_optimal_energy_lookup_and_fallback(self):
        assert labs.true_optimal_energy(10) == 13
        with pytest.raises(KeyError):
            labs.true_optimal_energy(64)

    def test_optimal_merit_factor(self):
        # n=13 Barker sequence: E*=6, F* = 169/12
        assert labs.optimal_merit_factor(13) == pytest.approx(169 / 12)

    def test_ground_state_indices_have_optimal_energy(self):
        n = 8
        idx = labs.ground_state_indices(n)
        assert len(idx) >= 4  # symmetry orbit
        for x in idx:
            assert labs.energy_from_index(int(x), n) == labs.KNOWN_OPTIMAL_ENERGIES[n]

    def test_energies_all_sequences_guard(self):
        with pytest.raises(ValueError):
            labs.energies_all_sequences(23)
        with pytest.raises(ValueError):
            labs.energies_all_sequences(1)
