"""Tests for the MaxCut problem generators."""

import networkx as nx
import numpy as np
import pytest

from repro.problems import maxcut
from repro.problems.terms import evaluate_terms_on_index


class TestGraphConstruction:
    def test_graph_from_edges_weighted_and_unweighted(self):
        g = maxcut.graph_from_edges(3, [(0, 1), (1, 2, 2.5)])
        assert g.number_of_nodes() == 3
        assert g[0][1]["weight"] == 1.0
        assert g[1][2]["weight"] == 2.5

    def test_graph_from_edges_rejects_self_loop(self):
        with pytest.raises(ValueError):
            maxcut.graph_from_edges(3, [(1, 1)])

    def test_graph_from_edges_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            maxcut.graph_from_edges(3, [(0, 5)])

    def test_random_regular_graph_degree(self):
        g = maxcut.random_regular_graph(3, 8, seed=0)
        assert all(d == 3 for _, d in g.degree())

    def test_random_regular_graph_weighted(self):
        g = maxcut.random_regular_graph(3, 8, seed=0, weighted=True)
        weights = [d["weight"] for _, _, d in g.edges(data=True)]
        assert all(0.0 <= w < 1.0 for w in weights)
        assert len(set(weights)) > 1

    def test_random_regular_graph_invalid(self):
        with pytest.raises(ValueError):
            maxcut.random_regular_graph(8, 4)
        with pytest.raises(ValueError):
            maxcut.random_regular_graph(3, 5)

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(ValueError):
            maxcut.erdos_renyi_graph(5, 1.5)
        g = maxcut.erdos_renyi_graph(5, 0.0, seed=1)
        assert g.number_of_edges() == 0
        assert g.number_of_nodes() == 5


class TestTerms:
    def test_terms_value_equals_negative_cut(self):
        g = maxcut.random_regular_graph(3, 8, seed=3, weighted=True)
        terms = maxcut.maxcut_terms_from_graph(g)
        for x in [0, 1, 17, 100, 255]:
            cut = maxcut.cut_value_from_index(g, x)
            val = evaluate_terms_on_index(terms, x, 8)
            assert val == pytest.approx(-cut)

    def test_terms_without_offset_shifted_spectrum(self):
        g = nx.path_graph(3)
        with_off = maxcut.maxcut_terms_from_graph(g, include_offset=True)
        without = maxcut.maxcut_terms_from_graph(g, include_offset=False)
        shift = evaluate_terms_on_index(with_off, 0, 3) - evaluate_terms_on_index(without, 0, 3)
        for x in range(8):
            diff = (evaluate_terms_on_index(with_off, x, 3)
                    - evaluate_terms_on_index(without, x, 3))
            assert diff == pytest.approx(shift)

    def test_get_maxcut_terms_from_edges(self):
        terms = maxcut.get_maxcut_terms(n=3, edges=[(0, 1), (1, 2)])
        assert len(terms) == 3  # 2 edges + offset

    def test_get_maxcut_terms_requires_input(self):
        with pytest.raises(ValueError):
            maxcut.get_maxcut_terms()

    def test_maxcut_polynomial_wrapper(self):
        g = nx.cycle_graph(4)
        poly = maxcut.maxcut_polynomial(g)
        assert poly.n == 4
        assert poly.max_order == 2

    def test_complete_graph_terms_matches_listing1(self):
        n = 5
        terms = maxcut.complete_graph_terms(n, weight=0.3)
        expected = [(0.3, (i, j)) for i in range(n) for j in range(i + 1, n)]
        assert terms == sorted(expected, key=lambda t: (len(t[1]), t[1]))

    def test_complete_graph_terms_needs_two_nodes(self):
        with pytest.raises(ValueError):
            maxcut.complete_graph_terms(1)


class TestCutValues:
    def test_cut_value_simple(self):
        g = maxcut.graph_from_edges(3, [(0, 1), (1, 2)])
        assert maxcut.cut_value(g, [0, 1, 0]) == 2.0
        assert maxcut.cut_value(g, [0, 0, 0]) == 0.0

    def test_bruteforce_optimum_on_known_graphs(self):
        # Complete bipartite K_{2,3}: optimal cut = all 6 edges.
        g = nx.complete_bipartite_graph(2, 3)
        best, x = maxcut.maxcut_optimal_cut_bruteforce(g)
        assert best == 6.0
        # Cycle of length 5: optimal cut = 4.
        best, _ = maxcut.maxcut_optimal_cut_bruteforce(nx.cycle_graph(5))
        assert best == 4.0

    def test_bruteforce_refuses_large_graphs(self):
        with pytest.raises(ValueError):
            maxcut.maxcut_optimal_cut_bruteforce(nx.empty_graph(25))

    def test_bruteforce_optimum_is_max_of_terms(self):
        g = maxcut.random_regular_graph(3, 8, seed=11, weighted=True)
        best, x = maxcut.maxcut_optimal_cut_bruteforce(g)
        terms = maxcut.maxcut_terms_from_graph(g)
        val = evaluate_terms_on_index(terms, x, 8)
        assert val == pytest.approx(-best)
        # no assignment cuts more
        for y in range(256):
            assert maxcut.cut_value_from_index(g, y) <= best + 1e-12
