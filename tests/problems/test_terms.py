"""Tests for the polynomial-terms representation (Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import terms as T


class TestNormalization:
    def test_normalize_sorts_indices(self):
        assert T.normalize_terms([(1.0, (3, 1, 2))]) == [(1.0, (1, 2, 3))]

    def test_normalize_cancels_repeated_indices(self):
        # s_0 s_1 s_0 == s_1
        assert T.normalize_terms([(2.0, (0, 1, 0))]) == [(2.0, (1,))]

    def test_normalize_cancels_square_to_constant(self):
        assert T.normalize_terms([(2.0, (4, 4))]) == [(2.0, ())]

    def test_normalize_casts_weight_to_float(self):
        (w, idx), = T.normalize_terms([(3, [0])])
        assert isinstance(w, float) and idx == (0,)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            T.normalize_terms([(1.0, (-1,))])

    def test_malformed_term_rejected(self):
        with pytest.raises(ValueError):
            T.normalize_terms([(1.0,)])


class TestAlgebra:
    def test_simplify_merges_duplicates(self):
        out = T.simplify_terms([(1.0, (0, 1)), (2.5, (1, 0))])
        assert out == [(3.5, (0, 1))]

    def test_simplify_drops_zero(self):
        assert T.simplify_terms([(1.0, (0,)), (-1.0, (0,))]) == []

    def test_multiply_symmetric_difference(self):
        # (s0 s1) * (s1 s2) = s0 s2
        out = T.multiply_terms([(2.0, (0, 1))], [(3.0, (1, 2))])
        assert out == [(6.0, (0, 2))]

    def test_multiply_distributes(self):
        a = [(1.0, (0,)), (2.0, (1,))]
        b = [(1.0, (0,))]
        out = T.multiply_terms(a, b)
        assert dict(((idx, w) for w, idx in out)) == {(): 1.0, (0, 1): 2.0}

    def test_add_and_scale_and_negate(self):
        a = [(1.0, (0,))]
        b = [(2.0, (0,)), (1.0, ())]
        assert T.add_terms(a, b) == [(1.0, ()), (3.0, (0,))]
        assert T.scale_terms(a, 2.0) == [(2.0, (0,))]
        assert T.negate_terms(a) == [(-1.0, (0,))]

    def test_offset_helpers(self):
        terms = [(1.0, ()), (2.0, (0,)), (3.0, ())]
        assert T.get_offset(terms) == 4.0
        rest, off = T.remove_offset(terms)
        assert off == 4.0 and rest == [(2.0, (0,))]

    def test_order_and_num_variables(self):
        terms = [(1.0, (0, 3, 5)), (1.0, (2,))]
        assert T.max_term_order(terms) == 3
        assert T.num_variables(terms) == 6
        assert T.max_term_order([]) == 0
        assert T.num_variables([(1.0, ())]) == 0

    def test_validate_terms_errors(self):
        with pytest.raises(ValueError):
            T.validate_terms([(1.0, (5,))], 3)
        with pytest.raises(ValueError):
            T.validate_terms([(float("nan"), (0,))], 3)
        with pytest.raises(ValueError):
            T.validate_terms([], 0)


class TestEvaluation:
    def test_index_spin_roundtrip(self):
        for x in range(16):
            spins = T.spins_from_index(x, 4)
            assert T.index_from_spins(spins) == x
            bits = T.bits_from_index(x, 4)
            assert T.index_from_bits(bits) == x

    def test_bits_little_endian(self):
        np.testing.assert_array_equal(T.bits_from_index(1, 3), [1, 0, 0])
        np.testing.assert_array_equal(T.bits_from_index(4, 3), [0, 0, 1])

    def test_spin_convention_bit0_is_plus1(self):
        np.testing.assert_array_equal(T.spins_from_index(0, 2), [1, 1])
        np.testing.assert_array_equal(T.spins_from_index(3, 2), [-1, -1])

    def test_evaluate_simple_term(self):
        assert T.evaluate_terms_on_spins([(2.0, (0, 1))], [1, -1]) == -2.0
        assert T.evaluate_terms_on_spins([(2.0, ())], [1, -1]) == 2.0

    def test_evaluate_on_bits_and_index_agree(self):
        terms = [(1.5, (0, 2)), (-0.5, (1,)), (0.25, ())]
        for x in range(8):
            bits = T.bits_from_index(x, 3)
            assert T.evaluate_terms_on_bits(terms, bits) == pytest.approx(
                T.evaluate_terms_on_index(terms, x, 3)
            )

    def test_evaluate_rejects_bad_spins(self):
        with pytest.raises(ValueError):
            T.evaluate_terms_on_spins([(1.0, (0,))], [0])

    def test_index_errors(self):
        with pytest.raises(ValueError):
            T.bits_from_index(8, 3)
        with pytest.raises(ValueError):
            T.index_from_bits([0, 2])
        with pytest.raises(ValueError):
            T.index_from_spins([1, 0])

    def test_all_spin_configurations_shape_and_values(self):
        spins = T.all_spin_configurations(3)
        assert spins.shape == (8, 3)
        assert set(np.unique(spins)) == {-1, 1}
        np.testing.assert_array_equal(spins[0], [1, 1, 1])
        np.testing.assert_array_equal(spins[7], [-1, -1, -1])

    def test_all_spin_configurations_guard(self):
        with pytest.raises(ValueError):
            T.all_spin_configurations(0)
        with pytest.raises(ValueError):
            T.all_spin_configurations(30)

    def test_brute_force_cost_vector_matches_pointwise(self):
        terms = [(1.0, (0, 1)), (0.5, (2,)), (-1.0, ())]
        costs = T.brute_force_cost_vector(terms, 3)
        for x in range(8):
            assert costs[x] == pytest.approx(T.evaluate_terms_on_index(terms, x, 3))


class TestTermsPolynomial:
    def test_from_terms_infers_n(self):
        poly = T.TermsPolynomial.from_terms([(1.0, (0, 4))])
        assert poly.n == 5

    def test_from_terms_constant_only_needs_n(self):
        with pytest.raises(ValueError):
            T.TermsPolynomial.from_terms([(1.0, ())])

    def test_algebra_operations(self):
        a = T.TermsPolynomial(2, ((1.0, (0,)),))
        b = T.TermsPolynomial(2, ((2.0, (0,)), (1.0, (1,))))
        s = (a + b).simplified()
        assert dict((idx, w) for w, idx in s.terms) == {(0,): 3.0, (1,): 1.0}
        assert (2.0 * a).terms == ((2.0, (0,)),)
        assert (-a).terms == ((-1.0, (0,)),)

    def test_queries(self):
        poly = T.TermsPolynomial(3, ((1.0, (0, 1, 2)), (2.0, ())))
        assert poly.num_terms == 2
        assert poly.offset == 2.0
        assert poly.max_order == 3
        assert poly.evaluate_index(0) == pytest.approx(3.0)
        assert poly.cost_vector().shape == (8,)
        assert poly.as_list() == [(1.0, (0, 1, 2)), (2.0, ())]

    def test_out_of_range_terms_rejected(self):
        with pytest.raises(ValueError):
            T.TermsPolynomial(2, ((1.0, (5,)),))


@st.composite
def _term_lists(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    n_terms = draw(st.integers(min_value=1, max_value=8))
    terms = []
    for _ in range(n_terms):
        order = draw(st.integers(min_value=0, max_value=min(3, n)))
        idx = tuple(sorted(draw(
            st.lists(st.integers(0, n - 1), min_size=order, max_size=order, unique=True)
        )))
        w = draw(st.floats(min_value=-5, max_value=5, allow_nan=False))
        terms.append((w, idx))
    return n, terms


class TestTermAlgebraProperties:
    @given(_term_lists())
    @settings(max_examples=50, deadline=None)
    def test_simplify_preserves_values(self, data):
        n, terms = data
        simplified = T.simplify_terms(terms)
        for x in range(1 << n):
            assert T.evaluate_terms_on_index(simplified, x, n) == pytest.approx(
                T.evaluate_terms_on_index(terms, x, n), abs=1e-9
            )

    @given(_term_lists(), _term_lists())
    @settings(max_examples=30, deadline=None)
    def test_multiply_matches_pointwise_product(self, data_a, data_b):
        na, a = data_a
        nb, b = data_b
        n = max(na, nb)
        product = T.multiply_terms(a, b)
        for x in range(1 << n):
            va = T.evaluate_terms_on_index(a, x, n)
            vb = T.evaluate_terms_on_index(b, x, n)
            assert T.evaluate_terms_on_index(product, x, n) == pytest.approx(va * vb, abs=1e-8)

    @given(_term_lists())
    @settings(max_examples=30, deadline=None)
    def test_brute_force_vector_matches_per_index_eval(self, data):
        n, terms = data
        costs = T.brute_force_cost_vector(terms, n)
        for x in range(1 << n):
            assert costs[x] == pytest.approx(T.evaluate_terms_on_index(terms, x, n), abs=1e-9)
