"""Tests for the portfolio-optimization problem generator."""

import numpy as np
import pytest

from repro.problems import portfolio
from repro.problems.terms import evaluate_terms_on_index


class TestProblemConstruction:
    def test_random_problem_properties(self):
        prob = portfolio.random_portfolio_problem(6, seed=0)
        assert prob.n == 6
        assert prob.budget == 3
        np.testing.assert_allclose(prob.cov, prob.cov.T)
        # covariance normalized to unit mean variance
        assert np.mean(np.diag(prob.cov)) == pytest.approx(1.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            portfolio.PortfolioProblem(means=np.ones(3), cov=np.eye(4), risk_aversion=1.0, budget=1)
        with pytest.raises(ValueError):
            portfolio.PortfolioProblem(means=np.ones(3), cov=np.eye(3), risk_aversion=1.0, budget=9)
        asym = np.eye(3)
        asym[0, 1] = 1.0
        with pytest.raises(ValueError):
            portfolio.PortfolioProblem(means=np.ones(3), cov=asym, risk_aversion=1.0, budget=1)
        with pytest.raises(ValueError):
            portfolio.random_portfolio_problem(1)

    def test_value_computation(self):
        prob = portfolio.PortfolioProblem(means=np.array([1.0, 2.0]), cov=np.eye(2),
                                          risk_aversion=0.5, budget=1)
        # select asset 1 only: 0.5*1 - 2 = -1.5
        assert prob.value(np.array([0, 1])) == pytest.approx(-1.5)


class TestTerms:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_terms_reproduce_objective(self, seed):
        prob = portfolio.random_portfolio_problem(6, seed=seed, risk_aversion=0.7)
        terms = portfolio.portfolio_terms(prob)
        ref = portfolio.portfolio_cost_vector(prob)
        for x in range(1 << prob.n):
            assert evaluate_terms_on_index(terms, x, prob.n) == pytest.approx(ref[x], abs=1e-9)

    def test_terms_max_order_two(self):
        prob = portfolio.random_portfolio_problem(5, seed=3)
        terms = portfolio.portfolio_terms(prob, include_offset=False)
        assert max(len(idx) for _, idx in terms) == 2
        assert all(len(idx) > 0 for _, idx in terms)

    def test_polynomial_wrapper(self):
        prob = portfolio.random_portfolio_problem(4, seed=1)
        poly = portfolio.portfolio_polynomial(prob)
        assert poly.n == 4


class TestConstraints:
    def test_hamming_weight_indices(self):
        idx = portfolio.hamming_weight_indices(4, 2)
        assert len(idx) == 6
        assert all(bin(int(x)).count("1") == 2 for x in idx)
        with pytest.raises(ValueError):
            portfolio.hamming_weight_indices(4, 5)

    def test_best_constrained_selection(self):
        prob = portfolio.random_portfolio_problem(8, budget=3, seed=5)
        value, x = portfolio.best_constrained_selection(prob)
        assert bin(x).count("1") == 3
        # verify optimality over the feasible set
        feasible = portfolio.hamming_weight_indices(8, 3)
        costs = portfolio.portfolio_cost_vector(prob)
        assert value == pytest.approx(costs[feasible].min())

    def test_cost_vector_guard(self):
        prob = portfolio.random_portfolio_problem(4, seed=0)
        big = portfolio.PortfolioProblem(means=np.ones(23), cov=np.eye(23),
                                         risk_aversion=1.0, budget=5)
        assert portfolio.portfolio_cost_vector(prob).shape == (16,)
        with pytest.raises(ValueError):
            portfolio.portfolio_cost_vector(big)
