"""Tests for the Sherrington–Kirkpatrick problem generator."""

import numpy as np
import pytest

from repro.problems import sk
from repro.problems.terms import evaluate_terms_on_index, spins_from_index


class TestCouplings:
    def test_symmetric_zero_diagonal(self):
        j = sk.sk_couplings(6, seed=0)
        np.testing.assert_allclose(j, j.T)
        np.testing.assert_allclose(np.diag(j), 0.0)

    def test_seed_reproducibility(self):
        np.testing.assert_allclose(sk.sk_couplings(5, seed=42), sk.sk_couplings(5, seed=42))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            sk.sk_couplings(1)


class TestTerms:
    def test_terms_count_and_order(self):
        n = 7
        terms = sk.get_sk_terms(n, seed=1)
        assert len(terms) == n * (n - 1) // 2
        assert all(len(idx) == 2 for _, idx in terms)

    def test_terms_match_reference_energy(self):
        n = 6
        couplings = sk.sk_couplings(n, seed=3)
        terms = sk.get_sk_terms(n, couplings=couplings)
        for x in range(1 << n):
            spins = spins_from_index(x, n)
            assert evaluate_terms_on_index(terms, x, n) == pytest.approx(
                sk.sk_energy_from_spins(couplings, spins)
            )

    def test_couplings_shape_validated(self):
        with pytest.raises(ValueError):
            sk.get_sk_terms(4, couplings=np.eye(3))

    def test_polynomial_wrapper(self):
        poly = sk.sk_polynomial(5, seed=0)
        assert poly.n == 5
        assert poly.max_order == 2
