"""End-to-end workflows mirroring the paper's Listings and evaluation scenarios."""

import numpy as np
import pytest

from repro import fur
from repro.classical import brute_force_minimize
from repro.fur import dicke_state
from repro.fur.mpi import QAOAFURXSimulatorGPUMPI
from repro.gates import QAOAGateBasedSimulator
from repro.problems import labs, maxcut, portfolio
from repro.qaoa import (
    get_qaoa_objective,
    linear_ramp_parameters,
    minimize_qaoa,
    progressive_depth_optimization,
)
from repro.tensornet import TensorNetworkSimulator


class TestPaperListings:
    def test_listing_1_weighted_maxcut(self):
        """Listing 1: weighted all-to-all MaxCut objective evaluation."""
        simclass = fur.get_simulator_class(name="auto")
        n = 8
        terms = [(0.3, (i, j)) for i in range(n) for j in range(i + 1, n)]
        sim = simclass(n, terms=terms)
        costs = sim.get_cost_diagonal()
        gamma, beta = linear_ramp_parameters(3)
        result = sim.simulate_qaoa(gamma, beta)
        energy = sim.get_expectation(result)
        assert costs.shape == (1 << n,)
        assert costs.min() - 1e-9 <= energy <= costs.max() + 1e-9

    def test_listing_2_labs_xy_complete(self):
        """Listing 2: LABS with the complete-graph XY mixer."""
        simclass = fur.get_simulator_class(mixer="xycomplete")
        n = 8
        terms = labs.get_terms(n)
        sim = simclass(n, terms=terms)
        gamma, beta = linear_ramp_parameters(2)
        result = sim.simulate_qaoa(gamma, beta)
        energy = sim.get_expectation(result)
        assert energy >= labs.KNOWN_OPTIMAL_ENERGIES[n] - 1e-9

    def test_listing_3_distributed_labs(self):
        """Listing 3: LABS on the distributed (cusvmpi) backend."""
        simclass = fur.get_simulator_class(name="cusvmpi")
        n = 10
        terms = labs.get_terms(n)
        sim = simclass(n, terms=terms, n_ranks=4)
        gamma, beta = linear_ramp_parameters(2)
        result = sim.simulate_qaoa(gamma, beta)
        energy = sim.get_expectation(result, preserve_state=False)
        single = fur.get_simulator_class("c")(n, terms=terms)
        expected = single.get_expectation(single.simulate_qaoa(gamma, beta))
        assert energy == pytest.approx(expected, abs=1e-9)


class TestOptimizationWorkflow:
    def test_maxcut_optimization_reaches_good_approximation_ratio(self):
        """The Fig. 1 workflow: optimize parameters, measure solution quality."""
        n, p = 8, 3
        graph = maxcut.random_regular_graph(3, n, seed=9)
        terms = maxcut.maxcut_terms_from_graph(graph)
        best_cut, _ = maxcut.maxcut_optimal_cut_bruteforce(graph)
        obj = get_qaoa_objective(n, p, terms=terms, backend="c")
        result = minimize_qaoa(obj, method="COBYLA", maxiter=150)
        achieved_cut = -result.value
        assert achieved_cut / best_cut > 0.75

    def test_fur_and_gate_backends_converge_to_same_optimum(self):
        """The same optimization run gives the same answer regardless of backend
        (the backends differ only in speed — the paper's central claim)."""
        n, p = 6, 2
        terms = labs.get_terms(n)
        values = {}
        for backend in ("c", QAOAGateBasedSimulator):
            obj = get_qaoa_objective(n, p, terms=terms, backend=backend)
            values[str(backend)] = minimize_qaoa(obj, method="COBYLA", maxiter=80).value
        vals = list(values.values())
        assert vals[0] == pytest.approx(vals[1], abs=1e-4)

    def test_deeper_qaoa_improves_labs_merit_factor(self):
        """Higher depth improves LABS solution quality (the reason the paper
        targets high-depth simulation)."""
        n = 8
        terms = labs.get_terms(n)

        def factory(p):
            return get_qaoa_objective(n, p, terms=terms, backend="c")

        results = progressive_depth_optimization(factory, max_p=4, maxiter_per_depth=60)
        assert results[-1].value < results[0].value
        # energies translate to merit factors above the random-sequence baseline
        mf = labs.merit_factor_from_energy(results[-1].value, n)
        random_mf = labs.merit_factor_from_energy(float(np.mean(labs.energies_all_sequences(n))), n)
        assert mf > random_mf

    def test_overlap_grows_with_depth_for_labs(self):
        """With an annealing-like (small-Δt) linear ramp, longer schedules move the
        state closer to the LABS ground space — the high-depth regime the paper
        targets."""
        n = 8
        terms = labs.get_terms(n)
        sim = fur.get_simulator_class("c")(n, terms=terms)
        overlaps = []
        for p in (1, 8, 16):
            gammas, betas = linear_ramp_parameters(p, delta_t=0.3)
            overlaps.append(sim.get_overlap(sim.simulate_qaoa(gammas, betas)))
        assert overlaps[1] > overlaps[0]
        assert overlaps[2] > overlaps[1]


class TestConstrainedPortfolioWorkflow:
    def test_xy_mixer_keeps_budget_and_finds_good_portfolio(self):
        n, budget, p = 6, 3, 3
        prob = portfolio.random_portfolio_problem(n, budget=budget, seed=2)
        terms = portfolio.portfolio_terms(prob)
        sv0 = dicke_state(n, budget)
        obj = get_qaoa_objective(n, p, terms=terms, backend="c", mixer="xyring", sv0=sv0)
        result = minimize_qaoa(obj, method="COBYLA", maxiter=100)
        best_value, _ = portfolio.best_constrained_selection(prob)
        feasible = portfolio.hamming_weight_indices(n, budget)
        costs = portfolio.portfolio_cost_vector(prob)
        worst_value = float(costs[feasible].max())
        # optimized expectation lies in the feasible range, closer to the optimum
        assert best_value - 1e-9 <= result.value <= worst_value + 1e-9
        assert result.value < float(costs[feasible].mean())


class TestDistributedWorkflow:
    def test_distributed_objective_matches_during_optimization(self):
        n, p = 8, 2
        terms = labs.get_terms(n)
        obj_single = get_qaoa_objective(n, p, terms=terms, backend="c")
        sim_dist = QAOAFURXSimulatorGPUMPI(n, terms=terms, n_ranks=4)
        obj_dist = get_qaoa_objective(n, p, terms=terms, backend=sim_dist)
        rng = np.random.default_rng(0)
        for _ in range(5):
            theta = rng.uniform(-1, 1, 2 * p)
            assert obj_dist(theta) == pytest.approx(obj_single(theta), abs=1e-9)


class TestTensorNetworkCrossCheck:
    def test_tensornet_probability_of_ground_state_matches_fur(self, qaoa_angles):
        n = 6
        terms = labs.get_terms(n)
        gammas, betas = qaoa_angles
        sim = fur.get_simulator_class("c")(n, terms=terms)
        sv = np.asarray(sim.get_statevector(sim.simulate_qaoa(gammas, betas)))
        tns = TensorNetworkSimulator()
        x = int(labs.ground_state_indices(n)[0])
        bits = [(x >> q) & 1 for q in range(n)]
        amp = tns.qaoa_amplitude(terms, gammas, betas, n, bits)
        assert abs(amp) ** 2 == pytest.approx(float(np.abs(sv[x]) ** 2), abs=1e-10)


class TestSolutionQualityAgainstClassical:
    def test_qaoa_samples_contain_optimal_labs_sequence(self):
        """With enough depth the optimum appears with amplified probability."""
        n = 8
        terms = labs.get_terms(n)
        sim = fur.get_simulator_class("c")(n, terms=terms)
        gammas, betas = linear_ramp_parameters(16, delta_t=0.3)
        res = sim.simulate_qaoa(gammas, betas)
        probs = sim.get_probabilities(res)
        optimum = brute_force_minimize(terms, n)
        uniform = len(optimum.indices) / (1 << n)
        assert float(probs[optimum.indices].sum()) > 1.5 * uniform
