"""Cross-backend equivalence: every simulator backend computes the same QAOA state.

This is the central integration property of the reproduction: the ``python``,
``c``, ``gpu`` (simulated device), ``gpumpi`` and ``cusvmpi`` (distributed)
backends and the gate-based baseline all realize the same unitary, so
expectation values, overlaps and state vectors must agree to numerical
precision on arbitrary problems.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fur import get_simulator_class
from repro.gates import QAOAGateBasedSimulator
from repro.problems import labs, maxcut, portfolio, sk

from repro.testing import random_terms

ALL_BACKENDS = ["python", "c", "gpu", "gpumpi", "cusvmpi"]


def build(backend, n, terms):
    cls = get_simulator_class(backend)
    kwargs = {"n_ranks": 4} if backend in ("gpumpi", "cusvmpi") else {}
    return cls(n, terms=terms, **kwargs)


class TestAllBackendsAgree:
    @pytest.mark.parametrize("problem", ["labs", "maxcut", "sk", "portfolio"])
    def test_statevector_and_observables(self, problem, qaoa_angles):
        n = 8
        if problem == "labs":
            terms = labs.get_terms(n)
        elif problem == "maxcut":
            terms = maxcut.maxcut_terms_from_graph(maxcut.random_regular_graph(3, n, seed=1))
        elif problem == "sk":
            terms = sk.get_sk_terms(n, seed=1)
        else:
            terms = portfolio.portfolio_terms(portfolio.random_portfolio_problem(n, seed=1))
        gammas, betas = qaoa_angles

        reference = None
        for backend in ALL_BACKENDS + ["gates"]:
            sim = (QAOAGateBasedSimulator(n, terms=terms) if backend == "gates"
                   else build(backend, n, terms))
            res = sim.simulate_qaoa(gammas, betas)
            sv = np.asarray(sim.get_statevector(res))
            expectation = sim.get_expectation(sim.simulate_qaoa(gammas, betas))
            overlap = sim.get_overlap(sim.simulate_qaoa(gammas, betas))
            if reference is None:
                reference = (sv, expectation, overlap)
            else:
                np.testing.assert_allclose(sv, reference[0], atol=1e-10,
                                           err_msg=f"statevector mismatch for {backend}")
                assert expectation == pytest.approx(reference[1], abs=1e-9), backend
                assert overlap == pytest.approx(reference[2], abs=1e-9), backend

    @given(st.integers(min_value=4, max_value=8), st.integers(min_value=0, max_value=2 ** 31 - 1),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_property_random_problems(self, n, seed, p):
        rng = np.random.default_rng(seed)
        terms = random_terms(rng, n, int(rng.integers(2, 10)), max_order=min(4, n))
        gammas = rng.uniform(-1.5, 1.5, p)
        betas = rng.uniform(-1.5, 1.5, p)
        svs = []
        for backend in ALL_BACKENDS:
            sim = build(backend, n, terms)
            svs.append(np.asarray(sim.get_statevector(sim.simulate_qaoa(gammas, betas))))
        for sv in svs[1:]:
            np.testing.assert_allclose(sv, svs[0], atol=1e-9)

    def test_precomputed_costs_shared_across_backends(self, qaoa_angles):
        """Passing a precomputed diagonal (the paper's ``costs=`` argument) is
        equivalent to passing terms, on every backend."""
        n = 8
        terms = labs.get_terms(n)
        from repro.fur import precompute_cost_diagonal

        costs = precompute_cost_diagonal(terms, n)
        gammas, betas = qaoa_angles
        for backend in ALL_BACKENDS:
            sim_terms = build(backend, n, terms)
            cls = get_simulator_class(backend)
            kwargs = {"n_ranks": 4} if backend in ("gpumpi", "cusvmpi") else {}
            sim_costs = cls(n, costs=costs, **kwargs)
            sv_a = np.asarray(sim_terms.get_statevector(sim_terms.simulate_qaoa(gammas, betas)))
            sv_b = np.asarray(sim_costs.get_statevector(sim_costs.simulate_qaoa(gammas, betas)))
            np.testing.assert_allclose(sv_a, sv_b, atol=1e-12)

    def test_uint16_compressed_diagonal_gives_same_results(self, qaoa_angles):
        """The uint16 diagonal of Sec. V-B is numerically lossless for LABS."""
        n = 10
        terms = labs.get_terms(n)
        from repro.fur import compress_diagonal, precompute_cost_diagonal

        costs = precompute_cost_diagonal(terms, n)
        compressed = compress_diagonal(costs)
        gammas, betas = qaoa_angles
        sim_full = get_simulator_class("c")(n, costs=costs)
        sim_comp = get_simulator_class("c")(n, costs=compressed)
        e_full = sim_full.get_expectation(sim_full.simulate_qaoa(gammas, betas))
        e_comp = sim_comp.get_expectation(sim_comp.simulate_qaoa(gammas, betas))
        assert e_comp == pytest.approx(e_full, abs=1e-10)
