"""The shipped examples must run end-to-end (at reduced problem sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    ("quickstart.py", "8"),
    ("labs_deep_qaoa.py", "8"),
    ("maxcut_parameter_optimization.py", "8"),
    ("distributed_simulation.py", "8"),
    ("portfolio_xy_mixer.py", "6"),
]


@pytest.mark.parametrize("script,size", EXAMPLES)
def test_example_runs_cleanly(script, size):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, str(path), size],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} produced no output"


def test_examples_directory_documented_in_readme():
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for script, _ in EXAMPLES:
        assert script in readme, f"{script} not mentioned in README"
