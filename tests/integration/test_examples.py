"""The shipped examples must run end-to-end (at reduced problem sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    ("quickstart.py", "8"),
    ("labs_deep_qaoa.py", "8"),
    ("maxcut_parameter_optimization.py", "8"),
    ("distributed_simulation.py", "8"),
    ("portfolio_xy_mixer.py", "6"),
]


@pytest.mark.parametrize("script,size", EXAMPLES)
def test_example_runs_cleanly(script, size):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    result = subprocess.run(
        [sys.executable, str(path), size],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} produced no output"


def test_examples_directory_documented_in_readme():
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for script, _ in EXAMPLES:
        assert script in readme, f"{script} not mentioned in README"


@pytest.mark.parametrize("script,_size", EXAMPLES)
def test_example_help_exits_cleanly(script, _size):
    """Every example is a proper CLI: --help prints usage and exits 0."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), "--help"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "n_qubits" in result.stdout
    assert "usage" in result.stdout.lower()


@pytest.mark.parametrize("script,_size", EXAMPLES)
def test_example_rejects_non_integer_argument(script, _size):
    """Regression: a non-integer size used to crash with a raw ValueError
    traceback; argparse now reports the bad value and exits with code 2."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), "not-a-number"],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 2, (
        f"{script} exited {result.returncode}:\n{result.stderr}")
    assert "Traceback" not in result.stderr
    assert "invalid int value" in result.stderr
