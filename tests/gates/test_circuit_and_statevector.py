"""Tests for the circuit container and the gate-by-gate state-vector engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import QuantumCircuit, StatevectorSimulator
from repro.gates import gate as G
from repro.gates.statevector import apply_gate


def dense_embedding(gate: G.Gate, n: int) -> np.ndarray:
    """Reference dense embedding built independently with kron + permutation."""
    from repro.gates.fusion import embed_gate_matrix

    return embed_gate_matrix(gate, tuple(range(n)))


class TestCircuit:
    def test_append_validates_range(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.append(G.h(5))

    def test_builder_methods_and_counts(self):
        qc = QuantumCircuit(3).h(0).cnot(0, 1).rz(0.1, 2).rzz(0.2, 0, 2).rx(0.3, 1)
        assert qc.num_gates == 5
        assert qc.gate_counts() == {"h": 1, "cx": 1, "rz": 1, "rzz": 1, "rx": 1}
        assert qc.count_multiqubit_gates() == 2

    def test_depth(self):
        qc = QuantumCircuit(3)
        qc.h(0).h(1).h(2)          # depth 1 (parallel)
        qc.cnot(0, 1)              # depth 2
        qc.cnot(1, 2)              # depth 3
        assert qc.depth() == 3

    def test_compose_requires_same_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_compose_concatenates(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cnot(0, 1)
        assert a.compose(b).num_gates == 2

    def test_inverse_undoes_circuit(self):
        rng = np.random.default_rng(0)
        qc = QuantumCircuit(3).h(0).rx(0.3, 1).cnot(0, 2).rzz(0.5, 1, 2).rz(0.2, 0)
        sim = StatevectorSimulator()
        sv = rng.normal(size=8) + 1j * rng.normal(size=8)
        sv /= np.linalg.norm(sv)
        out = sim.run(qc.inverse(), initial_state=sim.run(qc, initial_state=sv))
        np.testing.assert_allclose(out, sv, atol=1e-12)

    def test_to_unitary_of_cnot(self):
        qc = QuantumCircuit(2).cnot(0, 1)
        u = qc.to_unitary()
        # control = qubit 0 (bit 0): |01>(index1) -> |11>(index3)
        expected = np.zeros((4, 4))
        expected[0, 0] = expected[2, 2] = 1
        expected[3, 1] = expected[1, 3] = 1
        np.testing.assert_allclose(u, expected, atol=1e-12)

    def test_to_unitary_guard(self):
        with pytest.raises(ValueError):
            QuantumCircuit(13).to_unitary()

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)


class TestApplyGate:
    @pytest.mark.parametrize("gate", [
        G.h(0), G.h(2), G.x(1), G.rx(0.3, 2), G.rz(0.7, 0), G.cnot(0, 2), G.cnot(2, 0),
        G.cz(1, 2), G.swap(0, 2), G.rzz(0.4, 2, 0), G.xx_plus_yy(0.5, 1, 0),
        G.multi_rz(0.3, (0, 2)), G.multi_rz(0.3, (2, 1, 0)),
    ])
    def test_matches_dense_embedding(self, rng, gate):
        n = 3
        sv = rng.normal(size=8) + 1j * rng.normal(size=8)
        dense = dense_embedding(gate, n)
        np.testing.assert_allclose(apply_gate(sv.copy(), gate, n), dense @ sv, atol=1e-11)

    def test_diagonal_gate_applied_in_place(self, rng):
        sv = rng.normal(size=8) + 1j * rng.normal(size=8)
        out = apply_gate(sv, G.rz(0.3, 1), 3)
        assert out is sv

    def test_gate_out_of_range(self, rng):
        sv = np.zeros(8, dtype=np.complex128)
        with pytest.raises(ValueError):
            apply_gate(sv, G.h(3), 3)
        with pytest.raises(ValueError):
            apply_gate(np.zeros(7, dtype=np.complex128), G.h(0), 3)

    @given(st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_random_two_qubit_unitaries(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        q = rng.choice(n, size=2, replace=False)
        # random unitary via QR
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        qmat, _ = np.linalg.qr(a)
        gate = G.unitary(qmat, (int(q[0]), int(q[1])))
        sv = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        dense = dense_embedding(gate, n)
        np.testing.assert_allclose(apply_gate(sv.copy(), gate, n), dense @ sv, atol=1e-10)


class TestStatevectorSimulator:
    def test_zero_state_and_bell_state(self):
        sim = StatevectorSimulator()
        qc = QuantumCircuit(2).h(0).cnot(0, 1)
        sv = sim.run(qc)
        expected = np.zeros(4, dtype=np.complex128)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        np.testing.assert_allclose(sv, expected, atol=1e-12)

    def test_initial_state_not_mutated(self, rng):
        sim = StatevectorSimulator()
        sv0 = rng.normal(size=4) + 1j * rng.normal(size=4)
        sv0_copy = sv0.copy()
        sim.run(QuantumCircuit(2).h(0), initial_state=sv0)
        np.testing.assert_array_equal(sv0, sv0_copy)

    def test_initial_state_shape_checked(self):
        with pytest.raises(ValueError):
            StatevectorSimulator().run(QuantumCircuit(2), initial_state=np.zeros(3))

    def test_single_precision_supported(self):
        sim = StatevectorSimulator(dtype=np.complex64)
        sv = sim.run(QuantumCircuit(2).h(0).cnot(0, 1))
        assert sv.dtype == np.complex64
        assert np.linalg.norm(sv) == pytest.approx(1.0, abs=1e-6)

    def test_invalid_dtype(self):
        with pytest.raises(ValueError):
            StatevectorSimulator(dtype=np.float64)

    def test_expectation_diagonal(self, rng):
        sim = StatevectorSimulator()
        sv = rng.normal(size=8) + 1j * rng.normal(size=8)
        sv /= np.linalg.norm(sv)
        diag = rng.normal(size=8)
        assert sim.expectation_diagonal(sv, diag) == pytest.approx(
            float(np.dot(np.abs(sv) ** 2, diag)))
