"""Tests for the gate library."""

import numpy as np
import pytest

from repro.gates import gate as G


def is_unitary(mat: np.ndarray) -> bool:
    return np.allclose(mat.conj().T @ mat, np.eye(mat.shape[0]), atol=1e-10)


class TestGateContainer:
    def test_requires_matrix_xor_diagonal(self):
        with pytest.raises(ValueError):
            G.Gate("bad", (0,))
        with pytest.raises(ValueError):
            G.Gate("bad", (0,), matrix=np.eye(2), diagonal=np.ones(2))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            G.Gate("bad", (0, 1), matrix=np.eye(2))
        with pytest.raises(ValueError):
            G.Gate("bad", (0,), diagonal=np.ones(4))

    def test_repeated_and_negative_qubits(self):
        with pytest.raises(ValueError):
            G.Gate("bad", (1, 1), matrix=np.eye(4))
        with pytest.raises(ValueError):
            G.Gate("bad", (-1,), matrix=np.eye(2))

    def test_to_matrix_from_diagonal(self):
        gate = G.rz(0.4, 0)
        np.testing.assert_allclose(gate.to_matrix(), np.diag(gate.diagonal))

    def test_dagger_inverts(self):
        for gate in (G.h(0), G.rx(0.3, 0), G.rz(0.7, 1), G.cnot(0, 1), G.rzz(0.2, 0, 1)):
            u = gate.to_matrix()
            udg = gate.dagger().to_matrix()
            np.testing.assert_allclose(udg @ u, np.eye(u.shape[0]), atol=1e-12)

    def test_on_retargets(self):
        gate = G.cnot(0, 1).on(2, 3)
        assert gate.qubits == (2, 3)
        with pytest.raises(ValueError):
            G.cnot(0, 1).on(2)

    def test_is_diagonal_flag(self):
        assert G.rz(0.1, 0).is_diagonal
        assert not G.rx(0.1, 0).is_diagonal


class TestStandardGates:
    @pytest.mark.parametrize("factory", [
        lambda: G.h(0), lambda: G.x(0), lambda: G.y(0), lambda: G.z(0), lambda: G.s(0),
        lambda: G.t(0), lambda: G.rx(0.3, 0), lambda: G.ry(0.5, 0), lambda: G.rz(0.7, 0),
        lambda: G.cnot(0, 1), lambda: G.cz(0, 1), lambda: G.swap(0, 1),
        lambda: G.rzz(0.4, 0, 1), lambda: G.rxx(0.4, 0, 1), lambda: G.ryy(0.4, 0, 1),
        lambda: G.xx_plus_yy(0.4, 0, 1), lambda: G.multi_rz(0.4, (0, 1, 2)),
    ])
    def test_all_gates_unitary(self, factory):
        assert is_unitary(factory().to_matrix())

    def test_pauli_relations(self):
        x, y, z = G.x(0).to_matrix(), G.y(0).to_matrix(), G.z(0).to_matrix()
        np.testing.assert_allclose(x @ y, 1j * z, atol=1e-12)
        np.testing.assert_allclose(x @ x, np.eye(2), atol=1e-12)

    def test_rotation_generators(self):
        from scipy.linalg import expm

        theta = 0.37
        np.testing.assert_allclose(G.rx(theta, 0).to_matrix(),
                                   expm(-0.5j * theta * G.x(0).to_matrix()), atol=1e-12)
        np.testing.assert_allclose(G.rz(theta, 0).to_matrix(),
                                   expm(-0.5j * theta * G.z(0).to_matrix()), atol=1e-12)

    def test_rzz_diagonal_signs(self):
        theta = 0.5
        diag = G.rzz(theta, 0, 1).diagonal
        np.testing.assert_allclose(diag, [np.exp(-0.5j * theta), np.exp(0.5j * theta),
                                          np.exp(0.5j * theta), np.exp(-0.5j * theta)])

    def test_multi_rz_matches_kron_of_z(self):
        from scipy.linalg import expm

        theta = 0.61
        z = G.z(0).to_matrix()
        zzz = np.kron(np.kron(z, z), z)
        np.testing.assert_allclose(G.multi_rz(theta, (0, 1, 2)).to_matrix(),
                                   expm(-0.5j * theta * zzz), atol=1e-12)

    def test_multi_rz_requires_qubits(self):
        with pytest.raises(ValueError):
            G.multi_rz(0.1, ())

    def test_xx_plus_yy_block_structure(self):
        mat = G.xx_plus_yy(0.7, 0, 1).to_matrix()
        assert mat[0, 0] == pytest.approx(1.0)
        assert mat[3, 3] == pytest.approx(1.0)
        assert mat[1, 2] == pytest.approx(-1j * np.sin(0.7))

    def test_global_phase(self):
        gate = G.global_phase(0.3)
        np.testing.assert_allclose(gate.diagonal, np.exp(0.3j) * np.ones(2))

    def test_unitary_wrapper_checks(self):
        with pytest.raises(ValueError):
            G.unitary(np.array([[1, 1], [0, 1]]), (0,))
        gate = G.unitary(np.eye(4), (0, 1))
        assert gate.num_qubits == 2

    def test_identity_and_diagonal_wrapper(self):
        assert G.identity(0).is_diagonal
        gate = G.diagonal_gate(np.array([1, 1j, -1, -1j]), (0, 1))
        assert gate.num_qubits == 2
