"""Tests for term→gate compilation, gate fusion and the gate-based QAOA facade."""

import numpy as np
import pytest

from functools import partial

from repro.fur import get_simulator_class
from repro.fur.diagonal import precompute_cost_diagonal
from repro.gates import (
    QAOAGateBasedSimulator,
    QuantumCircuit,
    StatevectorSimulator,
    build_qaoa_circuit,
    compile_phase_separator,
    fuse_circuit,
    initial_plus_state_circuit,
    phase_separator_gate_count,
    qaoa_layer_circuit,
)
from repro.problems import labs, maxcut

from repro.testing import random_terms


class TestPhaseSeparatorCompilation:
    @pytest.mark.parametrize("strategy", ["ladder", "diagonal"])
    def test_equals_exponential_of_diagonal(self, rng, strategy):
        n, gamma = 5, 0.41
        terms = random_terms(rng, n, 8, max_order=4) + [(0.7, ())]
        circuit = compile_phase_separator(terms, gamma, n, strategy=strategy)
        sim = StatevectorSimulator()
        sv0 = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
        sv0 /= np.linalg.norm(sv0)
        out = sim.run(circuit, initial_state=sv0)
        expected = np.exp(-1j * gamma * precompute_cost_diagonal(terms, n)) * sv0
        np.testing.assert_allclose(out, expected, atol=1e-11)

    def test_ladder_and_diagonal_strategies_agree(self, rng, small_labs_terms):
        n, gamma = 6, 0.3
        sv0 = np.full(1 << n, 1 / np.sqrt(1 << n), dtype=np.complex128)
        sim = StatevectorSimulator()
        a = sim.run(compile_phase_separator(small_labs_terms, gamma, n, "ladder"), sv0)
        b = sim.run(compile_phase_separator(small_labs_terms, gamma, n, "diagonal"), sv0)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            compile_phase_separator([(1.0, (0,))], 0.1, 2, strategy="nope")

    def test_gate_count_formula(self):
        # k-body term -> 2(k-1) CNOTs + 1 RZ under the ladder strategy
        terms = [(1.0, (0, 1, 2, 3)), (1.0, (0, 1)), (1.0, (2,)), (1.0, ())]
        assert phase_separator_gate_count(terms, 4, "ladder") == 7 + 3 + 1 + 1
        assert phase_separator_gate_count(terms, 4, "diagonal") == 4
        circuit = compile_phase_separator(terms, 0.3, 4, "ladder")
        assert circuit.num_gates == phase_separator_gate_count(terms, 4, "ladder")

    def test_labs_phase_separator_is_deep(self):
        """LABS compiles to hundreds of gates per layer — the core motivation."""
        n = 16
        count = phase_separator_gate_count(labs.get_terms(n), n, "ladder")
        assert count > 5 * n  # far more than the n mixer gates the FUR backend needs


class TestQAOACircuit:
    def test_initial_plus_state(self):
        sim = StatevectorSimulator()
        sv = sim.run(initial_plus_state_circuit(4))
        np.testing.assert_allclose(sv, 0.25, atol=1e-12)

    def test_layer_circuit_unknown_mixer(self):
        with pytest.raises(ValueError):
            qaoa_layer_circuit([(1.0, (0,))], 0.1, 0.2, 2, mixer="nope")

    def test_full_circuit_matches_fur(self, small_maxcut, qaoa_angles):
        graph, terms = small_maxcut
        gammas, betas = qaoa_angles
        circuit = build_qaoa_circuit(terms, gammas, betas, 6)
        sv_gate = StatevectorSimulator().run(circuit)
        fur_sim = get_simulator_class("c")(6, terms=terms)
        sv_fur = np.asarray(fur_sim.get_statevector(fur_sim.simulate_qaoa(gammas, betas)))
        np.testing.assert_allclose(sv_gate, sv_fur, atol=1e-11)


class TestGateFusion:
    def test_fusion_preserves_state_and_reduces_gates(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        circuit = build_qaoa_circuit(small_labs_terms, gammas, betas, 6)
        fused = fuse_circuit(circuit, max_fused_qubits=2)
        assert fused.num_gates < circuit.num_gates
        sim = StatevectorSimulator()
        np.testing.assert_allclose(sim.run(fused), sim.run(circuit), atol=1e-10)

    def test_fusion_width_one(self, rng):
        qc = QuantumCircuit(2).h(0).rz(0.1, 0).rx(0.2, 0).h(1)
        fused = fuse_circuit(qc, max_fused_qubits=1)
        assert fused.num_gates == 2  # one fused block per qubit
        sim = StatevectorSimulator()
        np.testing.assert_allclose(sim.run(fused), sim.run(qc), atol=1e-12)

    def test_wide_gates_pass_through(self):
        from repro.gates import gate as G

        qc = QuantumCircuit(3)
        qc.append(G.multi_rz(0.3, (0, 1, 2)))
        qc.h(0)
        fused = fuse_circuit(qc, max_fused_qubits=2)
        assert fused.num_gates == 2

    def test_invalid_fusion_width(self):
        with pytest.raises(ValueError):
            fuse_circuit(QuantumCircuit(2).h(0), max_fused_qubits=0)

    def test_embed_requires_support(self):
        from repro.gates import gate as G
        from repro.gates.fusion import embed_gate_matrix

        with pytest.raises(ValueError):
            embed_gate_matrix(G.cnot(0, 2), (0, 1))


class TestGateBasedQAOASimulator:
    @pytest.mark.parametrize("mixer,chooser", [
        ("x", partial(get_simulator_class, mixer="x")),
        ("xyring", partial(get_simulator_class, mixer="xyring")),
        ("xycomplete", partial(get_simulator_class, mixer="xycomplete")),
    ])
    def test_matches_fur_backends(self, mixer, chooser, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        gate_sim = QAOAGateBasedSimulator(6, terms=small_labs_terms, mixer=mixer)
        sv_gate = gate_sim.get_statevector(gate_sim.simulate_qaoa(gammas, betas))
        fur_sim = chooser("c")(6, terms=small_labs_terms)
        sv_fur = np.asarray(fur_sim.get_statevector(fur_sim.simulate_qaoa(gammas, betas)))
        np.testing.assert_allclose(sv_gate, sv_fur, atol=1e-11)
        assert gate_sim.get_expectation(gate_sim.simulate_qaoa(gammas, betas)) == pytest.approx(
            fur_sim.get_expectation(fur_sim.simulate_qaoa(gammas, betas)), abs=1e-9)

    def test_requires_terms(self):
        with pytest.raises(ValueError):
            QAOAGateBasedSimulator(4, costs=np.zeros(16))

    def test_unknown_mixer(self):
        with pytest.raises(ValueError):
            QAOAGateBasedSimulator(4, terms=[(1.0, (0,))], mixer="nope")

    def test_layer_circuit_accessible(self, small_maxcut):
        _, terms = small_maxcut
        sim = QAOAGateBasedSimulator(6, terms=terms)
        layer = sim.layer_circuit(0.1, 0.2)
        assert layer.num_gates == phase_separator_gate_count(terms, 6, "ladder") + 6

    def test_precision_and_dtype_knobs(self, small_maxcut):
        _, terms = small_maxcut
        double = QAOAGateBasedSimulator(6, terms=terms)
        assert double.precision == "double"
        single = QAOAGateBasedSimulator(6, terms=terms, precision="single")
        assert single.precision == "single"
        # the legacy dtype= spelling maps onto the precision knob
        by_dtype = QAOAGateBasedSimulator(6, terms=terms, dtype=np.complex64)
        assert by_dtype.precision == "single"
        with pytest.raises(ValueError, match="conflicts"):
            QAOAGateBasedSimulator(6, terms=terms, dtype=np.complex64,
                                   precision="double")
        rd = double.simulate_qaoa([0.1], [0.2])
        rs = single.simulate_qaoa([0.1], [0.2])
        assert double.get_statevector(rd).dtype == np.complex128
        assert single.get_statevector(rs).dtype == np.complex64
        assert double.get_expectation(rd) == pytest.approx(
            single.get_expectation(rs), rel=1e-5)

    def test_batched_evaluation_matches_sequential(self, small_maxcut, rng):
        _, terms = small_maxcut
        sim = QAOAGateBasedSimulator(6, terms=terms)
        gb = rng.uniform(0.0, 1.0, (3, 2))
        bb = rng.uniform(0.0, 1.0, (3, 2))
        batched = sim.get_expectation_batch(gb, bb)
        sequential = [sim.get_expectation(sim.simulate_qaoa(g, b))
                      for g, b in zip(gb, bb)]
        np.testing.assert_allclose(batched, sequential, rtol=1e-10)

    def test_trotterized_xy_matches_fur(self, small_labs_terms, qaoa_angles):
        gammas, betas = qaoa_angles
        gate_sim = QAOAGateBasedSimulator(6, terms=small_labs_terms,
                                          mixer="xyring")
        fur_sim = get_simulator_class("c", mixer="xyring")(
            6, terms=small_labs_terms)
        e_gate = gate_sim.get_expectation(
            gate_sim.simulate_qaoa(gammas, betas, n_trotters=2))
        e_fur = fur_sim.get_expectation(
            fur_sim.simulate_qaoa(gammas, betas, n_trotters=2))
        assert e_gate == pytest.approx(e_fur, abs=1e-9)
