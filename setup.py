"""Packaging metadata for the repro package (``pip install -e .`` works)."""

import re
from pathlib import Path

from setuptools import find_packages, setup

# Read the version from the package without importing it (importing would
# require numpy at sdist-build time).
_init = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
_match = re.search(r'^__version__ = "([^"]+)"$', _init, re.MULTILINE)
if _match is None:
    raise RuntimeError("cannot find __version__ in src/repro/__init__.py")

setup(
    name="repro-qokit",
    version=_match.group(1),
    description=(
        "Reproduction of 'Fast Simulation of High-Depth QAOA Circuits' "
        "(SC 2023): fast QAOA simulators on a precomputed diagonal cost "
        "operator, behind a unified backend registry"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(),
    long_description_content_type="text/markdown",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
        "networkx>=3.0",
    ],
    extras_require={
        "test": ["pytest>=7.0", "pytest-cov>=4.0"],
        # numba unlocks the jit backend's fastest implementation path; the
        # backend itself works without it (compiled-C / numpy fallbacks).
        "jit": ["numba>=0.57"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Physics",
    ],
)
