"""Ablation: all-to-all algorithm choice for the distributed mixer (Sec. III-C).

The paper notes that many MPI_Alltoall algorithms exist, each with its own
trade-offs, and uses the vendor implementation.  The virtual cluster lets us
compare the classic algorithms directly on the actual mixer exchange: the
direct/pairwise/ring algorithms move the minimal volume in K−1 rounds, Bruck
moves ~log₂K× more bytes in only log₂K rounds.  The benchmark measures the
executed exchange on state-vector-sized buffers and the full distributed layer
under each algorithm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fur.mpi import QAOAFURXSimulatorGPUMPI
from repro.parallel import ALLTOALL_ALGORITHMS, alltoall

from .conftest import ramp

N_QUBITS = 14
N_RANKS = 8


def make_buffers():
    rng = np.random.default_rng(0)
    per_rank = (1 << N_QUBITS) // N_RANKS
    return [rng.normal(size=per_rank) + 1j * rng.normal(size=per_rank) for _ in range(N_RANKS)]


@pytest.mark.parametrize("algorithm", sorted(ALLTOALL_ALGORITHMS))
@pytest.mark.benchmark(group="ablation-alltoall-exchange")
def test_alltoall_exchange(benchmark, algorithm):
    """The raw exchange on state-vector-slice-sized buffers."""
    buffers = make_buffers()
    benchmark(lambda: alltoall(buffers, algorithm))


@pytest.mark.parametrize("algorithm", sorted(ALLTOALL_ALGORITHMS))
@pytest.mark.benchmark(group="ablation-alltoall-layer")
def test_distributed_layer_with_algorithm(benchmark, labs_terms_cache, algorithm):
    """One full distributed LABS layer under each exchange algorithm."""
    sim = QAOAFURXSimulatorGPUMPI(N_QUBITS, terms=labs_terms_cache[N_QUBITS],
                                  n_ranks=N_RANKS, alltoall_algorithm=algorithm)
    gammas, betas = ramp(1)
    benchmark.pedantic(lambda: sim.simulate_qaoa(gammas, betas), rounds=2, iterations=1)


def test_alltoall_traffic_tradeoffs():
    """Bytes-on-the-wire vs number of rounds for each algorithm (recorded in
    EXPERIMENTS.md): Bruck trades bandwidth for latency, the others are
    bandwidth-optimal."""
    buffers = make_buffers()
    stats = {}
    for algorithm in ALLTOALL_ALGORITHMS:
        _, trace = alltoall(buffers, algorithm)
        stats[algorithm] = (trace.total_bytes, trace.num_rounds)
    print("\nAlltoall traffic (K=8, LABS-layer-sized slices):")
    for name, (nbytes, rounds) in sorted(stats.items()):
        print(f"  {name:>9}: {nbytes / 1e6:7.2f} MB in {rounds} rounds")
    assert stats["bruck"][0] > stats["direct"][0]
    assert stats["bruck"][1] < stats["pairwise"][1]
    assert stats["pairwise"][0] == stats["direct"][0] == stats["ring"][0]
