#!/usr/bin/env python
"""Serving-layer throughput: coalesced micro-batching vs per-request serving.

The serving layer (:mod:`repro.serve`) exists to convert *concurrency into
batch size*: concurrent expectation requests for the same problem ride one
fused ``get_expectation_batch`` call, and exact-duplicate schedules are
evaluated once.  This benchmark measures that conversion on the LABS
workload, at increasing concurrency with a realistic duplicate rate (half
the requests repeat an already-in-flight schedule — optimizer restarts and
shared starting points do exactly this).

The baseline is the *sequential per-request* path: the same warm simulator,
one ``simulate_qaoa`` + ``get_expectation`` round trip per request — the
single-request API a service without a batching layer would call per
submission (it is the exact path :meth:`repro.qaoa.QAOAObjective.evaluate`
takes), with duplicates paying full price.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py              # full size
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke      # CI-sized
    PYTHONPATH=src python benchmarks/bench_serving.py --check      # assert bars
    PYTHONPATH=src python benchmarks/bench_serving.py --json BENCH_serving.json

Full size is LABS n=16, p=4 at concurrency 1/8/32.  ``--check`` always
asserts the served values match the direct engine batch and that coalescing
engaged (coalesced hits > 0) at concurrency >= 8; at full size it
additionally requires the served throughput to beat the sequential baseline
at concurrency 8 and to beat it by >= 3x at concurrency 32 on the
``python`` backend (the serving-layer acceptance bar).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro

import repro.serve
from repro.problems import labs

#: Required coalesced-vs-sequential advantage at the top concurrency (--check).
REQUIRED_SERVING_SPEEDUP = 3.0

#: Concurrency level from which --check requires coalescing to have engaged.
COALESCING_CHECK_CONCURRENCY = 8


def _best_of(callable_, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _request_schedules(concurrency: int, p: int,
                       rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-request (γ, β) schedules with a 2:1 duplicate rate.

    ``unique = max(1, concurrency // 2)`` distinct schedules are dealt
    round-robin over the requests, so at concurrency >= 2 every flush
    contains exact duplicates for the coalescer to collapse.
    """
    unique = max(1, concurrency // 2)
    gammas = rng.uniform(0.0, 1.0, (unique, p))
    betas = rng.uniform(0.0, 1.0, (unique, p))
    idx = np.arange(concurrency) % unique
    return gammas[idx], betas[idx], unique


def bench_level(backend: str, terms, n: int, p: int, concurrency: int,
                rounds: int, window_ms: float,
                rng: np.random.Generator) -> dict:
    """Serve ``concurrency`` concurrent requests vs the sequential baseline."""
    gammas, betas, unique = _request_schedules(concurrency, p, rng)

    # sequential per-request baseline: same warm simulator, one
    # simulate+reduce round trip per request — the single-request API path
    # (QAOAObjective.evaluate) a service without batching would call per
    # submission; duplicates pay full price
    sim = repro.simulator(n, terms=terms, backend=backend)
    expected = sim.get_expectation_batch(gammas, betas)  # warm-up + reference
    baseline_values = [
        sim.get_expectation(sim.simulate_qaoa(g, b), preserve_state=False)
        for g, b in zip(gammas, betas)
    ]  # warm-up + cross-path consistency
    np.testing.assert_allclose(baseline_values, expected, rtol=1e-10)

    def baseline() -> None:
        for g, b in zip(gammas, betas):
            sim.get_expectation(sim.simulate_qaoa(g, b), preserve_state=False)

    baseline_s = _best_of(baseline, rounds)

    with repro.serve(backend=backend, window_ms=window_ms,
                     max_batch=concurrency) as svc:
        def served() -> list[float]:
            futures = [svc.submit_future(n, terms, g, b)
                       for g, b in zip(gammas, betas)]
            return [f.result(300) for f in futures]

        values = served()  # warm-up (simulator construction, plan compile)
        np.testing.assert_allclose(values, expected, rtol=1e-10)
        served_s = _best_of(served, rounds)
        stats = svc.stats.as_dict()

    return {
        "concurrency": concurrency,
        "unique_schedules": unique,
        "baseline_s": baseline_s,
        "served_s": served_s,
        "speedup": baseline_s / served_s,
        "served_requests_per_s": concurrency / served_s,
        "baseline_requests_per_s": concurrency / baseline_s,
        "service_stats": stats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized problem and concurrency levels")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless values match, coalescing "
                             f"engaged, and (full size) the concurrency-32 "
                             f"speedup is >= {REQUIRED_SERVING_SPEEDUP}x")
    parser.add_argument("--backend", default="python",
                        help="registry backend to serve (default: python)")
    parser.add_argument("--window-ms", type=float, default=20.0,
                        help="service micro-batching window (default: 20)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable BENCH_serving.json record")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.smoke:
        n, p, rounds = 10, 2, 2
        levels = (1, 8)
    else:
        n, p, rounds = 16, 4, 3
        levels = (1, 8, 32)
    terms = labs.get_terms(n)
    rng = np.random.default_rng(args.seed)

    print(f"Serving benchmark: LABS n={n}, p={p}, backend={args.backend} "
          f"({'smoke' if args.smoke else 'full'}; 2:1 duplicate rate)")
    print(f"{'conc':>5}  {'unique':>6}  {'baseline [s]':>13}  {'served [s]':>11}  "
          f"{'speedup':>8}  {'req/s':>8}  {'coalesced':>9}")
    results = []
    for concurrency in levels:
        rec = bench_level(args.backend, terms, n, p, concurrency, rounds,
                          args.window_ms, rng)
        results.append(rec)
        stats = rec["service_stats"]
        print(f"{rec['concurrency']:>5}  {rec['unique_schedules']:>6}  "
              f"{rec['baseline_s']:>13.3f}  {rec['served_s']:>11.3f}  "
              f"{rec['speedup']:>7.2f}x  {rec['served_requests_per_s']:>8.1f}  "
              f"{stats['coalesced_hits']:>9}")

    if args.json:
        payload = {
            "workload": {"problem": "labs", "n": n, "p": p, "rounds": rounds,
                         "backend": args.backend,
                         "window_ms": args.window_ms,
                         "duplicate_rate": "2:1",
                         "seed": args.seed, "smoke": bool(args.smoke)},
            "required_speedup": REQUIRED_SERVING_SPEEDUP,
            "levels": results,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        # correctness is asserted inside bench_level (allclose vs the direct
        # engine batch); here: coalescing must actually have engaged
        no_coalescing = [r for r in results
                         if r["concurrency"] >= COALESCING_CHECK_CONCURRENCY
                         and r["service_stats"]["coalesced_hits"] == 0]
        if no_coalescing:
            print(f"FAIL: no coalesced hits at concurrency "
                  f"{[r['concurrency'] for r in no_coalescing]}",
                  file=sys.stderr)
            return 1
        print("OK: duplicate requests coalesced at every concurrency level "
              f">= {COALESCING_CHECK_CONCURRENCY}")
        if not args.smoke:
            by_level = {r["concurrency"]: r for r in results}
            if by_level[8]["speedup"] <= 1.0:
                print(f"FAIL: served throughput does not beat the sequential "
                      f"baseline at concurrency 8 "
                      f"({by_level[8]['speedup']:.2f}x)", file=sys.stderr)
                return 1
            top = by_level[max(by_level)]
            if top["speedup"] < REQUIRED_SERVING_SPEEDUP:
                print(f"FAIL: concurrency-{top['concurrency']} serving speedup "
                      f"{top['speedup']:.2f}x < required "
                      f"{REQUIRED_SERVING_SPEEDUP}x", file=sys.stderr)
                return 1
            print(f"OK: coalesced micro-batched serving beats the sequential "
                  f"baseline ({by_level[8]['speedup']:.2f}x at concurrency 8, "
                  f"{top['speedup']:.2f}x >= {REQUIRED_SERVING_SPEEDUP}x at "
                  f"concurrency {top['concurrency']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
