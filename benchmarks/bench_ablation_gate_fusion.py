"""Ablation: does gate fusion rescue the gate-based baseline? (Sec. VI)

The paper argues that even ideal F=2 gate fusion cannot close the gap to the
precomputed-diagonal approach, because the LABS phase separator still compiles
to hundreds of (fused) gates per layer while the FUR simulator needs only the
n mixer rotations.  This benchmark measures the gate-based baseline with and
without the greedy fusion pass and the FUR backend on the same LABS layer, and
records the compiled / fused gate counts that drive the argument.
"""

from __future__ import annotations

import pytest

import repro
from repro.gates import StatevectorSimulator, build_qaoa_circuit, fuse_circuit

from .conftest import ramp

N_QUBITS = 12


def _layer_circuit(terms):
    gammas, betas = ramp(1)
    return build_qaoa_circuit(terms, gammas, betas, N_QUBITS, include_initial_state=False)


@pytest.mark.benchmark(group="ablation-gate-fusion")
def test_gate_based_unfused(benchmark, labs_terms_cache):
    """Baseline: every compiled gate applied separately."""
    circuit = _layer_circuit(labs_terms_cache[N_QUBITS])
    sim = StatevectorSimulator()
    import numpy as np

    sv0 = np.full(1 << N_QUBITS, 1 / np.sqrt(1 << N_QUBITS), dtype=np.complex128)
    benchmark.pedantic(sim.run, args=(circuit,), kwargs={"initial_state": sv0},
                       rounds=2, iterations=1)


@pytest.mark.benchmark(group="ablation-gate-fusion")
def test_gate_based_fused_f2(benchmark, labs_terms_cache):
    """Baseline + greedy F=2 gate fusion (fusion time excluded, as in production use)."""
    circuit = fuse_circuit(_layer_circuit(labs_terms_cache[N_QUBITS]), max_fused_qubits=2)
    sim = StatevectorSimulator()
    import numpy as np

    sv0 = np.full(1 << N_QUBITS, 1 / np.sqrt(1 << N_QUBITS), dtype=np.complex128)
    benchmark.pedantic(sim.run, args=(circuit,), kwargs={"initial_state": sv0},
                       rounds=2, iterations=1)


@pytest.mark.benchmark(group="ablation-gate-fusion")
def test_fur_same_layer(benchmark, labs_terms_cache):
    """The FUR backend on the same single layer."""
    sim = repro.simulator(N_QUBITS, terms=labs_terms_cache[N_QUBITS], backend="c")
    gammas, betas = ramp(1)
    benchmark(lambda: sim.simulate_qaoa(gammas, betas))


def test_fusion_reduces_but_does_not_close_the_gap(labs_terms_cache):
    """Gate counts behind the Sec. VI argument: fusion shrinks the circuit by a
    constant factor, but the fused circuit still has far more than n gates."""
    circuit = _layer_circuit(labs_terms_cache[N_QUBITS])
    fused = fuse_circuit(circuit, max_fused_qubits=2)
    print(f"\nLABS n={N_QUBITS} single layer: {circuit.num_gates} compiled gates, "
          f"{fused.num_gates} after F=2 fusion, vs {N_QUBITS} FUR mixer rotations")
    assert fused.num_gates < circuit.num_gates
    assert fused.num_gates > 5 * N_QUBITS
