"""Ablation: FUR in-place mixer vs the Walsh–Hadamard-sandwich alternative.

Sec. VII of the paper compares its Algorithm 1–2 kernels against the earlier
approach of Ref. [43] (Sack & Serbyn), which simulates one mixer application
as FWHT → diagonal phase → inverse FWHT and needs an extra state-vector copy.
The FUR kernel does the same job in a single pass and in place.  This
benchmark measures both implementations on identical inputs (they are verified
to produce the same state) and records the time and extra-memory difference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fur.cvect import KernelWorkspace, furx_all_blocked
from repro.fur.python.furx import fwht_inplace

N_QUBITS = 16
BETA = 0.37


def fwht_sandwich_mixer(sv: np.ndarray, beta: float, n: int) -> np.ndarray:
    """Mixer via exp(-iβΣX) = H^{⊗n} · exp(-iβΣZ) · H^{⊗n} (Ref. [43] strategy).

    Requires the popcount phase table (an extra 2^n real vector) and works on a
    normalized copy-in/copy-out basis like the reference implementation.
    """
    size = 1 << n
    work = sv.copy()  # the extra state-vector copy the paper points out
    fwht_inplace(work)
    work /= np.sqrt(size)
    idx = np.arange(size, dtype=np.uint64)
    z_sum = n - 2 * np.bitwise_count(idx).astype(np.float64)
    work *= np.exp(-1j * beta * z_sum)
    fwht_inplace(work)
    work /= np.sqrt(size)
    return work


def random_state(n: int) -> np.ndarray:
    rng = np.random.default_rng(0)
    sv = rng.normal(size=1 << n) + 1j * rng.normal(size=1 << n)
    return sv / np.linalg.norm(sv)


def test_ablation_both_strategies_agree():
    sv = random_state(10)
    ws = KernelWorkspace(1 << 10)
    direct = furx_all_blocked(sv.copy(), BETA, 10, ws)
    sandwich = fwht_sandwich_mixer(sv, BETA, 10)
    np.testing.assert_allclose(direct, sandwich, atol=1e-10)


@pytest.mark.benchmark(group="ablation-mixer")
def test_mixer_fur_inplace(benchmark):
    """Algorithm 1–2: one in-place pass, no extra state-vector copy."""
    sv = random_state(N_QUBITS)
    ws = KernelWorkspace(1 << N_QUBITS)
    benchmark(lambda: furx_all_blocked(sv, BETA, N_QUBITS, ws))


@pytest.mark.benchmark(group="ablation-mixer")
def test_mixer_fwht_sandwich(benchmark):
    """Ref. [43] strategy: two FWHTs + diagonal, with a full state-vector copy."""
    sv = random_state(N_QUBITS)
    benchmark(lambda: fwht_sandwich_mixer(sv, BETA, N_QUBITS))
