"""Standalone harness printing the data series behind every figure of the paper.

``pytest benchmarks/ --benchmark-only`` gives statistically careful timings;
this script is the quick, human-readable companion: it runs each experiment
once at reproduction scale and prints the rows/series in the same layout as
the paper's figures, so the tables in EXPERIMENTS.md can be regenerated with a
single command:

    python benchmarks/run_figures.py            # everything (a few minutes)
    python benchmarks/run_figures.py fig3 fig5  # selected figures only
"""

from __future__ import annotations

import sys
import time

import numpy as np

import repro
from repro.fur import diagonal_cache, precompute_cost_diagonal
from repro.fur.mpi import QAOAFURXSimulatorCUSVMPI, QAOAFURXSimulatorGPUMPI
from repro.gates import QAOAGateBasedSimulator, build_qaoa_circuit, fuse_circuit, StatevectorSimulator
from repro.parallel import POLARIS_LIKE, PerformanceModel
from repro.problems import labs, maxcut
from repro.qaoa import get_qaoa_objective, linear_ramp_parameters, minimize_qaoa
from repro.tensornet import TensorNetworkSimulator


def _timed(fn, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall-clock time of ``fn()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _cache_snapshot() -> tuple[int, int, int]:
    """Current (hits, misses, evictions) of the process-wide diagonal cache."""
    stats = diagonal_cache.stats
    return stats.hits, stats.misses, stats.evictions


def _print_cache_delta(label: str, before: tuple[int, int, int]) -> None:
    """Report the diagonal-cache traffic one experiment generated."""
    hits, misses, evictions = (a - b for a, b in zip(_cache_snapshot(), before))
    print(f"  [diagonal cache] {label}: {hits} hits, {misses} misses "
          f"({misses} precomputations), {evictions} evictions; "
          f"{len(diagonal_cache)} entries / "
          f"{diagonal_cache.currsize_bytes() / 2**20:.1f} MiB resident")


def fig2(max_n: int = 14) -> None:
    """Figure 2: end-to-end CPU QAOA expectation, p=6, MaxCut 3-regular."""
    print("\n=== Figure 2: end-to-end QAOA expectation, p=6, MaxCut 3-regular ===")
    print(f"{'n':>4} {'FUR c [s]':>12} {'gates diag [s]':>15} {'gates ladder [s]':>17}")
    gammas, betas = linear_ramp_parameters(6, delta_t=0.4)
    for n in range(6, max_n + 1, 2):
        terms = maxcut.maxcut_terms_from_graph(maxcut.random_regular_graph(3, n, seed=n))
        sims = {
            "fur": repro.simulator(n, terms=terms, backend="c"),
            "diag": QAOAGateBasedSimulator(n, terms=terms, phase_strategy="diagonal"),
            "ladder": QAOAGateBasedSimulator(n, terms=terms, phase_strategy="ladder"),
        }
        times = {k: _timed(lambda s=s: s.get_expectation(s.simulate_qaoa(gammas, betas)),
                           repeats=3 if k == "fur" else 1)
                 for k, s in sims.items()}
        print(f"{n:>4} {times['fur']:>12.4f} {times['diag']:>15.4f} {times['ladder']:>17.4f}")


def fig3(max_n: int = 12, tn_max_n: int = 10) -> None:
    """Figure 3: time per single LABS QAOA layer across simulator types."""
    print("\n=== Figure 3: single LABS QAOA layer ===")
    print(f"{'n':>4} {'FUR c [s]':>12} {'FUR python [s]':>15} {'gates [s]':>12} {'tensor net [s]':>15}")
    gammas, betas = linear_ramp_parameters(1, delta_t=0.4)
    for n in range(6, max_n + 1, 2):
        terms = labs.get_terms(n)
        fur_c = repro.simulator(n, terms=terms, backend="c")
        fur_py = repro.simulator(n, terms=terms, backend="python")
        gate = QAOAGateBasedSimulator(n, terms=terms)
        t_c = _timed(lambda: fur_c.simulate_qaoa(gammas, betas))
        t_py = _timed(lambda: fur_py.simulate_qaoa(gammas, betas))
        t_gate = _timed(lambda: gate.simulate_qaoa(gammas, betas), repeats=1)
        if n <= tn_max_n:
            tns = TensorNetworkSimulator()
            t_tn = _timed(lambda: tns.qaoa_amplitude(terms, gammas, betas, n), repeats=1)
            tn_col = f"{t_tn:>15.4f}"
        else:
            tn_col = f"{'—':>15}"
        print(f"{n:>4} {t_c:>12.4f} {t_py:>15.4f} {t_gate:>12.4f} {tn_col}")


def fig4(n: int = 12) -> None:
    """Figure 4: total simulation time vs number of layers, LABS."""
    print(f"\n=== Figure 4: total time vs depth p (LABS n={n}) ===")
    print(f"{'p':>6} {'FUR ready diag [s]':>20} {'FUR + precompute [s]':>22} {'gates [s]':>12}")
    terms = labs.get_terms(n)
    costs = precompute_cost_diagonal(terms, n)
    gate = QAOAGateBasedSimulator(n, terms=terms)
    ready = repro.simulator(n, costs=costs, backend="c")
    for p in (1, 4, 16, 64, 256):
        gammas, betas = linear_ramp_parameters(p, delta_t=0.4)
        t_ready = _timed(lambda: ready.get_expectation(ready.simulate_qaoa(gammas, betas)), 1)

        def with_precompute():
            with diagonal_cache.bypass():  # time the cold precompute path
                sim = repro.simulator(n, terms=terms, backend="c")
            sim.get_expectation(sim.simulate_qaoa(gammas, betas))

        t_pre = _timed(with_precompute, 1)
        if p <= 16:
            t_gate = _timed(lambda: gate.get_expectation(gate.simulate_qaoa(gammas, betas)), 1)
            gate_col = f"{t_gate:>12.3f}"
        else:
            gate_col = f"{'—':>12}"
        print(f"{p:>6} {t_ready:>20.3f} {t_pre:>22.3f} {gate_col}")


def fig5(n_executed: int = 12) -> None:
    """Figure 5: weak scaling — executed at small scale, modeled at paper scale."""
    print(f"\n=== Figure 5a: executed distributed layer (LABS n={n_executed}, virtual cluster) ===")
    print(f"{'K ranks':>8} {'Alltoall backend [s]':>22} {'index-swap backend [s]':>24}")
    terms = labs.get_terms(n_executed)
    gammas, betas = linear_ramp_parameters(1, delta_t=0.4)
    for k in (2, 4, 8):
        a2a = QAOAFURXSimulatorGPUMPI(n_executed, terms=terms, n_ranks=k)
        swap = QAOAFURXSimulatorCUSVMPI(n_executed, terms=terms, n_ranks=k)
        t_a2a = _timed(lambda: a2a.simulate_qaoa(gammas, betas))
        t_swap = _timed(lambda: swap.simulate_qaoa(gammas, betas))
        print(f"{k:>8} {t_a2a:>22.4f} {t_swap:>24.4f}")

    print("\n=== Figure 5b: modeled weak scaling at paper scale (30 local qubits/GPU) ===")
    print(f"{'K GPUs':>8} {'n':>4} {'MPI Alltoall [s]':>18} {'cuSV index swap [s]':>20}")
    model = PerformanceModel(POLARIS_LIKE)
    for k in (8, 16, 32, 64, 128):
        n = 30 + (k.bit_length() - 1)
        mpi = model.layer_time(n, k, "mpi_alltoall").total_time
        cusv = model.layer_time(n, k, "cusv_p2p").total_time
        print(f"{k:>8} {n:>4} {mpi:>18.1f} {cusv:>20.1f}")


def optimization(n: int = 12, p: int = 4, maxiter: int = 30) -> None:
    """Headline claim: end-to-end parameter-optimization speedup."""
    print(f"\n=== Parameter-optimization speedup (LABS n={n}, p={p}, COBYLA {maxiter} iters) ===")
    terms = labs.get_terms(n)
    results = {}
    for label, backend in (("FUR c", "c"), ("gate-based", QAOAGateBasedSimulator)):
        start = time.perf_counter()
        res = minimize_qaoa(get_qaoa_objective(n, p, terms=terms, backend=backend),
                            method="COBYLA", maxiter=maxiter)
        elapsed = time.perf_counter() - start
        results[label] = elapsed
        print(f"  {label:<12}: {elapsed:8.2f} s  (best <E> = {res.value:.3f})")
    print(f"  speedup: {results['gate-based'] / results['FUR c']:.1f}x  (paper: 11x at n=26)")


def ablations(n: int = 12) -> None:
    """Gate-fusion and mixer-strategy ablation summaries."""
    print(f"\n=== Ablation: gate fusion (LABS n={n}, one layer) ===")
    terms = labs.get_terms(n)
    gammas, betas = linear_ramp_parameters(1, delta_t=0.4)
    circuit = build_qaoa_circuit(terms, gammas, betas, n, include_initial_state=False)
    fused = fuse_circuit(circuit, 2)
    sv0 = np.full(1 << n, 1 / np.sqrt(1 << n), dtype=np.complex128)
    engine = StatevectorSimulator()
    fur = repro.simulator(n, terms=terms, backend="c")
    t_unfused = _timed(lambda: engine.run(circuit, initial_state=sv0), 1)
    t_fused = _timed(lambda: engine.run(fused, initial_state=sv0), 1)
    t_fur = _timed(lambda: fur.simulate_qaoa(gammas, betas))
    print(f"  unfused: {circuit.num_gates} gates, {t_unfused:.3f} s; "
          f"fused F=2: {fused.num_gates} gates, {t_fused:.3f} s; "
          f"FUR: {n} rotations, {t_fur:.4f} s")


FIGURES = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "optimization": optimization,
    "ablations": ablations,
}


def main(argv: list[str]) -> None:
    selected = argv or list(FIGURES)
    unknown = [name for name in selected if name not in FIGURES]
    if unknown:
        raise SystemExit(f"unknown figure(s) {unknown}; available: {sorted(FIGURES)}")
    for name in selected:
        before = _cache_snapshot()
        FIGURES[name]()
        _print_cache_delta(name, before)


if __name__ == "__main__":
    main(sys.argv[1:])
