"""Figure 2: end-to-end CPU QAOA expectation, p=6, MaxCut on 3-regular graphs.

Paper setup: QOKit's custom-C CPU simulator vs Qiskit Aer vs OpenQAOA, n=6…24,
reporting the full time to evaluate one QAOA expectation value.
Reproduction: our ``c`` (blocked NumPy) and ``python`` FUR backends vs the
gate-based baseline (ladder-compiled, Qiskit-style) vs the same baseline with
native diagonal gates (OpenQAOA-style vectorized evaluation), n=6…14.

Expected shape: the FUR backends are several times faster than the gate-based
paths at every n, and the gap widens with n (the paper reports ≈5–10×).
"""

from __future__ import annotations

import pytest

import repro
from repro.gates import QAOAGateBasedSimulator

from .conftest import ramp

P_LAYERS = 6
QUBITS = (6, 8, 10, 12, 14)


def end_to_end_expectation(sim, p=P_LAYERS):
    gammas, betas = ramp(p)
    return sim.get_expectation(sim.simulate_qaoa(gammas, betas))


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig2-cpu-maxcut")
def test_fig2_qokit_c_backend(benchmark, maxcut_terms_cache, n):
    """QOKit-analogue optimized CPU backend ("QOKit CPU" curve)."""
    sim = repro.simulator(n, terms=maxcut_terms_cache[n], backend="c")
    result = benchmark(end_to_end_expectation, sim)
    assert result == pytest.approx(result)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig2-cpu-maxcut")
def test_fig2_qokit_python_backend(benchmark, maxcut_terms_cache, n):
    """Portable NumPy backend (the paper's ``python`` simulator)."""
    sim = repro.simulator(n, terms=maxcut_terms_cache[n], backend="python")
    benchmark(end_to_end_expectation, sim)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig2-cpu-maxcut")
def test_fig2_gate_based_ladder(benchmark, maxcut_terms_cache, n):
    """Gate-based baseline with CNOT-ladder compilation ("Qiskit" curve)."""
    sim = QAOAGateBasedSimulator(n, terms=maxcut_terms_cache[n], phase_strategy="ladder")
    benchmark.pedantic(end_to_end_expectation, args=(sim,), rounds=3, iterations=1)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig2-cpu-maxcut")
def test_fig2_gate_based_diagonal(benchmark, maxcut_terms_cache, n):
    """Gate-based baseline with native diagonal term gates ("OpenQAOA" analogue)."""
    sim = QAOAGateBasedSimulator(n, terms=maxcut_terms_cache[n], phase_strategy="diagonal")
    benchmark.pedantic(end_to_end_expectation, args=(sim,), rounds=3, iterations=1)


def test_fig2_shape_fur_beats_gate_based(maxcut_terms_cache):
    """Sanity check on the figure's ordering at the largest benchmarked size."""
    import time

    n = QUBITS[-1]
    fur_sim = repro.simulator(n, terms=maxcut_terms_cache[n], backend="c")
    gate_sim = QAOAGateBasedSimulator(n, terms=maxcut_terms_cache[n])

    def timed(sim):
        start = time.perf_counter()
        end_to_end_expectation(sim)
        return time.perf_counter() - start

    end_to_end_expectation(fur_sim)  # warm up caches
    assert timed(gate_sim) > 2.0 * timed(fur_sim)
