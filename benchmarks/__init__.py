"""Benchmark harness regenerating every figure and headline claim of the paper."""
