"""Claim: the precomputed diagonal adds only 12.5 % memory (uint16 for LABS).

Paper statements reproduced here (abstract + Sec. V-B): the cost vector is the
only extra exponentially-sized object; stored as uint16 (valid for LABS up to
n < 65 because the optimal/maximal energies stay below 2¹⁶) it adds 2 bytes
per 16-byte amplitude; precomputation time itself is small and embarrassingly
parallel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fur import (
    compress_diagonal,
    diagonal_memory_overhead,
    precompute_cost_diagonal,
)
from repro.problems import labs

N_QUBITS = 16


@pytest.mark.benchmark(group="memory-overhead")
def test_precompute_float64(benchmark, labs_terms_cache):
    """Time to precompute the full float64 LABS diagonal (vectorized CPU kernel)."""
    terms = labs_terms_cache[N_QUBITS]
    diag = benchmark(precompute_cost_diagonal, terms, N_QUBITS)
    assert diag.shape == (1 << N_QUBITS,)


@pytest.mark.benchmark(group="memory-overhead")
def test_precompute_and_compress_uint16(benchmark, labs_terms_cache):
    """Time to precompute and compress the diagonal to uint16 (Sec. V-B path)."""
    terms = labs_terms_cache[N_QUBITS]

    def build():
        return compress_diagonal(precompute_cost_diagonal(terms, N_QUBITS))

    compressed = benchmark(build)
    assert compressed.values.dtype == np.uint16


def test_memory_overhead_figures(labs_terms_cache):
    """Record the actual byte counts behind the 12.5 % claim."""
    terms = labs_terms_cache[N_QUBITS]
    diag = precompute_cost_diagonal(terms, N_QUBITS)
    compressed = compress_diagonal(diag)
    state_bytes = (1 << N_QUBITS) * 16
    print(f"\nState vector: {state_bytes / 1e6:.2f} MB; "
          f"float64 diagonal: {diag.nbytes / 1e6:.2f} MB "
          f"({diag.nbytes / state_bytes:.1%}); "
          f"uint16 diagonal: {compressed.nbytes / 1e6:.2f} MB "
          f"({compressed.nbytes / state_bytes:.1%})")
    assert compressed.nbytes / state_bytes == pytest.approx(0.125)
    assert diagonal_memory_overhead(N_QUBITS, np.uint16) == pytest.approx(0.125)
    # LABS values fit uint16 (the n < 65 claim, checked at reproducible scale)
    assert diag.max() < 2 ** 16
    np.testing.assert_allclose(compressed.decompress(), diag)


def test_uint16_valid_for_all_tabulated_sizes():
    """The known optimal LABS energies (and the worst-case all-ones energy) stay
    below 2¹⁶ for every tabulated n — the paper's justification for uint16."""
    for n, e_opt in labs.KNOWN_OPTIMAL_ENERGIES.items():
        assert e_opt < 2 ** 16
        worst = sum((n - k) ** 2 for k in range(1, n))
        if n <= 40:
            assert worst < 2 ** 16
