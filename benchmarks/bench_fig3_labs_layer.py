"""Figure 3: time to apply a single QAOA layer for the LABS problem.

Paper setup: n=6…30, comparing QOKit (with and without cuStateVec mixer),
Qiskit CPU/GPU, cuStateVec (gates), cuTensorNet and QTensor.
Reproduction: the FUR backends (``c``, ``python``, simulated ``gpu``) vs the
gate-based baseline vs the tensor-network contraction simulator (per-layer
amortized single-amplitude cost, exactly as the paper measures tensor
networks), n=6…12 (…10 for the tensor network, whose cost explodes first —
that *is* the finding).

Expected shape: beyond n≈10 the precomputed-diagonal backends are orders of
magnitude faster per layer than both baselines, and the tensor-network
simulator is the slowest on this deep, densely connected workload.  The
headline "~20× layer speedup vs the gate baseline for n≤26" claim is checked
(at reduced n) by ``test_fig3_speedup_summary``.
"""

from __future__ import annotations

import pytest

import repro
from repro.gates import QAOAGateBasedSimulator, build_qaoa_circuit, StatevectorSimulator
from repro.tensornet import TensorNetworkSimulator

from .conftest import ramp

QUBITS = (6, 8, 10, 12)
TN_QUBITS = (6, 8, 10)


def single_layer(sim):
    gammas, betas = ramp(1)
    return sim.simulate_qaoa(gammas, betas)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig3-labs-layer")
def test_fig3_fur_c(benchmark, labs_terms_cache, n):
    """"QOKit" curve: blocked CPU FUR backend, one layer."""
    sim = repro.simulator(n, terms=labs_terms_cache[n], backend="c")
    benchmark(single_layer, sim)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig3-labs-layer")
def test_fig3_fur_python(benchmark, labs_terms_cache, n):
    """Portable NumPy FUR backend, one layer."""
    sim = repro.simulator(n, terms=labs_terms_cache[n], backend="python")
    benchmark(single_layer, sim)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig3-labs-layer")
def test_fig3_fur_simulated_gpu(benchmark, labs_terms_cache, n):
    """Simulated-GPU FUR backend (numerics identical; device clock modeled)."""
    sim = repro.simulator(n, terms=labs_terms_cache[n], backend="gpu")
    benchmark(single_layer, sim)


@pytest.mark.parametrize("n", QUBITS)
@pytest.mark.benchmark(group="fig3-labs-layer")
def test_fig3_gate_based(benchmark, labs_terms_cache, n):
    """"Qiskit / cuStateVec (gates)" curve: per-gate simulation of the compiled layer."""
    sim = QAOAGateBasedSimulator(n, terms=labs_terms_cache[n])
    benchmark.pedantic(single_layer, args=(sim,), rounds=3, iterations=1)


@pytest.mark.parametrize("n", TN_QUBITS)
@pytest.mark.benchmark(group="fig3-labs-layer")
def test_fig3_tensor_network(benchmark, labs_terms_cache, n):
    """"cuTensorNet / QTensor" curve: one amplitude of a p=1 LABS QAOA state."""
    terms = labs_terms_cache[n]
    gammas, betas = ramp(1)
    sim = TensorNetworkSimulator()

    def contract_once():
        return sim.qaoa_amplitude(terms, gammas, betas, n)

    benchmark.pedantic(contract_once, rounds=2, iterations=1)


def test_fig3_speedup_summary(labs_terms_cache):
    """The per-layer speedup of precomputation over the gate baseline grows with n
    (the paper reports ≈20× at n≤26 against cuStateVec)."""
    import time

    speedups = {}
    gammas, betas = ramp(1)
    for n in (8, 12):
        fur_sim = repro.simulator(n, terms=labs_terms_cache[n], backend="c")
        gate_sim = QAOAGateBasedSimulator(n, terms=labs_terms_cache[n])
        fur_sim.simulate_qaoa(gammas, betas)  # warm up

        start = time.perf_counter()
        for _ in range(3):
            fur_sim.simulate_qaoa(gammas, betas)
        fur_time = (time.perf_counter() - start) / 3

        start = time.perf_counter()
        gate_sim.simulate_qaoa(gammas, betas)
        gate_time = time.perf_counter() - start
        speedups[n] = gate_time / fur_time
    assert speedups[12] > speedups[8]
    assert speedups[12] > 5.0
