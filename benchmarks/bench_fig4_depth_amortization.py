"""Figure 4: total simulation time vs number of QAOA layers (LABS, fixed n).

Paper setup: n=26, p = 1…10⁴, comparing "QOKit + CPU precompute",
"QOKit + GPU precompute" and cuStateVec (gates).  The point of the figure:
the one-off precomputation cost is amortized after a handful of layers (and is
negligible from the start when done on the GPU), after which every additional
layer costs a single multiply + mixer — so the FUR curves grow with a much
smaller slope than the gate-based curve.

Reproduction: n=12, p ∈ {1, 4, 16, 64, 256}; "GPU precompute" is represented
by constructing the simulator from an already-precomputed diagonal (its
modeled device-side precompute time is reported in EXPERIMENTS.md), the CPU
precompute path re-runs the vectorized precomputation inside the measured
region, and the gate-based baseline re-simulates every compiled gate at every
layer (benchmarked only up to p=16 — exactly because it is the slow curve).
"""

from __future__ import annotations

import pytest

import repro
from repro.fur import diagonal_cache, precompute_cost_diagonal
from repro.gates import QAOAGateBasedSimulator

from .conftest import ramp

N_QUBITS = 12
DEPTHS = (1, 4, 16, 64, 256)
GATE_DEPTHS = (1, 4, 16)


@pytest.mark.parametrize("p", DEPTHS)
@pytest.mark.benchmark(group="fig4-depth-amortization")
def test_fig4_fur_with_cpu_precompute(benchmark, labs_terms_cache, p):
    """"QOKit + CPU precompute": precomputation included in every measurement."""
    terms = labs_terms_cache[N_QUBITS]
    gammas, betas = ramp(p)

    def precompute_and_simulate():
        with diagonal_cache.bypass():  # measure the cold precompute path
            sim = repro.simulator(N_QUBITS, terms=terms, backend="c")
        return sim.get_expectation(sim.simulate_qaoa(gammas, betas))

    benchmark.pedantic(precompute_and_simulate, rounds=2, iterations=1)


@pytest.mark.parametrize("p", DEPTHS)
@pytest.mark.benchmark(group="fig4-depth-amortization")
def test_fig4_fur_precomputed_diagonal(benchmark, labs_terms_cache, p):
    """"QOKit + GPU precompute" analogue: the diagonal already lives next to the state."""
    terms = labs_terms_cache[N_QUBITS]
    costs = precompute_cost_diagonal(terms, N_QUBITS)
    sim = repro.simulator(N_QUBITS, costs=costs, backend="c")
    gammas, betas = ramp(p)

    def simulate():
        return sim.get_expectation(sim.simulate_qaoa(gammas, betas))

    benchmark.pedantic(simulate, rounds=2, iterations=1)


@pytest.mark.parametrize("p", GATE_DEPTHS)
@pytest.mark.benchmark(group="fig4-depth-amortization")
def test_fig4_gate_based(benchmark, labs_terms_cache, p):
    """cuStateVec(gates) analogue: every layer re-simulated gate by gate."""
    terms = labs_terms_cache[N_QUBITS]
    sim = QAOAGateBasedSimulator(N_QUBITS, terms=terms)
    gammas, betas = ramp(p)

    def simulate():
        return sim.get_expectation(sim.simulate_qaoa(gammas, betas))

    benchmark.pedantic(simulate, rounds=1, iterations=1)


def test_fig4_precompute_amortizes_quickly(labs_terms_cache):
    """The crossover happens within a few layers: at p=16 the precompute-included
    FUR run is already far cheaper than the gate-based run."""
    import time

    terms = labs_terms_cache[N_QUBITS]
    gammas, betas = ramp(16)

    start = time.perf_counter()
    with diagonal_cache.bypass():  # measure the cold precompute path
        sim = repro.simulator(N_QUBITS, terms=terms, backend="c")
    sim.get_expectation(sim.simulate_qaoa(gammas, betas))
    fur_total = time.perf_counter() - start

    gate_sim = QAOAGateBasedSimulator(N_QUBITS, terms=terms)
    start = time.perf_counter()
    gate_sim.get_expectation(gate_sim.simulate_qaoa(gammas, betas))
    gate_total = time.perf_counter() - start

    assert fur_total * 3 < gate_total


def test_fig4_modeled_gpu_precompute_is_negligible(labs_terms_cache):
    """On the simulated A100 the precomputation is a sub-millisecond kernel, so the
    'GPU precompute' curve in Fig. 4 starts essentially at the per-layer cost."""
    from repro.fur.simgpu import QAOAFURXSimulatorGPU

    sim = QAOAFURXSimulatorGPU(N_QUBITS, terms=labs_terms_cache[N_QUBITS])
    precompute_time = sim.modeled_device_time()
    sim.reset_device_clock()
    sim.simulate_qaoa(*ramp(1))
    layer_time = sim.modeled_device_time()
    assert precompute_time < 50 * layer_time  # same order as a few layers, not thousands
