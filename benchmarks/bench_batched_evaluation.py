#!/usr/bin/env python
"""Fused batched evaluation vs the looped default (the Fig. 2 access pattern).

The paper's headline result is end-to-end parameter-optimization speed:
thousands of objective evaluations over the *same* precomputed diagonal.
This benchmark measures the shared execution engine's fused path (a
``(B, 2^n)`` state block evolved through all layers, see
:mod:`repro.fur.engine`) against its looped path (``mode="looped"``), on the
LABS workload the paper uses — and, per backend, the double-vs-single
precision trade (``precision="single"``: complex64 state, half the bytes per
amplitude).

Usage::

    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py           # full size
    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py --smoke   # CI-sized
    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py --check   # assert >=3x
    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py \
        --json BENCH_precision.json                           # machine-readable record
    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py \
        --engine-report                        # BENCH_engine.json incl. distributed

Full size is B=32 schedules, n=16 qubits, p=4 layers; ``--check`` fails the
run unless the ``python`` backend's fused path is at least 3x faster than the
looped default (the acceptance bar for the fused engine), the
single-precision expectations stay within the 1e-5 relative error envelope,
the plan-rewrite optimizer (``optimize="default"``) beats the unoptimized op
stream (``optimize="none"``) on the ``python`` and ``c`` backends, and (with
``--engine-report``) every distributed backend's fused path beats its looped
default.  ``--engine-report`` additionally records the engine's plan-compile
time, blocks executed, per-backend fused throughput — including the
distributed families — and the optimized-vs-unoptimized rewrite section in
``BENCH_engine.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro

from repro.fur import diagonal_cache
from repro.fur.base import batch_block_rows
from repro.problems import labs

#: Required fused-vs-looped advantage on the ``python`` backend (--check).
REQUIRED_PYTHON_SPEEDUP = 3.0

#: Required sharded(best) advantage over the best single-worker backend at
#: full size (--check) — only enforced on machines with this many cores.
REQUIRED_SHARDED_SPEEDUP = 1.5
SHARDED_GATE_MIN_CORES = 4

#: Pinned single-vs-double relative error envelope for expectations (--check).
SINGLE_PRECISION_RTOL = 1e-5

#: Cut-vs-uncut expectation agreement required of the fragment pipeline
#: (--check).  The wire-cut recombination is algebraically exact at p=1, so
#: only floating-point roundoff separates the two paths.
CUT_PARITY_ATOL = 1e-10


def _best_of(callable_, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_timings(callables: list, repeats: int) -> np.ndarray:
    """Per-round timings with the candidates interleaved, shape (repeats, k).

    Used for close pairs (the optimized-vs-unoptimized plans differ by a few
    percent): alternating the candidates inside each round makes every round
    a *paired* sample, so machine drift (frequency scaling, cache state)
    hits both sides equally and cancels in the per-round ratio.  Callers
    compare via the median of those ratios — far more stable at few-percent
    margins than comparing two independently-located best-of floors.
    """
    times = np.empty((repeats, len(callables)))
    for rep in range(repeats):
        for i, fn in enumerate(callables):
            start = time.perf_counter()
            fn()
            times[rep, i] = time.perf_counter() - start
    return times


def bench_backend(backend: str, terms, n: int, batch: int, p: int,
                  repeats: int, rng: np.random.Generator,
                  simulator_kwargs: dict | None = None) -> dict:
    """Time the engine's fused vs looped ``get_expectation_batch`` paths.

    The fused path is also timed with the plan-rewrite optimizer disabled
    (``optimize="none"``), so the report records what the rewrite passes
    (phase-into-mixer fusion, exchange coalescing) buy per backend.
    """
    sim = repro.simulator(n, terms=terms, backend=backend,
                          **(simulator_kwargs or {}))
    gammas = rng.uniform(0.0, 1.0, (batch, p))
    betas = rng.uniform(0.0, 1.0, (batch, p))

    # One untimed warm-up round per evaluation path before any timed repeat:
    # the first fused call compiles the execution plan and (jit tier) the
    # kernels themselves, so timing it would skew the round by the one-time
    # JIT cost.  Compile time is recorded as its own fields below
    # (compile_time_s / kernel_compile_time_s), never inside timings; the
    # warm-up results double as the correctness cross-check.
    fused_values = sim.get_expectation_batch(gammas, betas)
    looped_values = sim.get_expectation_batch(gammas, betas, mode="looped")
    unopt_values = sim.get_expectation_batch(gammas, betas, optimize="none")
    np.testing.assert_allclose(fused_values, looped_values, rtol=1e-10)
    np.testing.assert_allclose(fused_values, unopt_values, rtol=1e-10)

    pairs = _paired_timings(
        [lambda: sim.get_expectation_batch(gammas, betas),
         lambda: sim.get_expectation_batch(gammas, betas, optimize="none")],
        10 * repeats)
    fused = float(pairs[:, 0].min())
    unoptimized = float(pairs[:, 1].min())
    looped = _best_of(
        lambda: sim.get_expectation_batch(gammas, betas, mode="looped"),
        repeats)
    stats = sim.engine.stats.as_dict()
    record = {
        "backend": backend,
        "fused_s": fused,
        "looped_s": looped,
        "speedup": looped / fused,
        "fused_schedules_per_s": batch / fused,
        "unoptimized_s": unoptimized,
        # Median of the paired per-round ratios (see _paired_timings) — the
        # drift-cancelling statistic the rewrite gate asserts on.
        "rewrite_speedup": float(np.median(pairs[:, 1] / pairs[:, 0])),
        # One-time compile costs, recorded apart from the timed rounds: the
        # engine's plan compilation and the provider's kernel JIT (numba
        # specialization / the jit tier's shared-object build).
        "compile_time_s": stats["compile_time_s"],
        "kernel_compile_time_s": stats["kernel_compile_time_s"],
        "engine": stats,
    }
    if backend == "gpu":
        record["modeled_device_s"] = sim.modeled_device_time()
    return record


def _fused_block_bytes(sim, batch: int) -> int:
    """Peak fused-engine state-block bytes for one sub-batch of ``sim``."""
    itemsize = sim.precision_spec.complex_itemsize
    blocks = 2 if getattr(sim, "_mixer_needs_scratch", False) else 1
    rows = batch_block_rows(batch, sim.n_states, None, blocks=blocks,
                            itemsize=itemsize)
    return blocks * rows * sim.n_states * itemsize


def bench_precision(backend: str, terms, n: int, batch: int, p: int,
                    repeats: int, rng: np.random.Generator) -> dict:
    """Double-vs-single fused evaluation for one backend.

    Reports the wall-clock speedup, the peak state-memory ratio of the fused
    block, the modeled device speedup (gpu backend: the bandwidth-bound
    model, which halving bytes-per-amplitude improves by construction) and
    the worst relative error of the single-precision expectations.
    """
    gammas = rng.uniform(0.0, 1.0, (batch, p))
    betas = rng.uniform(0.0, 1.0, (batch, p))
    sims, values, times, modeled = {}, {}, {}, {}
    for prec in ("double", "single"):
        sim = repro.simulator(n, terms=terms, backend=backend, precision=prec)
        values[prec] = sim.get_expectation_batch(gammas, betas)  # warm-up
        times[prec] = _best_of(lambda s=sim: s.get_expectation_batch(gammas, betas),
                               repeats)
        if backend == "gpu":
            sim.reset_device_clock()
            sim.get_expectation_batch(gammas, betas)
            modeled[prec] = sim.modeled_device_time()
        sims[prec] = sim
    scale = np.max(np.abs(values["double"]))
    max_rel_err = float(np.max(np.abs(values["single"] - values["double"]))
                        / max(scale, 1e-300))
    double_bytes = _fused_block_bytes(sims["double"], batch)
    single_bytes = _fused_block_bytes(sims["single"], batch)
    record = {
        "backend": backend,
        "double_s": times["double"],
        "single_s": times["single"],
        "speedup": times["double"] / times["single"],
        "state_block_bytes_double": double_bytes,
        "state_block_bytes_single": single_bytes,
        "memory_ratio": double_bytes / single_bytes,
        "max_rel_err": max_rel_err,
    }
    if modeled:
        record["modeled_device_s_double"] = modeled["double"]
        record["modeled_device_s_single"] = modeled["single"]
        record["modeled_device_speedup"] = modeled["double"] / modeled["single"]
    return record


def _bridge_terms(n: int) -> list[tuple[float, tuple[int, int]]]:
    """Two weighted rings joined by a single bridge edge.

    The natural half/half partition leaves exactly one crossing term, so
    the cut pipeline runs with ``k = 1`` (4 fragment-B variants) — the
    cheapest non-trivial cut, which keeps the beyond-memory leg about the
    admission ceiling rather than the variant count.
    """
    half = n // 2
    terms = [(0.5, (i, (i + 1) % half)) for i in range(half)]
    terms += [(0.5, (half + i, half + (i + 1) % half)) for i in range(half)]
    terms.append((0.7, (0, half)))
    return terms


def bench_cutting(smoke: bool, repeats: int) -> dict:
    """Circuit-cutting fragment pipeline: fused vs looped fragment
    evaluation, parity against the uncut expectation, and the
    beyond-memory admission demonstration."""
    import repro.fur.base as fur_base
    from repro.cutting import CutQAOAPipeline

    gammas, betas = [0.31], [0.57]

    # Parity + fragment-evaluation timing at a size the monolithic
    # simulator still admits, so the uncut expectation is the reference.
    n = 12 if smoke else 16
    terms = _bridge_terms(n)
    sim = repro.simulator(n, terms=terms, backend="python")
    uncut = float(sim.get_expectation(sim.simulate_qaoa(gammas, betas)))

    modes = {}
    pipe = None
    for mode in ("looped", "fused"):
        pipe = CutQAOAPipeline(n, terms, backend="python", mode=mode,
                               partition=range(n // 2))
        value = float(pipe.expectation(gammas, betas))
        modes[mode] = {
            "value": value,
            "abs_err": abs(value - uncut),
            "eval_s": _best_of(lambda: pipe.expectation(gammas, betas),
                               repeats),
        }

    # Beyond-memory admission: evaluate an n whose monolithic state the
    # admission guard rejects.  The smoke run shrinks the ceiling
    # in-process (and restores it) so the same reduced-size problem serves
    # as the demonstration; the full run needs no such trick — a 2^36
    # single-precision state is 512 GiB, 2x over the default ceiling,
    # while the fragments stay at 2^19 amplitudes.
    if smoke:
        n_adm, precision = n, "double"
        guard_bytes = 2 ** (n - 1) * 16
    else:
        n_adm, precision = 36, "single"
        guard_bytes = None
    adm_terms = _bridge_terms(n_adm)
    saved = fur_base.MAX_STATE_BYTES
    try:
        if guard_bytes is not None:
            fur_base.MAX_STATE_BYTES = guard_bytes
        try:
            repro.simulator(n_adm, terms=adm_terms, backend="python",
                            precision=precision)
            rejected = False
        except ValueError:
            rejected = True
        adm_pipe = CutQAOAPipeline(n_adm, adm_terms, backend="python",
                                   precision=precision,
                                   partition=range(n_adm // 2))
        t0 = time.perf_counter()
        adm_value = float(adm_pipe.expectation(gammas, betas))
        adm_s = time.perf_counter() - t0
    finally:
        fur_base.MAX_STATE_BYTES = saved

    state_bytes = 2 ** n_adm * (8 if precision == "single" else 16)
    return {
        "workload": {"problem": "bridged-rings", "n": n, "p": 1,
                     "repeats": repeats, "smoke": smoke},
        "uncut_value": uncut,
        "modes": modes,
        "fused_speedup": modes["looped"]["eval_s"] / modes["fused"]["eval_s"],
        "stats": pipe.stats.as_dict(),
        "admission": {
            "n": n_adm,
            "precision": precision,
            "state_bytes": state_bytes,
            "max_state_bytes": (guard_bytes if guard_bytes is not None
                                else saved),
            "synthetic_guard": guard_bytes is not None,
            "monolithic_rejected": rejected,
            "cut_qubits": adm_pipe.spec.n_cuts,
            "fragment_qubits": [len(adm_pipe.spec.fragment_a),
                                len(adm_pipe.spec.fragment_b)
                                + adm_pipe.spec.n_cuts],
            "value": adm_value,
            "reference_value": uncut if n_adm == n else None,
            "eval_s": adm_s,
            "stats": adm_pipe.stats.as_dict(),
        },
    }


def cache_metrics() -> dict:
    """Snapshot of the process-wide diagonal-cache counters."""
    stats = diagonal_cache.stats
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "entries": len(diagonal_cache),
        "bytes": diagonal_cache.currsize_bytes(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized problem (exercises the fused path only)")
    parser.add_argument("--check", action="store_true",
                        help=f"exit non-zero unless the python backend speedup is "
                             f">= {REQUIRED_PYTHON_SPEEDUP}x")
    parser.add_argument("--backends", nargs="+",
                        default=["python", "c", "jit", "gpu"],
                        help="backends to benchmark")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write a machine-readable BENCH_precision.json record")
    parser.add_argument("--engine-report", metavar="PATH", nargs="?",
                        const="BENCH_engine.json", default=None,
                        help="write a BENCH_engine.json execution-engine record "
                             "(plan-compile time, blocks executed, fused "
                             "throughput incl. the distributed backends)")
    parser.add_argument("--distributed-backends", nargs="+",
                        default=["gpumpi", "cusvmpi"],
                        help="distributed backends for the engine report")
    parser.add_argument("--n-ranks", type=int, default=4,
                        help="virtual rank count for the distributed backends")
    args = parser.parse_args(argv)

    if args.smoke:
        n, batch, p, repeats = 10, 6, 2, 1
    else:
        n, batch, p, repeats = 16, 32, 4, 2
    terms = labs.get_terms(n)
    rng = np.random.default_rng(42)

    print(f"Batched evaluation benchmark: LABS n={n}, B={batch}, p={p} "
          f"({'smoke' if args.smoke else 'full'})")
    print(f"{'backend':>8}  {'looped [s]':>11}  {'fused [s]':>11}  {'speedup':>8}")
    results = []
    for backend in args.backends:
        rec = bench_backend(backend, terms, n, batch, p, repeats, rng)
        results.append(rec)
        extra = (f"  (modeled device {rec['modeled_device_s']:.3f} s)"
                 if "modeled_device_s" in rec else "")
        print(f"{rec['backend']:>8}  {rec['looped_s']:>11.3f}  {rec['fused_s']:>11.3f}  "
              f"{rec['speedup']:>7.2f}x{extra}")

    print(f"\nPlan rewrites: fused path, optimize=default vs optimize=none")
    print(f"{'backend':>8}  {'none [s]':>11}  {'default [s]':>11}  {'speedup':>8}  passes")
    for rec in results:
        passes = ", ".join(f"{name}:{entry['rewrites']}"
                           for name, entry in rec["engine"]["rewrites"].items()
                           if entry["rewrites"])
        print(f"{rec['backend']:>8}  {rec['unoptimized_s']:>11.3f}  "
              f"{rec['fused_s']:>11.3f}  {rec['rewrite_speedup']:>7.2f}x  "
              f"{passes or '-'}")

    print(f"\nPrecision: fused double vs single (complex128 vs complex64 state)")
    print(f"{'backend':>8}  {'double [s]':>11}  {'single [s]':>11}  {'speedup':>8}  "
          f"{'mem ratio':>9}  {'max rel err':>12}")
    precision_results = []
    for backend in args.backends:
        rec = bench_precision(backend, terms, n, batch, p, repeats, rng)
        precision_results.append(rec)
        extra = (f"  (modeled device {rec['modeled_device_speedup']:.2f}x)"
                 if "modeled_device_speedup" in rec else "")
        print(f"{rec['backend']:>8}  {rec['double_s']:>11.3f}  {rec['single_s']:>11.3f}  "
              f"{rec['speedup']:>7.2f}x  {rec['memory_ratio']:>8.2f}x  "
              f"{rec['max_rel_err']:>12.2e}{extra}")

    distributed_results = []
    baseline_results = []
    sharded_results = []
    sharded_gate = None
    cutting_rec = None
    if args.engine_report:
        print(f"\nExecution engine: distributed fused batch "
              f"(n_ranks={args.n_ranks})")
        print(f"{'backend':>8}  {'looped [s]':>11}  {'fused [s]':>11}  {'speedup':>8}")
        for backend in args.distributed_backends:
            rec = bench_backend(backend, terms, n, batch, p, repeats, rng,
                                simulator_kwargs={"n_ranks": args.n_ranks})
            rec["n_ranks"] = args.n_ranks
            distributed_results.append(rec)
            print(f"{rec['backend']:>8}  {rec['looped_s']:>11.3f}  "
                  f"{rec['fused_s']:>11.3f}  {rec['speedup']:>7.2f}x")

        # Sharded scaling: the in-process sharded backend at 1/2/4/8 shards
        # on the same workload.  Each row records the slab-exchange traffic
        # its engine counted, so the exchange cost of relabeling global
        # qubits is visible next to the throughput it buys.
        shard_counts = [k for k in ([1, 2] if args.smoke else [1, 2, 4, 8])
                        if k.bit_length() - 1 <= n // 2]
        print(f"\nSharded scaling: in-process slab shards "
              f"(cores={os.cpu_count()})")
        print(f"{'shards':>8}  {'fused [s]':>11}  {'sched/s':>9}  "
              f"{'exchanges':>9}  {'exchanged MiB':>13}")
        for k in shard_counts:
            rec = bench_backend("sharded", terms, n, batch, p, repeats, rng,
                                simulator_kwargs={"n_shards": k})
            rec["n_shards"] = k
            sharded_results.append(rec)
            print(f"{k:>8}  {rec['fused_s']:>11.3f}  "
                  f"{rec['fused_schedules_per_s']:>9.1f}  "
                  f"{rec['engine']['shard_exchanges']:>9}  "
                  f"{rec['engine']['exchange_bytes'] / 2**20:>13.1f}")
        best_sharded = max(sharded_results,
                           key=lambda r: r["fused_schedules_per_s"])
        single_rate = max((r["fused_schedules_per_s"] for r in results),
                          default=0.0)
        cores = os.cpu_count() or 1
        sharded_gate = {
            "required_speedup": REQUIRED_SHARDED_SPEEDUP,
            "min_cores": SHARDED_GATE_MIN_CORES,
            "cores": cores,
            "best_n_shards": best_sharded["n_shards"],
            "best_sharded_schedules_per_s": best_sharded["fused_schedules_per_s"],
            "best_single_worker_schedules_per_s": single_rate,
            "speedup": (best_sharded["fused_schedules_per_s"] / single_rate
                        if single_rate else None),
        }
        if cores < SHARDED_GATE_MIN_CORES:
            sharded_gate["skipped"] = (
                f"only {cores} core(s): the worker pool cannot parallelize "
                f"shards, so the {REQUIRED_SHARDED_SPEEDUP}x gate needs "
                f">= {SHARDED_GATE_MIN_CORES} cores")
        print(f"sharded(best, k={best_sharded['n_shards']}): "
              f"{best_sharded['fused_schedules_per_s']:.1f} sched/s vs best "
              f"single-worker {single_rate:.1f}"
              + (f"  [gate skipped: {sharded_gate['skipped']}]"
                 if "skipped" in sharded_gate else ""))

        # The gate-by-gate state-vector baseline rides the same engine now;
        # reduced size because it walks every gate of every schedule row.
        bn, bbatch, bp = (8, 4, 2) if args.smoke else (10, 8, 2)
        baseline_terms = labs.get_terms(bn)
        gates_rec = bench_backend("gates", baseline_terms, bn, bbatch, bp,
                                  repeats, rng)
        gates_rec["workload"] = {"problem": "labs", "n": bn, "batch": bbatch,
                                 "p": bp}
        baseline_results.append(gates_rec)
        print(f"\nBaseline: gate-by-gate statevector "
              f"(n={bn}, B={bbatch}, p={bp})")
        print(f"{'backend':>8}  {'looped [s]':>11}  {'fused [s]':>11}  {'speedup':>8}")
        print(f"{gates_rec['backend']:>8}  {gates_rec['looped_s']:>11.3f}  "
              f"{gates_rec['fused_s']:>11.3f}  {gates_rec['speedup']:>7.2f}x")

        # Circuit cutting (ROADMAP item 2): fused vs looped fragment
        # evaluation, parity with the uncut expectation, and the
        # beyond-memory admission demonstration.
        cutting_rec = bench_cutting(bool(args.smoke), repeats)
        cw = cutting_rec["workload"]
        print(f"\nCircuit cutting: bridged rings n={cw['n']}, p=1, "
              f"k={cutting_rec['stats']['cut_qubits']} cut qubit(s)")
        print(f"{'mode':>8}  {'eval [s]':>11}  {'abs err vs uncut':>17}")
        for mode, rec in cutting_rec["modes"].items():
            print(f"{mode:>8}  {rec['eval_s']:>11.3f}  "
                  f"{rec['abs_err']:>17.2e}")
        adm = cutting_rec["admission"]
        print(f"admission: n={adm['n']} {adm['precision']} needs "
              f"{adm['state_bytes'] / 2**30:.3g} GiB monolithic vs "
              f"{adm['max_state_bytes'] / 2**30:.3g} GiB ceiling"
              f"{' (synthetic)' if adm['synthetic_guard'] else ''} -> "
              f"monolithic {'rejected' if adm['monolithic_rejected'] else 'ADMITTED'}, "
              f"cut value {adm['value']:+.6f} in {adm['eval_s']:.3f} s "
              f"(fragments {adm['fragment_qubits']} qubits)")

        # Per-pass rows: every optimizer pass that ran for each backend,
        # including the zero-rewrite ones (so a pass silently not firing is
        # visible in the record).
        per_pass = [
            {"backend": r["backend"], "pass": name, **entry}
            for r in results + distributed_results + baseline_results
            for name, entry in r["engine"]["rewrites"].items()
        ]
        print(f"\nPer-pass rewrite rows")
        print(f"{'backend':>8}  {'pass':>24}  {'runs':>5}  {'rewrites':>8}  "
              f"{'ops before/after':>16}")
        for row in per_pass:
            print(f"{row['backend']:>8}  {row['pass']:>24}  {row['runs']:>5}  "
                  f"{row['rewrites']:>8}  "
                  f"{row['ops_before']:>7} / {row['ops_after']:<6}")

        all_recs = results + distributed_results + baseline_results
        compile_s = sum(r["engine"]["compile_time_s"] for r in all_recs)
        kernel_compile_s = sum(r["engine"]["kernel_compile_time_s"]
                               for r in all_recs)
        blocks = sum(r["engine"]["blocks_executed"] for r in all_recs)
        print(f"engine totals: {compile_s * 1e3:.3f} ms plan-compile, "
              f"{kernel_compile_s * 1e3:.3f} ms kernel-compile, "
              f"{blocks} blocks executed")
        payload = {
            "workload": {"problem": "labs", "n": n, "batch": batch, "p": p,
                         "repeats": repeats, "smoke": bool(args.smoke)},
            # Stable machine-diffable perf trajectory: backend name ->
            # fused schedules/s, one flat block across PRs.  The sharded
            # family contributes one row: its best shard count's rate.
            "summary": {
                **{r["backend"]: r["fused_schedules_per_s"] for r in all_recs},
                "sharded": max(r["fused_schedules_per_s"]
                               for r in sharded_results),
            },
            "backends": results,
            "distributed": distributed_results,
            "baselines": baseline_results,
            "sharded": sharded_results,
            "sharded_gate": sharded_gate,
            # Optimized-vs-unoptimized report: what the plan-rewrite passes
            # buy on the fused path, per backend.
            "rewrite": [
                {
                    "backend": r["backend"],
                    "optimized_s": r["fused_s"],
                    "unoptimized_s": r["unoptimized_s"],
                    "speedup": r["rewrite_speedup"],
                    "passes": r["engine"]["rewrites"],
                }
                for r in results + distributed_results + baseline_results
            ],
            "per_pass": per_pass,
            # Circuit-cutting fragment pipeline: fused-vs-looped fragment
            # evaluation, cut-vs-uncut parity, telemetry, and the
            # beyond-memory admission record.
            "cutting": cutting_rec,
        }
        Path(args.engine_report).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.engine_report}")

    cache = cache_metrics()
    print(f"\nDiagonal cache: {cache['hits']} hits, {cache['misses']} misses, "
          f"{cache['evictions']} evictions, {cache['entries']} entries, "
          f"{cache['bytes'] / 2**20:.1f} MiB resident")

    if args.json:
        payload = {
            "workload": {"problem": "labs", "n": n, "batch": batch, "p": p,
                         "repeats": repeats, "smoke": bool(args.smoke)},
            "fused_vs_looped": results,
            "precision": precision_results,
            "diagonal_cache": cache,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    if args.check:
        bad_err = [r for r in precision_results
                   if r["max_rel_err"] > SINGLE_PRECISION_RTOL]
        if bad_err:
            print(f"FAIL: single-precision relative error exceeds "
                  f"{SINGLE_PRECISION_RTOL:g}: "
                  f"{[(r['backend'], r['max_rel_err']) for r in bad_err]}",
                  file=sys.stderr)
            return 1
        print(f"OK: single-precision expectations within {SINGLE_PRECISION_RTOL:g} "
              "relative of double")
        # The full six-pass pipeline must actually run on the CPU families
        # (presence of a row, not a rewrite count: zero-rewrite rows are
        # legitimate, a missing row means the pass silently stopped running).
        required_passes = ("fuse-phase-mixer", "fold-initial-phase",
                           "fuse-mixer-expectation", "eliminate-noops",
                           "reorder-commuting")
        missing = [(r["backend"], name) for r in results
                   if r["backend"] in ("python", "c")
                   for name in required_passes
                   if name not in r["engine"]["rewrites"]]
        if missing:
            print(f"FAIL: optimizer passes missing from the engine report: "
                  f"{missing}", file=sys.stderr)
            return 1
        print("OK: all optimizer passes ran on the python and c backends")
    if args.check and cutting_rec is not None:
        # The cutting pipeline's acceptance bars (ROADMAP item 2): the cut
        # expectation must match the uncut reference on both fragment
        # evaluation modes, and the pipeline must evaluate an n whose
        # monolithic state the admission guard rejects.  Both run in smoke
        # too — the smoke leg shrinks the ceiling in-process instead of
        # paying for 2^19-amplitude fragments.
        bad_modes = {mode: rec["abs_err"]
                     for mode, rec in cutting_rec["modes"].items()
                     if rec["abs_err"] > CUT_PARITY_ATOL}
        if bad_modes:
            print(f"FAIL: cut expectation deviates from uncut by more than "
                  f"{CUT_PARITY_ATOL:g}: {bad_modes}", file=sys.stderr)
            return 1
        print(f"OK: cut expectation matches uncut within {CUT_PARITY_ATOL:g} "
              "(fused and looped fragment evaluation)")
        adm = cutting_rec["admission"]
        if not adm["monolithic_rejected"]:
            print(f"FAIL: the admission guard accepted the monolithic "
                  f"n={adm['n']} {adm['precision']} state "
                  f"({adm['state_bytes'] / 2**30:.0f} GiB) — the "
                  "beyond-memory demonstration is vacuous", file=sys.stderr)
            return 1
        if not np.isfinite(adm["value"]):
            print(f"FAIL: cut evaluation at n={adm['n']} returned "
                  f"{adm['value']}", file=sys.stderr)
            return 1
        ref = adm["reference_value"]
        if ref is not None and abs(adm["value"] - ref) > CUT_PARITY_ATOL:
            print(f"FAIL: beyond-guard cut value {adm['value']} deviates "
                  f"from the pre-guard reference {ref}", file=sys.stderr)
            return 1
        print(f"OK: cut pipeline evaluated n={adm['n']} {adm['precision']} "
              f"(monolithic {adm['state_bytes'] / 2**30:.3g} GiB state "
              "rejected by the admission guard)")
    if args.check and sharded_gate is not None and not args.smoke:
        # The sharded backend's acceptance bar: its best shard count must
        # beat the best single-worker backend by the required factor — but
        # only where the worker pool can actually parallelize (the gate is
        # recorded as skipped, with the reason, on small runners).
        if "skipped" in sharded_gate:
            print(f"SKIP: sharded speedup gate — {sharded_gate['skipped']}")
        elif (sharded_gate["speedup"] or 0.0) < REQUIRED_SHARDED_SPEEDUP:
            print(f"FAIL: sharded(best) {sharded_gate['speedup']:.2f}x "
                  f"< required {REQUIRED_SHARDED_SPEEDUP}x over the best "
                  "single-worker backend", file=sys.stderr)
            return 1
        else:
            print(f"OK: sharded(best) beats the best single-worker backend "
                  f"by >= {REQUIRED_SHARDED_SPEEDUP}x")
    if args.check and distributed_results and not args.smoke:
        slow = [r for r in distributed_results if r["speedup"] <= 1.0]
        if slow:
            print(f"FAIL: distributed fused path does not beat the looped "
                  f"default: {[(r['backend'], r['speedup']) for r in slow]}",
                  file=sys.stderr)
            return 1
        print("OK: distributed fused batch beats the looped default on every "
              "distributed backend")
    if args.check and not args.smoke:
        python_recs = [r for r in results if r["backend"] == "python"]
        if not python_recs:
            print("--check requires the python backend in --backends", file=sys.stderr)
            return 2
        if python_recs[0]["speedup"] < REQUIRED_PYTHON_SPEEDUP:
            print(f"FAIL: python fused speedup {python_recs[0]['speedup']:.2f}x "
                  f"< required {REQUIRED_PYTHON_SPEEDUP}x", file=sys.stderr)
            return 1
        print(f"OK: python fused speedup >= {REQUIRED_PYTHON_SPEEDUP}x")
        # The plan-rewrite acceptance bar (full-size only, like the other
        # perf gates): the optimized plan must beat the unoptimized op
        # stream on the python and c backends.
        slow_rewrite = [r for r in results
                        if r["backend"] in ("python", "c")
                        and r["rewrite_speedup"] <= 1.0]
        if slow_rewrite:
            print(f"FAIL: optimize='default' does not beat optimize='none': "
                  f"{[(r['backend'], round(r['rewrite_speedup'], 3)) for r in slow_rewrite]}",
                  file=sys.stderr)
            return 1
        print("OK: optimize='default' beats optimize='none' on the python "
              "and c backends")
        # The jit kernel tier's acceptance bar (ROADMAP item 3): its
        # single-pass fused kernels must beat the c backend's fused
        # throughput at full size, whichever implementation path is live.
        by_name = {r["backend"]: r for r in results}
        if "jit" in by_name and "c" in by_name:
            jit_rate = by_name["jit"]["fused_schedules_per_s"]
            c_rate = by_name["c"]["fused_schedules_per_s"]
            if jit_rate <= c_rate:
                print(f"FAIL: jit fused throughput {jit_rate:.1f} "
                      f"schedules/s does not beat c ({c_rate:.1f})",
                      file=sys.stderr)
                return 1
            print(f"OK: jit fused throughput beats c "
                  f"({jit_rate:.1f} vs {c_rate:.1f} schedules/s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
