#!/usr/bin/env python
"""Fused batched evaluation vs the looped default (the Fig. 2 access pattern).

The paper's headline result is end-to-end parameter-optimization speed:
thousands of objective evaluations over the *same* precomputed diagonal.
This benchmark measures the fused batch engines (``simulate_qaoa_batch`` /
``get_expectation_batch`` overrides evolving a ``(B, 2^n)`` state block)
against the looped base-class default, on the LABS workload the paper uses.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py           # full size
    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py --smoke   # CI-sized
    PYTHONPATH=src python benchmarks/bench_batched_evaluation.py --check   # assert >=3x

Full size is B=32 schedules, n=16 qubits, p=4 layers; ``--check`` fails the
run unless the ``python`` backend's fused path is at least 3x faster than the
looped default (the acceptance bar for the fused engine).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np

try:
    import repro
except ImportError:  # running without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    import repro

from repro.fur.base import QAOAFastSimulatorBase
from repro.problems import labs

#: Required fused-vs-looped advantage on the ``python`` backend (--check).
REQUIRED_PYTHON_SPEEDUP = 3.0


def _best_of(callable_, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def bench_backend(backend: str, terms, n: int, batch: int, p: int,
                  repeats: int, rng: np.random.Generator) -> dict:
    """Time fused vs looped ``get_expectation_batch`` for one backend."""
    sim = repro.simulator(n, terms=terms, backend=backend)
    gammas = rng.uniform(0.0, 1.0, (batch, p))
    betas = rng.uniform(0.0, 1.0, (batch, p))

    fused_values = sim.get_expectation_batch(gammas, betas)  # warm-up + result
    looped_values = QAOAFastSimulatorBase.get_expectation_batch(sim, gammas, betas)
    np.testing.assert_allclose(fused_values, looped_values, rtol=1e-10)

    fused = _best_of(lambda: sim.get_expectation_batch(gammas, betas), repeats)
    looped = _best_of(
        lambda: QAOAFastSimulatorBase.get_expectation_batch(sim, gammas, betas),
        repeats)
    record = {
        "backend": backend,
        "fused_s": fused,
        "looped_s": looped,
        "speedup": looped / fused,
    }
    if backend == "gpu":
        record["modeled_device_s"] = sim.modeled_device_time()
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="small CI-sized problem (exercises the fused path only)")
    parser.add_argument("--check", action="store_true",
                        help=f"exit non-zero unless the python backend speedup is "
                             f">= {REQUIRED_PYTHON_SPEEDUP}x")
    parser.add_argument("--backends", nargs="+", default=["python", "c", "gpu"],
                        help="backends to benchmark")
    args = parser.parse_args(argv)

    if args.smoke:
        n, batch, p, repeats = 10, 6, 2, 1
    else:
        n, batch, p, repeats = 16, 32, 4, 2
    terms = labs.get_terms(n)
    rng = np.random.default_rng(42)

    print(f"Batched evaluation benchmark: LABS n={n}, B={batch}, p={p} "
          f"({'smoke' if args.smoke else 'full'})")
    print(f"{'backend':>8}  {'looped [s]':>11}  {'fused [s]':>11}  {'speedup':>8}")
    results = []
    for backend in args.backends:
        rec = bench_backend(backend, terms, n, batch, p, repeats, rng)
        results.append(rec)
        extra = (f"  (modeled device {rec['modeled_device_s']:.3f} s)"
                 if "modeled_device_s" in rec else "")
        print(f"{rec['backend']:>8}  {rec['looped_s']:>11.3f}  {rec['fused_s']:>11.3f}  "
              f"{rec['speedup']:>7.2f}x{extra}")

    if args.check and not args.smoke:
        python_recs = [r for r in results if r["backend"] == "python"]
        if not python_recs:
            print("--check requires the python backend in --backends", file=sys.stderr)
            return 2
        if python_recs[0]["speedup"] < REQUIRED_PYTHON_SPEEDUP:
            print(f"FAIL: python fused speedup {python_recs[0]['speedup']:.2f}x "
                  f"< required {REQUIRED_PYTHON_SPEEDUP}x", file=sys.stderr)
            return 1
        print(f"OK: python fused speedup >= {REQUIRED_PYTHON_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
