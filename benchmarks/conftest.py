"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one figure or headline claim of the paper
(see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for recorded
results).  Problem sizes are scaled down to what a CPU-only container can run
in seconds — the reproduction targets the *shape* of each figure (which
simulator wins, how the gap scales), not the absolute A100/Polaris numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.problems import labs, maxcut
from repro.qaoa import linear_ramp_parameters


@pytest.fixture(scope="session")
def labs_terms_cache():
    """LABS terms for the n values used across benchmarks (computed once)."""
    return {n: labs.get_terms(n) for n in (6, 8, 10, 12, 14, 16)}


@pytest.fixture(scope="session")
def maxcut_terms_cache():
    """Random 3-regular MaxCut terms for the Fig. 2 n-sweep (computed once)."""
    out = {}
    for n in (6, 8, 10, 12, 14, 16):
        graph = maxcut.random_regular_graph(3, n, seed=n)
        out[n] = maxcut.maxcut_terms_from_graph(graph)
    return out


def ramp(p: int):
    """Fixed linear-ramp schedule used by all timing benchmarks."""
    return linear_ramp_parameters(p, delta_t=0.4)


def random_angles(p: int, seed: int = 0):
    """Reproducible random angles (used where the schedule value is irrelevant)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0, 1, p), rng.uniform(0, 1, p)
