"""Headline claim: ~11× faster QAOA parameter optimization at n=26.

Paper setup: a typical QAOA parameter optimization (repeated objective
evaluations driven by a local optimizer) on LABS at n=26, QOKit vs a
cuQuantum-based gate simulator, reporting the end-to-end wall-clock reduction
(11×).

Reproduction: the same optimization loop (COBYLA, fixed evaluation budget) on
LABS at n=12, FUR ``c`` backend vs the gate-based baseline.  The headline
number is the ratio of the two benchmark means; the per-evaluation advantage
is the Fig. 3 single-layer gap, and reusing the precomputed diagonal across
all evaluations is what keeps the advantage end-to-end.
"""

from __future__ import annotations

import pytest

from repro.gates import QAOAGateBasedSimulator
from repro.qaoa import get_qaoa_objective, minimize_qaoa

N_QUBITS = 12
P_LAYERS = 4
MAXITER = 30


def run_optimization(backend, terms):
    objective = get_qaoa_objective(N_QUBITS, P_LAYERS, terms=terms, backend=backend)
    result = minimize_qaoa(objective, method="COBYLA", maxiter=MAXITER)
    return result.value, result.n_evaluations


@pytest.mark.benchmark(group="optimization-speedup")
def test_optimization_fur_backend(benchmark, labs_terms_cache):
    """Parameter optimization on the precomputed-diagonal backend."""
    terms = labs_terms_cache[N_QUBITS]
    value, n_evals = benchmark.pedantic(run_optimization, args=("c", terms),
                                        rounds=2, iterations=1)
    assert n_evals >= MAXITER - 1


@pytest.mark.benchmark(group="optimization-speedup")
def test_optimization_gate_backend(benchmark, labs_terms_cache):
    """The same optimization on the gate-based baseline."""
    terms = labs_terms_cache[N_QUBITS]
    benchmark.pedantic(run_optimization, args=(QAOAGateBasedSimulator, terms),
                       rounds=1, iterations=1)


def test_optimization_speedup_factor(labs_terms_cache):
    """End-to-end speedup factor of the optimization loop (paper: 11× at n=26)."""
    import time

    terms = labs_terms_cache[N_QUBITS]
    start = time.perf_counter()
    value_fur, _ = run_optimization("c", terms)
    fur_time = time.perf_counter() - start

    start = time.perf_counter()
    value_gate, _ = run_optimization(QAOAGateBasedSimulator, terms)
    gate_time = time.perf_counter() - start

    speedup = gate_time / fur_time
    print(f"\nEnd-to-end optimization speedup (n={N_QUBITS}, p={P_LAYERS}, "
          f"{MAXITER} COBYLA iterations): {speedup:.1f}x")
    assert speedup > 3.0
    # both backends optimize the same objective to (numerically) the same value
    assert abs(value_fur - value_gate) < 0.5
