"""Figure 5: weak scaling of one distributed LABS QAOA layer.

Paper setup: K = 8…128 A100 GPUs on Polaris (n = 33…37, 30 local qubits per
GPU), comparing the custom MPI_Alltoall backend against cuStateVec's
distributed index-swap communication.

Reproduction has two parts:

* *executed*: the virtual-cluster distributed simulators run one LABS layer at
  n=12 with K = 2…8 ranks for both communication strategies (measured host
  time; bit-exact against the single-node simulator elsewhere in the suite);
* *modeled*: the calibrated performance model regenerates the weak-scaling
  series at the paper's scale (K = 8…128); the ordering (index swap < staged
  Alltoall) and the growth with K are asserted, and the series is printed so
  EXPERIMENTS.md can record it next to the paper's values.
"""

from __future__ import annotations

import pytest

from repro.fur.mpi import QAOAFURXSimulatorCUSVMPI, QAOAFURXSimulatorGPUMPI
from repro.parallel import POLARIS_LIKE, PerformanceModel

from .conftest import ramp

N_QUBITS = 12
RANKS = (2, 4, 8)
PAPER_RANKS = (8, 16, 32, 64, 128)
LOCAL_QUBITS_PAPER = 30


def single_layer(sim):
    gammas, betas = ramp(1)
    return sim.simulate_qaoa(gammas, betas)


@pytest.mark.parametrize("n_ranks", RANKS)
@pytest.mark.benchmark(group="fig5-weak-scaling-executed")
def test_fig5_executed_alltoall_backend(benchmark, labs_terms_cache, n_ranks):
    """Algorithm 4 (MPI_Alltoall strategy) on the virtual cluster."""
    sim = QAOAFURXSimulatorGPUMPI(N_QUBITS, terms=labs_terms_cache[N_QUBITS], n_ranks=n_ranks)
    benchmark(single_layer, sim)


@pytest.mark.parametrize("n_ranks", RANKS)
@pytest.mark.benchmark(group="fig5-weak-scaling-executed")
def test_fig5_executed_index_swap_backend(benchmark, labs_terms_cache, n_ranks):
    """cuStateVec-style distributed index-swap strategy on the virtual cluster."""
    sim = QAOAFURXSimulatorCUSVMPI(N_QUBITS, terms=labs_terms_cache[N_QUBITS], n_ranks=n_ranks)
    benchmark(single_layer, sim)


@pytest.mark.benchmark(group="fig5-weak-scaling-modeled")
def test_fig5_modeled_series(benchmark):
    """Regenerate the paper-scale weak-scaling series from the performance model."""
    model = PerformanceModel(POLARIS_LIKE)

    def build_series():
        series = {}
        for strategy in ("mpi_alltoall", "cusv_p2p"):
            series[strategy] = model.weak_scaling(list(PAPER_RANKS), LOCAL_QUBITS_PAPER, strategy)
        return series

    series = benchmark(build_series)
    mpi = [b.total_time for b in series["mpi_alltoall"]]
    cusv = [b.total_time for b in series["cusv_p2p"]]
    # Fig. 5 shape: cuStateVec communication is faster at every K, both curves grow
    # with K, and the absolute times are tens of seconds per layer.
    assert all(c < m for c, m in zip(cusv, mpi))
    assert mpi[-1] > mpi[0] and cusv[-1] > cusv[0]
    assert 1.0 < cusv[0] < 100.0 and 1.0 < mpi[-1] < 200.0
    print("\nModeled weak scaling (one LABS layer, 30 local qubits/GPU):")
    print("K GPUs | n  | MPI_Alltoall [s] | cuSV index swap [s]")
    for k, m, c in zip(PAPER_RANKS, mpi, cusv):
        print(f"{k:6d} | {LOCAL_QUBITS_PAPER + (k.bit_length() - 1):2d} | {m:16.1f} | {c:18.1f}")


def test_fig5_communication_dominates():
    """The paper attributes the majority of layer time to communication."""
    model = PerformanceModel(POLARIS_LIKE)
    for k in PAPER_RANKS:
        n = LOCAL_QUBITS_PAPER + (k.bit_length() - 1)
        assert model.layer_time(n, k, "mpi_alltoall").communication_fraction > 0.5
