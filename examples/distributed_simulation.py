"""Distributed QAOA simulation on the virtual cluster (Algorithm 4 / Fig. 5).

Shows the three distributed execution paths of the reproduction:

1. the driver-style ``gpumpi`` simulator (custom Alltoall, Algorithm 4) and
   ``cusvmpi`` simulator (cuStateVec-style index swaps), verified bit-exactly
   against the single-node simulator;
2. the genuinely SPMD program executed on the thread-based virtual cluster;
3. the calibrated performance model that regenerates the paper's Fig. 5
   weak-scaling curves at the original scale (K = 8 … 128 A100 GPUs).

Run with:  python examples/distributed_simulation.py [n_qubits]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.fur.mpi import QAOAFURXSimulatorCUSVMPI, QAOAFURXSimulatorGPUMPI, run_distributed_qaoa
from repro.parallel import POLARIS_LIKE, PerformanceModel
from repro.problems import labs
from repro.qaoa import linear_ramp_parameters


def main(n: int = 12) -> None:
    p, n_ranks = 3, 4
    terms = labs.get_terms(n)
    gammas, betas = linear_ramp_parameters(p, delta_t=0.4)

    # --- reference: single-node fast simulator ---------------------------------
    single = repro.simulator(n, terms=terms, backend="c")
    ref_state = np.asarray(single.get_statevector(single.simulate_qaoa(gammas, betas)))
    ref_energy = single.get_expectation(single.simulate_qaoa(gammas, betas))
    print(f"LABS n={n}, p={p}: single-node <E> = {ref_energy:.4f}\n")

    # --- distributed simulators --------------------------------------------------
    for label, cls in [("gpumpi  (MPI_Alltoall, Algorithm 4)", QAOAFURXSimulatorGPUMPI),
                       ("cusvmpi (distributed index swap)   ", QAOAFURXSimulatorCUSVMPI)]:
        sim = cls(n, terms=terms, n_ranks=n_ranks)
        result = sim.simulate_qaoa(gammas, betas)
        energy = sim.get_expectation(result)
        max_err = float(np.abs(sim.get_statevector(result) - ref_state).max())
        traffic = sum(t.total_bytes for t in sim.traffic_log)
        print(f"{label}: K={n_ranks} ranks, <E> = {energy:.4f}, "
              f"max |Δψ| vs single node = {max_err:.2e}, "
              f"communicated {traffic / 1e6:.2f} MB")

    # --- SPMD execution on the thread cluster ------------------------------------
    spmd = run_distributed_qaoa(n, terms, gammas, betas, n_ranks=n_ranks)
    print(f"SPMD thread-cluster run: <E> = {spmd['expectation']:.4f}, "
          f"{spmd['ranks'][0]['n_alltoall']} Alltoall calls per rank, "
          f"max |Δψ| = {float(np.abs(spmd['statevector'] - ref_state).max()):.2e}\n")

    # --- Fig. 5 weak-scaling projection at the paper's scale ----------------------
    model = PerformanceModel(POLARIS_LIKE)
    print("Projected weak scaling of one LABS QAOA layer (30 local qubits per GPU,")
    print("calibrated to the paper's Polaris description):")
    print(f"{'K GPUs':>8} {'n':>4} {'MPI Alltoall [s]':>18} {'cuSV index swap [s]':>20} "
          f"{'comm fraction':>14}")
    for k in (8, 16, 32, 64, 128):
        mpi = model.layer_time(30 + (k.bit_length() - 1), k, "mpi_alltoall")
        cusv = model.layer_time(30 + (k.bit_length() - 1), k, "cusv_p2p")
        print(f"{k:>8} {mpi.n_qubits:>4} {mpi.total_time:>18.1f} {cusv.total_time:>20.1f} "
              f"{mpi.communication_fraction:>14.2f}")
    print("\nThe index-swap (cuStateVec-style) transport is consistently faster, and")
    print("communication dominates the layer time — both observations from Fig. 5.")


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("n_qubits", nargs="?", type=int, default=12,
                        help="problem size (default: %(default)s)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    main(_parse_args().n_qubits)
