"""Constrained portfolio optimization with the Hamming-weight-preserving XY mixer.

The budget constraint "select exactly K assets" is enforced by the mixer
instead of a penalty term: the initial state is the Dicke state of Hamming
weight K and the ring-XY mixer never leaves that sector.  The example
optimizes the QAOA parameters, verifies that all probability mass stays
feasible, and compares the resulting portfolio against the exhaustive optimum
and a random feasible selection.

Run with:  python examples/portfolio_xy_mixer.py [n_assets]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.fur import dicke_state
from repro.problems import portfolio
from repro.qaoa import get_qaoa_objective, minimize_qaoa

def main(n: int = 8) -> None:
    budget, p = n // 2, 3
    problem = portfolio.random_portfolio_problem(n, budget=budget, risk_aversion=0.6, seed=7)
    terms = portfolio.portfolio_terms(problem)
    print(f"Portfolio optimization: {n} assets, select exactly {budget}, "
          f"risk aversion q={problem.risk_aversion}")

    best_value, best_index = portfolio.best_constrained_selection(problem)
    feasible = portfolio.hamming_weight_indices(n, budget)
    costs = portfolio.portfolio_cost_vector(problem)
    print(f"Exhaustive optimum over {len(feasible)} feasible selections: {best_value:.4f}")
    print(f"Mean feasible objective (random selection): {float(costs[feasible].mean()):.4f}\n")

    # --- QAOA with the XY-ring mixer over the Dicke initial state ---------------
    sv0 = dicke_state(n, budget)
    objective = get_qaoa_objective(n, p, terms=terms, backend="auto", mixer="xyring", sv0=sv0)
    result = minimize_qaoa(objective, method="COBYLA", maxiter=120)
    print(f"Optimized QAOA (p={p}, XY-ring mixer): <f> = {result.value:.4f} "
          f"after {result.n_evaluations} evaluations in {result.wall_time:.2f} s")

    # --- verify the constraint and inspect the best selections -------------------
    sim = repro.simulator(n, terms=terms, mixer="xyring")
    final = sim.simulate_qaoa(result.gammas, result.betas, sv0=sv0)
    probs = sim.get_probabilities(final)
    infeasible_mass = float(probs.sum() - probs[feasible].sum())
    print(f"Probability outside the budget sector: {infeasible_mass:.2e} "
          "(exactly preserved by the XY mixer)")

    order = feasible[np.argsort(probs[feasible])[::-1][:5]]
    print("\nMost probable portfolios:")
    for x in order:
        assets = [i for i in range(n) if (int(x) >> i) & 1]
        marker = "  <-- optimal" if int(x) == best_index else ""
        print(f"  assets {assets}  p={probs[x]:.4f}  f={costs[x]:.4f}{marker}")

    p_opt = float(probs[best_index])
    print(f"\nProbability of measuring the optimal portfolio: {p_opt:.4f} "
          f"(uniform feasible sampling: {1 / len(feasible):.4f})")


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("n_qubits", nargs="?", type=int, default=8,
                        help="problem size (default: %(default)s)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    main(_parse_args().n_qubits)
