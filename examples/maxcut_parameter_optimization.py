"""MaxCut parameter optimization: the workflow the simulator accelerates (Fig. 1).

Runs the same QAOA parameter-optimization loop on two backends — the fast
precomputed-diagonal simulator and the gate-based baseline — and reports the
wall-clock time of each, reproducing (at laptop scale) the paper's headline
claim that precomputation makes the *end-to-end optimization* an order of
magnitude faster.  Also demonstrates the INTERP depth-progression strategy.

Run with:  python examples/maxcut_parameter_optimization.py [n_qubits]
"""

from __future__ import annotations

import argparse
import time

from repro.gates import QAOAGateBasedSimulator
from repro.problems import maxcut
from repro.qaoa import get_qaoa_objective, minimize_qaoa, progressive_depth_optimization


def optimize_on_backend(backend, n, terms, p, maxiter):
    objective = get_qaoa_objective(n, p, terms=terms, backend=backend)
    start = time.perf_counter()
    result = minimize_qaoa(objective, method="COBYLA", maxiter=maxiter)
    elapsed = time.perf_counter() - start
    return result, elapsed


def main(n: int = 12) -> None:
    degree, p, maxiter = 3, 4, 80
    graph = maxcut.random_regular_graph(degree, n, seed=42)
    terms = maxcut.maxcut_terms_from_graph(graph)
    best_cut, _ = maxcut.maxcut_optimal_cut_bruteforce(graph) if n <= 20 else (None, None)
    print(f"MaxCut on a random {degree}-regular graph, n={n}, "
          f"{graph.number_of_edges()} edges, p={p}, optimizer budget {maxiter} evaluations")
    if best_cut is not None:
        print(f"Optimal cut (brute force): {best_cut:.0f}\n")

    results = {}
    for label, backend in [("FUR (precomputed diagonal)", "auto"),
                           ("gate-based baseline", QAOAGateBasedSimulator)]:
        result, elapsed = optimize_on_backend(backend, n, terms, p, maxiter)
        results[label] = (result, elapsed)
        cut = -result.value
        ratio = f", approximation ratio {cut / best_cut:.3f}" if best_cut else ""
        print(f"{label:<28}: best <cut> = {cut:.3f}{ratio}, "
              f"{result.n_evaluations} evaluations, {elapsed:.2f} s")

    fur_time = results["FUR (precomputed diagonal)"][1]
    gate_time = results["gate-based baseline"][1]
    print(f"\nEnd-to-end optimization speedup from precomputation: {gate_time / fur_time:.1f}x")
    print("(The paper reports 11x at n=26 against a cuQuantum-based gate simulator;")
    print(" the factor grows with n and with the number of cost-function terms.)\n")

    # --- INTERP depth progression on the fast backend ---------------------------
    print("Depth progression with INTERP parameter transfer (fast backend):")

    def factory(depth):
        return get_qaoa_objective(n, depth, terms=terms, backend="auto")

    for res in progressive_depth_optimization(factory, max_p=4, maxiter_per_depth=60):
        cut = -res.value
        ratio = f"  ratio={cut / best_cut:.3f}" if best_cut else ""
        print(f"  p={res.p}:  <cut> = {cut:.3f}{ratio}  "
              f"({res.n_evaluations} evaluations, {res.wall_time:.2f} s)")


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("n_qubits", nargs="?", type=int, default=12,
                        help="problem size (default: %(default)s)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    main(_parse_args().n_qubits)
