"""Quickstart: evaluate the QAOA objective for weighted all-to-all MaxCut.

This is the paper's Listing 1, end to end: build the cost-function terms,
construct a fast simulator (the backend is chosen automatically), inspect the
precomputed cost diagonal, simulate a few QAOA layers and read out the
objective, the ground-state overlap and the most probable bitstrings.

Run with:  python examples/quickstart.py [n_qubits]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.qaoa import linear_ramp_parameters


def main(n: int = 10) -> None:
    # --- problem: weighted MaxCut on the complete graph (Listing 1) ----------
    weight = 0.3
    terms = [(weight, (i, j)) for i in range(n) for j in range(i + 1, n)]
    print(f"Weighted all-to-all MaxCut on n={n} qubits: {len(terms)} terms")

    # --- simulator ------------------------------------------------------------
    sim = repro.simulator(n, terms=terms)  # backend="auto": fastest available
    print(f"Simulator backend: {sim.backend_name!r} (class {type(sim).__name__})")

    # --- the precomputed diagonal (the paper's central data structure) --------
    costs = sim.get_cost_diagonal()
    print(f"Precomputed cost diagonal: {costs.shape[0]} entries, "
          f"min={costs.min():.3f}, max={costs.max():.3f}, "
          f"memory={costs.nbytes / 1024:.1f} KiB")

    # --- simulate p QAOA layers and evaluate the objective --------------------
    p = 4
    gammas, betas = linear_ramp_parameters(p)
    result = sim.simulate_qaoa(gammas, betas)
    energy = sim.get_expectation(result)
    overlap = sim.get_overlap(result)
    print(f"\nQAOA with p={p} (linear-ramp schedule):")
    print(f"  <C>               = {energy:.4f}")
    print(f"  best possible <C> = {costs.min():.4f}")
    print(f"  ground-state overlap = {overlap:.4f}")

    # --- most likely measurement outcomes -------------------------------------
    probs = sim.get_probabilities(result)
    top = np.argsort(probs)[::-1][:5]
    print("\nMost probable bitstrings:")
    for x in top:
        bits = "".join(str((int(x) >> q) & 1) for q in range(n))
        print(f"  |{bits}>  p={probs[x]:.4f}  cost={costs[x]:.3f}")


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("n_qubits", nargs="?", type=int, default=10,
                        help="problem size (default: %(default)s)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    main(_parse_args().n_qubits)
