"""High-depth QAOA on the LABS problem (the paper's headline workload).

Demonstrates why the precomputed-diagonal simulator matters: the LABS cost
function has Θ(n²) two- and four-body terms, so a gate-based simulator pays
hundreds of gates per layer while the fast simulator pays one element-wise
multiply.  The example

1. sweeps the depth p with an annealing-like linear-ramp schedule and reports
   the energy, merit factor and ground-state overlap at each depth,
2. refines the deepest schedule with a local optimizer,
3. compares the result against the known optimal LABS energy and against a
   classical tabu-search baseline.

Run with:  python examples/labs_deep_qaoa.py [n_qubits]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.classical import tabu_search
from repro.gates import phase_separator_gate_count
from repro.problems import labs
from repro.qaoa import get_qaoa_objective, linear_ramp_parameters, minimize_qaoa


def main(n: int = 12) -> None:
    terms = labs.get_terms(n)
    optimal = labs.true_optimal_energy(n)
    print(f"LABS problem with n={n}: {len(terms)} polynomial terms, "
          f"optimal sidelobe energy E*={optimal}, "
          f"optimal merit factor F*={labs.optimal_merit_factor(n):.3f}")
    print(f"A gate-based simulator would execute "
          f"{phase_separator_gate_count(terms, n)} gates per phase operator; "
          f"the FUR simulator executes {n} mixer rotations plus one multiply.\n")

    sim = repro.simulator(n, terms=terms)

    print(f"{'p':>4} {'<E>':>10} {'merit factor':>14} {'GS overlap':>12} {'time [s]':>10}")
    for p in (1, 2, 4, 8, 16, 32):
        gammas, betas = linear_ramp_parameters(p, delta_t=0.3)
        start = time.perf_counter()
        result = sim.simulate_qaoa(gammas, betas)
        energy = sim.get_expectation(result)
        overlap = sim.get_overlap(result)
        elapsed = time.perf_counter() - start
        merit = labs.merit_factor_from_energy(energy, n)
        print(f"{p:>4} {energy:>10.3f} {merit:>14.3f} {overlap:>12.4f} {elapsed:>10.3f}")

    # --- refine the p=8 schedule with a local optimizer ------------------------
    p = 8
    print(f"\nOptimizing the p={p} schedule with COBYLA ...")
    objective = get_qaoa_objective(n, p, terms=terms, backend="auto")
    gammas0, betas0 = linear_ramp_parameters(p, delta_t=0.3)
    opt = minimize_qaoa(objective, gammas0, betas0, method="COBYLA", maxiter=150)
    print(f"  optimized <E> = {opt.value:.3f} "
          f"(merit factor {labs.merit_factor_from_energy(opt.value, n):.3f}) "
          f"after {opt.n_evaluations} objective evaluations "
          f"in {opt.wall_time:.2f} s")

    # --- classical baseline -----------------------------------------------------
    start = time.perf_counter()
    classical = tabu_search(terms, n, max_iterations=2000, n_restarts=3, seed=0,
                            target_value=optimal)
    elapsed = time.perf_counter() - start
    print(f"\nClassical tabu search: best E = {classical.value:.0f} "
          f"(optimal {optimal}) in {elapsed:.2f} s / {classical.iterations} iterations")
    print("QAOA expectation values above are averages over the measured distribution;")
    print("sampling from the optimized state concentrates on low-energy sequences.")


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("n_qubits", nargs="?", type=int, default=12,
                        help="problem size (default: %(default)s)")
    return parser.parse_args(argv)


if __name__ == "__main__":
    main(_parse_args().n_qubits)
