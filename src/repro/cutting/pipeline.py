"""The circuit-cutting fragment pipeline for beyond-memory QAOA.

:class:`CutQAOAPipeline` wires the classical pieces of :mod:`repro.cutting`
into an end-to-end evaluator:

1. :func:`~repro.cutting.cutter.choose_cut` splits the cost graph into two
   fragments across ``k`` cut qubits;
2. fragment 1 runs **one** uniform QAOA evolution on its own backend and
   measures all ``4^k`` conjugated-Pauli settings on the evolved state;
3. fragment 2 runs all ``4^k`` preparation variants as **one** batched
   engine call — the variant initial states ride the engine's per-row
   ``sv0`` block, so a full-tier backend streams them through its fused
   kernels;
4. :func:`~repro.cutting.recombine.recombine_term` contracts each term's
   fragment tables through :mod:`repro.tensornet`.

The two fragments dispatch concurrently on a small worker pool.  Each
fragment's simulator is built through the :func:`repro.simulator` facade,
so every *full-tier* backend works unchanged; expectation-only families
(tensornet) are rejected up front with
:class:`~repro.fur.capabilities.UnsupportedCapabilityError`.

Because only fragment-sized state vectors are ever materialized, problems
whose monolithic ``2^n`` state the admission guard rejects still evaluate
— that is the point: the largest allocation is ``max(2^{n_1}, 2^{n_2})``
amplitudes per engine sub-batch row, not ``2^n``.

The decomposition is exact for single-layer (``p = 1``) transverse-field
QAOA; anything else raises the typed
:class:`~repro.cutting.cutter.CutUnsupportedError`.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..fur.base import validate_angles
from ..fur.capabilities import require_capability
from ..fur.registry import simulator as _construct_simulator
from ..qaoa.parameters import split_parameters
from .cutter import CutSpec, CutUnsupportedError, assign_terms, choose_cut
from .recombine import recombine_term
from .variants import apply_one_qubit, conjugated_paulis, variant_digits, \
    variant_initial_states

__all__ = [
    "CuttingStats",
    "CutQAOAPipeline",
    "cut_qaoa_expectation",
    "CutQAOAObjective",
]


@dataclass
class CuttingStats:
    """Cut-pipeline telemetry, mirroring the engine's ``EngineStats`` style.

    Counters accumulate across evaluations until :meth:`reset`; the
    benchmark harness folds :meth:`as_dict` into the ``--engine-report``
    payload next to the per-backend engine stats.
    """

    #: full cut-expectation evaluations served
    evaluations: int = 0
    #: fragment circuits dispatched (two per evaluation)
    fragments_evaluated: int = 0
    #: fragment-variant state evolutions (``1 + 4^k`` per evaluation)
    variants_evaluated: int = 0
    #: cut qubits of the active cut (``k``)
    cut_qubits: int = 0
    #: cost terms recombined across the cut
    recombined_terms: int = 0
    #: tensor-network contractions performed during recombination
    tensor_contractions: int = 0
    #: wall-clock seconds inside fragment simulation
    fragment_wall_s: float = 0.0
    #: wall-clock seconds inside the recombination contraction
    recombine_wall_s: float = 0.0

    def reset(self) -> None:
        """Zero every counter (the pinned cut width is preserved)."""
        width = self.cut_qubits
        for name in vars(self):
            setattr(self, name, type(getattr(self, name))(0))
        self.cut_qubits = width

    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready snapshot of the counters."""
        return dict(vars(self))


def _parity_signs(masks: Sequence[int], n_qubits: int) -> np.ndarray:
    """``(len(masks), 2^n)`` rows of ``(-1)^popcount(x & mask)``."""
    idx = np.arange(1 << n_qubits, dtype=np.uint64)
    out = np.empty((len(masks), idx.shape[0]), dtype=np.float64)
    for r, mask in enumerate(masks):
        parity = (np.bitwise_count(idx & np.uint64(mask)) & np.uint64(1))
        out[r] = 1.0 - 2.0 * parity.astype(np.float64)
    return out


class CutQAOAPipeline:
    """A reusable cut-QAOA evaluator bound to one problem and one cut.

    Construction picks (or validates) the cut, splits the cost polynomial,
    and builds both fragment simulators; :meth:`expectation` then serves
    any number of ``p = 1`` schedules against the cached fragments.
    """

    def __init__(self, n_qubits: int,
                 terms: Iterable[tuple[float, Iterable[int]]], *,
                 partition: Iterable[int] | None = None,
                 cut_qubits: Iterable[int] | None = None,
                 max_cuts: int = 8,
                 backend: Any = "auto",
                 mixer: str = "x",
                 precision: str | None = None,
                 optimize: str | None = None,
                 mode: str = "auto",
                 n_workers: int = 2,
                 **simulator_kwargs: Any) -> None:
        if mixer != "x":
            raise CutUnsupportedError(
                f"mixer {mixer!r} entangles the fragments across the cut; "
                "the exact wire-cut decomposition only exists for the "
                "transverse-field 'x' mixer")
        terms = list(terms)
        self.spec: CutSpec = choose_cut(terms, n_qubits,
                                        partition=partition,
                                        cut_qubits=cut_qubits,
                                        max_cuts=max_cuts)
        self.assignment = assign_terms(terms, self.spec)
        self.mode = mode
        self.n_workers = max(1, int(n_workers))
        self.stats = CuttingStats(cut_qubits=self.spec.n_cuts)

        k = self.spec.n_cuts
        self._n1 = len(self.spec.fragment_a)
        self._n2 = len(self.assignment.f2_qubits)
        build = dict(backend=backend, mixer=mixer, precision=precision,
                     optimize=optimize, **simulator_kwargs)
        # A zero-weight placeholder keeps term-requiring backends (gates)
        # working when one fragment ends up with no phase terms at all.
        self.sim1 = _construct_simulator(
            self._n1, terms=list(self.assignment.f1_terms) or [(0.0, (0,))],
            **build)
        self.sim2 = _construct_simulator(
            self._n2, terms=list(self.assignment.f2_terms) or [(0.0, (0,))],
            **build)
        for sim in (self.sim1, self.sim2):
            require_capability(sim, "statevector")
        #: fragment-1 register positions of the cut qubits
        a_local = {q: i for i, q in enumerate(self.spec.fragment_a)}
        self._cut_positions = tuple(a_local[q] for q in self.spec.cut_qubits)
        #: the (4^k, 2^{n_2}) per-row sv0 block fed to fragment 2's engine
        self._prep_block = variant_initial_states(
            self._n2, k, dtype=self.sim2._precision.complex_dtype)
        # Deduplicate the per-term observable masks so each unique mask is
        # reduced against the fragment data exactly once.
        self._weights = [w for w, _m1, _m2 in self.assignment.measured]
        self._u1, self._masks1 = self._unique(
            [m1 for _w, m1, _m2 in self.assignment.measured])
        self._u2, self._masks2 = self._unique(
            [m2 for _w, _m1, m2 in self.assignment.measured])
        self._signs1 = _parity_signs(self._masks1, self._n1)
        self._signs2 = _parity_signs(self._masks2, self._n2)

    @staticmethod
    def _unique(masks: Sequence[int]) -> tuple[list[int], list[int]]:
        order: dict[int, int] = {}
        rows = []
        for m in masks:
            if m not in order:
                order[m] = len(order)
            rows.append(order[m])
        return rows, list(order)

    # -- fragment evaluation -------------------------------------------------
    def _fragment_one(self, gamma: float, beta: float) -> np.ndarray:
        """Fragment 1: one evolution, then all ``4^k`` Pauli settings.

        Returns the ``(n_masks1, 4^k)`` table ``M[u, m] =
        ⟨ψ₁| Z_{mask_u} ⊗ σ̃_m |ψ₁⟩`` for the deduplicated fragment-1 masks.
        """
        k = self.spec.n_cuts
        res = self.sim1.simulate_qaoa([gamma], [beta])
        psi = np.asarray(self.sim1.get_statevector(res),
                         dtype=np.complex128).reshape(-1)
        sigmas = conjugated_paulis(beta)
        m_table = np.empty((len(self._masks1), 4 ** k), dtype=np.float64)
        for m in range(4 ** k):
            phi = psi
            for cut, digit in enumerate(variant_digits(m, k)):
                if digit:
                    phi = apply_one_qubit(phi, sigmas[digit],
                                          self._cut_positions[cut], self._n1)
            weight = (np.conj(psi) * phi).real
            m_table[:, m] = self._signs1 @ weight
        return m_table

    def _fragment_two(self, gamma: float, beta: float) -> np.ndarray:
        """Fragment 2: all ``4^k`` prep variants as one batched engine call.

        Returns the ``(n_masks2, 4^k)`` table ``R[u, s] = Σ_x p_s(x)
        (-1)^popcount(x & mask_u)`` for the deduplicated fragment-2 masks.
        """
        rows = self._prep_block.shape[0]
        g = np.full((rows, 1), gamma)
        b = np.full((rows, 1), beta)
        results = self.sim2.engine.simulate_batch(
            g, b, sv0=self._prep_block, mode=self.mode)
        r_table = np.empty((len(self._masks2), rows), dtype=np.float64)
        for s, res in enumerate(results):
            probs = np.asarray(self.sim2.get_probabilities(res),
                               dtype=np.float64).reshape(-1)
            r_table[:, s] = self._signs2 @ probs
        return r_table

    # -- public API ----------------------------------------------------------
    def expectation(self, gammas: Sequence[float] | np.ndarray,
                    betas: Sequence[float] | np.ndarray) -> float:
        """The cut-QAOA expectation ``<γβ|Ĉ|γβ>`` for one schedule."""
        g, b = validate_angles(gammas, betas)
        if g.shape[0] != 1:
            raise CutUnsupportedError(
                f"p={g.shape[0]} schedules re-entangle the fragments after "
                "the cut; the exact wire-cut decomposition only exists for "
                "p=1 (see the ROADMAP follow-ups for deeper cuts)")
        gamma, beta = float(g[0]), float(b[0])
        k = self.spec.n_cuts

        t0 = time.perf_counter()
        if self.n_workers > 1:
            with ThreadPoolExecutor(max_workers=2) as pool:
                f1 = pool.submit(self._fragment_one, gamma, beta)
                f2 = pool.submit(self._fragment_two, gamma, beta)
                m_table, r_table = f1.result(), f2.result()
        else:
            m_table = self._fragment_one(gamma, beta)
            r_table = self._fragment_two(gamma, beta)
        t1 = time.perf_counter()

        total = self.assignment.offset
        for t, w in enumerate(self._weights):
            total += w * recombine_term(m_table[self._u1[t]],
                                        r_table[self._u2[t]], k)
        t2 = time.perf_counter()

        self.stats.evaluations += 1
        self.stats.fragments_evaluated += 2
        self.stats.variants_evaluated += 1 + 4 ** k
        self.stats.recombined_terms += len(self._weights)
        self.stats.tensor_contractions += len(self._weights)
        self.stats.fragment_wall_s += t1 - t0
        self.stats.recombine_wall_s += t2 - t1
        return float(total)


def cut_qaoa_expectation(n_qubits: int,
                         terms: Iterable[tuple[float, Iterable[int]]],
                         gammas: Sequence[float] | np.ndarray,
                         betas: Sequence[float] | np.ndarray,
                         **pipeline_kwargs: Any) -> float:
    """One-shot cut-QAOA expectation (see :class:`CutQAOAPipeline`).

    Builds the fragment pipeline, evaluates the single ``p = 1`` schedule
    and returns ``<γβ|Ĉ|γβ>``.  All keyword arguments are forwarded to
    :class:`CutQAOAPipeline` (``partition``, ``cut_qubits``, ``max_cuts``,
    ``backend``, ``precision``, ``mode``, backend constructor kwargs, ...).
    For repeated evaluations — e.g. inside an optimizer loop — construct
    the pipeline once (or use :class:`CutQAOAObjective`) so the fragment
    simulators and variant states are reused.
    """
    pipeline = CutQAOAPipeline(n_qubits, terms, **pipeline_kwargs)
    return pipeline.expectation(gammas, betas)


@dataclass
class CutQAOAObjective:
    """Callable cut-QAOA objective with the standard evaluation bookkeeping.

    The optimizer-facing twin of :class:`repro.qaoa.QAOAObjective`: calling
    it with a flat ``theta = (γ, β)`` vector evaluates the cut pipeline and
    records the evaluation, so optimization drivers can swap a monolithic
    objective for a cut one without touching their loop.
    """

    pipeline: CutQAOAPipeline
    n_evaluations: int = 0
    best_value: float = np.inf
    best_parameters: np.ndarray | None = None
    history: list[float] = field(default_factory=list)

    @classmethod
    def build(cls, n_qubits: int,
              terms: Iterable[tuple[float, Iterable[int]]],
              **pipeline_kwargs: Any) -> "CutQAOAObjective":
        """Construct the fragment pipeline and wrap it as an objective."""
        return cls(pipeline=CutQAOAPipeline(n_qubits, terms,
                                            **pipeline_kwargs))

    @property
    def stats(self) -> CuttingStats:
        """The wrapped pipeline's cutting telemetry."""
        return self.pipeline.stats

    def __call__(self, theta: Sequence[float] | np.ndarray) -> float:
        gammas, betas = split_parameters(theta)
        value = self.pipeline.expectation(gammas, betas)
        self._record_evaluation(np.asarray(theta, dtype=np.float64), value)
        return value

    # mirror EvaluationBookkeepingMixin (kept local: the mixin lives in
    # repro.qaoa and importing it here would cycle through the facade)
    def _record_evaluation(self, theta: np.ndarray, value: float) -> None:
        self.n_evaluations += 1
        self.history.append(float(value))
        if value < self.best_value:
            self.best_value = float(value)
            self.best_parameters = np.array(theta, dtype=np.float64)

    def reset_statistics(self) -> None:
        """Clear the evaluation counters and history."""
        self.n_evaluations = 0
        self.best_value = np.inf
        self.best_parameters = None
        self.history.clear()
