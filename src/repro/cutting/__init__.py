"""Circuit cutting: beyond-memory QAOA via fragment decomposition.

Splits the QAOA cost graph into two fragments across ``k`` cut qubits,
evaluates each fragment on an ordinary full-tier backend (fragment 2's
``4^k`` preparation variants ride one batched engine call), and stitches
the fragment expectation tables back together with a tensor-network
contraction in :mod:`repro.tensornet`.  Exact for single-layer
transverse-field QAOA; see :mod:`repro.cutting.cutter` for why deeper
schedules and XY mixers raise :class:`CutUnsupportedError`.

Entry points: :func:`cut_qaoa_expectation` for one-shot evaluation,
:class:`CutQAOAObjective` for optimizer loops, :class:`CutQAOAPipeline`
when you want the fragments and telemetry in hand.
"""

from .cutter import (
    CutSpec,
    CutUnsupportedError,
    InvalidCutError,
    TermAssignment,
    assign_terms,
    choose_cut,
)
from .pipeline import (
    CutQAOAObjective,
    CutQAOAPipeline,
    CuttingStats,
    cut_qaoa_expectation,
)
from .recombine import recombine_term, recombine_terms
from .variants import (
    MEAS_LABELS,
    PREP_LABELS,
    coefficient_matrix,
    conjugated_paulis,
    variant_initial_states,
)

__all__ = [
    "CutSpec",
    "CutUnsupportedError",
    "InvalidCutError",
    "TermAssignment",
    "assign_terms",
    "choose_cut",
    "CutQAOAObjective",
    "CutQAOAPipeline",
    "CuttingStats",
    "cut_qaoa_expectation",
    "recombine_term",
    "recombine_terms",
    "MEAS_LABELS",
    "PREP_LABELS",
    "coefficient_matrix",
    "conjugated_paulis",
    "variant_initial_states",
]
