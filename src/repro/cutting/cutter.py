"""Cut-point selection and term assignment on the QAOA cost graph.

Circuit cutting splits the ``n``-qubit QAOA circuit into two *fragments*
along a set of **cut qubits** so that each fragment fits a state-vector
budget the monolithic state would blow through.  This module owns the
classical half of that story:

- :func:`choose_cut` turns either a user-specified qubit bipartition or a
  greedy min-cut sweep over the term hypergraph into a :class:`CutSpec`;
- :func:`assign_terms` splits the cost polynomial into the phase terms each
  fragment applies and the per-term observable masks the recombination step
  measures.

The scheme implemented by :mod:`repro.cutting` is *wire cutting at the
mixer layer* and is exact for single-layer (``p = 1``) QAOA with the
transverse-field X mixer:  fragment A runs the standard circuit on its own
qubits, and the extra mixer rotation it applies on the cut qubits is undone
at measurement time by conjugating the measured Pauli operators
(:mod:`repro.cutting.variants`).  Deeper schedules or entangling (XY)
mixers re-entangle the fragments and have no exact two-fragment
decomposition of this shape — :func:`choose_cut` raises the typed
:class:`CutUnsupportedError` for them rather than silently returning a
wrong answer.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..fur.capabilities import UnsupportedCapabilityError
from ..problems.terms import validate_terms

__all__ = [
    "InvalidCutError",
    "CutUnsupportedError",
    "CutSpec",
    "TermAssignment",
    "choose_cut",
    "assign_terms",
]


class InvalidCutError(ValueError):
    """A requested cut does not cover the cost polynomial's crossing terms."""


class CutUnsupportedError(UnsupportedCapabilityError):
    """The requested QAOA configuration has no exact cut decomposition.

    Raised for ``p >= 2`` schedules and for entangling (XY) mixers, both of
    which re-entangle the fragments after the cut and therefore cannot be
    reconstructed exactly from two independent fragment runs.
    """


@dataclass(frozen=True)
class CutSpec:
    """A validated bipartition of the qubits with its cut set.

    ``fragment_a`` and ``fragment_b`` are disjoint sorted qubit tuples
    covering ``range(n_qubits)``.  ``cut_qubits`` is the subset of
    ``fragment_a`` through which cost terms cross the partition; fragment B
    re-hosts these qubits as *slot* qubits during its variant runs.
    """

    n_qubits: int
    fragment_a: tuple[int, ...]
    fragment_b: tuple[int, ...]
    cut_qubits: tuple[int, ...]

    @property
    def n_cuts(self) -> int:
        """Number of cut qubits ``k`` (the pipeline runs ``4^k`` variants)."""
        return len(self.cut_qubits)

    @property
    def n_variants(self) -> int:
        """Fragment B's variant count, ``4^k``."""
        return 4 ** self.n_cuts

    def __post_init__(self) -> None:
        a, b, cuts = set(self.fragment_a), set(self.fragment_b), set(self.cut_qubits)
        if a & b:
            raise InvalidCutError(
                f"fragments overlap on qubits {sorted(a & b)}")
        if a | b != set(range(self.n_qubits)):
            missing = sorted(set(range(self.n_qubits)) - (a | b))
            raise InvalidCutError(
                f"fragments do not cover all {self.n_qubits} qubits "
                f"(missing {missing})")
        if not cuts <= a:
            raise InvalidCutError(
                f"cut qubits {sorted(cuts - a)} are not in fragment A")
        if not self.fragment_a or not self.fragment_b:
            raise InvalidCutError("both fragments must be non-empty")


@dataclass(frozen=True)
class TermAssignment:
    """The cost polynomial split across the two fragments.

    ``f1_terms`` / ``f2_terms`` are the phase-separator terms each fragment
    applies during its own evolution, re-indexed to fragment-local qubits.
    ``measured`` lists, per original term, the weight and the two
    fragment-local observable bit masks the recombination step contracts
    (``mask1`` over fragment A's qubits for the term's non-cut A support,
    ``mask2`` over fragment B's extended register for the rest).
    ``offset`` collects constant (empty-index) terms.
    """

    f1_terms: tuple[tuple[float, tuple[int, ...]], ...]
    f2_terms: tuple[tuple[float, tuple[int, ...]], ...]
    measured: tuple[tuple[float, int, int], ...]
    offset: float = 0.0
    #: fragment-B register layout: sorted(fragment_b) then one slot per cut
    f2_qubits: tuple[int, ...] = field(default=())


def _term_sides(terms: Sequence[tuple[float, tuple[int, ...]]],
                a: frozenset[int]) -> tuple[set[int], set[int]]:
    """Union of A-side / B-side qubit supports of the crossing terms."""
    a_side: set[int] = set()
    b_side: set[int] = set()
    for _w, idx in terms:
        qs = set(idx)
        if qs and not qs <= a and not qs.isdisjoint(a):
            a_side |= qs & a
            b_side |= qs - a
    return a_side, b_side


def _greedy_bipartition(terms: Sequence[tuple[float, tuple[int, ...]]],
                        n_qubits: int) -> tuple[int, ...]:
    """A simple min-cut heuristic over the term hypergraph.

    Greedy Kernighan–Lin-flavoured sweep: start from the balanced split
    ``[0, n/2)`` and repeatedly move the single qubit whose migration most
    reduces the crossing-edge count, keeping both sides non-empty, until no
    move improves.  This is deliberately lightweight — the ROADMAP's
    automated cut *search* (hypergraph partitioners, simulated annealing)
    is follow-up work; this heuristic just has to beat the naive split on
    locally-structured problems (rings, ladders, block graphs).
    """
    edges = [frozenset(idx) for _w, idx in terms if len(set(idx)) > 1]

    def crossings(a: set[int]) -> int:
        return sum(1 for e in edges if not e <= a and not e.isdisjoint(a))

    a = set(range(n_qubits // 2))
    best = crossings(a)
    improved = True
    while improved:
        improved = False
        for q in range(n_qubits):
            if q in a:
                if len(a) == 1:
                    continue
                cand = a - {q}
            else:
                if len(a) == n_qubits - 1:
                    continue
                cand = a | {q}
            c = crossings(cand)
            if c < best:
                a, best = cand, c
                improved = True
    return tuple(sorted(a))


def choose_cut(terms: Iterable[tuple[float, Iterable[int]]],
               n_qubits: int, *,
               partition: Iterable[int] | None = None,
               cut_qubits: Iterable[int] | None = None,
               max_cuts: int = 8) -> CutSpec:
    """Select (or validate) a cut of the cost graph.

    Parameters
    ----------
    partition:
        Qubits of fragment A.  When omitted, a greedy min-cut sweep over
        the term hypergraph picks the bipartition.
    cut_qubits:
        Explicit cut set (must lie on fragment A's side and cover every
        crossing term's A support).  When omitted, the minimal valid cut
        set for the partition is derived: the union of the A-side supports
        of the crossing terms, with the A/B roles swapped if the B side's
        union is smaller.
    max_cuts:
        Upper bound on ``k``; the pipeline's variant count is ``4^k``, so
        this guards against accidental exponential blow-ups.
    """
    norm = validate_terms(terms, n_qubits)
    if partition is None:
        a_tuple = _greedy_bipartition(norm, n_qubits)
    else:
        a_tuple = tuple(sorted(set(int(q) for q in partition)))
        if any(q < 0 or q >= n_qubits for q in a_tuple):
            raise InvalidCutError(
                f"partition qubits must lie in [0, {n_qubits})")
    a = frozenset(a_tuple)
    b_tuple = tuple(q for q in range(n_qubits) if q not in a)
    if not a_tuple or not b_tuple:
        raise InvalidCutError("the partition leaves one fragment empty")

    a_side, b_side = _term_sides(norm, a)
    if cut_qubits is None:
        # Cut on whichever side exposes fewer qubits to the boundary.
        if len(b_side) < len(a_side):
            a_tuple, b_tuple = b_tuple, a_tuple
            a_side = b_side
        cuts = tuple(sorted(a_side))
    else:
        cuts = tuple(sorted(set(int(q) for q in cut_qubits)))
        if not set(cuts) <= a:
            raise InvalidCutError(
                f"cut qubits {sorted(set(cuts) - a)} are not in fragment A "
                f"({list(a_tuple)})")
        if not a_side <= set(cuts):
            raise InvalidCutError(
                f"cut set {list(cuts)} does not cover the crossing terms' "
                f"fragment-A support {sorted(a_side)}")
    if len(cuts) > max_cuts:
        raise InvalidCutError(
            f"cut requires {len(cuts)} cut qubits (4^{len(cuts)} fragment "
            f"variants), above max_cuts={max_cuts}; pass a better partition "
            f"or raise max_cuts")
    return CutSpec(n_qubits=n_qubits, fragment_a=tuple(a_tuple),
                   fragment_b=tuple(b_tuple), cut_qubits=cuts)


def assign_terms(terms: Iterable[tuple[float, Iterable[int]]],
                 spec: CutSpec) -> TermAssignment:
    """Split the cost polynomial across the fragments of ``spec``.

    A term's *phase* is applied by fragment A iff its support lies entirely
    inside fragment A; otherwise fragment B applies it (its support must
    then lie inside ``fragment_b ∪ cut_qubits`` — the slots re-host the cut
    qubits).  The term's *observable* is split into the A-local mask over
    its non-cut A support and the B-local mask over the rest.
    """
    norm = validate_terms(terms, spec.n_qubits)
    a = set(spec.fragment_a)
    cuts = set(spec.cut_qubits)
    b_sorted = tuple(sorted(spec.fragment_b))
    # Fragment-local indices.  Fragment B's register is its own qubits
    # followed by one slot per cut qubit (slot i hosts cut_qubits[i]).
    a_local = {q: i for i, q in enumerate(spec.fragment_a)}
    b_local = {q: i for i, q in enumerate(b_sorted)}
    for i, q in enumerate(spec.cut_qubits):
        b_local[q] = len(b_sorted) + i

    f1_terms: list[tuple[float, tuple[int, ...]]] = []
    f2_terms: list[tuple[float, tuple[int, ...]]] = []
    measured: list[tuple[float, int, int]] = []
    offset = 0.0
    for w, idx in norm:
        qs = set(idx)
        if not qs:
            offset += w
            continue
        if qs <= a:
            f1_terms.append((w, tuple(sorted(a_local[q] for q in idx))))
        else:
            bad = qs - set(b_sorted) - cuts
            if bad:
                raise InvalidCutError(
                    f"term {tuple(idx)} touches fragment-A qubits "
                    f"{sorted(bad)} outside the cut set; widen cut_qubits "
                    f"or choose a different partition")
            f2_terms.append((w, tuple(sorted(b_local[q] for q in idx))))
        mask1 = 0
        for q in qs & (a - cuts):
            mask1 |= 1 << a_local[q]
        mask2 = 0
        for q in qs - (a - cuts):
            mask2 |= 1 << b_local[q]
        measured.append((w, mask1, mask2))
    f2_qubits = b_sorted + spec.cut_qubits
    return TermAssignment(f1_terms=tuple(f1_terms), f2_terms=tuple(f2_terms),
                          measured=tuple(measured), offset=offset,
                          f2_qubits=f2_qubits)
