"""Tensor recombination of fragment expectation tables.

After the fragments run, each cost term ``t`` owns two tables:

- ``m_table`` — fragment 1's ``4^k`` conjugated-Pauli expectations
  ``M_t[m] = ⟨ψ₁| Z_{mask1} ⊗ σ̃_m |ψ₁⟩``;
- ``r_table`` — fragment 2's ``4^k`` per-variant sign expectations
  ``R_t[s] = Σ_x p_s(x) (-1)^{popcount(x & mask2)}``.

The exact wire-cut identity stitches them through the fixed ``(4, 4)``
coefficient matrix ``C`` (:func:`repro.cutting.variants.coefficient_matrix`),
one factor per cut qubit:

.. math::

    \\langle t \\rangle = \\frac{1}{2^k} \\sum_{m, s}
        M_t[m] \\Big( \\prod_{q=0}^{k-1} C[m_q, s_q] \\Big) R_t[s]

:func:`recombine_term` evaluates that sum as a tensor-network contraction
in :mod:`repro.tensornet`: the ``M`` and ``R`` tables reshape into rank-k
tensors (one dimension-4 index per cut) and each cut contributes one ``C``
tensor bridging its measurement index to its preparation index.  The
pairwise contraction never materializes the full ``16^k`` coefficient
tensor — cost stays ``O(k · 4^{k+1})``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..tensornet import Tensor, TensorNetwork, contract_network
from .variants import coefficient_matrix

__all__ = ["recombine_term", "recombine_terms"]


def recombine_term(m_table: np.ndarray, r_table: np.ndarray,
                   n_cuts: int) -> float:
    """Contract one term's fragment tables into its expectation value.

    ``m_table`` and ``r_table`` are flat length-``4^k`` arrays indexed by
    base-4 variant digits, cut 0 in the lowest digit (the layout produced
    by :func:`repro.cutting.variants.variant_digits`).  ``k = 0`` means the
    term never crosses the cut and the tables are scalars in disguise.
    """
    k = int(n_cuts)
    m_flat = np.asarray(m_table, dtype=np.float64).reshape(-1)
    r_flat = np.asarray(r_table, dtype=np.float64).reshape(-1)
    if m_flat.shape != (4 ** k,) or r_flat.shape != (4 ** k,):
        raise ValueError(
            f"fragment tables must have 4^{k} entries, got "
            f"{m_flat.shape[0]} and {r_flat.shape[0]}")
    if k == 0:
        return float(m_flat[0] * r_flat[0])
    # Integer index labels: cut q's measurement index is q, its preparation
    # index is k + q.  reshape((4,)*k) puts digit k-1 on axis 0 and digit 0
    # on the last axis, so the table axes are labelled highest cut first.
    m_axes = tuple(range(k - 1, -1, -1))
    s_axes = tuple(range(2 * k - 1, k - 1, -1))
    c = coefficient_matrix()
    tensors = [Tensor(m_flat.reshape((4,) * k), m_axes)]
    tensors.extend(Tensor(c, (q, k + q)) for q in range(k))
    tensors.append(Tensor(r_flat.reshape((4,) * k), s_axes))
    value = contract_network(TensorNetwork(tensors)).data.item()
    return float(value) * 0.5 ** k


def recombine_terms(weights: Sequence[float], m_tables: np.ndarray,
                    r_tables: np.ndarray, n_cuts: int) -> float:
    """Weighted sum of :func:`recombine_term` over all cost terms.

    ``m_tables`` / ``r_tables`` are ``(n_terms, 4^k)`` stacks; returns
    ``Σ_t w_t ⟨t⟩``.
    """
    m_stack = np.atleast_2d(np.asarray(m_tables, dtype=np.float64))
    r_stack = np.atleast_2d(np.asarray(r_tables, dtype=np.float64))
    if len(weights) != m_stack.shape[0] or len(weights) != r_stack.shape[0]:
        raise ValueError("one fragment table pair is required per term")
    return float(sum(
        w * recombine_term(m_stack[t], r_stack[t], n_cuts)
        for t, w in enumerate(weights)))
