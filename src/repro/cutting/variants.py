"""Fragment variant enumeration for wire cutting.

A wire cut on ``k`` qubits decomposes the traced-out wire states through
the Pauli basis: for any bipartite state and any post-cut circuit,

.. math::

    \\langle O_A \\otimes O_B \\rangle = \\frac{1}{2^k} \\sum_{m}
        \\langle O_A \\otimes \\sigma_m \\rangle_{\\text{frag 1}}
        \\cdot \\langle O_B \\rangle_{\\text{frag 2, prep}(\\sigma_m)}

where each Pauli :math:`\\sigma_m` is rebuilt on the fragment-2 side from
four *pure preparation states* :math:`\\{|0\\rangle, |1\\rangle,
|{+}\\rangle, |{+i}\\rangle\\}` via the fixed coefficient matrix
:func:`coefficient_matrix` (``σ_m = Σ_s C[m, s] |s⟩⟨s|``).  This module
owns those fixed ingredients:

- the measurement/preparation bases and :func:`coefficient_matrix`;
- :func:`conjugated_paulis` — fragment 1 runs the *uniform* QAOA circuit,
  which applies one extra mixer rotation ``exp(-i β X)`` on each cut qubit
  after the cut point; measuring ``σ̃ = U σ U†`` on the evolved state is
  exactly measuring ``σ`` at the cut point;
- :func:`variant_initial_states` — the ``(4^k, 2^{n_2})`` block of
  fragment-2 initial states (prep states on the slot qubits tensored with
  ``|+⟩`` on the fragment's own qubits), which the execution engine
  consumes as one per-row ``sv0`` batch.

Everything here is little-endian (qubit ``q`` is bit ``q`` of the state
index), matching :mod:`repro.fur`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MEAS_LABELS",
    "PREP_LABELS",
    "PAULIS",
    "PREP_STATES",
    "coefficient_matrix",
    "conjugated_paulis",
    "apply_one_qubit",
    "variant_initial_states",
    "variant_digits",
]

#: fragment-1 measurement bases, in digit order (digit value 0..3)
MEAS_LABELS = ("I", "X", "Y", "Z")
#: fragment-2 preparation states, in digit order (digit value 0..3)
PREP_LABELS = ("0", "1", "+", "i")

_SQ2 = 1.0 / np.sqrt(2.0)

#: the four single-qubit Paulis, indexed like :data:`MEAS_LABELS`
PAULIS = np.array([
    [[1, 0], [0, 1]],      # I
    [[0, 1], [1, 0]],      # X
    [[0, -1j], [1j, 0]],   # Y
    [[1, 0], [0, -1]],     # Z
], dtype=np.complex128)

#: the four preparation states, indexed like :data:`PREP_LABELS`
PREP_STATES = np.array([
    [1, 0],                # |0>
    [0, 1],                # |1>
    [_SQ2, _SQ2],          # |+>
    [_SQ2, 1j * _SQ2],     # |+i>
], dtype=np.complex128)


def coefficient_matrix() -> np.ndarray:
    """The ``(4, 4)`` real matrix ``C`` with ``σ_m = Σ_s C[m, s] |s⟩⟨s|``.

    Rows follow :data:`MEAS_LABELS`, columns :data:`PREP_LABELS`.  The
    identity is exact (each Pauli is an affine combination of the four
    projectors), which the unit tests re-verify numerically.
    """
    return np.array([
        [1.0, 1.0, 0.0, 0.0],    # I = |0><0| + |1><1|
        [-1.0, -1.0, 2.0, 0.0],  # X = -I + 2|+><+|
        [-1.0, -1.0, 0.0, 2.0],  # Y = -I + 2|+i><+i|
        [1.0, -1.0, 0.0, 0.0],   # Z = |0><0| - |1><1|
    ], dtype=np.float64)


def conjugated_paulis(beta: float) -> np.ndarray:
    """``σ̃_m = U σ_m U†`` for ``U = exp(-i β X)``, stacked ``(4, 2, 2)``.

    Fragment 1's uniform evolution applies the mixer rotation ``U`` on the
    cut qubits *after* the cut point; the cut-point Pauli expectation is
    recovered from the evolved state as ``⟨ψ₁|σ̃_m|ψ₁⟩``.
    """
    c, s = np.cos(beta), np.sin(beta)
    u = np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)
    return np.einsum("ab,mbc,dc->mad", u, PAULIS, u.conj())


def apply_one_qubit(sv: np.ndarray, op: np.ndarray, qubit: int,
                    n_qubits: int) -> np.ndarray:
    """Apply a ``(2, 2)`` operator to one qubit of a little-endian state."""
    shaped = sv.reshape(2 ** (n_qubits - qubit - 1), 2, 2 ** qubit)
    return np.einsum("ab,xby->xay", op, shaped).reshape(-1)


def variant_digits(variant: int, n_cuts: int) -> tuple[int, ...]:
    """Base-4 digits of a variant index, cut 0 first (little-endian)."""
    return tuple((variant >> (2 * i)) & 3 for i in range(n_cuts))


def variant_initial_states(n_qubits: int, slot_qubits: int,
                           dtype: np.dtype | type = np.complex128) -> np.ndarray:
    """The ``(4^k, 2^n)`` fragment-2 initial-state block.

    The register layout matches :func:`repro.cutting.cutter.assign_terms`:
    qubits ``[0, n - k)`` are the fragment's own qubits (initialized to
    ``|+⟩``), qubits ``[n - k, n)`` are the slots (slot ``i`` = qubit
    ``n - k + i`` hosts cut qubit ``i``).  Row ``v`` prepares slot ``i`` in
    ``PREP_STATES[(v >> 2i) & 3]`` — base-4 digits of ``v``, cut 0 in the
    lowest digit.
    """
    k = slot_qubits
    n_own = n_qubits - k
    plus = np.full(2 ** n_own, 1.0 / np.sqrt(2.0) ** n_own,
                   dtype=np.complex128)
    block = np.empty((4 ** k, 2 ** n_qubits), dtype=dtype)
    for v in range(4 ** k):
        sv = plus
        # prepend slots from lowest (qubit n_own) to highest: np.kron(a, b)
        # puts b in the low bits, so the slot state is the first factor
        for digit in variant_digits(v, k):
            sv = np.kron(PREP_STATES[digit], sv)
        block[v] = sv
    return block
