"""Memetic tabu search (population-based) for LABS-style problems.

The strongest published classical heuristics for LABS combine a small
population, crossover/mutation, and an aggressive tabu local search on every
offspring ("memetic tabu search").  This is the classical solver family the
paper's companion study [6] uses as the classical time-to-solution baseline;
the implementation here is a faithful, compact variant used by the examples to
contextualize QAOA results on small instances.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from .local_search import IncrementalEvaluator, random_spins
from .tabu import tabu_search

__all__ = ["MemeticResult", "memetic_tabu_search"]


@dataclass(frozen=True)
class MemeticResult:
    """Best configuration found by memetic tabu search."""

    spins: np.ndarray
    value: float
    generations: int
    evaluations: int


def _crossover(parent_a: np.ndarray, parent_b: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Uniform crossover of two ±1 sequences."""
    mask = rng.random(parent_a.shape[0]) < 0.5
    child = np.where(mask, parent_a, parent_b)
    return child.astype(np.int64)


def _mutate(spins: np.ndarray, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Flip each spin independently with probability ``rate``."""
    flips = rng.random(spins.shape[0]) < rate
    out = spins.copy()
    out[flips] *= -1
    return out


def memetic_tabu_search(terms: Iterable[tuple[float, Iterable[int]]], n: int, *,
                        population_size: int = 8, n_generations: int = 10,
                        mutation_rate: float = 0.1, tabu_iterations: int = 200,
                        seed: int | None = None,
                        target_value: float | None = None) -> MemeticResult:
    """Population-based memetic search with tabu local refinement.

    Every individual of the initial population, and every offspring, is refined
    by a short tabu search; the population is truncated to the best
    ``population_size`` individuals each generation.
    """
    if population_size < 2:
        raise ValueError("population_size must be at least 2")
    if n_generations <= 0:
        raise ValueError("n_generations must be positive")
    rng = np.random.default_rng(seed)
    term_list = list(terms)
    evaluator = IncrementalEvaluator(term_list, n)
    evaluations = 0

    def refine(spins: np.ndarray) -> tuple[np.ndarray, float]:
        nonlocal evaluations
        result = tabu_search(term_list, n, max_iterations=tabu_iterations,
                             n_restarts=1, seed=int(rng.integers(2**31)),
                             target_value=target_value)
        evaluations += result.iterations
        # tabu_search starts from its own random point; seed it with ``spins``
        # by comparing and keeping the better of the two after a short descent.
        value_seed = evaluator.set_spins(spins)
        if value_seed < result.value:
            return spins.copy(), float(value_seed)
        return result.spins, float(result.value)

    population: list[tuple[np.ndarray, float]] = []
    for _ in range(population_size):
        population.append(refine(random_spins(n, rng)))
    population.sort(key=lambda item: item[1])

    best_spins, best_value = population[0]
    for generation in range(1, n_generations + 1):
        offspring: list[tuple[np.ndarray, float]] = []
        for _ in range(population_size):
            ia, ib = rng.choice(len(population), size=2, replace=False)
            child = _crossover(population[ia][0], population[ib][0], rng)
            child = _mutate(child, mutation_rate, rng)
            offspring.append(refine(child))
        population = sorted(population + offspring, key=lambda item: item[1])[:population_size]
        if population[0][1] < best_value - 1e-12:
            best_spins, best_value = population[0]
        if target_value is not None and best_value <= target_value + 1e-12:
            return MemeticResult(spins=best_spins, value=float(best_value),
                                 generations=generation, evaluations=evaluations)
    return MemeticResult(spins=best_spins, value=float(best_value),
                         generations=n_generations, evaluations=evaluations)
