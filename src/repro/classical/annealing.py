"""Simulated annealing for spin-polynomial minimization.

A second, independent classical heuristic (geometric temperature schedule,
Metropolis acceptance, incremental single-flip evaluation).  Used alongside
tabu search in the examples to contextualize QAOA solution quality.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from .local_search import IncrementalEvaluator, random_spins

__all__ = ["AnnealingResult", "simulated_annealing"]


@dataclass(frozen=True)
class AnnealingResult:
    """Best configuration found by simulated annealing."""

    spins: np.ndarray
    value: float
    sweeps: int


def simulated_annealing(terms: Iterable[tuple[float, Iterable[int]]], n: int, *,
                        n_sweeps: int = 200, t_initial: float | None = None,
                        t_final: float = 1e-2, seed: int | None = None,
                        initial_spins: np.ndarray | None = None) -> AnnealingResult:
    """Minimize the polynomial with single-spin-flip simulated annealing.

    A *sweep* proposes one flip per variable.  The initial temperature defaults
    to the mean magnitude of single-flip deltas of the starting configuration,
    which keeps the early acceptance rate high without problem-specific tuning.
    """
    if n_sweeps <= 0:
        raise ValueError("n_sweeps must be positive")
    if t_final <= 0:
        raise ValueError("t_final must be positive")
    rng = np.random.default_rng(seed)
    evaluator = IncrementalEvaluator(terms, n)
    spins = random_spins(n, rng) if initial_spins is None else np.asarray(initial_spins)
    value = evaluator.set_spins(spins)

    if t_initial is None:
        t_initial = float(np.mean(np.abs(evaluator.all_flip_deltas()))) + 1e-9
    if t_initial <= t_final:
        t_initial = t_final * 10.0
    cooling = (t_final / t_initial) ** (1.0 / max(n_sweeps - 1, 1))

    best_spins = evaluator.spins
    best_value = value
    temperature = t_initial
    for _sweep in range(n_sweeps):
        order = rng.permutation(n)
        for i in order:
            delta = evaluator.flip_delta(int(i))
            if delta <= 0 or rng.random() < np.exp(-delta / temperature):
                value = evaluator.flip(int(i))
                if value < best_value - 1e-12:
                    best_value = value
                    best_spins = evaluator.spins
        temperature *= cooling
    return AnnealingResult(spins=best_spins, value=float(best_value), sweeps=n_sweeps)
