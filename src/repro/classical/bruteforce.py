"""Exhaustive (brute-force) minimization of spin-polynomial cost functions.

Used as the ground-truth reference for overlap calculations, for validating
the heuristic solvers, and in the examples that report approximation ratios.
Internally reuses the fast diagonal precomputation, so "brute force" is a
single vectorized pass over all 2^n assignments.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from ..fur.diagonal import precompute_cost_diagonal

__all__ = ["BruteForceResult", "brute_force_minimize", "brute_force_maximize"]


@dataclass(frozen=True)
class BruteForceResult:
    """Optimal value and the full set of optimal basis states."""

    value: float
    indices: np.ndarray

    @property
    def index(self) -> int:
        """One optimal basis-state index (the smallest)."""
        return int(self.indices[0])

    def bits(self, n_qubits: int) -> np.ndarray:
        """Little-endian bit array of the first optimal state."""
        return np.array([(self.index >> q) & 1 for q in range(n_qubits)], dtype=np.int64)

    def spins(self, n_qubits: int) -> np.ndarray:
        """±1 spin configuration of the first optimal state."""
        return 1 - 2 * self.bits(n_qubits)


def brute_force_minimize(terms: Iterable[tuple[float, Iterable[int]]],
                         n_qubits: int, *, max_qubits: int = 24) -> BruteForceResult:
    """Exhaustively minimize the cost polynomial (refuses n above ``max_qubits``)."""
    if n_qubits > max_qubits:
        raise ValueError(f"brute force refused for n={n_qubits} > {max_qubits}")
    diag = precompute_cost_diagonal(terms, n_qubits)
    best = float(diag.min())
    return BruteForceResult(value=best, indices=np.flatnonzero(diag == best))


def brute_force_maximize(terms: Iterable[tuple[float, Iterable[int]]],
                         n_qubits: int, *, max_qubits: int = 24) -> BruteForceResult:
    """Exhaustively maximize the cost polynomial."""
    if n_qubits > max_qubits:
        raise ValueError(f"brute force refused for n={n_qubits} > {max_qubits}")
    diag = precompute_cost_diagonal(terms, n_qubits)
    best = float(diag.max())
    return BruteForceResult(value=best, indices=np.flatnonzero(diag == best))
