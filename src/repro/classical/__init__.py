"""Classical solvers used as references for QAOA solution quality."""

from .annealing import AnnealingResult, simulated_annealing
from .bruteforce import BruteForceResult, brute_force_maximize, brute_force_minimize
from .local_search import IncrementalEvaluator, random_spins, steepest_descent
from .memetic import MemeticResult, memetic_tabu_search
from .tabu import TabuResult, tabu_search

__all__ = [
    "BruteForceResult",
    "brute_force_minimize",
    "brute_force_maximize",
    "IncrementalEvaluator",
    "steepest_descent",
    "random_spins",
    "TabuResult",
    "tabu_search",
    "AnnealingResult",
    "simulated_annealing",
    "MemeticResult",
    "memetic_tabu_search",
]
