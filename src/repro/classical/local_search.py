"""Incremental-evaluation machinery and single-flip local search.

The classical heuristics (tabu search, simulated annealing, memetic search)
all rely on evaluating the effect of flipping one spin in O(terms touching
that spin) instead of re-evaluating the whole polynomial.
:class:`IncrementalEvaluator` provides that primitive for arbitrary spin
polynomials (Eq. 1), and :func:`steepest_descent` implements the plain
best-improvement local search built on it.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..problems.terms import normalize_terms, validate_terms

__all__ = ["IncrementalEvaluator", "steepest_descent", "random_spins"]


def random_spins(n: int, rng: np.random.Generator) -> np.ndarray:
    """A uniformly random ±1 configuration."""
    return rng.choice(np.array([-1, 1], dtype=np.int64), size=n)


class IncrementalEvaluator:
    """Tracks the cost of a spin configuration under single-spin flips.

    For each variable the evaluator keeps the list of terms containing it.
    The current value of every term is cached; flipping spin ``i`` negates the
    cached value of exactly the terms containing ``i``, so the cost delta is
    ``-2 Σ_{k: i ∈ t_k} v_k`` — an O(degree) update.
    """

    def __init__(self, terms: Iterable[tuple[float, Iterable[int]]], n: int) -> None:
        normalized = validate_terms(normalize_terms(terms), n)
        self.n = int(n)
        self.weights = np.array([w for w, _ in normalized], dtype=np.float64)
        self.index_sets = [np.array(idx, dtype=np.int64) for _, idx in normalized]
        self.terms_of_variable: list[list[int]] = [[] for _ in range(n)]
        for k, idx in enumerate(self.index_sets):
            for i in idx:
                self.terms_of_variable[i].append(k)
        self.terms_of_variable = [np.array(t, dtype=np.int64) for t in self.terms_of_variable]
        self._spins: np.ndarray | None = None
        self._term_values: np.ndarray | None = None
        self._value: float = 0.0

    # -- state management -------------------------------------------------------
    def set_spins(self, spins: np.ndarray) -> float:
        """Load a configuration and return its cost (full evaluation, O(L·order))."""
        spins = np.asarray(spins, dtype=np.int64)
        if spins.shape != (self.n,):
            raise ValueError(f"spins must have shape ({self.n},), got {spins.shape}")
        if not np.all(np.abs(spins) == 1):
            raise ValueError("spins must be ±1 valued")
        self._spins = spins.copy()
        values = np.empty(self.weights.shape[0], dtype=np.float64)
        for k, idx in enumerate(self.index_sets):
            values[k] = self.weights[k] * (np.prod(spins[idx]) if idx.size else 1.0)
        self._term_values = values
        self._value = float(values.sum())
        return self._value

    @property
    def spins(self) -> np.ndarray:
        """The current configuration (copy)."""
        self._require_state()
        return self._spins.copy()

    @property
    def value(self) -> float:
        """The current cost value."""
        self._require_state()
        return self._value

    def _require_state(self) -> None:
        if self._spins is None:
            raise RuntimeError("call set_spins() before querying the evaluator")

    # -- incremental updates -------------------------------------------------------
    def flip_delta(self, i: int) -> float:
        """Cost change of flipping spin ``i`` (without applying it)."""
        self._require_state()
        if not 0 <= i < self.n:
            raise ValueError(f"variable index {i} out of range")
        affected = self.terms_of_variable[i]
        return float(-2.0 * self._term_values[affected].sum())

    def all_flip_deltas(self) -> np.ndarray:
        """Cost change of every possible single flip (length-n array)."""
        self._require_state()
        return np.array([self.flip_delta(i) for i in range(self.n)], dtype=np.float64)

    def flip(self, i: int) -> float:
        """Apply the flip of spin ``i`` and return the new cost."""
        delta = self.flip_delta(i)
        affected = self.terms_of_variable[i]
        self._term_values[affected] *= -1.0
        self._spins[i] *= -1
        self._value += delta
        return self._value


def steepest_descent(evaluator: IncrementalEvaluator, spins: np.ndarray,
                     *, max_sweeps: int = 100) -> tuple[np.ndarray, float]:
    """Best-improvement local search: flip the best spin until no flip improves."""
    value = evaluator.set_spins(spins)
    for _ in range(max_sweeps):
        deltas = evaluator.all_flip_deltas()
        best = int(np.argmin(deltas))
        if deltas[best] >= -1e-12:
            break
        value = evaluator.flip(best)
    return evaluator.spins, value
