"""Tabu search for spin-polynomial minimization.

Tabu search (and its memetic extension in :mod:`repro.classical.memetic`) is
the state-of-the-art classical heuristic family for LABS, and is the kind of
"state-of-the-art classical solver" the paper's companion study compares QAOA
against.  It is included here as the classical reference used by the examples
(time-to-solution and approximation-ratio comparisons).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from .local_search import IncrementalEvaluator, random_spins

__all__ = ["TabuResult", "tabu_search"]


@dataclass(frozen=True)
class TabuResult:
    """Best configuration found by tabu search."""

    spins: np.ndarray
    value: float
    iterations: int
    restarts: int


def tabu_search(terms: Iterable[tuple[float, Iterable[int]]], n: int, *,
                max_iterations: int = 2000, tabu_tenure: int | None = None,
                n_restarts: int = 1, seed: int | None = None,
                target_value: float | None = None) -> TabuResult:
    """Single-flip tabu search with aspiration and random restarts.

    Parameters
    ----------
    terms, n:
        The cost polynomial and the number of spins.
    max_iterations:
        Iterations per restart.
    tabu_tenure:
        How many iterations a flipped variable stays tabu (default
        ``max(5, n // 5)``).
    n_restarts:
        Number of independent restarts (each from a fresh random configuration).
    target_value:
        Stop early as soon as a configuration with value ``<= target_value`` is
        found (used for time-to-target experiments).
    """
    if max_iterations <= 0 or n_restarts <= 0:
        raise ValueError("max_iterations and n_restarts must be positive")
    rng = np.random.default_rng(seed)
    tenure = max(5, n // 5) if tabu_tenure is None else int(tabu_tenure)
    evaluator = IncrementalEvaluator(terms, n)

    best_spins: np.ndarray | None = None
    best_value = np.inf
    total_iterations = 0

    for restart in range(n_restarts):
        value = evaluator.set_spins(random_spins(n, rng))
        tabu_until = np.zeros(n, dtype=np.int64)
        if value < best_value:
            best_value, best_spins = value, evaluator.spins
        for it in range(max_iterations):
            total_iterations += 1
            deltas = evaluator.all_flip_deltas()
            candidate_values = evaluator.value + deltas
            # Aspiration: a tabu move is allowed if it beats the global best.
            allowed = (tabu_until <= it) | (candidate_values < best_value - 1e-12)
            if not np.any(allowed):
                allowed[:] = True
            masked = np.where(allowed, candidate_values, np.inf)
            move = int(np.argmin(masked))
            value = evaluator.flip(move)
            tabu_until[move] = it + tenure
            if value < best_value - 1e-12:
                best_value, best_spins = value, evaluator.spins
                if target_value is not None and best_value <= target_value + 1e-12:
                    return TabuResult(spins=best_spins, value=float(best_value),
                                      iterations=total_iterations, restarts=restart + 1)
    return TabuResult(spins=best_spins, value=float(best_value),
                      iterations=total_iterations, restarts=n_restarts)
