"""repro.serve — async QAOA serving with request coalescing and micro-batching.

The serving layer sits on top of the execution engine and converts
*concurrency into batch size*: concurrent ``submit`` calls are routed by
``(problem fingerprint, backend, mixer, precision, optimize, p)``, requests
sharing a key accumulate for a short window and flush as one fused
``get_expectation_batch`` call, and exact-duplicate schedules are evaluated
once with the value fanned out to every waiter.  Admission control (the
state-size byte guard plus a queue bound with shed/wait overload policies)
keeps the service standing under the traffic it is built for, and a per-key
simulator LRU keeps diagonals, phase tables and compiled plans warm across
batches.

Quickstart (synchronous)::

    import repro.serve

    with repro.serve(backend="python", window_ms=2.0) as svc:
        value = svc.submit_sync(n_qubits, terms, gammas, betas)
        print(svc.stats.as_dict())

Quickstart (asyncio)::

    async with repro.serve.QAOAService() as svc:
        values = await asyncio.gather(*[
            svc.submit(n_qubits, terms, g, b) for g, b in schedules
        ])

The module itself is callable — ``repro.serve(**kwargs)`` constructs a
:class:`QAOAService` — mirroring the ``repro.simulator(...)`` facade.
``python -m repro.serve --describe`` prints the operational surface.
"""

from __future__ import annotations

import sys
import types
from typing import Any

from ..fur.capabilities import UnsupportedCapabilityError
from .admission import (
    AdmissionController,
    AdmissionError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from .batcher import KeyBatcher, PendingRequest, RouteKey
from .service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_LIVE_SIMULATORS,
    DEFAULT_MAX_PENDING,
    DEFAULT_WINDOW_MS,
    QAOAService,
)
from .stats import LatencyRecorder, ServiceStats
from .sync import EventLoopThread

__all__ = [
    "QAOAService",
    "ServedQAOAObjective",
    "ServiceStats",
    "LatencyRecorder",
    "RouteKey",
    "KeyBatcher",
    "PendingRequest",
    "AdmissionController",
    "ServeError",
    "AdmissionError",
    "UnsupportedCapabilityError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "EventLoopThread",
    "DEFAULT_WINDOW_MS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_MAX_LIVE_SIMULATORS",
]


def __getattr__(name: str) -> Any:
    # ServedQAOAObjective pulls in repro.qaoa (and with it scipy); load it
    # lazily so `import repro` / `import repro.serve` stay lightweight.
    if name == "ServedQAOAObjective":
        from .objective import ServedQAOAObjective

        return ServedQAOAObjective
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class _CallableServeModule(types.ModuleType):
    """Module subclass that makes ``repro.serve(...)`` construct a service."""

    def __call__(self, **kwargs: Any) -> QAOAService:
        return QAOAService(**kwargs)


sys.modules[__name__].__class__ = _CallableServeModule
