"""``python -m repro.serve`` — inspect the serving layer from the shell.

``--describe`` prints the operational surface an operator cares about before
pointing traffic at a service: the backend registry (which simulator
families are importable on this host, their mixers/precisions/devices), the
service's default knob settings, and the metrics schema a running service
exports (every counter and latency summary in
:meth:`~repro.serve.ServiceStats.as_dict`).  ``--json`` emits the same
snapshot machine-readably.
"""

from __future__ import annotations

import argparse
import json
import sys

from .service import QAOAService

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Inspect the repro QAOA serving layer.",
    )
    parser.add_argument(
        "--describe", action="store_true",
        help="print the backend registry, service defaults and stats schema",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the --describe snapshot as JSON instead of text",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if not (args.describe or args.json):
        _build_parser().print_help()
        return 2
    # A fresh, never-started service: construction touches no event loop and
    # spawns no threads, so describing it is free — and its stats snapshot
    # doubles as the schema every running service exports.
    service = QAOAService()
    snapshot = service.describe()
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print("repro.serve — async QAOA serving layer")
    print()
    print("Backend registry:")
    print(snapshot["backends"])
    print()
    print("Service defaults (override via repro.serve(**kwargs)):")
    for knob, value in snapshot["config"].items():
        print(f"  {knob:<22} {value!r}")
    print()
    print("Stats exported by a running service (QAOAService.stats.as_dict()):")
    print(json.dumps(snapshot["stats"], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    sys.exit(main())
