"""Synchronous plumbing for the serving facade: a background event-loop thread.

The service core is asyncio (that is what makes a micro-batching window
cheap), but most callers — benchmarks, optimizers driving ``scipy``,
notebooks — are plain synchronous code.  :class:`EventLoopThread` runs a
private event loop on a daemon thread so :meth:`QAOAService.submit_sync`
and :meth:`QAOAService.submit_future` can bridge into it with
:func:`asyncio.run_coroutine_threadsafe`, giving synchronous callers the
exact same coalescing/micro-batching path without ever touching asyncio
themselves.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from collections.abc import Coroutine
from typing import Any

__all__ = ["EventLoopThread"]


class EventLoopThread:
    """A daemon thread running a private asyncio event loop.

    Lifecycle: :meth:`start` spawns the thread and blocks until the loop is
    running; :meth:`run` schedules a coroutine onto it and returns a
    :class:`concurrent.futures.Future`; :meth:`stop` stops the loop, joins
    the thread and closes the loop.  The thread is a daemon, so a service
    the user forgot to close never blocks interpreter exit.
    """

    def __init__(self, name: str = "repro-serve-loop") -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._started = threading.Event()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        """The private event loop (running once :meth:`start` returned)."""
        return self._loop

    @property
    def running(self) -> bool:
        """Whether the loop thread is alive."""
        return self._thread.is_alive()

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            # Cancel anything still pending so the loop can close cleanly.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            self._loop.close()

    def start(self) -> EventLoopThread:
        """Start the thread and wait until the loop is accepting work."""
        self._thread.start()
        self._started.wait()
        return self

    def run(self, coro: Coroutine[Any, Any, Any]) -> concurrent.futures.Future:
        """Schedule ``coro`` onto the loop from any other thread."""
        if not self._thread.is_alive():
            coro.close()
            raise RuntimeError("the event-loop thread is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def stop(self) -> None:
        """Stop the loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join()
