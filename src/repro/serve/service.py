"""`QAOAService` — the asyncio serving facade over the execution engine.

This is ROADMAP open item 3, the subsystem that converts concurrency into
batch size.  Millions of users hammering the same problem families means
many concurrent ``get_expectation`` calls with identical problem
fingerprints; before this module every call paid its own trip through the
engine.  The service instead:

1. **routes** each ``submit(n_qubits, terms, γ, β)`` to a
   :class:`~repro.serve.batcher.RouteKey` — ``(problem fingerprint,
   backend, mixer, precision, optimize, p)``;
2. **micro-batches** per key: requests accumulate for ``window_ms`` (or
   until ``max_batch``), then flush as *one* fused
   ``get_expectation_batch`` call on a shared simulator;
3. **coalesces** exact duplicates inside a flush — identical ``(γ, β)``
   rows are evaluated once and fan out to every waiting future;
4. applies **admission control** — the byte-based state-size guard rejects
   unservable requests up front, a queue bound sheds (or backpressures)
   overload — and keeps a **per-key simulator LRU**, so the process-wide
   diagonal cache and the per-simulator plan/phase-table caches are reused
   across batches;
5. exports a **metrics surface** (:class:`~repro.serve.stats.ServiceStats`)
   with request/coalescing counters, the batch-size histogram and
   queue-wait/execution latency percentiles.

The service runs in one of two modes: bound to the caller's running loop
(``async with QAOAService(...) as svc: await svc.submit(...)``) or, for
synchronous callers, driving a private background event-loop thread
(``with QAOAService(...) as svc: svc.submit_sync(...)``) — see
:mod:`repro.serve.sync`.  Engine execution always happens on a thread pool,
which is why the diagonal/plan caches underneath are thread-safe
(single-flight) rather than merely loop-confined.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from collections import OrderedDict
from collections.abc import Iterable, Sequence
from concurrent.futures import Future as SyncFuture, ThreadPoolExecutor
from typing import Any

import numpy as np

from ..fur.base import QAOAFastSimulatorBase, validate_angles
from ..fur.cache import problem_fingerprint
from ..fur.capabilities import UnsupportedCapabilityError
from ..fur.precision import resolve_precision
from ..fur.registry import registry, simulator as construct_simulator
from ..fur.rewrite import resolve_optimize
from ..problems.terms import validate_terms
from .admission import (
    AdmissionController,
    AdmissionError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from .batcher import KeyBatcher, PendingRequest, RouteKey
from .stats import ServiceStats
from .sync import EventLoopThread

__all__ = [
    "QAOAService",
    "DEFAULT_WINDOW_MS",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_MAX_LIVE_SIMULATORS",
]

#: Default micro-batching window: how long the first request of a flush
#: waits for company before the batch executes anyway.
DEFAULT_WINDOW_MS = 2.0

#: Default per-flush request bound (further clamped per key to one engine
#: sub-batch under the memory budget — see AdmissionController).
DEFAULT_MAX_BATCH = 64

#: Default in-flight request bound across all routing keys.
DEFAULT_MAX_PENDING = 1024

#: Default number of live simulators the per-key LRU keeps warm.
DEFAULT_MAX_LIVE_SIMULATORS = 8


class QAOAService:
    """Async QAOA serving facade with request coalescing and micro-batching.

    Parameters
    ----------
    backend, mixer, precision, optimize:
        Default routing for submissions that don't override them per call.
        ``backend`` may be ``"auto"`` — it is resolved to a concrete
        registry name at submit time, so ``"auto"`` and the backend it
        resolves to share routing keys (and hence batches).
    window_ms:
        Micro-batching window in milliseconds.  ``0`` disables the wait —
        a flush takes whatever is queued when the loop gets to it.
    max_batch:
        Upper bound on requests per flush (clamped per key so one flush is
        at most one engine sub-batch under ``memory_budget``).
    max_pending:
        In-flight request bound across all keys (admission queue bound).
    overload:
        ``"shed"`` (default): submissions past ``max_pending`` raise
        :class:`~repro.serve.admission.ServiceOverloadedError`.
        ``"wait"``: submitters are suspended until a slot frees
        (backpressure).
    max_live_simulators:
        Size of the per-key simulator LRU.  Live simulators keep their
        compiled plans, resolved diagonals and phase tables warm across
        batches; evicted ones are reconstructed on demand (their diagonal
        still comes from the process-wide cache).
    memory_budget:
        Fused-engine block budget in bytes (``None``: engine default).
    max_qubits:
        Optional qubit ceiling, tighter than the byte-based state guard.
    max_workers:
        Thread-pool size for engine execution (``None``: executor default).
    n_shards:
        Shard count forwarded to routes on the in-process ``sharded``
        backend (``None``: that backend's own auto/env resolution).  Also
        drives the per-shard admission accounting, which raises the
        effective qubit ceiling above the single-array byte guard.
    """

    def __init__(self, *, backend: str = "auto", mixer: str = "x",
                 precision: str | None = None, optimize: str | None = None,
                 window_ms: float = DEFAULT_WINDOW_MS,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 overload: str = "shed",
                 max_live_simulators: int = DEFAULT_MAX_LIVE_SIMULATORS,
                 memory_budget: float | None = None,
                 max_qubits: int | None = None,
                 max_workers: int | None = None,
                 n_shards: int | None = None) -> None:
        if window_ms < 0:
            raise ValueError("window_ms must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_live_simulators < 1:
            raise ValueError("max_live_simulators must be at least 1")
        self._default_backend = backend
        self._default_mixer = mixer
        self._default_precision = resolve_precision(precision).name
        self._default_optimize = resolve_optimize(optimize or "default")
        self._window_s = float(window_ms) / 1e3
        self._max_batch = int(max_batch)
        self._memory_budget = memory_budget
        self._n_shards = None if n_shards is None else int(n_shards)
        self._admission = AdmissionController(
            max_pending=max_pending, overload=overload, max_qubits=max_qubits,
            memory_budget=memory_budget)
        self._stats = ServiceStats()
        #: routing key -> micro-batcher (event-loop confined)
        self._batchers: dict[RouteKey, KeyBatcher] = {}
        #: problem fingerprint -> normalized terms (for simulator construction)
        self._problems: dict[str, list] = {}
        #: per-key simulator LRU (accessed from executor threads)
        self._simulators: OrderedDict[RouteKey, QAOAFastSimulatorBase] = OrderedDict()
        self._max_live = int(max_live_simulators)
        self._sim_lock = threading.Lock()
        self._executor = ThreadPoolExecutor(max_workers=max_workers,
                                            thread_name_prefix="repro-serve")
        #: the event loop the async state is bound to (set on first use)
        self._loop: asyncio.AbstractEventLoop | None = None
        #: private background loop thread (sync mode only)
        self._loop_thread: EventLoopThread | None = None
        self._pending = 0
        self._pending_cv: asyncio.Condition | None = None
        self._closed = False

    # -- configuration snapshot ---------------------------------------------
    def config(self) -> dict:
        """The service's knob settings as a JSON-serializable dict."""
        return {
            "backend": self._default_backend,
            "mixer": self._default_mixer,
            "precision": self._default_precision,
            "optimize": self._default_optimize,
            "window_ms": self._window_s * 1e3,
            "max_batch": self._max_batch,
            "max_pending": self._admission.max_pending,
            "overload": self._admission.overload,
            "max_live_simulators": self._max_live,
            "memory_budget": self._memory_budget,
            "max_qubits": self._admission.max_qubits,
            "n_shards": self._n_shards,
        }

    @property
    def stats(self) -> ServiceStats:
        """The live metrics surface (coalescing counters, latencies, ...)."""
        return self._stats

    @property
    def closed(self) -> bool:
        """Whether the service has been closed."""
        return self._closed

    @property
    def pending(self) -> int:
        """Requests currently in flight (admitted, future unresolved)."""
        return self._pending

    def live_simulators(self) -> dict[RouteKey, QAOAFastSimulatorBase]:
        """Snapshot of the per-key simulator LRU (most recently used last)."""
        with self._sim_lock:
            return dict(self._simulators)

    def describe(self) -> dict:
        """Operational snapshot: config, backend registry, stats, live keys.

        This is what ``python -m repro.serve --describe`` prints; the per-key
        entries include each live simulator's engine statistics, so the
        effect of plan caching and fused batching is visible per route.
        """
        keys = []
        for key, sim in self.live_simulators().items():
            entry = dataclasses.asdict(key)
            entry["engine"] = sim.engine.stats.as_dict()
            keys.append(entry)
        return {
            "config": self.config(),
            "backends": registry.describe(),
            "stats": self._stats.as_dict(),
            "live_simulators": keys,
        }

    # -- routing -------------------------------------------------------------
    def _route_shards(self, backend_name: str, n_qubits: int) -> int:
        """Shard count admission should account for on one route.

        1 for every monolithic-state backend; for the ``sharded`` backend,
        the service's ``n_shards`` knob or (when unset) the backend's own
        auto/env resolution for this problem size.  A knob the backend would
        reject (not a power of two, too many global qubits for ``n_qubits``)
        surfaces as an :class:`AdmissionError` — construction would fail
        identically later, so reject up front.
        """
        if backend_name != "sharded" or n_qubits <= 0:
            return 1
        from ..fur.sharded.layout import resolve_n_shards

        try:
            return resolve_n_shards(n_qubits, self._n_shards)
        except ValueError as exc:
            raise AdmissionError(str(exc)) from None

    def _route(self, n_qubits: int,
               terms: Iterable[tuple[float, Iterable[int]]],
               gammas: Sequence[float], betas: Sequence[float],
               backend: str | None, mixer: str | None,
               precision: str | None, optimize: str | None
               ) -> tuple[RouteKey, np.ndarray, np.ndarray]:
        """Validate a submission and compute its routing key (synchronous).

        Raises :class:`~repro.serve.admission.AdmissionError` for requests
        that can never be served, before any queueing happens.
        """
        g, b = validate_angles(gammas, betas)
        mixer = mixer or self._default_mixer
        precision_name = (self._default_precision if precision is None
                          else resolve_precision(precision).name)
        optimize_name = (self._default_optimize if optimize is None
                         else resolve_optimize(optimize))
        # Resolve "auto" (and aliases) to the canonical registry name so
        # equivalent spellings share routing keys — and hence batches.  The
        # service only ever issues expectation requests, so an
        # ``expectation-only`` backend (tensornet) is routable; a backend
        # that cannot serve expectations is rejected here with a typed
        # UnsupportedCapabilityError instead of an AttributeError deep in
        # the batch walk.  Resolution happens *before* the byte-guard check:
        # the admission accounting is per-shard on sharded routes, so the
        # guard needs to know which backend will actually hold the state.
        spec = registry.resolve(backend or self._default_backend, mixer=mixer,
                                precision=precision_name,
                                capability="expectation")
        self._admission.check(n_qubits, precision_name,
                              n_shards=self._route_shards(spec.name, n_qubits))
        normalized = validate_terms(terms, n_qubits)
        fingerprint = problem_fingerprint(normalized, n_qubits)
        self._problems.setdefault(fingerprint, normalized)
        key = RouteKey(fingerprint=fingerprint, n_qubits=int(n_qubits),
                       backend=spec.name, mixer=mixer,
                       precision=precision_name, optimize=optimize_name,
                       p=int(g.shape[0]))
        return key, g, b

    # -- async submission path ----------------------------------------------
    def _ensure_loop_state(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
            self._pending_cv = asyncio.Condition()
        elif loop is not self._loop:
            raise RuntimeError(
                "QAOAService is bound to a different event loop; use one "
                "service per loop (or the sync facade from other threads)"
            )
        return loop

    def _batcher_for(self, key: RouteKey) -> KeyBatcher:
        batcher = self._batchers.get(key)
        if batcher is None:
            max_batch = self._admission.effective_max_batch(
                key.n_qubits, key.precision, self._max_batch)
            batcher = KeyBatcher(key, self._execute, window_s=self._window_s,
                                 max_batch=max_batch, stats=self._stats)
            self._batchers[key] = batcher
        return batcher

    async def submit(self, n_qubits: int,
                     terms: Iterable[tuple[float, Iterable[int]]],
                     gammas: Sequence[float], betas: Sequence[float], *,
                     backend: str | None = None, mixer: str | None = None,
                     precision: str | None = None,
                     optimize: str | None = None) -> float:
        """Submit one expectation-value request; awaits the served value.

        The request is routed by ``(problem fingerprint, backend, mixer,
        precision, optimize, p)`` and rides that key's next micro-batch;
        an exact duplicate of an already-queued request shares its
        evaluation.  Raises
        :class:`~repro.serve.admission.AdmissionError` (unservable),
        :class:`~repro.serve.admission.ServiceOverloadedError` (shed at the
        queue bound) or
        :class:`~repro.serve.admission.ServiceClosedError`.
        """
        if self._closed:
            raise ServiceClosedError("the service is closed")
        loop = self._ensure_loop_state()
        try:
            key, g, b = self._route(n_qubits, terms, gammas, betas,
                                    backend, mixer, precision, optimize)
        except (AdmissionError, UnsupportedCapabilityError):
            self._stats.record_rejected()
            raise
        if self._pending >= self._admission.max_pending:
            if self._admission.overload == "shed":
                self._stats.record_shed()
                raise ServiceOverloadedError(
                    f"{self._pending} requests already pending "
                    f"(max_pending={self._admission.max_pending}); shedding"
                )
            async with self._pending_cv:
                while self._pending >= self._admission.max_pending:
                    await self._pending_cv.wait()
                    if self._closed:
                        raise ServiceClosedError("the service closed while waiting")
        self._pending += 1
        self._stats.record_admitted()
        request = PendingRequest(gammas=tuple(map(float, g)),
                                 betas=tuple(map(float, b)),
                                 future=loop.create_future())
        self._batcher_for(key).enqueue(request)
        try:
            return await request.future
        finally:
            self._pending -= 1
            if self._admission.overload == "wait" and self._pending_cv is not None:
                async with self._pending_cv:
                    self._pending_cv.notify()

    # -- execution (worker threads) ------------------------------------------
    async def _execute(self, key: RouteKey, gammas: np.ndarray,
                       betas: np.ndarray) -> np.ndarray:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, self._evaluate,
                                          key, gammas, betas)

    def _evaluate(self, key: RouteKey, gammas: np.ndarray,
                  betas: np.ndarray) -> np.ndarray:
        """One fused engine batch for a flush (runs on the thread pool)."""
        sim = self._simulator_for(key)
        engine_stats = sim.engine.stats
        before = (engine_stats.shard_exchanges, engine_stats.exchange_bytes)
        result = sim.get_expectation_batch(gammas, betas,
                                           memory_budget=self._memory_budget,
                                           optimize=key.optimize)
        # Shard telemetry: fold this flush's slab-exchange traffic into the
        # service counters (zero on monolithic-state backends).
        self._stats.record_shard_traffic(
            engine_stats.shard_exchanges - before[0],
            engine_stats.exchange_bytes - before[1])
        return result

    def _simulator_for(self, key: RouteKey) -> QAOAFastSimulatorBase:
        """The LRU-cached simulator for a routing key, constructing on miss.

        Construction happens outside the LRU lock (the diagonal cache
        underneath is single-flight, so concurrent construction for the same
        problem never duplicates the precomputation), insertion and eviction
        under it.
        """
        with self._sim_lock:
            sim = self._simulators.get(key)
            if sim is not None:
                self._simulators.move_to_end(key)
                return sim
        terms = self._problems[key.fingerprint]
        extra: dict[str, Any] = {}
        if key.backend == "sharded" and self._n_shards is not None:
            extra["n_shards"] = self._n_shards
        sim = construct_simulator(key.n_qubits, terms=terms,
                                  backend=key.backend, mixer=key.mixer,
                                  precision=key.precision,
                                  optimize=key.optimize, **extra)
        with self._sim_lock:
            existing = self._simulators.get(key)
            if existing is not None:  # racing flush won; keep its simulator
                return existing
            self._simulators[key] = sim
            self._stats.record_simulator_constructed()
            while len(self._simulators) > self._max_live:
                self._simulators.popitem(last=False)
                self._stats.record_simulator_evicted()
        return sim

    # -- async lifecycle ------------------------------------------------------
    async def aclose(self) -> None:
        """Close the service: drain in-flight flushes, then free resources.

        Queued requests are still served (their flush tasks run to
        completion); new submissions raise
        :class:`~repro.serve.admission.ServiceClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._pending_cv is not None:
            # Wake "wait"-policy submitters so they observe the closure.
            async with self._pending_cv:
                self._pending_cv.notify_all()
        tasks = [task for batcher in self._batchers.values()
                 if (task := batcher.drain_task()) is not None
                 and not task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        with self._sim_lock:
            self._simulators.clear()

    async def __aenter__(self) -> QAOAService:
        self._ensure_loop_state()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- synchronous facade ---------------------------------------------------
    def start(self) -> QAOAService:
        """Start the private background event loop (sync mode).

        A no-op if the service is already bound to a loop.  Use the context
        manager (``with QAOAService(...) as svc:``) for automatic cleanup.
        """
        if self._closed:
            raise ServiceClosedError("the service is closed")
        if self._loop is not None:
            return self
        loop_thread = EventLoopThread().start()

        async def _bind() -> None:
            self._ensure_loop_state()

        loop_thread.run(_bind()).result()
        self._loop_thread = loop_thread
        return self

    def close(self, timeout: float | None = None) -> None:
        """Synchronous close: drains flushes, stops the background loop."""
        if self._loop_thread is not None:
            self._loop_thread.run(self.aclose()).result(timeout)
            self._loop_thread.stop()
            self._loop_thread = None
        else:
            # Never started (or async-bound but driven synchronously after
            # its loop ended): just mark closed and free the executor.
            self._closed = True
            self._executor.shutdown(wait=True)

    def __enter__(self) -> QAOAService:
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def submit_future(self, n_qubits: int,
                      terms: Iterable[tuple[float, Iterable[int]]],
                      gammas: Sequence[float], betas: Sequence[float],
                      **kwargs: Any) -> SyncFuture:
        """Submit from synchronous code; returns a concurrent.futures.Future.

        Auto-starts the background loop on first use when the service is not
        already bound to one.  This is the natural way for a synchronous
        caller to put many requests in flight at once (and therefore into
        one micro-batch): submit them all, then collect the results.
        """
        if self._closed:
            raise ServiceClosedError("the service is closed")
        if self._loop is None:
            self.start()
        coro = self.submit(n_qubits, terms, gammas, betas, **kwargs)
        if self._loop_thread is not None:
            return self._loop_thread.run(coro)
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def submit_sync(self, n_qubits: int,
                    terms: Iterable[tuple[float, Iterable[int]]],
                    gammas: Sequence[float], betas: Sequence[float], *,
                    timeout: float | None = None, **kwargs: Any) -> float:
        """Blocking submit for non-async callers (one request at a time).

        Must not be called from the service's own event-loop thread (it
        would deadlock waiting on itself); async callers use
        :meth:`submit`.
        """
        return self.submit_future(n_qubits, terms, gammas, betas,
                                  **kwargs).result(timeout)

    # -- objective integration -----------------------------------------------
    def objective(self, n_qubits: int, p: int,
                  terms: Iterable[tuple[float, Iterable[int]]],
                  **kwargs: Any):
        """A :class:`~repro.serve.objective.ServedQAOAObjective` over this
        service — a drop-in ``f(theta) -> float`` whose evaluations ride the
        coalescing/micro-batching path (concurrent optimizers over the same
        problem share evaluations)."""
        from .objective import ServedQAOAObjective  # deferred: pulls repro.qaoa

        return ServedQAOAObjective(service=self, n_qubits=int(n_qubits),
                                   p=int(p), terms=list(terms), **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "running" if self._loop is not None else "idle")
        return (f"QAOAService(backend={self._default_backend!r}, "
                f"window_ms={self._window_s * 1e3:g}, "
                f"max_batch={self._max_batch}, {state})")
