"""Serving-layer metrics: counters, batch-size histogram, latency percentiles.

The serving loop's whole purpose is to convert concurrency into batch size,
so its effectiveness must be observable: how many submissions were admitted,
how many exact duplicates were coalesced onto an already-scheduled
evaluation, how large the flushed micro-batches actually were, and what the
requests paid in queue wait versus engine execution.  :class:`ServiceStats`
is the one mutable object every :class:`~repro.serve.QAOAService` keeps for
that; its :meth:`~ServiceStats.as_dict` snapshot is what
``benchmarks/bench_serving.py`` publishes into ``BENCH_serving.json`` and
``python -m repro.serve --describe`` prints.

All recorders are thread-safe: counters are bumped from the event loop
(admission, shedding) and from the executor threads that run the engine
batches (execution latency), concurrently.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from collections.abc import Iterable

import numpy as np

__all__ = ["LatencyRecorder", "ServiceStats", "DEFAULT_MAX_SAMPLES",
           "PERCENTILES"]

#: Samples kept per latency recorder; older samples fall off, so long-running
#: services report percentiles over a sliding window of recent requests.
DEFAULT_MAX_SAMPLES = 65536

#: The percentiles every latency snapshot reports.
PERCENTILES = (50, 95, 99)


class LatencyRecorder:
    """Thread-safe bounded latency sample store with percentile snapshots."""

    def __init__(self, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._samples: deque[float] = deque(maxlen=int(max_samples))
        self._lock = threading.Lock()
        self._count = 0
        self._total = 0.0

    def record(self, seconds: float) -> None:
        """Record one latency sample."""
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def record_many(self, seconds: Iterable[float]) -> None:
        """Record several samples under one lock acquisition."""
        with self._lock:
            for value in seconds:
                self._samples.append(float(value))
                self._count += 1
                self._total += float(value)

    @property
    def count(self) -> int:
        """Total samples ever recorded (including ones past the window)."""
        return self._count

    @property
    def total_seconds(self) -> float:
        """Sum of every sample ever recorded."""
        return self._total

    def percentiles(self, qs: Iterable[float] = PERCENTILES) -> dict[str, float | None]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` over the retained window.

        Values are ``None`` until at least one sample was recorded, so empty
        snapshots stay JSON-serializable without inventing a zero latency.
        """
        qs = tuple(qs)
        with self._lock:
            arr = np.asarray(self._samples, dtype=np.float64)
        if arr.size == 0:
            return {f"p{q:g}": None for q in qs}
        values = np.percentile(arr, qs)
        return {f"p{q:g}": float(v) for q, v in zip(qs, values)}

    def as_dict(self) -> dict:
        """JSON-serializable snapshot: count, mean and percentiles (seconds)."""
        with self._lock:
            count, total = self._count, self._total
        out = {"count": count, "mean_s": (total / count) if count else None}
        out.update({f"{name}_s": value
                    for name, value in self.percentiles().items()})
        return out


class ServiceStats:
    """Live counters for one :class:`~repro.serve.QAOAService`.

    The request-accounting identity (pinned by the tests)::

        requests  = completed + failed + in-flight
        completed = evaluated_rows + coalesced_hits   (per flushed batch)

    ``shed`` and ``rejected`` count submissions that never became requests:
    shed ones hit the queue bound under the ``"shed"`` overload policy,
    rejected ones can never be served (state-size admission guard).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: submissions admitted past admission control and the queue bound
        self.requests = 0
        #: requests whose future resolved with a value
        self.completed = 0
        #: requests whose micro-batch raised (the exception fans out)
        self.failed = 0
        #: submissions dropped by the ``"shed"`` overload policy
        self.shed = 0
        #: submissions rejected by admission control (unservable)
        self.rejected = 0
        #: requests that shared another request's evaluation (exact duplicate)
        self.coalesced_hits = 0
        #: micro-batches flushed to the execution engine
        self.batches = 0
        #: unique schedule rows actually evaluated by the engine
        self.evaluated_rows = 0
        #: flushed batch size -> number of batches of that size
        self.batch_sizes: Counter[int] = Counter()
        #: per-request wait between enqueue and its batch's execution start
        self.queue_wait = LatencyRecorder()
        #: per-batch engine execution latency
        self.execution = LatencyRecorder()
        #: simulators constructed / evicted by the per-key LRU lifecycle
        self.simulators_constructed = 0
        self.simulators_evicted = 0
        #: slab-exchange messages / bytes moved by sharded-backend routes
        #: (zero on monolithic-state backends; harvested per flush from the
        #: executing simulator's engine stats)
        self.shard_exchanges = 0
        self.exchange_bytes = 0

    # -- recording hooks (service / batcher internals) -----------------------
    def record_admitted(self) -> None:
        with self._lock:
            self.requests += 1

    def record_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_batch(self, size: int, unique: int,
                     queue_waits: Iterable[float],
                     execution_s: float) -> None:
        """Account one successfully flushed micro-batch.

        ``size`` is the number of requests the flush served, ``unique`` the
        number of distinct parameter rows handed to the engine — their
        difference is the coalescing win.
        """
        if not 0 < unique <= size:
            raise ValueError(f"invalid batch accounting: size={size}, unique={unique}")
        with self._lock:
            self.batches += 1
            self.batch_sizes[int(size)] += 1
            self.coalesced_hits += int(size) - int(unique)
            self.evaluated_rows += int(unique)
            self.completed += int(size)
        self.queue_wait.record_many(queue_waits)
        self.execution.record(execution_s)

    def record_batch_failure(self, size: int) -> None:
        """Account one micro-batch whose execution raised (all requests fail)."""
        with self._lock:
            self.failed += int(size)

    def record_simulator_constructed(self) -> None:
        with self._lock:
            self.simulators_constructed += 1

    def record_simulator_evicted(self) -> None:
        with self._lock:
            self.simulators_evicted += 1

    def record_shard_traffic(self, exchanges: int, nbytes: int) -> None:
        """Account one flush's slab-exchange traffic (sharded routes)."""
        if exchanges or nbytes:
            with self._lock:
                self.shard_exchanges += int(exchanges)
                self.exchange_bytes += int(nbytes)

    # -- snapshots -----------------------------------------------------------
    def batch_size_histogram(self) -> dict[int, int]:
        """``{batch size: count}`` of every flushed micro-batch, sorted."""
        with self._lock:
            return dict(sorted(self.batch_sizes.items()))

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every counter and latency summary."""
        with self._lock:
            counters = {
                "requests": self.requests,
                "completed": self.completed,
                "failed": self.failed,
                "shed": self.shed,
                "rejected": self.rejected,
                "coalesced_hits": self.coalesced_hits,
                "batches": self.batches,
                "evaluated_rows": self.evaluated_rows,
                "batch_size_histogram": {str(k): v for k, v
                                         in sorted(self.batch_sizes.items())},
                "simulators_constructed": self.simulators_constructed,
                "simulators_evicted": self.simulators_evicted,
                "shard_exchanges": self.shard_exchanges,
                "exchange_bytes": self.exchange_bytes,
            }
        counters["queue_wait"] = self.queue_wait.as_dict()
        counters["execution"] = self.execution.as_dict()
        return counters
