"""Admission control and the serving layer's typed error vocabulary.

A serving tier that accepts everything falls over under exactly the traffic
it was built for, so admission is decided *before* a request ever reaches a
queue:

* **servability** — a request whose state vector cannot exist under the
  process-wide byte guard (:data:`repro.fur.base.MAX_STATE_BYTES`, the same
  guard the simulator constructors enforce) is rejected with
  :class:`AdmissionError` without constructing anything.  The accounting is
  per-shard when the route targets the in-process sharded backend: what must
  fit is the largest shard slab plus its exchange staging buffer
  (:func:`repro.fur.sharded.layout.sharded_state_bytes`), not the monolithic
  ``2^n`` array — so sharded routes admit problems the single-array guard
  would reject;
* **queue bound** — each service caps the number of in-flight requests
  (``max_pending``); past the cap the configured overload policy applies:
  ``"shed"`` raises :class:`ServiceOverloadedError` immediately (load
  shedding — the caller can retry elsewhere), ``"wait"`` applies
  backpressure by suspending the submitter until a slot frees;
* **batch sizing** — the per-key micro-batch bound is clamped so one flush
  never exceeds what the execution engine would run as a single sub-batch
  under the memory budget (:func:`repro.fur.base.batch_block_rows`); larger
  flushes would only be split again downstream, adding latency without
  throughput.
"""

from __future__ import annotations

from ..fur.base import MAX_STATE_BYTES, batch_block_rows
from ..fur.precision import PrecisionSpec, resolve_precision

__all__ = [
    "ServeError",
    "AdmissionError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "AdmissionController",
    "OVERLOAD_POLICIES",
]

#: Accepted values of the ``overload`` policy knob.
OVERLOAD_POLICIES = ("shed", "wait")


class ServeError(RuntimeError):
    """Base class of every serving-layer error."""


class AdmissionError(ServeError):
    """The request can never be served (e.g. the state exceeds the byte guard).

    Raised at submission time, before any queueing or simulator construction;
    retrying the identical request is pointless.
    """


class ServiceOverloadedError(ServeError):
    """The request was shed because the service is at its queue bound.

    Only raised under the ``overload="shed"`` policy; the request did
    not consume a queue slot and may be retried later (or elsewhere).
    """


class ServiceClosedError(ServeError):
    """The service has been closed and accepts no further submissions."""


class AdmissionController:
    """Decides, synchronously, whether a submission may enter the queues.

    Parameters
    ----------
    max_pending:
        In-flight request bound across all routing keys.
    overload:
        ``"shed"`` (reject over-bound submissions with
        :class:`ServiceOverloadedError`) or ``"wait"`` (backpressure).
        The policy itself is applied by the service's async submit path;
        the controller validates and carries it.
    max_qubits:
        Optional operator-imposed qubit ceiling, tighter than the byte guard.
    memory_budget:
        Fused-engine block budget (bytes) used to clamp micro-batch sizes;
        ``None`` uses the engine default.
    max_state_bytes:
        State-vector byte guard; defaults to the process-wide
        :data:`~repro.fur.base.MAX_STATE_BYTES`.
    """

    def __init__(self, *, max_pending: int = 1024, overload: str = "shed",
                 max_qubits: int | None = None,
                 memory_budget: float | None = None,
                 max_state_bytes: int = MAX_STATE_BYTES) -> None:
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if overload not in OVERLOAD_POLICIES:
            raise ValueError(
                f"unknown overload policy {overload!r}; expected one of "
                f"{OVERLOAD_POLICIES}"
            )
        if max_qubits is not None and max_qubits < 1:
            raise ValueError("max_qubits must be positive")
        self.max_pending = int(max_pending)
        self.overload = overload
        self.max_qubits = max_qubits
        self.memory_budget = memory_budget
        self.max_state_bytes = int(max_state_bytes)

    def check(self, n_qubits: int, precision: str | PrecisionSpec, *,
              n_shards: int = 1) -> None:
        """Raise :class:`AdmissionError` if the request can never be served.

        ``n_shards`` is the shard count of the route's backend (1 for every
        monolithic-state family).  With ``n_shards > 1`` the guard compares
        the per-shard resident footprint — the largest slab plus exchange
        staging — against ``max_state_bytes``, mirroring the sharded
        simulator constructor's own guard.
        """
        if n_qubits <= 0:
            raise AdmissionError(f"n_qubits must be positive, got {n_qubits}")
        if self.max_qubits is not None and n_qubits > self.max_qubits:
            raise AdmissionError(
                f"n_qubits={n_qubits} exceeds the service's max_qubits="
                f"{self.max_qubits}"
            )
        spec = resolve_precision(precision)
        if n_shards > 1:
            from ..fur.sharded.layout import sharded_state_bytes

            state_bytes = sharded_state_bytes(n_qubits, spec.complex_itemsize,
                                              n_shards)
            what = (f"the largest of {n_shards} {spec.name}-precision shard "
                    "slabs (plus exchange staging)")
        else:
            state_bytes = (1 << n_qubits) * spec.complex_itemsize
            what = f"the {spec.name}-precision state vector"
        if state_bytes > self.max_state_bytes:
            raise AdmissionError(
                f"n_qubits={n_qubits} would require {state_bytes / 2**30:.0f} "
                f"GiB for {what} "
                f"(guard: {self.max_state_bytes / 2**30:.0f} GiB); rejecting"
            )

    def effective_max_batch(self, n_qubits: int,
                            precision: str | PrecisionSpec,
                            max_batch: int) -> int:
        """Clamp the micro-batch bound to one engine sub-batch for this key.

        Uses the same :func:`~repro.fur.base.batch_block_rows` accounting as
        the execution engine (conservatively assuming a ping-pong mixer
        scratch), so a flush is never larger than what the engine would run
        in one block under the memory budget.  Always at least 1.
        """
        spec = resolve_precision(precision)
        return batch_block_rows(max_batch, 1 << n_qubits, self.memory_budget,
                                blocks=2, itemsize=spec.complex_itemsize)
