"""A QAOA objective whose evaluations ride the serving layer.

:class:`ServedQAOAObjective` is the serving-side twin of
:class:`repro.qaoa.QAOAObjective`: the same ``f(theta) -> float`` contract
(so it drops into :func:`repro.qaoa.minimize_qaoa` and friends unchanged)
and the same evaluation bookkeeping
(:class:`~repro.qaoa.objective.EvaluationBookkeepingMixin`), but every
evaluation is a :class:`~repro.serve.QAOAService` submission instead of a
direct simulator call.  The payoff is cross-optimizer sharing: when several
optimizer runs work the same problem concurrently — restarts of the same
schedule, a population sweeping a grid — their evaluations land in one
routing key, micro-batch into fused engine calls, and exact duplicates are
evaluated once.

``evaluate_batch`` submits its rows concurrently through
:meth:`~repro.serve.QAOAService.submit_future`, which is precisely what lets
the batcher see them as one flush.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

import numpy as np

from ..qaoa.objective import EvaluationBookkeepingMixin
from ..qaoa.parameters import split_parameters

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import QAOAService

__all__ = ["ServedQAOAObjective"]


@dataclass
class ServedQAOAObjective(EvaluationBookkeepingMixin):
    """Callable QAOA expectation objective evaluated through a service.

    Construct via :meth:`repro.serve.QAOAService.objective`.  Routing
    overrides (``backend``, ``mixer``, ``precision``, ``optimize``) default
    to the service's own defaults when ``None``; ``timeout`` bounds each
    blocking evaluation.
    """

    service: "QAOAService"
    n_qubits: int
    p: int
    terms: list
    backend: str | None = None
    mixer: str | None = None
    precision: str | None = None
    optimize: str | None = None
    timeout: float | None = None
    #: running statistics (see EvaluationBookkeepingMixin)
    n_evaluations: int = 0
    best_value: float = np.inf
    best_parameters: np.ndarray | None = None
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError("p must be positive")

    def _routing_kwargs(self) -> dict:
        return {"backend": self.backend, "mixer": self.mixer,
                "precision": self.precision, "optimize": self.optimize}

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, gammas, betas) -> float:
        """Evaluate the expectation for explicit (γ, β) schedules (blocking)."""
        value = self.service.submit_sync(self.n_qubits, self.terms, gammas,
                                         betas, timeout=self.timeout,
                                         **self._routing_kwargs())
        theta = np.concatenate([np.asarray(gammas, dtype=np.float64),
                                np.asarray(betas, dtype=np.float64)])
        self._record_evaluation(theta, float(value))
        return float(value)

    def evaluate_batch(self, thetas: np.ndarray) -> np.ndarray:
        """Evaluate a ``(B, 2p)`` batch of flat parameter vectors.

        All rows are submitted before any result is collected, so they
        accumulate in the service's micro-batch queue and flush as (at most
        a few) fused engine calls; duplicate rows coalesce into single
        evaluations.
        """
        arr = np.atleast_2d(np.asarray(thetas, dtype=np.float64))
        if arr.ndim != 2 or arr.shape[1] != 2 * self.p:
            raise ValueError(
                f"thetas must be (batch, {2 * self.p}) shaped for p={self.p}, "
                f"got {arr.shape}"
            )
        futures = [
            self.service.submit_future(self.n_qubits, self.terms,
                                       row[:self.p], row[self.p:],
                                       **self._routing_kwargs())
            for row in arr
        ]
        values = np.array([future.result(self.timeout) for future in futures],
                          dtype=np.float64)
        for theta, value in zip(arr, values):
            self._record_evaluation(theta, float(value))
        return values

    def __call__(self, theta: np.ndarray) -> float:
        gammas, betas = split_parameters(theta)
        if gammas.shape[0] != self.p:
            raise ValueError(
                f"parameter vector encodes p={gammas.shape[0]}, "
                f"objective expects p={self.p}"
            )
        return self.evaluate(gammas, betas)
