"""Per-routing-key micro-batching: the queue that turns concurrency into B.

Every admitted request is routed to exactly one :class:`KeyBatcher` by its
:class:`RouteKey` — the tuple under which evaluations may legally share one
fused engine call: same problem fingerprint (hence the same precomputed
diagonal), same backend/mixer/precision/optimize (hence the same simulator
and compiled plan) and same depth ``p`` (batched angle arrays are ``(B, p)``
shaped, so mixed depths can never ride one batch).  Mixed-key traffic
therefore *cannot* cross-batch by construction.

A batcher accumulates requests for a configurable window (``window_s``) or
until ``max_batch`` requests are queued, whichever comes first, then flushes
them as **one** ``get_expectation_batch`` call.  Within a flush, requests
with bit-identical parameters are *coalesced*: the engine evaluates each
distinct ``(γ, β)`` row once and the value fans out to every waiting future.
Under serving traffic — many users optimizing the same problem family from
the same starting schedules — this is where N concurrent requests collapse
into one evaluation.

All batcher state is event-loop confined: :meth:`KeyBatcher.enqueue` must be
called from the loop, and only the engine execution itself is handed to the
service's thread pool.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from collections.abc import Awaitable, Callable
from dataclasses import dataclass, field

import numpy as np

from .stats import ServiceStats

__all__ = ["RouteKey", "PendingRequest", "KeyBatcher"]


@dataclass(frozen=True)
class RouteKey:
    """The tuple under which requests may share one fused engine batch.

    Two requests with equal keys run on the same (LRU-cached) simulator —
    reusing its process-wide cached diagonal, resolved phase tables and
    compiled execution plan — and may ride the same micro-batch.  ``p`` is
    part of the key because batched schedules are ``(B, p)`` arrays and the
    compiled plan is depth-specific.
    """

    fingerprint: str
    n_qubits: int
    backend: str
    mixer: str
    precision: str
    optimize: str
    p: int


@dataclass
class PendingRequest:
    """One admitted request waiting in a key's micro-batch queue."""

    gammas: tuple[float, ...]
    betas: tuple[float, ...]
    future: asyncio.Future
    #: ``time.perf_counter()`` at enqueue; queue-wait latency is measured
    #: from here to the flush's execution start
    enqueued_at: float = field(default_factory=time.perf_counter)

    @property
    def params_key(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Exact-duplicate coalescing key: the bit-identical angle schedules."""
        return (self.gammas, self.betas)


#: Signature of the execution callable the service hands each batcher:
#: ``(key, (B, p) gammas, (B, p) betas) -> awaitable length-B float64 array``.
ExecuteFn = Callable[["RouteKey", np.ndarray, np.ndarray],
                     Awaitable[np.ndarray]]


class KeyBatcher:
    """Micro-batching queue and flush loop for one routing key.

    The flush task is started lazily by the first enqueue and exits when the
    queue drains, so idle keys cost nothing.  While a flush's engine call is
    in flight (on the service's executor), newly enqueued requests accumulate
    for the *next* flush — per-key execution is strictly serialized, which is
    what lets coalescing tests reason about exactly one engine batch.
    """

    def __init__(self, key: RouteKey, execute: ExecuteFn, *,
                 window_s: float, max_batch: int,
                 stats: ServiceStats) -> None:
        if window_s < 0:
            raise ValueError("window_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.key = key
        self._execute = execute
        self._window_s = float(window_s)
        self._max_batch = int(max_batch)
        self._stats = stats
        self._queue: deque[PendingRequest] = deque()
        self._wake = asyncio.Event()
        self._task: asyncio.Task | None = None

    # -- introspection -------------------------------------------------------
    @property
    def max_batch(self) -> int:
        """The (admission-clamped) flush size bound for this key."""
        return self._max_batch

    @property
    def depth(self) -> int:
        """Requests currently queued (not yet handed to the engine)."""
        return len(self._queue)

    @property
    def idle(self) -> bool:
        """Whether the batcher has no queued work and no running flush task."""
        return not self._queue and (self._task is None or self._task.done())

    def drain_task(self) -> asyncio.Task | None:
        """The running flush task, if any (awaited by the service on close)."""
        return self._task

    # -- the micro-batching loop ---------------------------------------------
    def enqueue(self, request: PendingRequest) -> None:
        """Queue a request and (re)start the flush task.  Loop-confined."""
        self._queue.append(request)
        if len(self._queue) >= self._max_batch:
            self._wake.set()
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._drain(),
                name=f"repro-serve-flush-{self.key.fingerprint[:8]}",
            )

    async def _drain(self) -> None:
        """Flush micro-batches until the queue is empty, then exit."""
        while self._queue:
            if self._window_s > 0 and len(self._queue) < self._max_batch:
                # Hold the batching window open: flush early when max_batch
                # accumulates (enqueue sets the wake event), else on timeout.
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), self._window_s)
                except asyncio.TimeoutError:
                    pass
            count = min(len(self._queue), self._max_batch)
            batch = [self._queue.popleft() for _ in range(count)]
            await self._flush(batch)

    async def _flush(self, batch: list[PendingRequest]) -> None:
        """Coalesce one micro-batch, execute it, fan results out to futures."""
        groups: dict[tuple, list[PendingRequest]] = {}
        for request in batch:
            groups.setdefault(request.params_key, []).append(request)
        gammas = np.array([g for g, _ in groups], dtype=np.float64)
        betas = np.array([b for _, b in groups], dtype=np.float64)
        start = time.perf_counter()
        queue_waits = [start - request.enqueued_at for request in batch]
        try:
            values = await self._execute(self.key, gammas, betas)
        except Exception as exc:
            # The engine call failed: the exception fans out to every waiter
            # (duplicates included), and the drain loop keeps serving.
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
            self._stats.record_batch_failure(len(batch))
            return
        execution_s = time.perf_counter() - start
        for value, requests in zip(values, groups.values()):
            for request in requests:
                if not request.future.done():  # caller may have cancelled
                    request.future.set_result(float(value))
        self._stats.record_batch(size=len(batch), unique=len(groups),
                                 queue_waits=queue_waits,
                                 execution_s=execution_s)
