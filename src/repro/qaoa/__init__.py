"""High-level QAOA API: objectives, parameter strategies, optimization drivers."""

from .objective import QAOAObjective, get_qaoa_objective, make_simulator
from .optimization import (
    GridScanResult,
    OptimizationResult,
    grid_scan_qaoa,
    minimize_qaoa,
    population_optimize,
    progressive_depth_optimization,
)
from .parameters import (
    fourier_to_schedule,
    interp_extrapolate,
    linear_ramp_parameters,
    random_initialization,
    schedule_to_fourier,
    split_parameters,
    stack_parameters,
    tqa_initialization,
)

__all__ = [
    "QAOAObjective",
    "get_qaoa_objective",
    "make_simulator",
    "OptimizationResult",
    "GridScanResult",
    "minimize_qaoa",
    "progressive_depth_optimization",
    "grid_scan_qaoa",
    "population_optimize",
    "linear_ramp_parameters",
    "tqa_initialization",
    "random_initialization",
    "interp_extrapolate",
    "fourier_to_schedule",
    "schedule_to_fourier",
    "stack_parameters",
    "split_parameters",
]
