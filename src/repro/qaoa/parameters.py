"""QAOA parameter initialization and transfer strategies.

QOKit ships pre-optimized parameters for its benchmark problems; this module
provides the substitute (DESIGN.md §2): the standard parameter-setting
strategies from the QAOA literature that the simulator's optimization workflow
starts from —

* **linear ramp / TQA initialization** (Sack & Serbyn, the reference the paper
  discusses in its Sec. VII comparison): γ ramps up, β ramps down along the
  schedule, which approximates a Trotterized quantum annealing path;
* **INTERP extrapolation** (Zhou et al.): good parameters at depth ``p`` are
  linearly interpolated to seed depth ``p+1``, the workhorse for reaching the
  high depths the simulator targets;
* **Fourier parameterization** helpers, which represent the schedules by a few
  low-frequency coefficients.

All functions return ``(gammas, betas)`` pairs ready to pass to
``simulate_qaoa``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear_ramp_parameters",
    "tqa_initialization",
    "random_initialization",
    "interp_extrapolate",
    "fourier_to_schedule",
    "schedule_to_fourier",
    "stack_parameters",
    "split_parameters",
]


def linear_ramp_parameters(p: int, *, delta_t: float = 0.75,
                           gamma_scale: float = 1.0,
                           beta_scale: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """Linear-ramp schedule: γ_l grows, β_l shrinks linearly over the p layers.

    ``delta_t`` plays the role of the annealing time step; the defaults follow
    the common choice Δt ≈ 0.75 which works well for MaxCut- and LABS-like
    problems at moderate depth.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    steps = (np.arange(p) + 0.5) / p
    gammas = gamma_scale * delta_t * steps
    betas = beta_scale * delta_t * (1.0 - steps)
    return gammas, betas


def tqa_initialization(p: int, total_time: float | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Trotterized-quantum-annealing initialization (Sack & Serbyn).

    The annealing time defaults to ``0.75 * p``, which keeps the per-layer
    angles in the regime where the Trotter error stays benign.
    """
    if p <= 0:
        raise ValueError("p must be positive")
    if total_time is None:
        total_time = 0.75 * p
    dt = total_time / p
    steps = (np.arange(p) + 0.5) / p
    return dt * steps, dt * (1.0 - steps)


def random_initialization(p: int, *, seed: int | None = None,
                          gamma_range: float = np.pi,
                          beta_range: float = np.pi / 2) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random angles (the baseline initialization in ablation studies)."""
    if p <= 0:
        raise ValueError("p must be positive")
    rng = np.random.default_rng(seed)
    return rng.uniform(0, gamma_range, p), rng.uniform(0, beta_range, p)


def interp_extrapolate(gammas: np.ndarray, betas: np.ndarray,
                       new_p: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """INTERP strategy: extend a depth-p schedule to depth ``new_p`` (default p+1).

    The optimized angles at depth p are treated as samples of a smooth schedule
    and linearly interpolated onto the finer grid, preserving the endpoints.
    """
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if gammas.shape != betas.shape or gammas.ndim != 1:
        raise ValueError("gammas and betas must be 1-D arrays of equal length")
    p = gammas.shape[0]
    if new_p is None:
        new_p = p + 1
    if new_p < p:
        raise ValueError("INTERP can only extend schedules, not shrink them")
    if new_p == p:
        return gammas.copy(), betas.copy()
    old_grid = (np.arange(p) + 0.5) / p
    new_grid = (np.arange(new_p) + 0.5) / new_p
    return (np.interp(new_grid, old_grid, gammas),
            np.interp(new_grid, old_grid, betas))


def fourier_to_schedule(u: np.ndarray, v: np.ndarray, p: int) -> tuple[np.ndarray, np.ndarray]:
    """FOURIER parameterization: build (γ, β) schedules from q coefficients.

    γ_l = Σ_m u_m sin((m+1/2)(l+1/2)π/p),  β_l = Σ_m v_m cos((m+1/2)(l+1/2)π/p).
    """
    u = np.atleast_1d(np.asarray(u, dtype=np.float64))
    v = np.atleast_1d(np.asarray(v, dtype=np.float64))
    if u.shape != v.shape:
        raise ValueError("u and v must have the same length")
    l = np.arange(p) + 0.5
    m = np.arange(u.shape[0]) + 0.5
    phases = np.outer(l, m) * np.pi / p
    return np.sin(phases) @ u, np.cos(phases) @ v


def schedule_to_fourier(gammas: np.ndarray, betas: np.ndarray,
                        q: int) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares fit of a schedule by ``q`` Fourier coefficients."""
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    p = gammas.shape[0]
    if q <= 0 or q > p:
        raise ValueError(f"q must be in [1, p], got {q}")
    l = np.arange(p) + 0.5
    m = np.arange(q) + 0.5
    phases = np.outer(l, m) * np.pi / p
    u, *_ = np.linalg.lstsq(np.sin(phases), gammas, rcond=None)
    v, *_ = np.linalg.lstsq(np.cos(phases), betas, rcond=None)
    return u, v


def stack_parameters(gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
    """Concatenate (γ, β) into the single flat vector optimizers work with."""
    gammas = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    betas = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if gammas.shape != betas.shape:
        raise ValueError("gammas and betas must have the same length")
    return np.concatenate([gammas, betas])


def split_parameters(theta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a flat parameter vector back into (γ, β)."""
    theta = np.atleast_1d(np.asarray(theta, dtype=np.float64))
    if theta.shape[0] % 2 != 0:
        raise ValueError("flat parameter vector must have even length (γ then β)")
    p = theta.shape[0] // 2
    return theta[:p].copy(), theta[p:].copy()
