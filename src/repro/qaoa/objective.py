"""QAOA objective factories over any simulator backend (the Fig. 1 loop).

The quantity tuned during QAOA parameter optimization is
``E(γ, β) = <γβ|Ĉ|γβ>`` (or, alternatively, the overlap with the ground
state).  :func:`get_qaoa_objective` builds a plain callable
``f(theta) -> float`` over any of the simulator backends, with bookkeeping of
evaluation counts and best-seen values, so the optimization drivers and the
benchmark harness can treat every backend identically — which is exactly the
comparison behind the paper's headline "11× faster parameter optimization"
claim.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..fur import choose_simulator, choose_simulator_xycomplete, choose_simulator_xyring
from ..fur.base import QAOAFastSimulatorBase
from .parameters import split_parameters

__all__ = ["QAOAObjective", "get_qaoa_objective", "make_simulator"]

_MIXER_CHOOSERS = {
    "x": choose_simulator,
    "xyring": choose_simulator_xyring,
    "xycomplete": choose_simulator_xycomplete,
}


def make_simulator(n_qubits: int,
                   terms: Iterable[tuple[float, Iterable[int]]] | None = None,
                   costs: np.ndarray | None = None, *,
                   backend: str | type[QAOAFastSimulatorBase] = "auto",
                   mixer: str = "x", **simulator_kwargs: Any) -> QAOAFastSimulatorBase:
    """Instantiate a simulator from a backend name or class.

    ``backend`` may be a registry name (``auto``, ``python``, ``c``, ``gpu``,
    ``gpumpi``, ``cusvmpi``), a simulator *class*, or an already-constructed
    simulator instance (returned unchanged).
    """
    if isinstance(backend, QAOAFastSimulatorBase):
        return backend
    if isinstance(backend, str):
        if mixer not in _MIXER_CHOOSERS:
            raise ValueError(f"unknown mixer {mixer!r}; choose from {sorted(_MIXER_CHOOSERS)}")
        cls = _MIXER_CHOOSERS[mixer](backend)
    else:
        cls = backend
    return cls(n_qubits, terms=terms, costs=costs, **simulator_kwargs)


@dataclass
class QAOAObjective:
    """Callable QAOA objective with evaluation bookkeeping.

    Calling the object with a flat parameter vector ``theta = (γ…, β…)``
    simulates the circuit on the configured backend and returns the objective
    value (expectation by default, negated overlap if configured so that the
    optimizer always minimizes).
    """

    simulator: QAOAFastSimulatorBase
    p: int
    objective: str = "expectation"
    sv0: np.ndarray | None = None
    simulate_kwargs: dict[str, Any] = field(default_factory=dict)
    #: running statistics
    n_evaluations: int = 0
    best_value: float = np.inf
    best_parameters: np.ndarray | None = None
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError("p must be positive")
        if self.objective not in ("expectation", "overlap"):
            raise ValueError("objective must be 'expectation' or 'overlap'")

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, gammas: Sequence[float], betas: Sequence[float]) -> float:
        """Evaluate the objective for explicit (γ, β) schedules."""
        result = self.simulator.simulate_qaoa(gammas, betas, sv0=self.sv0,
                                              **self.simulate_kwargs)
        if self.objective == "expectation":
            value = self.simulator.get_expectation(result)
        else:
            # minimize the *negated* overlap so all objectives are minimized
            value = -self.simulator.get_overlap(result)
        theta = np.concatenate([np.asarray(gammas, dtype=np.float64),
                                np.asarray(betas, dtype=np.float64)])
        self.n_evaluations += 1
        self.history.append(float(value))
        if value < self.best_value:
            self.best_value = float(value)
            self.best_parameters = theta
        return float(value)

    def __call__(self, theta: np.ndarray) -> float:
        gammas, betas = split_parameters(theta)
        if gammas.shape[0] != self.p:
            raise ValueError(
                f"parameter vector encodes p={gammas.shape[0]}, objective expects p={self.p}"
            )
        return self.evaluate(gammas, betas)

    # -- introspection ------------------------------------------------------------
    def reset_statistics(self) -> None:
        """Clear the evaluation counters and history."""
        self.n_evaluations = 0
        self.best_value = np.inf
        self.best_parameters = None
        self.history.clear()


def get_qaoa_objective(n_qubits: int, p: int,
                       terms: Iterable[tuple[float, Iterable[int]]] | None = None,
                       costs: np.ndarray | None = None, *,
                       backend: str | type[QAOAFastSimulatorBase] | QAOAFastSimulatorBase = "auto",
                       mixer: str = "x", objective: str = "expectation",
                       sv0: np.ndarray | None = None,
                       simulate_kwargs: dict[str, Any] | None = None,
                       **simulator_kwargs: Any) -> QAOAObjective:
    """Build a :class:`QAOAObjective` for the given problem and backend.

    This is the one-line entry point mirroring QOKit's high-level API: the
    returned object is a plain callable suitable for ``scipy.optimize``.
    """
    simulator = make_simulator(n_qubits, terms=terms, costs=costs,
                               backend=backend, mixer=mixer, **simulator_kwargs)
    return QAOAObjective(simulator=simulator, p=p, objective=objective, sv0=sv0,
                         simulate_kwargs=dict(simulate_kwargs or {}))
