"""QAOA objective factories over any simulator backend (the Fig. 1 loop).

The quantity tuned during QAOA parameter optimization is
``E(γ, β) = <γβ|Ĉ|γβ>`` (or, alternatively, the overlap with the ground
state).  :func:`get_qaoa_objective` builds a plain callable
``f(theta) -> float`` over any of the simulator backends, with bookkeeping of
evaluation counts and best-seen values, so the optimization drivers and the
benchmark harness can treat every backend identically — which is exactly the
comparison behind the paper's headline "11× faster parameter optimization"
claim.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..fur.base import QAOAFastSimulatorBase
from ..fur.registry import simulator as _construct_simulator
from .parameters import split_parameters

__all__ = ["EvaluationBookkeepingMixin", "QAOAObjective", "get_qaoa_objective",
           "make_simulator"]


def make_simulator(n_qubits: int,
                   terms: Iterable[tuple[float, Iterable[int]]] | None = None,
                   costs: np.ndarray | None = None, *,
                   backend: str | type[QAOAFastSimulatorBase] = "auto",
                   mixer: str = "x", **simulator_kwargs: Any) -> QAOAFastSimulatorBase:
    """Instantiate a simulator from a backend name or class.

    A thin wrapper over the :func:`repro.simulator` facade, kept for
    compatibility: ``backend`` may be a registry name or alias (``auto``,
    ``python``, ``c``, ``gpu``, ``gpumpi``, ``cusvmpi``), a simulator
    *class*, or an already-constructed simulator instance (returned
    unchanged).
    """
    return _construct_simulator(n_qubits, terms=terms, costs=costs,
                                backend=backend, mixer=mixer, **simulator_kwargs)


class EvaluationBookkeepingMixin:
    """Shared evaluation bookkeeping: count, history and best-seen tracking.

    Mixed into :class:`QAOAObjective` and the serving layer's
    :class:`repro.serve.ServedQAOAObjective` so every objective flavour keeps
    identical statistics.  The host class declares the ``n_evaluations``,
    ``best_value``, ``best_parameters`` and ``history`` fields (dataclass
    fields cannot live on a shared non-dataclass base).
    """

    def _record_evaluation(self, theta: np.ndarray, value: float) -> None:
        """Account one evaluation of the flat parameter vector ``theta``."""
        self.n_evaluations += 1
        self.history.append(float(value))
        if value < self.best_value:
            self.best_value = float(value)
            self.best_parameters = np.array(theta, dtype=np.float64, copy=True)

    def reset_statistics(self) -> None:
        """Clear the evaluation counters and history."""
        self.n_evaluations = 0
        self.best_value = np.inf
        self.best_parameters = None
        self.history.clear()


@dataclass
class QAOAObjective(EvaluationBookkeepingMixin):
    """Callable QAOA objective with evaluation bookkeeping.

    Calling the object with a flat parameter vector ``theta = (γ…, β…)``
    simulates the circuit on the configured backend and returns the objective
    value (expectation by default, negated overlap if configured so that the
    optimizer always minimizes).
    """

    simulator: QAOAFastSimulatorBase
    p: int
    objective: str = "expectation"
    sv0: np.ndarray | None = None
    simulate_kwargs: dict[str, Any] = field(default_factory=dict)
    #: memory budget (bytes) handed to the fused batch engines; ``None`` uses
    #: the backend default (larger batches are split into sub-batches)
    batch_memory_budget: float | None = None
    #: running statistics
    n_evaluations: int = 0
    best_value: float = np.inf
    best_parameters: np.ndarray | None = None
    history: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.p <= 0:
            raise ValueError("p must be positive")
        if self.objective not in ("expectation", "overlap"):
            raise ValueError("objective must be 'expectation' or 'overlap'")

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, gammas: Sequence[float], betas: Sequence[float]) -> float:
        """Evaluate the objective for explicit (γ, β) schedules."""
        result = self.simulator.simulate_qaoa(gammas, betas, sv0=self.sv0,
                                              **self.simulate_kwargs)
        if self.objective == "expectation":
            value = self.simulator.get_expectation(result)
        else:
            # minimize the *negated* overlap so all objectives are minimized
            value = -self.simulator.get_overlap(result)
        theta = np.concatenate([np.asarray(gammas, dtype=np.float64),
                                np.asarray(betas, dtype=np.float64)])
        self._record_evaluation(theta, float(value))
        return float(value)

    def evaluate_batch(self, thetas: np.ndarray) -> np.ndarray:
        """Evaluate the objective for a batch of flat parameter vectors.

        ``thetas`` is ``(B, 2p)`` shaped (a single vector is promoted to a
        batch of one); the returned array holds one objective value per row.
        Routes through the simulator's batched API and hence the shared
        execution engine (:mod:`repro.fur.engine`): every backend that
        implements the kernel-provider protocol — including the distributed
        ``gpumpi``/``cusvmpi`` families — evolves a ``(B, 2^n)`` state block
        through all layers at once under a cached execution plan, splitting
        batches that exceed :attr:`batch_memory_budget` into sub-batches.
        The usual bookkeeping (evaluation count, history, best-seen) is kept
        per row.  This is the natural entry point for population-based
        optimizers and parameter grid scans
        (:func:`repro.qaoa.grid_scan_qaoa`,
        :func:`repro.qaoa.population_optimize`).
        """
        arr = np.atleast_2d(np.asarray(thetas, dtype=np.float64))
        if arr.ndim != 2:
            raise ValueError("thetas must be a (batch, 2p) array")
        if arr.shape[1] != 2 * self.p:
            detail = (f"encode p={arr.shape[1] // 2}" if arr.shape[1] % 2 == 0
                      else "have odd length (no valid p)")
            raise ValueError(
                f"parameter vectors of length {arr.shape[1]} {detail}, "
                f"objective expects p={self.p}"
            )
        gammas_batch, betas_batch = arr[:, :self.p], arr[:, self.p:]
        if self.objective == "expectation":
            values = self.simulator.get_expectation_batch(
                gammas_batch, betas_batch, sv0=self.sv0,
                memory_budget=self.batch_memory_budget, **self.simulate_kwargs)
        else:
            # One simulate+reduce per row: never holds more than one evolved
            # state, so memory stays independent of the batch size.
            values = np.array([
                -self.simulator.get_overlap(
                    self.simulator.simulate_qaoa(g, b, sv0=self.sv0,
                                                 **self.simulate_kwargs),
                    preserve_state=False)
                for g, b in zip(gammas_batch, betas_batch)
            ])
        for theta, value in zip(arr, values):
            self._record_evaluation(theta, float(value))
        return values

    def __call__(self, theta: np.ndarray) -> float:
        gammas, betas = split_parameters(theta)
        if gammas.shape[0] != self.p:
            raise ValueError(
                f"parameter vector encodes p={gammas.shape[0]}, objective expects p={self.p}"
            )
        return self.evaluate(gammas, betas)


def get_qaoa_objective(n_qubits: int, p: int,
                       terms: Iterable[tuple[float, Iterable[int]]] | None = None,
                       costs: np.ndarray | None = None, *,
                       backend: str | type[QAOAFastSimulatorBase] | QAOAFastSimulatorBase = "auto",
                       mixer: str = "x", objective: str = "expectation",
                       sv0: np.ndarray | None = None,
                       simulate_kwargs: dict[str, Any] | None = None,
                       batch_memory_budget: float | None = None,
                       **simulator_kwargs: Any) -> QAOAObjective:
    """Build a :class:`QAOAObjective` for the given problem and backend.

    This is the one-line entry point mirroring QOKit's high-level API: the
    returned object is a plain callable suitable for ``scipy.optimize``.
    Simulator construction routes through the backend registry
    (:func:`repro.simulator`), and repeated calls for the same ``terms``
    reuse the process-wide precomputed-diagonal cache — rebuilding an
    objective per depth or per restart no longer repeats the O(2^n)
    precomputation.
    """
    simulator = make_simulator(n_qubits, terms=terms, costs=costs,
                               backend=backend, mixer=mixer, **simulator_kwargs)
    return QAOAObjective(simulator=simulator, p=p, objective=objective, sv0=sv0,
                         simulate_kwargs=dict(simulate_kwargs or {}),
                         batch_memory_budget=batch_memory_budget)
