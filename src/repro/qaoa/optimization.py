"""QAOA parameter-optimization drivers (the workflow the simulator accelerates).

The paper's headline end-to-end result is the reduction of the wall-clock time
of a *typical QAOA parameter optimization* (Fig. 1): a local optimizer
repeatedly evaluates the objective for different (γ, β), and every evaluation
is a full state-vector simulation.  These drivers wrap ``scipy.optimize`` with
the bookkeeping needed by the benchmark harness (evaluation counts, wall-clock
time, history) and implement the depth-progression strategy (optimize at depth
p, INTERP-extend to p+1, re-optimize) used to reach high depths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize as sciopt

from .objective import QAOAObjective
from .parameters import interp_extrapolate, linear_ramp_parameters, split_parameters, stack_parameters

__all__ = [
    "OptimizationResult",
    "GridScanResult",
    "minimize_qaoa",
    "progressive_depth_optimization",
    "grid_scan_qaoa",
    "population_optimize",
]

#: Optimizers known to behave well on the low-dimensional, noisy-free QAOA
#: landscape.  COBYLA is the default, matching common practice.
SUPPORTED_METHODS = ("COBYLA", "Nelder-Mead", "Powell", "BFGS", "L-BFGS-B", "SLSQP")


@dataclass
class OptimizationResult:
    """Outcome of one QAOA parameter optimization."""

    gammas: np.ndarray
    betas: np.ndarray
    value: float
    n_evaluations: int
    wall_time: float
    method: str
    history: list[float] = field(default_factory=list)
    scipy_result: object | None = None

    @property
    def p(self) -> int:
        """QAOA depth of the optimized schedule."""
        return int(self.gammas.shape[0])


def minimize_qaoa(objective: QAOAObjective,
                  initial_gammas: np.ndarray | None = None,
                  initial_betas: np.ndarray | None = None, *,
                  method: str = "COBYLA", maxiter: int = 200,
                  rhobeg: float = 0.1, tol: float | None = None) -> OptimizationResult:
    """Run a local optimization of the QAOA objective.

    Parameters default to the linear-ramp initialization at the objective's
    depth.  ``rhobeg`` is passed to COBYLA (initial trust-region radius); other
    methods receive scipy defaults.
    """
    if method not in SUPPORTED_METHODS:
        raise ValueError(f"unsupported method {method!r}; choose from {SUPPORTED_METHODS}")
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    if initial_gammas is None or initial_betas is None:
        initial_gammas, initial_betas = linear_ramp_parameters(objective.p)
    theta0 = stack_parameters(initial_gammas, initial_betas)
    if theta0.shape[0] != 2 * objective.p:
        raise ValueError(
            f"initial parameters encode p={theta0.shape[0] // 2}, objective expects p={objective.p}"
        )

    objective.reset_statistics()
    options: dict = {"maxiter": maxiter}
    if method == "COBYLA":
        options["rhobeg"] = rhobeg
    start = time.perf_counter()
    scipy_result = sciopt.minimize(objective, theta0, method=method, tol=tol, options=options)
    wall = time.perf_counter() - start

    best_theta = scipy_result.x if objective.best_parameters is None else objective.best_parameters
    best_value = float(min(scipy_result.fun, objective.best_value))
    gammas, betas = split_parameters(np.asarray(best_theta, dtype=np.float64))
    return OptimizationResult(
        gammas=gammas,
        betas=betas,
        value=best_value,
        n_evaluations=objective.n_evaluations,
        wall_time=wall,
        method=method,
        history=list(objective.history),
        scipy_result=scipy_result,
    )


@dataclass
class GridScanResult:
    """Outcome of a batched (γ, β) landscape scan."""

    gamma_values: np.ndarray
    beta_values: np.ndarray
    #: objective values, shape ``(len(gamma_values), len(beta_values))``
    values: np.ndarray
    best_gamma: float
    best_beta: float
    best_value: float
    n_evaluations: int
    wall_time: float


def grid_scan_qaoa(objective: QAOAObjective,
                   gamma_values: np.ndarray,
                   beta_values: np.ndarray) -> GridScanResult:
    """Exhaustive depth-1 (γ, β) landscape scan through the batch engine.

    The classic QAOA heatmap (the paper's Fig. 2 workload shape): every
    (γ, β) grid point is one objective evaluation over the *same* precomputed
    diagonal.  The whole grid is evaluated in one
    :meth:`~repro.qaoa.objective.QAOAObjective.evaluate_batch` call, so fused
    backends evolve the grid in state blocks instead of one schedule at a
    time (sub-batch splitting keeps memory bounded for dense grids).
    """
    if objective.p != 1:
        raise ValueError(f"grid scan is defined for p=1 objectives, got p={objective.p}")
    gv = np.atleast_1d(np.asarray(gamma_values, dtype=np.float64))
    bv = np.atleast_1d(np.asarray(beta_values, dtype=np.float64))
    if gv.ndim != 1 or bv.ndim != 1 or gv.size == 0 or bv.size == 0:
        raise ValueError("gamma_values and beta_values must be non-empty 1-D grids")
    thetas = np.column_stack([np.repeat(gv, bv.size), np.tile(bv, gv.size)])
    objective.reset_statistics()
    start = time.perf_counter()
    values = objective.evaluate_batch(thetas).reshape(gv.size, bv.size)
    wall = time.perf_counter() - start
    gi, bi = np.unravel_index(int(np.argmin(values)), values.shape)
    return GridScanResult(
        gamma_values=gv,
        beta_values=bv,
        values=values,
        best_gamma=float(gv[gi]),
        best_beta=float(bv[bi]),
        best_value=float(values[gi, bi]),
        n_evaluations=objective.n_evaluations,
        wall_time=wall,
    )


def population_optimize(objective: QAOAObjective, *,
                        generations: int = 20,
                        population_size: int = 32,
                        elite_fraction: float = 0.25,
                        sigma0: float = 0.3,
                        sigma_floor: float = 0.01,
                        seed: int | None = None) -> OptimizationResult:
    """Population-based (cross-entropy) optimization over the batch engine.

    Each generation samples ``population_size`` parameter vectors around the
    current mean, evaluates them all in one batched call (the fused backends
    evolve whole state blocks), and refits mean/spread to the elite fraction.
    Starts from the linear-ramp schedule at the objective's depth; the spread
    never collapses below ``sigma_floor`` so late generations keep exploring.
    """
    if generations <= 0 or population_size <= 0:
        raise ValueError("generations and population_size must be positive")
    if not 0.0 < elite_fraction <= 1.0:
        raise ValueError("elite_fraction must be in (0, 1]")
    if sigma0 <= 0 or sigma_floor < 0:
        raise ValueError("sigma0 must be positive and sigma_floor non-negative")
    rng = np.random.default_rng(seed)
    gammas0, betas0 = linear_ramp_parameters(objective.p)
    mean = stack_parameters(gammas0, betas0)
    sigma = np.full(mean.shape[0], float(sigma0))
    n_elite = max(1, int(round(population_size * elite_fraction)))

    objective.reset_statistics()
    start = time.perf_counter()
    generation_best: list[float] = []
    for _ in range(generations):
        population = mean[None, :] + sigma[None, :] * rng.standard_normal(
            (population_size, mean.shape[0]))
        values = objective.evaluate_batch(population)
        elite = population[np.argsort(values)[:n_elite]]
        mean = elite.mean(axis=0)
        sigma = np.maximum(elite.std(axis=0), sigma_floor)
        generation_best.append(float(values.min()))
    wall = time.perf_counter() - start

    best_theta = objective.best_parameters
    if best_theta is None:  # pragma: no cover - defensive (evaluate_batch always records)
        best_theta = mean
    gammas, betas = split_parameters(np.asarray(best_theta, dtype=np.float64))
    return OptimizationResult(
        gammas=gammas,
        betas=betas,
        value=float(objective.best_value),
        n_evaluations=objective.n_evaluations,
        wall_time=wall,
        method="population",
        history=list(objective.history),
    )


def progressive_depth_optimization(objective_factory, max_p: int, *,
                                   method: str = "COBYLA", maxiter_per_depth: int = 100,
                                   start_p: int = 1) -> list[OptimizationResult]:
    """Optimize depth-by-depth with INTERP parameter transfer.

    ``objective_factory(p)`` must return a fresh :class:`QAOAObjective` of
    depth ``p``.  The depth-``start_p`` schedule starts from the linear ramp;
    each subsequent depth starts from the INTERP extension of the previous
    optimum.  Returns one :class:`OptimizationResult` per depth.
    """
    if start_p <= 0 or max_p < start_p:
        raise ValueError("need 1 <= start_p <= max_p")
    results: list[OptimizationResult] = []
    gammas, betas = linear_ramp_parameters(start_p)
    for p in range(start_p, max_p + 1):
        if results:
            gammas, betas = interp_extrapolate(results[-1].gammas, results[-1].betas, p)
        objective = objective_factory(p)
        if objective.p != p:
            raise ValueError(f"objective_factory({p}) returned an objective of depth {objective.p}")
        results.append(
            minimize_qaoa(objective, gammas, betas, method=method, maxiter=maxiter_per_depth)
        )
    return results
