"""QAOA parameter-optimization drivers (the workflow the simulator accelerates).

The paper's headline end-to-end result is the reduction of the wall-clock time
of a *typical QAOA parameter optimization* (Fig. 1): a local optimizer
repeatedly evaluates the objective for different (γ, β), and every evaluation
is a full state-vector simulation.  These drivers wrap ``scipy.optimize`` with
the bookkeeping needed by the benchmark harness (evaluation counts, wall-clock
time, history) and implement the depth-progression strategy (optimize at depth
p, INTERP-extend to p+1, re-optimize) used to reach high depths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize as sciopt

from .objective import QAOAObjective
from .parameters import interp_extrapolate, linear_ramp_parameters, split_parameters, stack_parameters

__all__ = ["OptimizationResult", "minimize_qaoa", "progressive_depth_optimization"]

#: Optimizers known to behave well on the low-dimensional, noisy-free QAOA
#: landscape.  COBYLA is the default, matching common practice.
SUPPORTED_METHODS = ("COBYLA", "Nelder-Mead", "Powell", "BFGS", "L-BFGS-B", "SLSQP")


@dataclass
class OptimizationResult:
    """Outcome of one QAOA parameter optimization."""

    gammas: np.ndarray
    betas: np.ndarray
    value: float
    n_evaluations: int
    wall_time: float
    method: str
    history: list[float] = field(default_factory=list)
    scipy_result: object | None = None

    @property
    def p(self) -> int:
        """QAOA depth of the optimized schedule."""
        return int(self.gammas.shape[0])


def minimize_qaoa(objective: QAOAObjective,
                  initial_gammas: np.ndarray | None = None,
                  initial_betas: np.ndarray | None = None, *,
                  method: str = "COBYLA", maxiter: int = 200,
                  rhobeg: float = 0.1, tol: float | None = None) -> OptimizationResult:
    """Run a local optimization of the QAOA objective.

    Parameters default to the linear-ramp initialization at the objective's
    depth.  ``rhobeg`` is passed to COBYLA (initial trust-region radius); other
    methods receive scipy defaults.
    """
    if method not in SUPPORTED_METHODS:
        raise ValueError(f"unsupported method {method!r}; choose from {SUPPORTED_METHODS}")
    if maxiter <= 0:
        raise ValueError("maxiter must be positive")
    if initial_gammas is None or initial_betas is None:
        initial_gammas, initial_betas = linear_ramp_parameters(objective.p)
    theta0 = stack_parameters(initial_gammas, initial_betas)
    if theta0.shape[0] != 2 * objective.p:
        raise ValueError(
            f"initial parameters encode p={theta0.shape[0] // 2}, objective expects p={objective.p}"
        )

    objective.reset_statistics()
    options: dict = {"maxiter": maxiter}
    if method == "COBYLA":
        options["rhobeg"] = rhobeg
    start = time.perf_counter()
    scipy_result = sciopt.minimize(objective, theta0, method=method, tol=tol, options=options)
    wall = time.perf_counter() - start

    best_theta = scipy_result.x if objective.best_parameters is None else objective.best_parameters
    best_value = float(min(scipy_result.fun, objective.best_value))
    gammas, betas = split_parameters(np.asarray(best_theta, dtype=np.float64))
    return OptimizationResult(
        gammas=gammas,
        betas=betas,
        value=best_value,
        n_evaluations=objective.n_evaluations,
        wall_time=wall,
        method=method,
        history=list(objective.history),
        scipy_result=scipy_result,
    )


def progressive_depth_optimization(objective_factory, max_p: int, *,
                                   method: str = "COBYLA", maxiter_per_depth: int = 100,
                                   start_p: int = 1) -> list[OptimizationResult]:
    """Optimize depth-by-depth with INTERP parameter transfer.

    ``objective_factory(p)`` must return a fresh :class:`QAOAObjective` of
    depth ``p``.  The depth-``start_p`` schedule starts from the linear ramp;
    each subsequent depth starts from the INTERP extension of the previous
    optimum.  Returns one :class:`OptimizationResult` per depth.
    """
    if start_p <= 0 or max_p < start_p:
        raise ValueError("need 1 <= start_p <= max_p")
    results: list[OptimizationResult] = []
    gammas, betas = linear_ramp_parameters(start_p)
    for p in range(start_p, max_p + 1):
        if results:
            gammas, betas = interp_extrapolate(results[-1].gammas, results[-1].betas, p)
        objective = objective_factory(p)
        if objective.p != p:
            raise ValueError(f"objective_factory({p}) returned an objective of depth {objective.p}")
        results.append(
            minimize_qaoa(objective, gammas, betas, method=method, maxiter=maxiter_per_depth)
        )
    return results
