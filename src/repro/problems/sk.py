"""Sherrington–Kirkpatrick (SK) spin-glass instances.

The SK model is a standard fully-connected random-coupling benchmark for QAOA
studies.  It is not one of the two headline problems of the paper but provides
an additional dense-quadratic workload for the benchmark harness (its term
count grows as Θ(n²) like LABS, but all terms are two-body, which isolates the
effect of term *order* on gate-based simulation cost).

    f(s) = (1/sqrt(n)) * sum_{i<j} J_ij s_i s_j,     J_ij ~ N(0, 1)
"""

from __future__ import annotations

import numpy as np

from .terms import Term, TermsPolynomial, terms_from_dict

__all__ = [
    "sk_couplings",
    "get_sk_terms",
    "sk_polynomial",
    "sk_energy_from_spins",
]


def sk_couplings(n: int, seed: int | None = None) -> np.ndarray:
    """Random symmetric coupling matrix ``J`` with zero diagonal, ``J_ij ~ N(0,1)``."""
    if n < 2:
        raise ValueError("SK model needs at least 2 spins")
    rng = np.random.default_rng(seed)
    j = rng.normal(size=(n, n))
    j = np.triu(j, k=1)
    return j + j.T


def get_sk_terms(n: int, seed: int | None = None, *, couplings: np.ndarray | None = None) -> list[Term]:
    """Spin-polynomial terms ``(J_ij / sqrt(n), (i, j))`` for all ``i < j``."""
    if couplings is None:
        couplings = sk_couplings(n, seed)
    couplings = np.asarray(couplings, dtype=np.float64)
    if couplings.shape != (n, n):
        raise ValueError(f"couplings must be {n}x{n}, got {couplings.shape}")
    acc: dict[tuple[int, ...], float] = {}
    norm = 1.0 / np.sqrt(n)
    for i in range(n):
        for j in range(i + 1, n):
            w = float(couplings[i, j]) * norm
            if w != 0.0:
                acc[(i, j)] = acc.get((i, j), 0.0) + w
    return terms_from_dict(acc)


def sk_polynomial(n: int, seed: int | None = None) -> TermsPolynomial:
    """:class:`TermsPolynomial` wrapper around :func:`get_sk_terms`."""
    return TermsPolynomial(n, tuple(get_sk_terms(n, seed)))


def sk_energy_from_spins(couplings: np.ndarray, spins: np.ndarray) -> float:
    """Reference energy ``(1/sqrt(n)) Σ_{i<j} J_ij s_i s_j`` for a ±1 vector."""
    s = np.asarray(spins, dtype=np.float64)
    n = s.shape[0]
    j = np.triu(np.asarray(couplings, dtype=np.float64), k=1)
    return float(s @ j @ s / np.sqrt(n))
