"""Optimization problems used in the paper's evaluation.

Submodules
----------
``terms``
    The polynomial-over-spins cost-function representation (Eq. 1) plus
    reference (brute-force) evaluators.
``maxcut``
    MaxCut terms and graph generators (Fig. 2 and Listing 1 workloads).
``labs``
    Low Autocorrelation Binary Sequences problem (Figs. 3–5 workloads).
``portfolio``
    Mean-variance portfolio optimization for the XY-mixer (constrained) path.
``sk``
    Sherrington–Kirkpatrick spin glass (auxiliary dense-quadratic workload).
"""

from . import labs, maxcut, portfolio, sk, terms
from .terms import TermsPolynomial

__all__ = ["terms", "maxcut", "labs", "portfolio", "sk", "TermsPolynomial"]
