"""Portfolio optimization problem (mean-variance QUBO) for constrained QAOA.

The paper lists portfolio optimization alongside MaxCut and LABS as one of the
problems QOKit ships one-line helpers for, and it is the canonical use case for
the Hamming-weight-preserving XY mixers: the budget constraint "select exactly
K assets" is enforced by the mixer (which never changes the Hamming weight of
the initial Dicke-like state) rather than by a penalty term.

The objective minimized over binary selections ``x ∈ {0,1}^n`` is

    f(x) = q * xᵀ Σ x  -  μᵀ x

where ``Σ`` is the asset covariance matrix, ``μ`` the expected returns and
``q`` the risk-aversion parameter.  Substituting ``x_i = (1 - s_i)/2`` turns
this into a spin polynomial with constant, linear and quadratic terms, which is
what the simulators consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .terms import Term, TermsPolynomial, terms_from_dict

__all__ = [
    "PortfolioProblem",
    "random_portfolio_problem",
    "portfolio_terms",
    "portfolio_value_bits",
    "portfolio_cost_vector",
    "hamming_weight_indices",
    "best_constrained_selection",
]


@dataclass(frozen=True)
class PortfolioProblem:
    """A mean-variance portfolio instance.

    Attributes
    ----------
    means:
        Expected returns ``μ`` (length n).
    cov:
        Covariance matrix ``Σ`` (n × n, symmetric positive semi-definite).
    risk_aversion:
        The scalar ``q`` weighting risk against return.
    budget:
        Number of assets to select (the Hamming-weight constraint ``K``).
    """

    means: np.ndarray
    cov: np.ndarray
    risk_aversion: float
    budget: int

    def __post_init__(self) -> None:
        means = np.asarray(self.means, dtype=np.float64)
        cov = np.asarray(self.cov, dtype=np.float64)
        if means.ndim != 1:
            raise ValueError("means must be a vector")
        n = means.shape[0]
        if cov.shape != (n, n):
            raise ValueError(f"covariance must be {n}x{n}, got {cov.shape}")
        if not np.allclose(cov, cov.T, atol=1e-10):
            raise ValueError("covariance matrix must be symmetric")
        if not 0 <= self.budget <= n:
            raise ValueError(f"budget {self.budget} out of range for {n} assets")
        object.__setattr__(self, "means", means)
        object.__setattr__(self, "cov", cov)

    @property
    def n(self) -> int:
        """Number of assets (qubits)."""
        return self.means.shape[0]

    def value(self, x: np.ndarray) -> float:
        """Objective ``q·xᵀΣx − μᵀx`` for a binary selection vector."""
        x = np.asarray(x, dtype=np.float64)
        return float(self.risk_aversion * x @ self.cov @ x - self.means @ x)


def random_portfolio_problem(n: int, budget: int | None = None, *,
                             risk_aversion: float = 0.5,
                             seed: int | None = None) -> PortfolioProblem:
    """Generate a random but well-conditioned portfolio instance.

    Returns are drawn uniformly from [0, 1); the covariance is a random SPD
    matrix ``A Aᵀ / n`` scaled to unit average variance.  ``budget`` defaults
    to ``n // 2``.
    """
    if n < 2:
        raise ValueError("portfolio problems need at least 2 assets")
    rng = np.random.default_rng(seed)
    means = rng.uniform(0.0, 1.0, size=n)
    a = rng.normal(size=(n, n))
    cov = a @ a.T / n
    cov /= np.mean(np.diag(cov))
    if budget is None:
        budget = n // 2
    return PortfolioProblem(means=means, cov=cov, risk_aversion=risk_aversion, budget=int(budget))


def portfolio_terms(problem: PortfolioProblem, *, include_offset: bool = True) -> list[Term]:
    """Spin-polynomial terms of the portfolio objective.

    Substituting ``x_i = (1 − s_i)/2``:

    * the linear part ``−μᵀx`` contributes ``+μ_i/2`` per spin and the constant
      ``−Σμ_i/2``;
    * the quadratic part ``q·xᵀΣx`` contributes pair terms
      ``q·Σ_ij/2`` (for i≠j, combining the symmetric entries), linear terms and
      a constant.
    """
    n = problem.n
    q = problem.risk_aversion
    mu = problem.means
    cov = problem.cov
    acc: dict[tuple[int, ...], float] = {}

    def add(idx: tuple[int, ...], w: float) -> None:
        acc[idx] = acc.get(idx, 0.0) + w

    # -mu^T x  =  -sum_i mu_i (1 - s_i)/2
    for i in range(n):
        add((), -mu[i] / 2.0)
        add((i,), mu[i] / 2.0)

    # q x^T Sigma x = q sum_{ij} Sigma_ij (1-s_i)(1-s_j)/4
    for i in range(n):
        for j in range(n):
            w = q * cov[i, j] / 4.0
            add((), w)
            add((i,), -w)
            add((j,), -w)
            if i == j:
                add((), w)  # s_i s_i = 1
            else:
                add(tuple(sorted((i, j))), w)

    terms = terms_from_dict(acc, tol=1e-15)
    if not include_offset:
        terms = [(w, idx) for w, idx in terms if len(idx) > 0]
    return terms


def portfolio_polynomial(problem: PortfolioProblem, *, include_offset: bool = True) -> TermsPolynomial:
    """:class:`TermsPolynomial` wrapper around :func:`portfolio_terms`."""
    return TermsPolynomial(problem.n, tuple(portfolio_terms(problem, include_offset=include_offset)))


def portfolio_value_bits(problem: PortfolioProblem, bits: np.ndarray) -> float:
    """Objective value for an explicit 0/1 selection vector (reference path)."""
    return problem.value(np.asarray(bits, dtype=np.float64))


def portfolio_cost_vector(problem: PortfolioProblem) -> np.ndarray:
    """Brute-force cost vector over all 2^n selections (reference path)."""
    n = problem.n
    if n > 22:
        raise ValueError("portfolio_cost_vector is a reference helper; n > 22 refused")
    idx = np.arange(1 << n, dtype=np.uint64)[:, None]
    shifts = np.arange(n, dtype=np.uint64)[None, :]
    bits = ((idx >> shifts) & np.uint64(1)).astype(np.float64)
    quad = np.einsum("xi,ij,xj->x", bits, problem.cov, bits)
    lin = bits @ problem.means
    return problem.risk_aversion * quad - lin


def hamming_weight_indices(n: int, weight: int) -> np.ndarray:
    """All basis-state indices with exactly ``weight`` bits set.

    These span the feasible subspace preserved by the XY mixers and are used to
    build the constrained initial state and to restrict expectation values.
    """
    if not 0 <= weight <= n:
        raise ValueError(f"weight {weight} out of range for n={n}")
    idx = np.arange(1 << n, dtype=np.uint64)
    pop = np.bitwise_count(idx)
    return np.flatnonzero(pop == weight)


def best_constrained_selection(problem: PortfolioProblem) -> tuple[float, int]:
    """Exhaustive optimum over selections satisfying the budget constraint.

    Returns ``(optimal value, basis-state index)``.
    """
    feasible = hamming_weight_indices(problem.n, problem.budget)
    costs = portfolio_cost_vector(problem)[feasible]
    k = int(np.argmin(costs))
    return float(costs[k]), int(feasible[k])
