"""Low Autocorrelation Binary Sequences (LABS) problem.

The LABS problem asks for a ±1 sequence ``s`` of length ``n`` minimizing the
*sidelobe energy*

    E(s) = sum_{k=1}^{n-1} C_k(s)^2,      C_k(s) = sum_{i=1}^{n-k} s_i s_{i+k}

or, equivalently, maximizing the *merit factor* ``F(s) = n^2 / (2 E(s))``.
LABS is the headline workload of the paper (Figs. 3–5): its cost polynomial has
Θ(n²) terms, many of them quartic, which makes the phase operator very deep for
gate-based simulators and therefore maximally favours the precomputed-diagonal
approach.

Term generation here expands ``Σ_k C_k²`` symbolically over spin variables
(using ``s_i² = 1``) rather than transcribing the closed-form expression in the
paper — the expansion is validated against direct energy evaluation in the
test-suite, which guards against transcription errors.  The resulting term
list contains two-body and four-body terms plus the constant offset
``Σ_{k=1}^{n-1} (n-k)``; the offset can be dropped to mirror QOKit's ``terms``
convention.

The module also ships the table of known optimal energies (verified by
exhaustive search for n ≤ 23 in this repository; literature values from
Packebusch & Mertens (2016) for larger n), used by the overlap/merit-factor
analyses and the examples.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from .terms import Term, TermsPolynomial, terms_from_dict

__all__ = [
    "get_terms",
    "get_terms_with_offset",
    "labs_polynomial",
    "autocorrelations",
    "energy_from_spins",
    "energy_from_index",
    "merit_factor",
    "merit_factor_from_energy",
    "energies_all_sequences",
    "optimal_energy_bruteforce",
    "true_optimal_energy",
    "optimal_merit_factor",
    "ground_state_indices",
    "number_of_terms",
    "KNOWN_OPTIMAL_ENERGIES",
]


# Known optimal sidelobe energies E*(n).  Entries for n <= 23 were re-verified
# by exhaustive search in this repository (see tests/problems/test_labs.py);
# entries for 24 <= n <= 40 are the published optima of Packebusch & Mertens,
# "Efficient branch and bound algorithm for the low autocorrelation binary
# sequence problem" (2016), as cited by the paper's companion study [6].
KNOWN_OPTIMAL_ENERGIES: dict[int, int] = {
    3: 1, 4: 2, 5: 2, 6: 7, 7: 3, 8: 8, 9: 12, 10: 13,
    11: 5, 12: 10, 13: 6, 14: 19, 15: 15, 16: 24, 17: 32, 18: 25,
    19: 29, 20: 26, 21: 26, 22: 39, 23: 47, 24: 36, 25: 36, 26: 45,
    27: 37, 28: 50, 29: 62, 30: 59, 31: 67, 32: 64, 33: 64, 34: 65,
    35: 73, 36: 82, 37: 86, 38: 87, 39: 99, 40: 108,
}


def autocorrelations(spins: Sequence[int] | np.ndarray) -> np.ndarray:
    """Aperiodic autocorrelations ``C_k`` for ``k = 1 .. n-1``.

    ``spins`` must be a ±1 sequence; returns an integer array of length
    ``n - 1`` with ``C_k = sum_i s_i s_{i+k}``.
    """
    s = np.asarray(spins, dtype=np.int64)
    if s.ndim != 1:
        raise ValueError("spins must be a one-dimensional sequence")
    if not np.all(np.abs(s) == 1):
        raise ValueError("spins must be ±1 valued")
    n = s.shape[0]
    return np.array([int(np.dot(s[: n - k], s[k:])) for k in range(1, n)], dtype=np.int64)


def energy_from_spins(spins: Sequence[int] | np.ndarray) -> int:
    """Sidelobe energy ``E(s) = Σ_k C_k(s)²`` of a ±1 sequence."""
    c = autocorrelations(spins)
    return int(np.sum(c * c))


def energy_from_index(x: int, n: int) -> int:
    """Sidelobe energy of the sequence encoded by basis-state index ``x``."""
    bits = np.array([(x >> q) & 1 for q in range(n)], dtype=np.int64)
    return energy_from_spins(1 - 2 * bits)


def merit_factor_from_energy(energy: float, n: int) -> float:
    """Merit factor ``F = n² / (2E)``."""
    if energy <= 0:
        raise ValueError(f"sidelobe energy must be positive, got {energy}")
    return n * n / (2.0 * energy)


def merit_factor(spins: Sequence[int] | np.ndarray) -> float:
    """Merit factor of a ±1 sequence."""
    s = np.asarray(spins)
    return merit_factor_from_energy(energy_from_spins(s), s.shape[0])


@lru_cache(maxsize=None)
def _terms_cached(n: int) -> tuple[Term, ...]:
    """Symbolic expansion of ``Σ_{k=1}^{n-1} C_k²`` into spin-polynomial terms.

    Expanding ``C_k² = Σ_{i,j} s_i s_{i+k} s_j s_{j+k}``:

    * ``i == j`` contributes the constant ``n - k``;
    * ``j == i + k`` (and symmetrically ``i == j + k``) collapses to the
      two-body term ``s_i s_{i+2k}``;
    * all remaining pairs give four-body terms ``s_i s_{i+k} s_j s_{j+k}``.

    Duplicate index sets are merged in a dict, exactly as a computer-algebra
    expansion would do, so the returned list is canonical and minimal.
    """
    if n < 2:
        raise ValueError(f"LABS needs at least 2 spins, got n={n}")
    acc: dict[tuple[int, ...], float] = {}

    def add(indices: tuple[int, ...], w: float) -> None:
        acc[indices] = acc.get(indices, 0.0) + w

    for k in range(1, n):
        m = n - k  # number of products s_i s_{i+k}, i = 0 .. m-1 (0-based)
        # i == j diagonal: each (s_i s_{i+k})^2 == 1
        add((), float(m))
        for i in range(m):
            for j in range(i + 1, m):
                idx_multiset = (i, i + k, j, j + k)
                # cancel repeated indices pairwise (s^2 = 1)
                counts: dict[int, int] = {}
                for q in idx_multiset:
                    counts[q] = counts.get(q, 0) + 1
                reduced = tuple(sorted(q for q, c in counts.items() if c % 2 == 1))
                add(reduced, 2.0)
    return tuple(terms_from_dict(acc))


def get_terms_with_offset(n: int) -> list[Term]:
    """LABS cost-polynomial terms *including* the constant offset term.

    The resulting polynomial evaluates exactly to the sidelobe energy ``E(s)``.
    """
    return list(_terms_cached(n))


def get_terms(n: int, *, include_offset: bool = True) -> list[Term]:
    """LABS cost-polynomial terms (paper Listing 2: ``qokit.labs.get_terms``).

    With ``include_offset=True`` (default) the polynomial value equals the
    sidelobe energy; with ``include_offset=False`` the constant
    ``Σ_k (n-k) = n(n-1)/2`` is omitted (the spectrum is merely shifted, which
    leaves QAOA dynamics unchanged up to a global phase).
    """
    terms = get_terms_with_offset(n)
    if include_offset:
        return list(terms)
    return [(w, idx) for w, idx in terms if len(idx) > 0]


def labs_polynomial(n: int, *, include_offset: bool = True) -> TermsPolynomial:
    """:class:`TermsPolynomial` wrapper around :func:`get_terms`."""
    return TermsPolynomial(n, tuple(get_terms(n, include_offset=include_offset)))


def number_of_terms(n: int, *, include_offset: bool = True) -> int:
    """Number of terms in the LABS polynomial (grows as Θ(n²))."""
    return len(get_terms(n, include_offset=include_offset))


def energies_all_sequences(n: int) -> np.ndarray:
    """Vector of sidelobe energies for all 2^n sequences (reference path).

    Index ``x`` follows the little-endian bit convention of the simulators, so
    this array can be compared directly against a precomputed cost diagonal.
    Vectorized over sequences; intended for n ≤ ~22.
    """
    if n < 2:
        raise ValueError(f"LABS needs at least 2 spins, got n={n}")
    if n > 22:
        raise ValueError("energies_all_sequences is a reference helper; n > 22 refused")
    idx = np.arange(1 << n, dtype=np.uint64)[:, None]
    shifts = np.arange(n, dtype=np.uint64)[None, :]
    bits = ((idx >> shifts) & np.uint64(1)).astype(np.int8)
    s = 1 - 2 * bits
    energies = np.zeros(1 << n, dtype=np.int64)
    for k in range(1, n):
        c = (s[:, : n - k].astype(np.int64) * s[:, k:].astype(np.int64)).sum(axis=1)
        energies += c * c
    return energies


def optimal_energy_bruteforce(n: int) -> int:
    """Exhaustively computed optimal sidelobe energy (small n)."""
    return int(energies_all_sequences(n).min())


def true_optimal_energy(n: int) -> int:
    """Known optimal sidelobe energy, from the built-in table or brute force.

    Raises ``KeyError`` if ``n`` is outside the table and too large to brute
    force.
    """
    if n in KNOWN_OPTIMAL_ENERGIES:
        return KNOWN_OPTIMAL_ENERGIES[n]
    if n <= 22:
        return optimal_energy_bruteforce(n)
    raise KeyError(f"no known optimal LABS energy for n={n}")


def optimal_merit_factor(n: int) -> float:
    """Merit factor of the optimal sequence of length ``n``."""
    return merit_factor_from_energy(true_optimal_energy(n), n)


def ground_state_indices(n: int) -> np.ndarray:
    """Basis-state indices of all optimal LABS sequences (small n only).

    LABS ground states come in symmetry orbits (sequence reversal, global spin
    flip, alternating flip), so several indices are returned.
    """
    energies = energies_all_sequences(n)
    return np.flatnonzero(energies == energies.min())
