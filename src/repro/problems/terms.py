"""Polynomial-over-spins representation of cost functions (Eq. 1 of the paper).

A cost function ``f`` on the Boolean cube is expressed as a polynomial in spin
variables ``s_i ∈ {-1, +1}``::

    f(s) = sum_k  w_k * prod_{i in t_k} s_i

and is represented as a list of *terms* ``(w_k, t_k)`` where ``w_k`` is a real
weight and ``t_k`` is a tuple of distinct qubit indices.  A constant offset is
encoded as a term with an empty index tuple ``(w_offset, ())``.

Bit / spin convention (see DESIGN.md §5): basis-state index ``x`` has bit ``q``
equal to ``b_q``, and the corresponding spin is ``s_q = 1 - 2 b_q``; i.e. bit 0
(state ``|0>``) maps to spin ``+1``.  Consequently a term ``(w, t)`` evaluated
on basis state ``x`` equals ``w * (-1)**popcount(x & mask(t))``.

This module provides the canonical term container :class:`TermsPolynomial`,
term-algebra helpers (simplification, products, scaling), and reference
(brute-force) evaluators used throughout the test-suite to validate the fast
precomputation kernels.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Term",
    "TermsPolynomial",
    "normalize_terms",
    "terms_from_dict",
    "terms_to_dict",
    "simplify_terms",
    "multiply_terms",
    "scale_terms",
    "add_terms",
    "negate_terms",
    "remove_offset",
    "get_offset",
    "max_term_order",
    "num_variables",
    "validate_terms",
    "evaluate_term",
    "evaluate_terms_on_spins",
    "evaluate_terms_on_bits",
    "evaluate_terms_on_index",
    "brute_force_cost_vector",
    "spins_from_index",
    "bits_from_index",
    "index_from_bits",
    "index_from_spins",
    "all_spin_configurations",
]

#: A single polynomial term: ``(weight, (i_1, i_2, ...))``.
Term = tuple[float, tuple[int, ...]]


def _canonical_indices(indices: Iterable[int]) -> tuple[int, ...]:
    """Return a sorted tuple of indices with repeated pairs cancelled.

    Because spins square to one (``s_i**2 == 1``), repeated indices cancel in
    pairs: ``s_0 s_1 s_0 == s_1``.  The canonical form keeps each index that
    appears an odd number of times, sorted ascending.
    """
    counts: dict[int, int] = {}
    for i in indices:
        i = int(i)
        if i < 0:
            raise ValueError(f"negative qubit index {i} in term")
        counts[i] = counts.get(i, 0) + 1
    return tuple(sorted(i for i, c in counts.items() if c % 2 == 1))


def normalize_terms(terms: Iterable[tuple[float, Iterable[int]]]) -> list[Term]:
    """Normalize an iterable of ``(weight, indices)`` pairs.

    Weights are cast to ``float``, index collections to canonical sorted tuples
    (with repeated indices cancelled pairwise).  Terms are *not* merged; use
    :func:`simplify_terms` for that.
    """
    out: list[Term] = []
    for entry in terms:
        try:
            w, idx = entry
        except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
            raise ValueError(f"term {entry!r} is not a (weight, indices) pair") from exc
        out.append((float(w), _canonical_indices(idx)))
    return out


def terms_to_dict(terms: Iterable[tuple[float, Iterable[int]]]) -> dict[tuple[int, ...], float]:
    """Collect terms into a ``{indices: weight}`` dict, merging duplicates."""
    acc: dict[tuple[int, ...], float] = {}
    for w, idx in normalize_terms(terms):
        acc[idx] = acc.get(idx, 0.0) + w
    return acc


def terms_from_dict(d: dict[tuple[int, ...], float], *, drop_zero: bool = True,
                    tol: float = 0.0) -> list[Term]:
    """Convert a ``{indices: weight}`` dict back to a sorted list of terms.

    Terms are sorted by (order, indices) for reproducibility.  Terms whose
    weight magnitude is ``<= tol`` are dropped when ``drop_zero`` is true.
    """
    items = []
    for idx, w in d.items():
        if drop_zero and abs(w) <= tol:
            continue
        items.append((float(w), tuple(idx)))
    items.sort(key=lambda t: (len(t[1]), t[1]))
    return items


def simplify_terms(terms: Iterable[tuple[float, Iterable[int]]], *, tol: float = 0.0) -> list[Term]:
    """Merge duplicate terms and drop (near-)zero weights.

    >>> simplify_terms([(1.0, (0, 1)), (2.0, (1, 0)), (-3.0, (0, 1))])
    []
    """
    return terms_from_dict(terms_to_dict(terms), drop_zero=True, tol=tol)


def multiply_terms(a: Iterable[tuple[float, Iterable[int]]],
                   b: Iterable[tuple[float, Iterable[int]]]) -> list[Term]:
    """Product of two spin polynomials, simplified.

    Uses ``s_i**2 == 1`` so the product of two terms is the symmetric
    difference of their index sets with multiplied weights.
    """
    acc: dict[tuple[int, ...], float] = {}
    na, nb = normalize_terms(a), normalize_terms(b)
    for wa, ia in na:
        sa = frozenset(ia)
        for wb, ib in nb:
            idx = tuple(sorted(sa.symmetric_difference(ib)))
            acc[idx] = acc.get(idx, 0.0) + wa * wb
    return terms_from_dict(acc)


def add_terms(a: Iterable[tuple[float, Iterable[int]]],
              b: Iterable[tuple[float, Iterable[int]]]) -> list[Term]:
    """Sum of two spin polynomials, simplified."""
    return simplify_terms(list(normalize_terms(a)) + list(normalize_terms(b)))


def scale_terms(terms: Iterable[tuple[float, Iterable[int]]], factor: float) -> list[Term]:
    """Multiply every weight by ``factor``."""
    return [(w * factor, idx) for w, idx in normalize_terms(terms)]


def negate_terms(terms: Iterable[tuple[float, Iterable[int]]]) -> list[Term]:
    """Negate every weight (useful for switching min/max conventions)."""
    return scale_terms(terms, -1.0)


def get_offset(terms: Iterable[tuple[float, Iterable[int]]]) -> float:
    """Total constant offset (sum of weights of empty-index terms)."""
    return sum(w for w, idx in normalize_terms(terms) if len(idx) == 0)


def remove_offset(terms: Iterable[tuple[float, Iterable[int]]]) -> tuple[list[Term], float]:
    """Split ``terms`` into (non-constant terms, total constant offset)."""
    offset = 0.0
    rest: list[Term] = []
    for w, idx in normalize_terms(terms):
        if len(idx) == 0:
            offset += w
        else:
            rest.append((w, idx))
    return rest, offset


def max_term_order(terms: Iterable[tuple[float, Iterable[int]]]) -> int:
    """Largest number of spins appearing in a single term (0 for empty input)."""
    return max((len(idx) for _, idx in normalize_terms(terms)), default=0)


def num_variables(terms: Iterable[tuple[float, Iterable[int]]]) -> int:
    """Smallest ``n`` such that all indices are ``< n`` (0 for constant-only input)."""
    m = -1
    for _, idx in normalize_terms(terms):
        if idx:
            m = max(m, max(idx))
    return m + 1


def validate_terms(terms: Iterable[tuple[float, Iterable[int]]], n_qubits: int) -> list[Term]:
    """Normalize terms and check all indices fit within ``n_qubits``.

    Raises ``ValueError`` on out-of-range indices, non-finite weights, or a
    non-positive qubit count.
    """
    if n_qubits <= 0:
        raise ValueError(f"number of qubits must be positive, got {n_qubits}")
    normalized = normalize_terms(terms)
    for w, idx in normalized:
        if not math.isfinite(w):
            raise ValueError(f"non-finite weight {w!r} in term {(w, idx)!r}")
        if idx and max(idx) >= n_qubits:
            raise ValueError(
                f"term {(w, idx)!r} references qubit {max(idx)} "
                f"but the simulator has only {n_qubits} qubits"
            )
    return normalized


# ---------------------------------------------------------------------------
# Reference evaluation (brute force): used for validation and small problems.
# ---------------------------------------------------------------------------

def spins_from_index(x: int, n: int) -> np.ndarray:
    """Spin configuration (array of ±1, length n) for basis-state index ``x``."""
    bits = bits_from_index(x, n)
    return 1 - 2 * bits


def bits_from_index(x: int, n: int) -> np.ndarray:
    """Bit array (length n, little-endian: entry q is bit q) for index ``x``.

    One shift/mask broadcast over ``np.arange`` (the same pattern the fast
    diagonal kernels use) instead of a per-element Python loop.
    """
    if x < 0 or x >= (1 << n):
        raise ValueError(f"index {x} out of range for {n} qubits")
    shifts = np.arange(n, dtype=np.uint64)
    return ((np.uint64(x) >> shifts) & np.uint64(1)).astype(np.int64)


def index_from_bits(bits: Sequence[int]) -> int:
    """Basis-state index for a little-endian bit sequence."""
    arr = np.asarray(bits)
    if arr.ndim != 1:
        raise ValueError(f"bit sequence must be one-dimensional, got shape {arr.shape}")
    bad = np.flatnonzero((arr != 0) & (arr != 1))
    if bad.size:
        q = int(bad[0])
        raise ValueError(f"bit value {bits[q]!r} at position {q} is not 0/1")
    if arr.shape[0] >= 64:
        # uint64 shifts would overflow silently; arbitrary-precision path.
        return sum(int(b) << q for q, b in enumerate(arr))
    shifts = np.arange(arr.shape[0], dtype=np.uint64)
    return int((arr.astype(np.uint64) << shifts).sum())


def index_from_spins(spins: Sequence[int]) -> int:
    """Basis-state index for a ±1 spin sequence (spin +1 ↔ bit 0)."""
    arr = np.asarray(spins)
    if arr.ndim != 1:
        raise ValueError(f"spin sequence must be one-dimensional, got shape {arr.shape}")
    bad = np.flatnonzero((arr != 1) & (arr != -1))
    if bad.size:
        q = int(bad[0])
        raise ValueError(f"spin value {spins[q]!r} at position {q} is not ±1")
    return index_from_bits((1 - arr.astype(np.int64)) // 2)


def evaluate_term(weight: float, indices: Sequence[int], spins: Sequence[int]) -> float:
    """Evaluate a single term on a spin configuration.

    Terms hold only a handful of indices, so a scalar product loop beats any
    per-term NumPy dispatch here; the vectorized bulk path is
    :func:`brute_force_cost_vector`.
    """
    prod = 1
    for i in indices:
        prod *= spins[i]
    return weight * prod


def evaluate_terms_on_spins(terms: Iterable[tuple[float, Iterable[int]]],
                            spins: Sequence[int]) -> float:
    """Evaluate the polynomial on a ±1 spin configuration (vectorized validation)."""
    spins_arr = np.asarray(spins)
    if spins_arr.ndim != 1:
        raise ValueError(f"spin sequence must be one-dimensional, got shape {spins_arr.shape}")
    bad = np.flatnonzero((spins_arr != 1) & (spins_arr != -1))
    if bad.size:
        raise ValueError(f"spin value {spins[int(bad[0])]!r} is not ±1")
    spins_list = spins_arr.tolist()  # Python ints: fast scalar term products
    total = 0.0
    for w, idx in normalize_terms(terms):
        total += evaluate_term(w, idx, spins_list)
    return total


def evaluate_terms_on_bits(terms: Iterable[tuple[float, Iterable[int]]],
                           bits: Sequence[int]) -> float:
    """Evaluate the polynomial on a 0/1 bit configuration (bit 0 ↔ spin +1)."""
    spins = [1 - 2 * int(b) for b in bits]
    return evaluate_terms_on_spins(terms, spins)


def evaluate_terms_on_index(terms: Iterable[tuple[float, Iterable[int]]],
                            x: int, n: int) -> float:
    """Evaluate the polynomial on basis state ``x`` of an ``n``-qubit register."""
    return evaluate_terms_on_spins(terms, spins_from_index(x, n))


def all_spin_configurations(n: int) -> np.ndarray:
    """Matrix of all 2^n spin configurations, shape ``(2**n, n)``.

    Row ``x`` is the spin configuration of basis state ``x`` under the
    little-endian convention.  Intended for small ``n`` (reference code).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if n > 24:
        raise ValueError("all_spin_configurations is a reference helper; n > 24 refused")
    idx = np.arange(1 << n, dtype=np.uint64)[:, None]
    shifts = np.arange(n, dtype=np.uint64)[None, :]
    bits = (idx >> shifts) & np.uint64(1)
    return (1 - 2 * bits.astype(np.int64)).astype(np.int64)


def brute_force_cost_vector(terms: Iterable[tuple[float, Iterable[int]]], n: int) -> np.ndarray:
    """Reference 2^n cost vector computed by direct per-term evaluation.

    This is the slow, obviously-correct counterpart of
    :func:`repro.fur.diagonal.precompute_cost_diagonal` and is used to validate
    it in the test-suite.  Complexity O(2^n · L · order).
    """
    normalized = validate_terms(terms, max(n, 1))
    spins = all_spin_configurations(n)
    costs = np.zeros(1 << n, dtype=np.float64)
    for w, idx in normalized:
        if len(idx) == 0:
            costs += w
        else:
            costs += w * np.prod(spins[:, list(idx)], axis=1)
    return costs


@dataclass(frozen=True)
class TermsPolynomial:
    """Immutable container pairing a term list with its qubit count.

    This is a convenience wrapper used by the problem generators; the
    simulator APIs accept plain ``(weight, indices)`` iterables as well, to
    mirror the paper's Listings 1–3.
    """

    n: int
    terms: tuple[Term, ...]

    def __post_init__(self) -> None:
        normalized = tuple(validate_terms(self.terms, self.n))
        object.__setattr__(self, "terms", normalized)

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_terms(cls, terms: Iterable[tuple[float, Iterable[int]]],
                   n: int | None = None) -> "TermsPolynomial":
        """Build from a raw term iterable; infers ``n`` if not given."""
        normalized = normalize_terms(terms)
        if n is None:
            n = num_variables(normalized)
            if n == 0:
                raise ValueError("cannot infer qubit count from constant-only terms")
        return cls(n=n, terms=tuple(normalized))

    # -- algebra ------------------------------------------------------------
    def simplified(self) -> "TermsPolynomial":
        """Return a copy with duplicate terms merged and zero weights dropped."""
        return TermsPolynomial(self.n, tuple(simplify_terms(self.terms)))

    def __add__(self, other: "TermsPolynomial") -> "TermsPolynomial":
        n = max(self.n, other.n)
        return TermsPolynomial(n, tuple(add_terms(self.terms, other.terms)))

    def __mul__(self, factor: float) -> "TermsPolynomial":
        return TermsPolynomial(self.n, tuple(scale_terms(self.terms, factor)))

    __rmul__ = __mul__

    def __neg__(self) -> "TermsPolynomial":
        return self * -1.0

    # -- queries ------------------------------------------------------------
    @property
    def num_terms(self) -> int:
        """Number of terms (including any constant offset term)."""
        return len(self.terms)

    @property
    def offset(self) -> float:
        """Constant offset of the polynomial."""
        return get_offset(self.terms)

    @property
    def max_order(self) -> int:
        """Largest term order (number of spins in a single term)."""
        return max_term_order(self.terms)

    def evaluate_spins(self, spins: Sequence[int]) -> float:
        """Evaluate on a ±1 spin configuration."""
        return evaluate_terms_on_spins(self.terms, spins)

    def evaluate_index(self, x: int) -> float:
        """Evaluate on basis-state index ``x``."""
        return evaluate_terms_on_index(self.terms, x, self.n)

    def cost_vector(self) -> np.ndarray:
        """Brute-force cost vector (reference path; small ``n`` only)."""
        return brute_force_cost_vector(self.terms, self.n)

    def as_list(self) -> list[Term]:
        """Plain list of ``(weight, indices)`` tuples (paper's ``terms`` argument)."""
        return list(self.terms)
