"""MaxCut problem generators (terms, graphs, reference cut evaluation).

The MaxCut cost function used throughout the paper (Sec. II) is

    f(s) = sum_{(i,j) in E} w_ij/2 * s_i s_j  -  W/2,           W = sum w_ij

which equals ``-cut(s)``: minimizing ``f`` maximizes the cut.  The term list
therefore contains one quadratic term per edge plus a constant offset term.

The benchmark workloads of Fig. 2 use Erdős–Rényi-style *random regular*
graphs (3-regular); Listing 1 of the paper uses a weighted all-to-all
(complete) graph.  Both generators are provided, alongside helpers for
reference cut evaluation used in the tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import networkx as nx
import numpy as np

from .terms import Term, TermsPolynomial, simplify_terms

__all__ = [
    "get_maxcut_terms",
    "maxcut_terms_from_graph",
    "maxcut_polynomial",
    "random_regular_graph",
    "erdos_renyi_graph",
    "complete_graph_terms",
    "cut_value",
    "cut_value_from_index",
    "maxcut_optimal_cut_bruteforce",
    "graph_from_edges",
]


def graph_from_edges(n: int, edges: Iterable[tuple[int, int] | tuple[int, int, float]]) -> nx.Graph:
    """Build a weighted :class:`networkx.Graph` on ``n`` nodes from an edge list.

    Edges may be ``(i, j)`` pairs (weight 1) or ``(i, j, w)`` triples.
    """
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for e in edges:
        if len(e) == 2:
            i, j = e
            w = 1.0
        else:
            i, j, w = e
        if i == j:
            raise ValueError(f"self-loop ({i},{j}) is not a valid MaxCut edge")
        if not (0 <= i < n and 0 <= j < n):
            raise ValueError(f"edge ({i},{j}) out of range for {n} nodes")
        g.add_edge(int(i), int(j), weight=float(w))
    return g


def maxcut_terms_from_graph(graph: nx.Graph, *, include_offset: bool = True) -> list[Term]:
    """Spin-polynomial terms for the MaxCut cost of ``graph``.

    Each edge ``(i, j)`` with weight ``w`` contributes ``(w/2, (i, j))``;
    the constant ``-W/2`` (with ``W`` the total edge weight) is added as an
    offset term when ``include_offset`` is true, so that the polynomial value
    equals minus the cut size.
    """
    terms: list[Term] = []
    total_weight = 0.0
    for i, j, data in graph.edges(data=True):
        w = float(data.get("weight", 1.0))
        total_weight += w
        terms.append((w / 2.0, (int(i), int(j))))
    if include_offset:
        terms.append((-total_weight / 2.0, ()))
    return simplify_terms(terms)


def get_maxcut_terms(graph: nx.Graph | None = None, *,
                     n: int | None = None,
                     edges: Iterable[tuple] | None = None,
                     include_offset: bool = True) -> list[Term]:
    """Convenience wrapper: terms either from a graph or from ``(n, edges)``."""
    if graph is None:
        if n is None or edges is None:
            raise ValueError("provide either a graph or both n and edges")
        graph = graph_from_edges(n, edges)
    return maxcut_terms_from_graph(graph, include_offset=include_offset)


def maxcut_polynomial(graph: nx.Graph, *, include_offset: bool = True) -> TermsPolynomial:
    """:class:`TermsPolynomial` wrapper around :func:`maxcut_terms_from_graph`."""
    n = graph.number_of_nodes()
    return TermsPolynomial(n, tuple(maxcut_terms_from_graph(graph, include_offset=include_offset)))


def random_regular_graph(degree: int, n: int, seed: int | None = None,
                         *, weighted: bool = False,
                         weight_low: float = 0.0, weight_high: float = 1.0) -> nx.Graph:
    """Random ``degree``-regular graph on ``n`` nodes (Fig. 2 workload).

    With ``weighted=True`` edge weights are drawn uniformly from
    ``[weight_low, weight_high)`` using the same seed.
    """
    if degree >= n:
        raise ValueError(f"degree {degree} must be smaller than n={n}")
    if (degree * n) % 2 != 0:
        raise ValueError(f"degree*n must be even, got degree={degree}, n={n}")
    g = nx.random_regular_graph(degree, n, seed=seed)
    g = nx.convert_node_labels_to_integers(g)
    rng = np.random.default_rng(seed)
    for i, j in g.edges():
        g[i][j]["weight"] = float(rng.uniform(weight_low, weight_high)) if weighted else 1.0
    return g


def erdos_renyi_graph(n: int, probability: float, seed: int | None = None,
                      *, weighted: bool = False) -> nx.Graph:
    """Erdős–Rényi ``G(n, p)`` graph with optional uniform random weights."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"edge probability must lie in [0, 1], got {probability}")
    g = nx.gnp_random_graph(n, probability, seed=seed)
    g.add_nodes_from(range(n))
    rng = np.random.default_rng(seed)
    for i, j in g.edges():
        g[i][j]["weight"] = float(rng.uniform()) if weighted else 1.0
    return g


def complete_graph_terms(n: int, weight: float = 1.0, *, include_offset: bool = False) -> list[Term]:
    """Terms for weighted all-to-all MaxCut, as in Listing 1 of the paper.

    With ``include_offset=False`` this reproduces the Listing 1 term list
    exactly: ``[(weight, (i, j)) for i < j]`` (no constant term).
    """
    if n < 2:
        raise ValueError("complete graph MaxCut needs at least 2 nodes")
    terms: list[Term] = [(float(weight), (i, j)) for i in range(n) for j in range(i + 1, n)]
    if include_offset:
        total = weight * n * (n - 1) / 2.0
        terms.append((-total / 2.0, ()))
        # halve edge weights so the value equals -cut, matching maxcut_terms_from_graph
        terms = [(w / 2.0 if idx else w, idx) for w, idx in terms[:-1]] + [terms[-1]]
    return simplify_terms(terms)


def cut_value(graph: nx.Graph, bits: Sequence[int]) -> float:
    """Weighted cut size of the partition encoded by a 0/1 assignment."""
    bits = list(bits)
    total = 0.0
    for i, j, data in graph.edges(data=True):
        if bits[i] != bits[j]:
            total += float(data.get("weight", 1.0))
    return total


def cut_value_from_index(graph: nx.Graph, x: int) -> float:
    """Weighted cut size for basis-state index ``x`` (little-endian bits)."""
    n = graph.number_of_nodes()
    bits = [(x >> q) & 1 for q in range(n)]
    return cut_value(graph, bits)


def maxcut_optimal_cut_bruteforce(graph: nx.Graph) -> tuple[float, int]:
    """Exhaustive optimal cut ``(value, argmax index)``; small graphs only."""
    n = graph.number_of_nodes()
    if n > 22:
        raise ValueError("brute-force MaxCut refused for n > 22")
    best_val, best_x = -1.0, 0
    # Vectorized: accumulate cut indicator per edge over all assignments.
    idx = np.arange(1 << n, dtype=np.uint64)
    total = np.zeros(1 << n, dtype=np.float64)
    for i, j, data in graph.edges(data=True):
        w = float(data.get("weight", 1.0))
        bi = (idx >> np.uint64(i)) & np.uint64(1)
        bj = (idx >> np.uint64(j)) & np.uint64(1)
        total += w * (bi != bj)
    best_x = int(np.argmax(total))
    best_val = float(total[best_x])
    return best_val, best_x
