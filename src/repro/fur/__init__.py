"""Fast QAOA simulators exploiting the precomputed diagonal cost operator.

This package is the reproduction of the paper's core contribution (QOKit's
``qokit.fur``).  It exposes

* :class:`~repro.fur.base.QAOAFastSimulatorBase` — the low-level simulation
  API shared by all backends (including batched evaluation,
  ``simulate_qaoa_batch``);
* the backend simulator families (``python``, ``c``, ``gpu``, ``gpumpi``,
  ``cusvmpi``, ``gates``, ``tensornet``), one class per mixer type per
  backend;
* the backend registry (:mod:`repro.fur.registry`): every family registers
  itself with capability metadata (supported mixers, device class,
  distributed-ness, capability tier, ``auto`` priority), and
  :func:`repro.simulator` / :func:`get_backend` /
  :func:`get_simulator_class` resolve names, aliases and capabilities
  through it — including the tier (``full`` vs ``expectation-only``), so an
  amplitude-less family like tensornet is constructible by name but never
  chosen for a statevector-shaped request;
* the process-wide diagonal cache (:mod:`repro.fur.cache`): repeated
  construction for the same problem reuses the precomputed cost vector.
"""

from __future__ import annotations

from .base import (
    DEFAULT_BATCH_MEMORY_BUDGET,
    QAOAFastSimulatorBase,
    batch_block_rows,
    dicke_state,
    uniform_superposition,
)
from .precision import (
    KNOWN_PRECISIONS,
    PrecisionSpec,
    resolve_precision,
)
from .cache import (
    DiagonalCache,
    cached_cost_diagonal,
    diagonal_cache,
    problem_fingerprint,
)
from .diagonal import (
    CompressedDiagonal,
    DiagonalPhaseTable,
    build_phase_table,
    compress_diagonal,
    diagonal_memory_bytes,
    diagonal_memory_overhead,
    precompute_cost_diagonal,
    precompute_cost_diagonal_from_function,
    precompute_cost_diagonal_slice,
)
from .capabilities import (
    CAPABILITY_OPERATIONS,
    CAPABILITY_TIERS,
    UnsupportedCapabilityError,
    require_capability,
    resolve_capability_tier,
    tier_supports,
)
from .registry import (
    ENTRY_POINT_GROUP,
    BackendRegistry,
    BackendSpec,
    UnsupportedBackendKwargError,
    available_backends,
    get_backend,
    get_simulator_class,
    load_entry_point_backends,
    register_backend,
    registry,
    simulator,
)
from .engine import (
    ExecutionEngine,
    ExecutionPlan,
    EngineStats,
    ExpectationOp,
    FusedMixerExpectationOp,
    FusedPhaseMixerOp,
    InitialPhaseOp,
    KernelProvider,
    MergedMixerOp,
    MergedPhaseOp,
    MixerOp,
    PhaseOp,
)
from .rewrite import (
    DEFAULT_PASSES,
    OPTIMIZE_LEVELS,
    STRUCTURAL_PASSES,
    CoalesceExchanges,
    EliminateNoOps,
    FoldInitialPhase,
    FuseMixerIntoExpectation,
    FusePhaseIntoMixer,
    ReorderCommuting,
    RewritePass,
    RewriteReport,
    resolve_optimize,
    run_passes,
)
from .costmodel import (
    PlanCostModel,
    order_structural_passes,
)
from .cvect import (
    QAOAFURXSimulatorC,
    QAOAFURXYCompleteSimulatorC,
    QAOAFURXYRingSimulatorC,
)
from .python import (
    QAOAFURXSimulator,
    QAOAFURXYCompleteSimulator,
    QAOAFURXYRingSimulator,
)

__all__ = [
    "QAOAFastSimulatorBase",
    "uniform_superposition",
    "dicke_state",
    "batch_block_rows",
    "DEFAULT_BATCH_MEMORY_BUDGET",
    "PrecisionSpec",
    "resolve_precision",
    "KNOWN_PRECISIONS",
    "CompressedDiagonal",
    "compress_diagonal",
    "DiagonalPhaseTable",
    "build_phase_table",
    "precompute_cost_diagonal",
    "precompute_cost_diagonal_slice",
    "precompute_cost_diagonal_from_function",
    "diagonal_memory_bytes",
    "diagonal_memory_overhead",
    "DiagonalCache",
    "diagonal_cache",
    "cached_cost_diagonal",
    "problem_fingerprint",
    "QAOAFURXSimulator",
    "QAOAFURXYRingSimulator",
    "QAOAFURXYCompleteSimulator",
    "QAOAFURXSimulatorC",
    "QAOAFURXYRingSimulatorC",
    "QAOAFURXYCompleteSimulatorC",
    "BackendRegistry",
    "BackendSpec",
    "registry",
    "register_backend",
    "get_backend",
    "get_simulator_class",
    "simulator",
    "available_backends",
    "load_entry_point_backends",
    "ENTRY_POINT_GROUP",
    "ExecutionEngine",
    "ExecutionPlan",
    "EngineStats",
    "KernelProvider",
    "PhaseOp",
    "InitialPhaseOp",
    "MergedPhaseOp",
    "MixerOp",
    "MergedMixerOp",
    "FusedPhaseMixerOp",
    "FusedMixerExpectationOp",
    "ExpectationOp",
    "OPTIMIZE_LEVELS",
    "resolve_optimize",
    "RewritePass",
    "RewriteReport",
    "FusePhaseIntoMixer",
    "CoalesceExchanges",
    "EliminateNoOps",
    "FoldInitialPhase",
    "FuseMixerIntoExpectation",
    "ReorderCommuting",
    "DEFAULT_PASSES",
    "STRUCTURAL_PASSES",
    "run_passes",
    "PlanCostModel",
    "order_structural_passes",
    "CAPABILITY_TIERS",
    "CAPABILITY_OPERATIONS",
    "UnsupportedBackendKwargError",
    "UnsupportedCapabilityError",
    "require_capability",
    "resolve_capability_tier",
    "tier_supports",
    "SIMULATORS",
]


# ---------------------------------------------------------------------------
# Built-in backend registrations.  CPU families are imported eagerly above;
# the simulated-GPU and distributed families stay lazy so a missing optional
# dependency never breaks `import repro`.
# ---------------------------------------------------------------------------

@register_backend("c", aliases=("cpu",), mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer", "fold-initial-phase",
                                 "fuse-mixer-expectation", "reorder-commuting"),
                  priority=100,
                  constructor_kwargs=("block_size", "precision", "optimize"),
                  description="cache-blocked, allocation-free CPU kernels")
def _load_c_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    return {
        "x": QAOAFURXSimulatorC,
        "xyring": QAOAFURXYRingSimulatorC,
        "xycomplete": QAOAFURXYCompleteSimulatorC,
    }


@register_backend("python", aliases=("numpy",), mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer", "fold-initial-phase",
                                 "fuse-mixer-expectation", "reorder-commuting"),
                  priority=50,
                  constructor_kwargs=("precision", "optimize"),
                  description="portable NumPy reference implementation")
def _load_python_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    return {
        "x": QAOAFURXSimulator,
        "xyring": QAOAFURXYRingSimulator,
        "xycomplete": QAOAFURXYCompleteSimulator,
    }


def _jit_describe_extra() -> str:
    """Runtime-state line for ``describe()``: live path + thread count."""
    from .jit import kernels

    path = kernels.active_path()
    note = ""
    if path == "cc" and kernels.compiler_info():
        note = f" compiler={kernels.compiler_info()}"
    return (f"path={path} threads={kernels.effective_num_threads()}{note} "
            f"(REPRO_NUM_THREADS/REPRO_JIT_PATH honored)")


def _jit_dynamic_priority() -> int:
    """``auto`` rank of the jit tier: above ``c`` only when compiled.

    ``active_path()`` is a cheap cached probe of the numba → compiled-C →
    numpy fallback ladder.  With a compiled path live the fused single-pass
    kernels beat every other CPU family, so jit outranks ``c`` (100); on the
    numpy delegation rung it keeps its static rank below ``c`` — numpy
    delegation is just the python kernels with extra indirection.
    """
    from .jit import kernels

    return 150 if kernels.active_path() != "numpy" else 60


@register_backend("jit", aliases=("numba",), mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer", "fold-initial-phase",
                                 "fuse-mixer-expectation", "reorder-commuting"),
                  priority=60,
                  dynamic_priority=_jit_dynamic_priority,
                  constructor_kwargs=("precision", "optimize"),
                  description="single-pass cache-blocked fused kernels "
                              "(numba; compiled-C/numpy fallback ladder)",
                  describe_extra=_jit_describe_extra)
def _load_jit_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .jit import (
        QAOAFURXSimulatorJIT,
        QAOAFURXYCompleteSimulatorJIT,
        QAOAFURXYRingSimulatorJIT,
    )

    return {
        "x": QAOAFURXSimulatorJIT,
        "xyring": QAOAFURXYRingSimulatorJIT,
        "xycomplete": QAOAFURXYCompleteSimulatorJIT,
    }


def _sharded_describe_extra() -> str:
    """Runtime-state line for ``describe()``: shard/worker/inner resolution."""
    from .sharded import shard_report

    return shard_report()


@register_backend("sharded", aliases=("multidevice",),
                  mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer", "fold-initial-phase",
                                 "coalesce-exchanges", "reorder-commuting"),
                  priority=40,
                  constructor_kwargs=("n_shards", "n_workers", "inner",
                                      "block_size", "precision", "optimize"),
                  description="in-process sharded backend: global/local qubit "
                              "slabs, worker pool, coalesced slab swaps",
                  describe_extra=_sharded_describe_extra)
def _load_sharded_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .sharded import (
        QAOAFURXSimulatorSharded,
        QAOAFURXYCompleteSimulatorSharded,
        QAOAFURXYRingSimulatorSharded,
    )

    return {
        "x": QAOAFURXSimulatorSharded,
        "xyring": QAOAFURXYRingSimulatorSharded,
        "xycomplete": QAOAFURXYCompleteSimulatorSharded,
    }


@register_backend("gpu", aliases=("nbcuda",), mixers=("x", "xyring", "xycomplete"),
                  device="gpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer",), priority=30,
                  constructor_kwargs=("device", "device_spec", "block_size",
                                      "precision", "optimize"),
                  description="simulated-GPU backend (numba-CUDA analogue)")
def _load_gpu_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .simgpu import (
        QAOAFURXSimulatorGPU,
        QAOAFURXYCompleteSimulatorGPU,
        QAOAFURXYRingSimulatorGPU,
    )

    return {
        "x": QAOAFURXSimulatorGPU,
        "xyring": QAOAFURXYRingSimulatorGPU,
        "xycomplete": QAOAFURXYCompleteSimulatorGPU,
    }


@register_backend("gpumpi", mixers=("x",), device="gpu", distributed=True,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer", "coalesce-exchanges"),
                  priority=20,
                  constructor_kwargs=("n_ranks", "alltoall_algorithm", "block_size",
                                      "parallel_local", "precision", "optimize"),
                  description="distributed GPU backend (custom Alltoall, Algorithm 4)")
def _load_gpumpi_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .mpi import QAOAFURXSimulatorGPUMPI

    return {"x": QAOAFURXSimulatorGPUMPI}


@register_backend("cusvmpi", aliases=("custatevec",), mixers=("x",), device="gpu",
                  distributed=True, precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer",), priority=10,
                  constructor_kwargs=("n_ranks", "block_size", "parallel_local",
                                      "precision", "optimize"),
                  description="distributed index-bit-swap backend (cuStateVec analogue)")
def _load_cusvmpi_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .mpi import QAOAFURXSimulatorCUSVMPI

    return {"x": QAOAFURXSimulatorCUSVMPI}


@register_backend("gates", aliases=("statevector",),
                  mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("reorder-commuting",), priority=5,
                  constructor_kwargs=("mixer", "phase_strategy", "dtype",
                                      "precision", "optimize"),
                  description="gate-by-gate state-vector baseline "
                              "(Qiskit/cuStateVec analogue)")
def _load_gates_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from ..gates.qaoa import (
        QAOAGateBasedXSimulator,
        QAOAGateBasedXYCompleteSimulator,
        QAOAGateBasedXYRingSimulator,
    )

    return {
        "x": QAOAGateBasedXSimulator,
        "xyring": QAOAGateBasedXYRingSimulator,
        "xycomplete": QAOAGateBasedXYCompleteSimulator,
    }


@register_backend("tensornet", aliases=("tn",), mixers=("x",),
                  device="cpu", distributed=False,
                  precisions=("double",),
                  capabilities="expectation-only",
                  plan_rewrites=("reorder-commuting",), priority=1,
                  constructor_kwargs=("precision", "optimize", "width_heuristic"),
                  description="tensor-network contraction baseline "
                              "(expectation-only; cuTensorNet/QTensor analogue)")
def _load_tensornet_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from ..tensornet.backend import QAOATensorNetworkSimulator

    return {"x": QAOATensorNetworkSimulator}


# ---------------------------------------------------------------------------
# Backwards-compatible views of the registry.
# ---------------------------------------------------------------------------

def __getattr__(name: str):
    # Legacy registry views, computed on access so backends registered (or
    # unregistered) after import time stay visible.  New code should use
    # :data:`registry` instead.
    if name == "SIMULATORS":
        # backend name -> loader returning mixer -> class (the v1.0 shape)
        return {n: registry.spec(n).load for n in registry.names()}
    if name == "_ALIASES":
        # alias -> canonical name; ``auto`` is handled by the registry's
        # priority-based resolution rather than a hard-wired alias.
        return registry.aliases()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# Third-party backends advertised through the ``repro.fur.backends``
# entry-point group register after the built-ins (a plugin clashing with a
# built-in name is skipped with a warning, never the other way around).
# This runs last so a plugin's spec-carrier module importing ``repro.fur``
# sees the fully-initialized module.
load_entry_point_backends()
