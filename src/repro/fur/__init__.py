"""Fast QAOA simulators exploiting the precomputed diagonal cost operator.

This package is the reproduction of the paper's core contribution (QOKit's
``qokit.fur``).  It exposes

* :class:`~repro.fur.base.QAOAFastSimulatorBase` — the low-level simulation
  API shared by all backends (including batched evaluation,
  ``simulate_qaoa_batch``);
* the backend simulator families (``python``, ``c``, ``gpu``, ``gpumpi``,
  ``cusvmpi``), one class per mixer type per backend;
* the backend registry (:mod:`repro.fur.registry`): every family registers
  itself with capability metadata (supported mixers, device class,
  distributed-ness, ``auto`` priority), and :func:`repro.simulator` /
  :func:`get_backend` / :func:`get_simulator_class` resolve names, aliases
  and capabilities through it;
* the process-wide diagonal cache (:mod:`repro.fur.cache`): repeated
  construction for the same problem reuses the precomputed cost vector;
* the legacy ``choose_simulator*`` helpers from the paper's Listings 1–3,
  kept as thin deprecated wrappers over the registry.
"""

from __future__ import annotations

import warnings

from .base import (
    DEFAULT_BATCH_MEMORY_BUDGET,
    QAOAFastSimulatorBase,
    batch_block_rows,
    dicke_state,
    uniform_superposition,
)
from .precision import (
    KNOWN_PRECISIONS,
    PrecisionSpec,
    resolve_precision,
)
from .cache import (
    DiagonalCache,
    cached_cost_diagonal,
    diagonal_cache,
    problem_fingerprint,
)
from .diagonal import (
    CompressedDiagonal,
    DiagonalPhaseTable,
    build_phase_table,
    compress_diagonal,
    diagonal_memory_bytes,
    diagonal_memory_overhead,
    precompute_cost_diagonal,
    precompute_cost_diagonal_from_function,
    precompute_cost_diagonal_slice,
)
from .registry import (
    ENTRY_POINT_GROUP,
    BackendRegistry,
    BackendSpec,
    available_backends,
    get_backend,
    get_simulator_class,
    load_entry_point_backends,
    register_backend,
    registry,
    simulator,
)
from .engine import (
    ExecutionEngine,
    ExecutionPlan,
    EngineStats,
    ExpectationOp,
    FusedPhaseMixerOp,
    KernelProvider,
    MixerOp,
    PhaseOp,
)
from .rewrite import (
    DEFAULT_PASSES,
    OPTIMIZE_LEVELS,
    CoalesceExchanges,
    EliminateNoOps,
    FusePhaseIntoMixer,
    RewritePass,
    RewriteReport,
    resolve_optimize,
    run_passes,
)
from .cvect import (
    QAOAFURXSimulatorC,
    QAOAFURXYCompleteSimulatorC,
    QAOAFURXYRingSimulatorC,
)
from .python import (
    QAOAFURXSimulator,
    QAOAFURXYCompleteSimulator,
    QAOAFURXYRingSimulator,
)

__all__ = [
    "QAOAFastSimulatorBase",
    "uniform_superposition",
    "dicke_state",
    "batch_block_rows",
    "DEFAULT_BATCH_MEMORY_BUDGET",
    "PrecisionSpec",
    "resolve_precision",
    "KNOWN_PRECISIONS",
    "CompressedDiagonal",
    "compress_diagonal",
    "DiagonalPhaseTable",
    "build_phase_table",
    "precompute_cost_diagonal",
    "precompute_cost_diagonal_slice",
    "precompute_cost_diagonal_from_function",
    "diagonal_memory_bytes",
    "diagonal_memory_overhead",
    "DiagonalCache",
    "diagonal_cache",
    "cached_cost_diagonal",
    "problem_fingerprint",
    "QAOAFURXSimulator",
    "QAOAFURXYRingSimulator",
    "QAOAFURXYCompleteSimulator",
    "QAOAFURXSimulatorC",
    "QAOAFURXYRingSimulatorC",
    "QAOAFURXYCompleteSimulatorC",
    "BackendRegistry",
    "BackendSpec",
    "registry",
    "register_backend",
    "get_backend",
    "get_simulator_class",
    "simulator",
    "available_backends",
    "load_entry_point_backends",
    "ENTRY_POINT_GROUP",
    "ExecutionEngine",
    "ExecutionPlan",
    "EngineStats",
    "KernelProvider",
    "PhaseOp",
    "MixerOp",
    "FusedPhaseMixerOp",
    "ExpectationOp",
    "OPTIMIZE_LEVELS",
    "resolve_optimize",
    "RewritePass",
    "RewriteReport",
    "FusePhaseIntoMixer",
    "CoalesceExchanges",
    "EliminateNoOps",
    "DEFAULT_PASSES",
    "run_passes",
    "SIMULATORS",
    "choose_simulator",
    "choose_simulator_xyring",
    "choose_simulator_xycomplete",
]


# ---------------------------------------------------------------------------
# Built-in backend registrations.  CPU families are imported eagerly above;
# the simulated-GPU and distributed families stay lazy so a missing optional
# dependency never breaks `import repro`.
# ---------------------------------------------------------------------------

@register_backend("c", aliases=("cpu",), mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer",), priority=100,
                  description="cache-blocked, allocation-free CPU kernels")
def _load_c_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    return {
        "x": QAOAFURXSimulatorC,
        "xyring": QAOAFURXYRingSimulatorC,
        "xycomplete": QAOAFURXYCompleteSimulatorC,
    }


@register_backend("python", aliases=("numpy",), mixers=("x", "xyring", "xycomplete"),
                  device="cpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer",), priority=50,
                  description="portable NumPy reference implementation")
def _load_python_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    return {
        "x": QAOAFURXSimulator,
        "xyring": QAOAFURXYRingSimulator,
        "xycomplete": QAOAFURXYCompleteSimulator,
    }


@register_backend("gpu", aliases=("nbcuda",), mixers=("x", "xyring", "xycomplete"),
                  device="gpu", distributed=False,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer",), priority=30,
                  description="simulated-GPU backend (numba-CUDA analogue)")
def _load_gpu_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .simgpu import (
        QAOAFURXSimulatorGPU,
        QAOAFURXYCompleteSimulatorGPU,
        QAOAFURXYRingSimulatorGPU,
    )

    return {
        "x": QAOAFURXSimulatorGPU,
        "xyring": QAOAFURXYRingSimulatorGPU,
        "xycomplete": QAOAFURXYCompleteSimulatorGPU,
    }


@register_backend("gpumpi", mixers=("x",), device="gpu", distributed=True,
                  precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer", "coalesce-exchanges"),
                  priority=20,
                  description="distributed GPU backend (custom Alltoall, Algorithm 4)")
def _load_gpumpi_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .mpi import QAOAFURXSimulatorGPUMPI

    return {"x": QAOAFURXSimulatorGPUMPI}


@register_backend("cusvmpi", aliases=("custatevec",), mixers=("x",), device="gpu",
                  distributed=True, precisions=("double", "single"),
                  plan_rewrites=("fuse-phase-mixer",), priority=10,
                  description="distributed index-bit-swap backend (cuStateVec analogue)")
def _load_cusvmpi_backend() -> dict[str, type[QAOAFastSimulatorBase]]:
    from .mpi import QAOAFURXSimulatorCUSVMPI

    return {"x": QAOAFURXSimulatorCUSVMPI}


# ---------------------------------------------------------------------------
# Backwards-compatible views of the registry.
# ---------------------------------------------------------------------------

def __getattr__(name: str):
    # Legacy registry views, computed on access so backends registered (or
    # unregistered) after import time stay visible.  New code should use
    # :data:`registry` instead.
    if name == "SIMULATORS":
        # backend name -> loader returning mixer -> class (the v1.0 shape)
        return {n: registry.spec(n).load for n in registry.names()}
    if name == "_ALIASES":
        # alias -> canonical name; ``auto`` is handled by the registry's
        # priority-based resolution rather than a hard-wired alias.
        return registry.aliases()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _deprecated_chooser(mixer: str, name: str,
                        replacement: str) -> type[QAOAFastSimulatorBase]:
    warnings.warn(
        f"choose_simulator{'_' + mixer if mixer != 'x' else ''}() is deprecated; "
        f"use {replacement} (or repro.simulator(..., backend={name!r}, "
        f"mixer={mixer!r})) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return registry.simulator_class(name, mixer)


def choose_simulator(name: str = "auto") -> type[QAOAFastSimulatorBase]:
    """Deprecated: pick a transverse-field-mixer simulator class by name.

    Mirrors ``qokit.fur.choose_simulator`` (Listing 1) and remains for
    compatibility with the paper's listings; it now resolves through the
    backend registry.  Use ``repro.fur.get_simulator_class(name)`` or the
    ``repro.simulator(...)`` facade instead.
    """
    return _deprecated_chooser("x", name, "repro.fur.get_simulator_class(name)")


def choose_simulator_xyring(name: str = "auto") -> type[QAOAFastSimulatorBase]:
    """Deprecated: ring-XY-mixer analogue of :func:`choose_simulator` (Listing 2)."""
    return _deprecated_chooser("xyring", name,
                               "repro.fur.get_simulator_class(name, mixer='xyring')")


def choose_simulator_xycomplete(name: str = "auto") -> type[QAOAFastSimulatorBase]:
    """Deprecated: complete-graph-XY analogue of :func:`choose_simulator` (Listing 2)."""
    return _deprecated_chooser("xycomplete", name,
                               "repro.fur.get_simulator_class(name, mixer='xycomplete')")


# Third-party backends advertised through the ``repro.fur.backends``
# entry-point group register after the built-ins (a plugin clashing with a
# built-in name is skipped with a warning, never the other way around).
# This runs last so a plugin's spec-carrier module importing ``repro.fur``
# sees the fully-initialized module, legacy chooser helpers included.
load_entry_point_backends()
