"""Fast QAOA simulators exploiting the precomputed diagonal cost operator.

This package is the reproduction of the paper's core contribution (QOKit's
``qokit.fur``).  It exposes

* :class:`~repro.fur.base.QAOAFastSimulatorBase` — the low-level simulation
  API shared by all backends;
* the backend simulator families (``python``, ``c``, ``gpu``, ``gpumpi``,
  ``cusvmpi``), one class per mixer type per backend;
* the ``choose_simulator*`` helpers from the paper's Listings 1–3, which pick
  a backend by name (or automatically).
"""

from __future__ import annotations

from collections.abc import Callable

from .base import QAOAFastSimulatorBase, dicke_state, uniform_superposition
from .diagonal import (
    CompressedDiagonal,
    compress_diagonal,
    diagonal_memory_bytes,
    diagonal_memory_overhead,
    precompute_cost_diagonal,
    precompute_cost_diagonal_from_function,
    precompute_cost_diagonal_slice,
)
from .cvect import (
    QAOAFURXSimulatorC,
    QAOAFURXYCompleteSimulatorC,
    QAOAFURXYRingSimulatorC,
)
from .python import (
    QAOAFURXSimulator,
    QAOAFURXYCompleteSimulator,
    QAOAFURXYRingSimulator,
)

__all__ = [
    "QAOAFastSimulatorBase",
    "uniform_superposition",
    "dicke_state",
    "CompressedDiagonal",
    "compress_diagonal",
    "precompute_cost_diagonal",
    "precompute_cost_diagonal_slice",
    "precompute_cost_diagonal_from_function",
    "diagonal_memory_bytes",
    "diagonal_memory_overhead",
    "QAOAFURXSimulator",
    "QAOAFURXYRingSimulator",
    "QAOAFURXYCompleteSimulator",
    "QAOAFURXSimulatorC",
    "QAOAFURXYRingSimulatorC",
    "QAOAFURXYCompleteSimulatorC",
    "SIMULATORS",
    "choose_simulator",
    "choose_simulator_xyring",
    "choose_simulator_xycomplete",
    "available_backends",
]


def _load_gpu_simulators() -> dict[str, type[QAOAFastSimulatorBase]]:
    """Import the simulated-GPU backend lazily (it is optional at import time)."""
    from .simgpu import (
        QAOAFURXSimulatorGPU,
        QAOAFURXYCompleteSimulatorGPU,
        QAOAFURXYRingSimulatorGPU,
    )

    return {
        "x": QAOAFURXSimulatorGPU,
        "xyring": QAOAFURXYRingSimulatorGPU,
        "xycomplete": QAOAFURXYCompleteSimulatorGPU,
    }


def _load_mpi_simulators(kind: str) -> dict[str, type[QAOAFastSimulatorBase]]:
    """Import a distributed backend lazily.

    ``kind`` is ``"gpumpi"`` (custom Alltoall communication, Algorithm 4) or
    ``"cusvmpi"`` (distributed index-bit-swap communication).  The distributed
    backends implement the transverse-field mixer only, matching the paper's
    large-scale LABS runs.
    """
    from .mpi import QAOAFURXSimulatorCUSVMPI, QAOAFURXSimulatorGPUMPI

    if kind == "gpumpi":
        return {"x": QAOAFURXSimulatorGPUMPI}
    return {"x": QAOAFURXSimulatorCUSVMPI}


#: Registry of backend name -> mixer name -> simulator class factory.
SIMULATORS: dict[str, Callable[[], dict[str, type[QAOAFastSimulatorBase]]]] = {
    "python": lambda: {
        "x": QAOAFURXSimulator,
        "xyring": QAOAFURXYRingSimulator,
        "xycomplete": QAOAFURXYCompleteSimulator,
    },
    "c": lambda: {
        "x": QAOAFURXSimulatorC,
        "xyring": QAOAFURXYRingSimulatorC,
        "xycomplete": QAOAFURXYCompleteSimulatorC,
    },
    "gpu": _load_gpu_simulators,
    "gpumpi": lambda: _load_mpi_simulators("gpumpi"),
    "cusvmpi": lambda: _load_mpi_simulators("cusvmpi"),
}

#: Aliases accepted by ``choose_simulator(name=...)``.
_ALIASES = {
    "auto": "c",
    "numpy": "python",
    "nbcuda": "gpu",
    "custatevec": "cusvmpi",
}


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return list(SIMULATORS)


def _choose(mixer: str, name: str = "auto") -> type[QAOAFastSimulatorBase]:
    backend = _ALIASES.get(name, name)
    if backend not in SIMULATORS:
        raise ValueError(
            f"unknown simulator backend {name!r}; available: {sorted(SIMULATORS) + sorted(_ALIASES)}"
        )
    family = SIMULATORS[backend]()
    if mixer not in family:
        raise ValueError(
            f"backend {backend!r} does not implement the {mixer!r} mixer "
            f"(available mixers: {sorted(family)})"
        )
    return family[mixer]


def choose_simulator(name: str = "auto") -> type[QAOAFastSimulatorBase]:
    """Pick a transverse-field-mixer simulator class by backend name.

    Mirrors ``qokit.fur.choose_simulator`` (Listing 1).  ``name='auto'``
    selects the fastest locally available backend (the blocked ``c`` CPU
    simulator in this environment); explicit names are ``python``, ``c``,
    ``gpu``, ``gpumpi`` and ``cusvmpi``.
    """
    return _choose("x", name)


def choose_simulator_xyring(name: str = "auto") -> type[QAOAFastSimulatorBase]:
    """Pick a ring-XY-mixer simulator class by backend name (Listing 2 analogue)."""
    return _choose("xyring", name)


def choose_simulator_xycomplete(name: str = "auto") -> type[QAOAFastSimulatorBase]:
    """Pick a complete-graph-XY-mixer simulator class by backend name (Listing 2)."""
    return _choose("xycomplete", name)
