"""Abstract base class shared by all fast QAOA simulator backends.

The paper's low-level simulation API (Sec. IV) is defined by the abstract
class ``qokit.fur.QAOAFastSimulatorBase``; this module is its counterpart.
The contract:

* the constructor receives the problem either as polynomial ``terms`` or as a
  precomputed ``costs`` diagonal, and performs (or ingests) the
  precomputation once;
* ``simulate_qaoa(gammas, betas)`` evolves the initial state through ``p``
  QAOA layers and returns a backend-specific *result* object (the evolved
  state in whatever memory space the backend uses);
* the ``get_*`` output methods accept the result object and always return CPU
  (NumPy) values, so user code is portable across backends, as emphasized in
  Listings 1–3 of the paper.

Backends differ in where the state vector lives (host NumPy array, simulated
GPU device array, per-rank slices on the virtual cluster) and in how the mixer
kernels are executed; they share the phase-operator and objective-evaluation
logic, which is where the precomputed diagonal is reused.

Batched evaluation (``simulate_qaoa_batch`` / ``get_expectation_batch``) is
orchestrated entirely by the shared execution engine
(:mod:`repro.fur.engine`): backends that implement the
:class:`~repro.fur.engine.KernelProvider` protocol get the fused
block-evolution path, everyone else the looped fallback.  The provider hooks
(``_stage_block``, ``_apply_phase_block``, ``_apply_mixer_block``,
``_block_expectations``, ...) declared here are the entire per-backend
surface of that engine.
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from ..problems.terms import Term, validate_terms
from .cache import cached_cost_diagonal
from .diagonal import CompressedDiagonal, DiagonalPhaseTable, build_phase_table
from .precision import PrecisionSpec, resolve_precision
from .rewrite import resolve_optimize

__all__ = [
    "QAOAFastSimulatorBase",
    "uniform_superposition",
    "dicke_state",
    "validate_angles",
    "validate_angle_batches",
    "batch_block_rows",
    "DEFAULT_BATCH_MEMORY_BUDGET",
    "MAX_STATE_BYTES",
]


def _readonly_view(arr: np.ndarray) -> np.ndarray:
    """A non-writeable view of ``arr`` (the array itself is left untouched)."""
    if not arr.flags.writeable:
        return arr
    view = arr.view()
    view.flags.writeable = False
    return view

#: Default memory budget (bytes) for the fused batch engines: the scratch a
#: backend may spend on ``(B, 2^n)`` state blocks per sub-batch.  Larger
#: batches are transparently split into sub-batches that fit the budget.
DEFAULT_BATCH_MEMORY_BUDGET: int = 1 << 28  # 256 MiB

#: Largest state vector any backend will attempt, in bytes (256 GiB — the
#: historical n=34 complex128 ceiling).  Expressed in bytes rather than
#: qubits so single precision buys exactly one extra qubit, the "double the
#: problem size in the same memory" direction of the paper.
MAX_STATE_BYTES: int = 1 << 38


def batch_block_rows(batch_size: int, n_states: int,
                     memory_budget: float | None = None, *,
                     blocks: int = 2, itemsize: int = 16) -> int:
    """Rows of a ``(B, 2^n)`` complex block that fit the fused-batch budget.

    ``blocks`` is the number of full-width complex blocks the engine
    materializes simultaneously (e.g. 2 for a state block plus a ping-pong
    scratch) and ``itemsize`` the bytes per amplitude (16 for complex128,
    8 for complex64 — single precision fits twice the rows in the same
    budget).  Always returns at least 1 — a single schedule must be
    simulable regardless of the budget — and never more than ``batch_size``.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    if itemsize <= 0:
        raise ValueError("itemsize must be positive")
    budget = DEFAULT_BATCH_MEMORY_BUDGET if memory_budget is None else float(memory_budget)
    if budget <= 0:
        raise ValueError("memory_budget must be positive")
    bytes_per_row = itemsize * n_states * blocks
    rows = int(budget // bytes_per_row)
    return max(1, min(int(batch_size), rows))


def uniform_superposition(n_qubits: int, dtype: np.dtype | type = np.complex128) -> np.ndarray:
    """The |+>^n initial state: every amplitude equal to 2^{-n/2}."""
    if n_qubits <= 0:
        raise ValueError("n_qubits must be positive")
    size = 1 << n_qubits
    sv = np.empty(size, dtype=dtype)
    sv.fill(1.0 / np.sqrt(size))
    return sv


def dicke_state(n_qubits: int, hamming_weight: int,
                dtype: np.dtype | type = np.complex128) -> np.ndarray:
    """Uniform superposition over all basis states of fixed Hamming weight.

    This is the natural initial state for the Hamming-weight-preserving XY
    mixers (e.g. the portfolio budget constraint): the XY mixer never leaves
    the weight sector the initial state occupies.
    """
    if not 0 <= hamming_weight <= n_qubits:
        raise ValueError(f"hamming weight {hamming_weight} out of range for n={n_qubits}")
    size = 1 << n_qubits
    idx = np.arange(size, dtype=np.uint64)
    mask = np.bitwise_count(idx) == hamming_weight
    count = int(mask.sum())
    sv = np.zeros(size, dtype=dtype)
    sv[mask] = 1.0 / np.sqrt(count)
    return sv


def validate_angles(gammas: Sequence[float] | np.ndarray,
                    betas: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert QAOA angle vectors; both must have the same length p."""
    g = np.atleast_1d(np.asarray(gammas, dtype=np.float64))
    b = np.atleast_1d(np.asarray(betas, dtype=np.float64))
    if g.ndim != 1 or b.ndim != 1:
        raise ValueError("gamma and beta must be one-dimensional sequences")
    if g.shape[0] != b.shape[0]:
        raise ValueError(
            f"gamma and beta must have the same length, got {g.shape[0]} and {b.shape[0]}"
        )
    if g.shape[0] == 0:
        raise ValueError("at least one QAOA layer is required")
    if not (np.all(np.isfinite(g)) and np.all(np.isfinite(b))):
        raise ValueError("QAOA angles must be finite")
    return g, b


def validate_angle_batches(gammas_batch: Sequence[Sequence[float]] | np.ndarray,
                           betas_batch: Sequence[Sequence[float]] | np.ndarray
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Validate batched QAOA schedules; both must be (batch, p) shaped.

    Accepts ``(B, p)`` arrays or length-``B`` sequences of length-``p``
    schedules; a single 1-D schedule is promoted to a batch of one.
    """
    g = np.atleast_2d(np.asarray(gammas_batch, dtype=np.float64))
    b = np.atleast_2d(np.asarray(betas_batch, dtype=np.float64))
    if g.ndim != 2 or b.ndim != 2:
        raise ValueError("batched angles must be (batch, p) shaped")
    if g.shape != b.shape:
        raise ValueError(
            f"gamma and beta batches must have the same shape, got {g.shape} and {b.shape}"
        )
    if g.shape[0] == 0 or g.shape[1] == 0:
        raise ValueError("angle batches must contain at least one p>=1 schedule")
    if not (np.all(np.isfinite(g)) and np.all(np.isfinite(b))):
        raise ValueError("QAOA angles must be finite")
    return g, b


class QAOAFastSimulatorBase(abc.ABC):
    """Base class of every fast-QAOA simulator backend.

    Parameters
    ----------
    n_qubits:
        Number of qubits ``n``; the state vector has 2^n amplitudes.
    terms:
        Cost polynomial as an iterable of ``(weight, indices)`` pairs.
        Mutually exclusive with ``costs``.
    costs:
        Precomputed cost diagonal (length-2^n array or
        :class:`~repro.fur.diagonal.CompressedDiagonal`).  Passing a
        precomputed diagonal mirrors QOKit's ``costs=`` constructor argument
        and skips the precomputation.
    precision:
        ``"double"`` (complex128 state, the default) or ``"single"``
        (complex64 state with float32 phase diagonals) — see
        :mod:`repro.fur.precision`.  Expectation values are accumulated in
        float64 regardless of the state precision.
    optimize:
        ``"default"`` (the plan-rewrite optimizer passes of
        :mod:`repro.fur.rewrite` transform compiled execution plans — phase
        sweeps fuse into mixer sweeps, distributed exchanges coalesce across
        the batch, zero-angle ops are dropped) or ``"none"`` (plans keep the
        unrewritten op stream).  Per-call overridable on the batched entry
        points; part of the plan-cache key.
    """

    #: human-readable backend name ("python", "c", "gpu", "gpumpi", "cusvmpi")
    backend_name: str = "base"
    #: mixer implemented by this simulator class ("x", "xyring", "xycomplete")
    mixer_name: str = "x"
    #: whether this class implements the execution engine's
    #: :class:`~repro.fur.engine.KernelProvider` protocol — providers get the
    #: fused batched evaluation path; everyone else falls back to the looped
    #: default (still orchestrated by the engine)
    supports_fused_engine: bool = False
    #: whether the mixer consumes a ping-pong scratch block (set by the
    #: gemm-grouped X mixers; XY mixers run in place through the workspace)
    _mixer_needs_scratch: bool = False
    #: whether :meth:`_apply_phase_mixer_block` is implemented — gates the
    #: FusePhaseIntoMixer rewrite (set per mixer class, e.g. X-mixer only)
    supports_fused_phase_mixer: bool = False
    #: whether :meth:`_apply_mixer_block_coalesced` is implemented — gates
    #: the CoalesceExchanges rewrite (the distributed Alltoall family)
    supports_coalesced_exchange: bool = False
    #: capability tier (see :mod:`repro.fur.capabilities`): what request
    #: kinds this simulator family can serve (``"full"``,
    #: ``"expectation-only"`` or ``"amplitude-only"``)
    capability_tier: str = "full"
    #: whether :meth:`_stage_phase_block` is implemented — gates the
    #: FoldInitialPhase rewrite (layer-0 phase written during |+> staging)
    supports_staged_phase: bool = False
    #: whether :meth:`_apply_mixer_expectation_block` is implemented — gates
    #: the FuseMixerIntoExpectation rewrite (final mixer's copy-back skipped,
    #: expectation reduced straight out of the ping-pong buffer)
    supports_fused_mixer_expectation: bool = False
    #: whether this class's mixer commutes with itself at different angles
    #: (exact for X: exp(-iβ₁ΣX)·exp(-iβ₂ΣX) = exp(-i(β₁+β₂)ΣX)) — gates the
    #: mixer-merging half of the ReorderCommuting rewrite
    mixer_self_commutes: bool = False
    #: whether the fused kernels execute a whole layer in one cache-blocked
    #: pass over the block (the ``jit`` tier's X mixer) — the rewrite cost
    #: model then prices mixer sweeps at ~2 streamed passes instead of one
    #: per qubit when ordering the structural passes
    supports_single_pass: bool = False
    #: whether :meth:`_stage_block` accepts a ``(rows, 2^n)`` *per-row*
    #: initial-state block in addition to a shared 1-D ``sv0`` — the batched
    #: evaluation shape of the circuit-cutting fragment pipeline
    #: (:mod:`repro.cutting`), where every schedule row starts from its own
    #: basis-initialization variant.  Backends without the flag still serve
    #: per-row ``sv0`` batches through the engine's looped fallback.
    supports_batched_sv0: bool = False

    def __init__(self, n_qubits: int,
                 terms: Iterable[tuple[float, Iterable[int]]] | None = None,
                 costs: np.ndarray | CompressedDiagonal | None = None, *,
                 precision: str | PrecisionSpec = "double",
                 optimize: str = "default") -> None:
        if n_qubits <= 0:
            raise ValueError(f"n_qubits must be positive, got {n_qubits}")
        self._precision = resolve_precision(precision)
        self._optimize = resolve_optimize(optimize)
        if (terms is None) == (costs is None):
            raise ValueError("provide exactly one of `terms` or `costs`")
        self._n_qubits = int(n_qubits)
        self._n_states = 1 << self._n_qubits
        state_bytes = self._guarded_state_bytes()
        if state_bytes > MAX_STATE_BYTES:
            raise ValueError(
                f"n_qubits={n_qubits} would require {state_bytes / 2**30:.0f} GiB "
                f"for the {self._precision.name}-precision state vector; refusing"
            )
        #: resolved float64 default diagonal, cached so deep circuits and
        #: batched evaluation never decompress/validate per layer or element
        self._costs_cache: np.ndarray | None = None
        #: precision-matched (real-dtype) view of the default diagonal used by
        #: the phase kernels; identical to ``_costs_cache`` at double precision
        self._phase_costs_cache: np.ndarray | None = None
        self._phase_table_cache: DiagonalPhaseTable | None = None
        self._phase_table_built = False
        #: guards the lazily-built derived caches (resolved diagonal, phase
        #: costs, phase table, engine) against concurrent first use — the
        #: serving layer evaluates on a thread pool.  Reentrant because the
        #: lazy initializers nest (phase table -> resolved diagonal).
        self._derived_lock = threading.RLock()
        #: lazily-constructed execution engine (plan cache lives on it)
        self._execution_engine = None
        self._terms: list[Term] | None = None
        if terms is not None:
            self._terms = validate_terms(terms, self._n_qubits)
            host_costs = self._precompute_diagonal(self._terms)
        else:
            host_costs = self._ingest_costs(costs)
        self._hamiltonian_host = host_costs  # float64 host copy (or CompressedDiagonal)
        self._post_init()

    # -- construction hooks --------------------------------------------------
    def _guarded_state_bytes(self) -> int:
        """Bytes the byte guard compares against :data:`MAX_STATE_BYTES`.

        The default accounts one monolithic state vector — the resident
        footprint of every single-address-space backend.  Backends that hold
        the state in smaller pieces (the in-process sharded family) override
        this with their largest per-piece footprint (slab plus exchange
        staging), which is exactly what raises the single-array ceiling.
        The comparison happens in ``__init__`` against the *module-global*
        ``MAX_STATE_BYTES`` read at call time, so tests can shrink the guard
        by monkeypatching the module attribute.
        """
        return self._n_states * self._precision.complex_itemsize

    def _precompute_diagonal(self, terms: list[Term]) -> np.ndarray:
        """Precompute the cost diagonal on the host (backends may override).

        The default implementation consults the process-wide
        :data:`~repro.fur.cache.diagonal_cache`, so repeated construction for
        the same problem (e.g. one objective per optimization restart) reuses
        the already-computed vector.  The returned array may be a shared
        read-only view; backends must copy before mutating.
        """
        return cached_cost_diagonal(terms, self._n_qubits)

    def _ingest_costs(self, costs: np.ndarray | CompressedDiagonal) -> np.ndarray | CompressedDiagonal:
        """Validate a user-provided cost diagonal."""
        if isinstance(costs, CompressedDiagonal):
            if len(costs) != self._n_states:
                raise ValueError(
                    f"cost diagonal has length {len(costs)}, expected {self._n_states}"
                )
            return costs
        arr = np.asarray(costs, dtype=np.float64)
        if arr.shape != (self._n_states,):
            raise ValueError(
                f"cost diagonal has shape {arr.shape}, expected ({self._n_states},)"
            )
        return arr

    def _post_init(self) -> None:
        """Hook for backends that stage data onto a device / across ranks."""

    # -- basic properties ----------------------------------------------------
    @property
    def n_qubits(self) -> int:
        """Number of qubits."""
        return self._n_qubits

    @property
    def n_states(self) -> int:
        """State-vector length 2^n."""
        return self._n_states

    @property
    def terms(self) -> list[Term] | None:
        """The polynomial terms the simulator was constructed from (if any)."""
        return None if self._terms is None else list(self._terms)

    @property
    def precision(self) -> str:
        """The simulation precision name (``"double"`` or ``"single"``)."""
        return self._precision.name

    @property
    def precision_spec(self) -> PrecisionSpec:
        """The resolved :class:`~repro.fur.precision.PrecisionSpec`."""
        return self._precision

    @property
    def optimize(self) -> str:
        """Default plan-optimizer level (``"default"`` or ``"none"``)."""
        return self._optimize

    @property
    def complex_dtype(self) -> np.dtype:
        """State-vector amplitude dtype (complex128 or complex64)."""
        return self._precision.complex_dtype

    @property
    def real_dtype(self) -> np.dtype:
        """Phase-diagonal dtype matching the state (float64 or float32)."""
        return self._precision.real_dtype

    def get_cost_diagonal(self) -> np.ndarray:
        """The precomputed cost vector as a **read-only** host float64 array.

        The returned array is always non-writeable: it may be shared with the
        process-wide diagonal cache (and with every other simulator of the
        same problem), with the engine's plan caches, or alias a
        caller-provided ``costs`` array — so a silent in-place mutation would
        corrupt state far beyond this simulator.  Copy before mutating
        (``diag.copy()``).
        """
        if isinstance(self._hamiltonian_host, CompressedDiagonal):
            diag = self._hamiltonian_host.decompress()
            diag.flags.writeable = False
            return diag
        return _readonly_view(np.asarray(self._hamiltonian_host))

    def _default_costs(self) -> np.ndarray:
        """The resolved float64 default diagonal, decompressed at most once.

        For a :class:`~repro.fur.diagonal.CompressedDiagonal` problem,
        :meth:`get_cost_diagonal` reconstructs the full 2^n float vector on
        every call; the hot paths (one phase application per layer, one
        objective reduction per evaluation) go through this cache instead so
        a depth-1000 simulation pays for exactly one decompression.
        """
        if self._costs_cache is None:
            with self._derived_lock:
                if self._costs_cache is None:
                    self._costs_cache = self.get_cost_diagonal()
        return self._costs_cache

    def _phase_costs(self) -> np.ndarray:
        """The default diagonal at the state's matching real dtype (cached).

        The phase operator streams the diagonal alongside the full state
        every layer, so at single precision it reads a float32 copy — half
        the diagonal traffic and phase factors computed directly at state
        precision.  At double precision this is exactly
        :meth:`_default_costs` (no copy).  Expectation reductions never use
        this view; they accumulate in float64 via :meth:`_default_costs`.
        """
        if self._phase_costs_cache is None:
            with self._derived_lock:
                if self._phase_costs_cache is None:
                    costs = self._default_costs()
                    if costs.dtype == self._precision.real_dtype:
                        self._phase_costs_cache = costs
                    else:
                        self._phase_costs_cache = np.ascontiguousarray(
                            costs, dtype=self._precision.real_dtype)
        return self._phase_costs_cache

    def _diagonal_phase_table(self) -> DiagonalPhaseTable | None:
        """Unique-value phase table for the default diagonal (lazy, cached).

        Built on first use by the fused batch engines; ``None`` when the
        diagonal has too many distinct values for the gather to pay off.
        """
        if not self._phase_table_built:
            with self._derived_lock:
                if not self._phase_table_built:
                    self._phase_table_cache = build_phase_table(self._default_costs())
                    self._phase_table_built = True
        return self._phase_table_cache

    # -- the execution engine ------------------------------------------------
    @property
    def engine(self):
        """The per-simulator :class:`~repro.fur.engine.ExecutionEngine`.

        Constructed lazily on first use; its compiled-plan cache lives next
        to the resolved-diagonal and phase-table caches of this simulator.
        """
        if self._execution_engine is None:
            from .engine import ExecutionEngine  # deferred: engine imports base

            with self._derived_lock:
                if self._execution_engine is None:
                    self._execution_engine = ExecutionEngine(self)
        return self._execution_engine

    # -- simulation ----------------------------------------------------------
    @abc.abstractmethod
    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, **kwargs: Any) -> Any:
        """Simulate ``p`` QAOA layers and return a backend-specific result object.

        ``sv0`` optionally overrides the initial state (default ``|+>^n``).
        """

    def simulate_qaoa_batch(self, gammas_batch: Sequence[Sequence[float]] | np.ndarray,
                            betas_batch: Sequence[Sequence[float]] | np.ndarray,
                            sv0: np.ndarray | None = None, *,
                            memory_budget: float | None = None,
                            mode: str = "auto",
                            optimize: str | None = None,
                            **kwargs: Any) -> list[Any]:
        """Simulate a batch of (γ, β) schedules over the same problem.

        The batches are ``(B, p)`` shaped; entry ``i`` of the returned list is
        the backend result object for schedule ``i``.  ``sv0`` may be a shared
        1-D initial state or a ``(B, 2^n)`` block supplying one initial state
        per schedule row (the circuit-cutting fragment-variant shape);
        backends without :attr:`supports_batched_sv0` serve per-row blocks
        through the looped fallback.  All orchestration is
        delegated to the shared execution engine: backends implementing the
        :class:`~repro.fur.engine.KernelProvider` protocol evolve ``(B, 2^n)``
        state blocks through all layers at once (``memory_budget`` bounds the
        block scratch by splitting large batches into sub-batches); everyone
        else gets the looped fallback, which shares the precomputed diagonal,
        workspaces and device buffers across the batch but holds one state at
        a time.  ``mode`` forces ``"fused"`` or ``"looped"`` explicitly
        (``"auto"`` picks fused whenever the backend provides kernels);
        ``optimize`` overrides the simulator's plan-optimizer level for this
        call (``"none"`` pins the unrewritten op stream).
        """
        return self.engine.simulate_batch(gammas_batch, betas_batch, sv0=sv0,
                                          memory_budget=memory_budget,
                                          mode=mode, optimize=optimize,
                                          **kwargs)

    def get_expectation_batch(self, gammas_batch: Sequence[Sequence[float]] | np.ndarray,
                              betas_batch: Sequence[Sequence[float]] | np.ndarray,
                              costs: np.ndarray | CompressedDiagonal | None = None,
                              sv0: np.ndarray | None = None, *,
                              memory_budget: float | None = None,
                              mode: str = "auto",
                              optimize: str | None = None,
                              **kwargs: Any) -> np.ndarray:
        """Objective values for a batch of schedules, as a length-``B`` array.

        Unlike :meth:`simulate_qaoa_batch` this never keeps the evolved
        states: each schedule is reduced to ``<γβ|Ĉ|γβ>`` immediately, with
        the diagonal resolved to float64 exactly once for the whole batch and
        expectations accumulated in float64 regardless of the state precision
        (the engine-wide policy).  See :meth:`simulate_qaoa_batch` for the
        fused/looped ``mode`` and plan-optimizer ``optimize`` semantics.
        """
        return self.engine.expectation_batch(gammas_batch, betas_batch,
                                             costs=costs, sv0=sv0,
                                             memory_budget=memory_budget,
                                             mode=mode, optimize=optimize,
                                             **kwargs)

    # -- kernel-provider hooks (engine-driven; see repro.fur.engine) ---------
    def _batch_rows(self, remaining: int, memory_budget: float | None) -> int:
        """Rows of the next fused sub-batch under the memory budget.

        Called by the engine once per sub-batch with the *remaining* schedule
        count, so backends whose per-row results stay resident (device
        arrays) can re-derive capacity as rows accumulate.
        """
        blocks = 2 if self._mixer_needs_scratch else 1
        return batch_block_rows(remaining, self._n_states, memory_budget,
                                blocks=blocks,
                                itemsize=self._precision.complex_itemsize)

    def _engine_phase_tables(self) -> Any:
        """Phase-table object(s) stored in compiled plans (provider-specific).

        The default is the simulator-level unique-value
        :class:`~repro.fur.diagonal.DiagonalPhaseTable` (or ``None`` when the
        diagonal is not repetitive enough); the distributed families override
        this with a tuple of per-rank-slice tables.
        """
        return self._diagonal_phase_table()

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> Any:
        raise NotImplementedError(
            f"backend {self.backend_name!r} does not implement the fused "
            "kernel-provider protocol"
        )

    def _stage_phase_block(self, gammas: np.ndarray, plan: Any) -> Any:
        """Stage ``exp(-i γ_r c[x]) / sqrt(N)`` directly (layer-0 phase fold).

        Only reached for plans rewritten by the FoldInitialPhase pass, which
        is gated on :attr:`supports_staged_phase` — providers setting the
        flag must implement this.
        """
        raise NotImplementedError(
            f"backend {self.backend_name!r} advertises phased staging "
            "but does not implement _stage_phase_block"
        )

    def _mixer_scratch(self, block: Any) -> Any:
        """Per-sub-batch ping-pong scratch (providers with scratch mixers override)."""
        return None

    def _apply_phase_block(self, block: Any, gammas: np.ndarray, plan: Any) -> None:
        raise NotImplementedError

    def _apply_mixer_block(self, block: Any, betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        raise NotImplementedError

    def _apply_mixer_block_coalesced(self, block: Any, betas: np.ndarray,
                                     n_trotters: int, scratch: Any) -> None:
        """Mixer sweep with batch-coalesced global exchanges.

        Only reached for ops rewritten by the CoalesceExchanges pass, which
        is gated on :attr:`supports_coalesced_exchange` — providers setting
        the flag must implement this.
        """
        raise NotImplementedError(
            f"backend {self.backend_name!r} advertises coalesced exchanges "
            "but does not implement _apply_mixer_block_coalesced"
        )

    def _apply_phase_mixer_block(self, block: Any, gammas: np.ndarray,
                                 betas: np.ndarray, op: Any, scratch: Any,
                                 plan: Any) -> None:
        """Fused phase+mixer sweep of one layer.

        Only reached for ops rewritten by the FusePhaseIntoMixer pass, which
        is gated on :attr:`supports_fused_phase_mixer` — providers setting
        the flag must implement this.
        """
        raise NotImplementedError(
            f"backend {self.backend_name!r} advertises the fused phase+mixer "
            "kernel but does not implement _apply_phase_mixer_block"
        )

    def _apply_mixer_expectation_block(self, block: Any,
                                       gammas: np.ndarray | None,
                                       betas: np.ndarray, op: Any,
                                       scratch: Any, costs: Any,
                                       plan: Any) -> np.ndarray:
        """Final mixer sweep fused into the expectation reduction.

        ``gammas`` is non-``None`` when the layer's phase rides along
        (``op.with_phase``).  Only reached for plans rewritten by the
        FuseMixerIntoExpectation pass, which is gated on
        :attr:`supports_fused_mixer_expectation` — providers setting the
        flag must implement this.
        """
        raise NotImplementedError(
            f"backend {self.backend_name!r} advertises the fused "
            "mixer+expectation kernel but does not implement "
            "_apply_mixer_expectation_block"
        )

    def _block_expectations(self, block: Any, costs: Any) -> np.ndarray:
        raise NotImplementedError

    def _block_results(self, block: Any) -> list[Any]:
        """Per-schedule result objects of an evolved block (default: rows)."""
        return list(block)

    def _release_block(self, block: Any) -> None:
        """Free a block after its reduction (no-op for host blocks)."""

    def _stage_batch_costs(self, resolved: np.ndarray) -> Any:
        """Stage the batch diagonal (device backends upload it here)."""
        return resolved

    def _release_batch_costs(self, staged: Any) -> None:
        """Release a staged batch diagonal (no-op for host arrays)."""

    # -- output methods (always return CPU values) ---------------------------
    @abc.abstractmethod
    def get_statevector(self, result: Any, **kwargs: Any) -> np.ndarray:
        """Full state vector as a host complex array."""

    @abc.abstractmethod
    def get_probabilities(self, result: Any, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|² as a host float array.

        With ``preserve_state=False`` a backend may reuse the state-vector
        memory for the squared magnitudes (the paper's memory-saving option on
        GPU backends); the result object must not be used afterwards.
        """

    def _resolve_costs(self, costs: np.ndarray | CompressedDiagonal | None) -> np.ndarray:
        """Pick between a user-supplied diagonal and the precomputed one."""
        if costs is None:
            return self._default_costs()
        if isinstance(costs, CompressedDiagonal):
            return costs.decompress()
        arr = np.asarray(costs, dtype=np.float64)
        if arr.shape != (self._n_states,):
            raise ValueError(
                f"cost diagonal has shape {arr.shape}, expected ({self._n_states},)"
            )
        return arr

    def get_expectation(self, result: Any,
                        costs: np.ndarray | CompressedDiagonal | None = None,
                        preserve_state: bool = True, **kwargs: Any) -> float:
        """QAOA objective ``<γβ|Ĉ|γβ>`` — one inner product with the diagonal."""
        probs = self.get_probabilities(result, preserve_state=preserve_state, **kwargs)
        return float(np.dot(probs, self._resolve_costs(costs)))

    def get_overlap(self, result: Any,
                    costs: np.ndarray | CompressedDiagonal | None = None,
                    indices: np.ndarray | Sequence[int] | None = None,
                    preserve_state: bool = True, **kwargs: Any) -> float:
        """Probability of measuring an optimal (minimal-cost) basis state.

        ``indices`` may supply an explicit set of target states; by default the
        argmin set of the cost diagonal is used.
        """
        probs = self.get_probabilities(result, preserve_state=preserve_state, **kwargs)
        if indices is None:
            diag = self._resolve_costs(costs)
            indices = np.flatnonzero(diag == diag.min())
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("overlap requested against an empty set of indices")
        if idx.min() < 0 or idx.max() >= self._n_states:
            raise ValueError("overlap indices out of range")
        return float(probs[idx].sum())

    def sample_bitstrings(self, result: Any, n_samples: int, *,
                          seed: int | None = None,
                          preserve_state: bool = True, **kwargs: Any) -> np.ndarray:
        """Sample measurement outcomes from the evolved state.

        Returns an ``(n_samples, n_qubits)`` array of 0/1 outcomes (little-endian:
        column ``q`` is qubit ``q``), drawn from the exact probability
        distribution of the result state.  This is the "measure the prepared
        state" step of the QAOA workflow (used e.g. for the sampling-frequency
        analyses the paper's companion studies perform).
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        probs = np.asarray(self.get_probabilities(result, preserve_state=preserve_state,
                                                  **kwargs), dtype=np.float64)
        total = probs.sum()
        if not np.isfinite(total) or total <= 0:
            raise ValueError("result state has non-normalizable probabilities")
        rng = np.random.default_rng(seed)
        indices = rng.choice(self._n_states, size=n_samples, p=probs / total)
        shifts = np.arange(self._n_qubits, dtype=np.uint64)
        return ((indices[:, None].astype(np.uint64) >> shifts[None, :]) & np.uint64(1)).astype(np.int8)

    # -- misc ----------------------------------------------------------------
    def initial_state(self, dtype: np.dtype | type | None = None) -> np.ndarray:
        """Default initial state |+>^n as a host array.

        ``dtype`` overrides the amplitude dtype; by default it follows the
        simulator's precision (complex64 for ``precision="single"``).
        """
        if dtype is None:
            dtype = self._precision.complex_dtype
        return uniform_superposition(self._n_qubits, dtype=dtype)

    def _validate_sv0(self, sv0: np.ndarray | None) -> np.ndarray:
        """Return a host copy of the initial state at the simulation precision.

        The copy honours the simulator's complex dtype rather than
        unconditionally widening to complex128 — a caller-supplied complex64
        state on a single-precision simulator is copied, never upcast.
        """
        if sv0 is None:
            return self.initial_state()
        arr = np.array(sv0, dtype=self._precision.complex_dtype, copy=True)
        if arr.shape != (self._n_states,):
            raise ValueError(
                f"initial state has shape {arr.shape}, expected ({self._n_states},)"
            )
        return arr

    def _validate_sv0_block(self, sv0: np.ndarray | None, rows: int) -> np.ndarray:
        """A ``(rows, 2^n)`` block of initial states at the simulation precision.

        The staging helper behind :attr:`supports_batched_sv0`: ``sv0=None``
        tiles ``|+>^n``, a 1-D state is validated and tiled across all rows,
        and a 2-D ``(rows, 2^n)`` array supplies one initial state *per row*
        (copied at the simulator's complex dtype, never upcast).  The 1-D and
        ``None`` paths write the block with a single broadcast pass.
        """
        if sv0 is not None and np.ndim(sv0) == 2:
            arr = np.array(sv0, dtype=self._precision.complex_dtype, copy=True)
            if arr.shape != (rows, self._n_states):
                raise ValueError(
                    f"per-row initial-state block has shape {arr.shape}, "
                    f"expected ({rows}, {self._n_states})"
                )
            return arr
        sv = self._validate_sv0(sv0)
        block = np.empty((rows, self._n_states),
                         dtype=self._precision.complex_dtype)
        np.copyto(block, sv[None, :])
        return block

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(n_qubits={self._n_qubits}, "
                f"backend={self.backend_name!r}, mixer={self.mixer_name!r}, "
                f"precision={self.precision!r})")
