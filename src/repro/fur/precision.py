"""Precision as a first-class simulation capability (double / single).

The paper's central performance argument is that statevector QAOA simulation
is *memory-bandwidth bound*: the phase and mixer kernels stream the full
``(2^n,)`` (or fused ``(B, 2^n)``) state on every layer, so the bytes per
amplitude set the layer time almost directly.  Halving the amplitude width —
``complex64`` instead of ``complex128`` — is therefore a ~2x bandwidth win
and doubles the problem size (or batch width) that fits a fixed memory
budget.

This module defines the precision vocabulary threaded through every backend:

* :class:`PrecisionSpec` — one named precision: the complex dtype of the
  state vector and the matching real dtype used for phase-operator diagonals
  and gathered phase tables;
* :data:`DOUBLE` / :data:`SINGLE` — the two supported precisions
  (``complex128``/``float64`` and ``complex64``/``float32``);
* :func:`resolve_precision` — permissive normalization of user spellings
  (``"single"``, ``"fp32"``, ``np.complex64``, ...) to a spec.

Numerical policy (pinned by the test-suite): the *state* and the *phase
factors* follow the selected precision, but expectation values are always
accumulated in ``float64`` regardless of the state dtype — reductions over
2^n float32 partial products would otherwise lose digits the bandwidth
saving does not pay for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PrecisionSpec",
    "DOUBLE",
    "SINGLE",
    "KNOWN_PRECISIONS",
    "resolve_precision",
]


@dataclass(frozen=True)
class PrecisionSpec:
    """One named simulation precision and its dtype pair."""

    #: canonical name ("double" or "single")
    name: str
    #: dtype of state-vector amplitudes
    complex_dtype: np.dtype
    #: dtype of phase-operator diagonals / phase tables matching the state
    real_dtype: np.dtype

    @property
    def complex_itemsize(self) -> int:
        """Bytes per state-vector amplitude (16 for double, 8 for single)."""
        return int(self.complex_dtype.itemsize)

    @property
    def is_double(self) -> bool:
        """Whether this is the full-precision default."""
        return self.name == "double"


DOUBLE = PrecisionSpec("double", np.dtype(np.complex128), np.dtype(np.float64))
SINGLE = PrecisionSpec("single", np.dtype(np.complex64), np.dtype(np.float32))

#: Canonical precision names, default first.
KNOWN_PRECISIONS: tuple[str, ...] = (DOUBLE.name, SINGLE.name)

#: Accepted spellings -> canonical spec.
_ALIASES: dict[str, PrecisionSpec] = {
    "double": DOUBLE,
    "fp64": DOUBLE,
    "complex128": DOUBLE,
    "float64": DOUBLE,
    "single": SINGLE,
    "fp32": SINGLE,
    "complex64": SINGLE,
    "float32": SINGLE,
}


def resolve_precision(precision: str | np.dtype | type | PrecisionSpec | None
                      ) -> PrecisionSpec:
    """Normalize any accepted precision spelling to a :class:`PrecisionSpec`.

    Accepts the canonical names (``"double"``/``"single"``), common aliases
    (``"fp64"``, ``"complex64"``, ...), NumPy dtypes or scalar types
    (``np.complex64``, ``np.dtype("float32")``), an existing spec (returned
    unchanged) and ``None`` (the double-precision default).
    """
    if precision is None:
        return DOUBLE
    if isinstance(precision, PrecisionSpec):
        return precision
    if isinstance(precision, str):
        spec = _ALIASES.get(precision.strip().lower())
        if spec is not None:
            return spec
        raise ValueError(
            f"unknown precision {precision!r}; expected one of "
            f"{sorted(set(_ALIASES))}"
        )
    try:
        name = np.dtype(precision).name
    except TypeError:
        raise ValueError(
            f"precision must be a name, dtype or PrecisionSpec; got {precision!r}"
        ) from None
    spec = _ALIASES.get(name)
    if spec is None:
        raise ValueError(
            f"dtype {name!r} does not map to a simulation precision; "
            f"use complex128/float64 (double) or complex64/float32 (single)"
        )
    return spec
