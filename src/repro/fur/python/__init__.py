"""Portable NumPy ("python") backend: FUR kernels and QAOA simulator classes.

The single-rotation kernels named exactly like their modules (``furx.furx``,
``furxy.furxy``) are deliberately *not* re-exported at package level so the
``repro.fur.python.furx`` / ``repro.fur.python.furxy`` module objects stay
importable; use the module-qualified names for those two.
"""

from . import furx, furxy
from .furx import apply_su2, furx_all, fwht_inplace, su2_x_rotation
from .furxy import (
    apply_xy_su2,
    complete_edges,
    furxy_complete,
    furxy_ring,
    ring_edges,
)
from .qaoa_simulator import (
    QAOAFURXSimulator,
    QAOAFURXYCompleteSimulator,
    QAOAFURXYRingSimulator,
)

__all__ = [
    "furx",
    "furxy",
    "apply_su2",
    "furx_all",
    "fwht_inplace",
    "su2_x_rotation",
    "apply_xy_su2",
    "furxy_ring",
    "furxy_complete",
    "ring_edges",
    "complete_edges",
    "QAOAFURXSimulator",
    "QAOAFURXYRingSimulator",
    "QAOAFURXYCompleteSimulator",
]
