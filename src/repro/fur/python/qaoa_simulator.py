"""Portable NumPy QAOA simulators (the paper's ``python`` backend).

Each class implements Algorithm 3: the cost diagonal is precomputed once (in
the constructor, via the base class), and each layer applies

1. the phase operator as an element-wise multiplication of the state vector
   with ``exp(-i γ_l · c)``, and
2. the mixer via the fast uniform SU(2) kernels (Algorithms 1–2) or their XY
   extensions.

The three classes differ only in the mixer (transverse-field X, XY-ring,
XY-complete), mirroring QOKit's simulator families.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import QAOAFastSimulatorBase, validate_angles
from .furx import furx_all
from .furxy import furxy_complete, furxy_ring

__all__ = [
    "QAOAFURXSimulator",
    "QAOAFURXYRingSimulator",
    "QAOAFURXYCompleteSimulator",
]


class _QAOAFURPythonSimulatorBase(QAOAFastSimulatorBase):
    """Shared host-NumPy simulation loop; subclasses supply the mixer."""

    backend_name = "python"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        raise NotImplementedError

    def _apply_phase(self, sv: np.ndarray, gamma: float) -> None:
        """Phase operator: ``sv[x] *= exp(-i γ c[x])`` (Algorithm 3, line 4)."""
        costs = self.get_cost_diagonal()
        sv *= np.exp(costs * (-1j * gamma))

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> np.ndarray:
        """Evolve the initial state through ``p`` QAOA layers.

        Parameters
        ----------
        gammas, betas:
            The QAOA angles (equal length ``p``); layer ``l`` applies
            ``exp(-i β_l M) exp(-i γ_l C)``.
        sv0:
            Optional initial state (defaults to ``|+>^n``).
        n_trotters:
            Number of Trotter slices used per mixer application by the XY
            mixers (ignored by the X mixer, whose factors commute exactly).

        Returns
        -------
        numpy.ndarray
            The evolved state vector (the backend's *result* object).
        """
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv = self._validate_sv0(sv0)
        for gamma, beta in zip(g, b):
            self._apply_phase(sv, float(gamma))
            self._apply_mixer(sv, float(beta), n_trotters)
        return sv

    # -- output methods ------------------------------------------------------
    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector (host array)."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|²."""
        sv = np.asarray(result)
        if preserve_state:
            return np.abs(sv) ** 2
        # In-place variant: reuse the state-vector buffer's real view.
        np.multiply(sv, np.conj(sv), out=sv)
        return sv.real


class QAOAFURXSimulator(_QAOAFURPythonSimulatorBase):
    """QAOA with the transverse-field mixer ``exp(-i β Σ_i X_i)`` (NumPy)."""

    mixer_name = "x"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        # The X-mixer factors commute, so Trotterization is exact and unused.
        furx_all(sv, beta, self._n_qubits)


class QAOAFURXYRingSimulator(_QAOAFURPythonSimulatorBase):
    """QAOA with the ring XY mixer (Hamming-weight preserving, NumPy)."""

    mixer_name = "xyring"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            furxy_ring(sv, beta / n_trotters, self._n_qubits)


class QAOAFURXYCompleteSimulator(_QAOAFURPythonSimulatorBase):
    """QAOA with the complete-graph XY mixer (Hamming-weight preserving, NumPy)."""

    mixer_name = "xycomplete"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            furxy_complete(sv, beta / n_trotters, self._n_qubits)
