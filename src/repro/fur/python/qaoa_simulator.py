"""Portable NumPy QAOA simulators (the paper's ``python`` backend).

Each class implements Algorithm 3: the cost diagonal is precomputed once (in
the constructor, via the base class), and each layer applies

1. the phase operator as an element-wise multiplication of the state vector
   with ``exp(-i γ_l · c)``, and
2. the mixer via the fast uniform SU(2) kernels (Algorithms 1–2) or their XY
   extensions.

The three classes differ only in the mixer (transverse-field X, XY-ring,
XY-complete), mirroring QOKit's simulator families.

Batched evaluation is orchestrated by the shared execution engine
(:mod:`repro.fur.engine`); this module only implements the
:class:`~repro.fur.engine.KernelProvider` hooks — a ``(rows, 2^n)`` host
block, a vectorized batched phase sweep (unique-value phase table when the
diagonal is repetitive, chunked direct ``exp`` otherwise) and the batched
mixer kernels (:func:`~repro.fur.python.furx.furx_all_batch` and the batched
XY kernels).  Sub-batch splitting, scratch lifetime and the float64
accumulation policy live in the engine, not here.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import QAOAFastSimulatorBase, validate_angles
from .furx import furx_all, furx_all_batch, furx_phase_all_batch
from .furxy import furxy_complete, furxy_complete_batch, furxy_ring, furxy_ring_batch

__all__ = [
    "QAOAFURXSimulator",
    "QAOAFURXYRingSimulator",
    "QAOAFURXYCompleteSimulator",
]

#: Bound on the number of complex temporaries (elements) materialized per
#: chunk by the direct-exponential batched phase fallback.
_BATCH_PHASE_CHUNK: int = 1 << 20


class _QAOAFURPythonSimulatorBase(QAOAFastSimulatorBase):
    """Shared host-NumPy simulation loop; subclasses supply the mixer."""

    backend_name = "python"
    supports_fused_engine = True
    supports_staged_phase = True

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        raise NotImplementedError

    def _apply_phase(self, sv: np.ndarray, gamma: float) -> None:
        """Phase operator: ``sv[x] *= exp(-i γ c[x])`` (Algorithm 3, line 4).

        Uses the per-simulator resolved-diagonal cache: for a
        :class:`~repro.fur.diagonal.CompressedDiagonal` problem the 2^n float
        vector is decompressed exactly once, not once per layer.  The phase
        factors are evaluated at the state's precision (float32 costs with a
        weak complex scalar yield complex64 factors for single precision).
        """
        sv *= np.exp(self._phase_costs() * (-1j * gamma))

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> np.ndarray:
        """Evolve the initial state through ``p`` QAOA layers.

        Parameters
        ----------
        gammas, betas:
            The QAOA angles (equal length ``p``); layer ``l`` applies
            ``exp(-i β_l M) exp(-i γ_l C)``.
        sv0:
            Optional initial state (defaults to ``|+>^n``).
        n_trotters:
            Number of Trotter slices used per mixer application by the XY
            mixers (ignored by the X mixer, whose factors commute exactly).

        Returns
        -------
        numpy.ndarray
            The evolved state vector (the backend's *result* object).
        """
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv = self._validate_sv0(sv0)
        for gamma, beta in zip(g, b):
            self._apply_phase(sv, float(gamma))
            self._apply_mixer(sv, float(beta), n_trotters)
        return sv

    # -- kernel-provider hooks (driven by repro.fur.engine) -------------------
    supports_batched_sv0 = True

    #: lazily-allocated phase gather buffer (see :meth:`_gather_buffer`)
    _phase_buf: np.ndarray | None = None

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> np.ndarray:
        self._phase_buf = None  # (re)allocated lazily on first phase sweep
        return self._validate_sv0_block(sv0, rows)

    def _stage_phase_block(self, gammas: np.ndarray, plan: Any) -> np.ndarray:
        """FoldInitialPhase staging: write ``exp(-i γ_r c)/√N`` directly.

        The |+> block write and the layer-0 phase sweep collapse into a
        single pass over the block; the products are computed in the same
        order as the split path, so the staged block matches it bitwise.
        """
        self._phase_buf = None
        return staged_phase_block(gammas, self._phase_costs(), self._n_states,
                                  self._precision.complex_dtype,
                                  phase_table=plan.phase_tables)

    def _gather_buffer(self) -> np.ndarray:
        """The per-sub-batch phase gather buffer, allocated on first use.

        Shared by the split phase sweep and the fused phase+mixer kernel
        (one allocation per sub-batch, reused across all ``p`` layers), and
        lazy so plans whose phase ops were all eliminated never pay for a
        state-vector-sized allocation; dropped with the block by the
        reduction hooks so it is never retained beyond the batch.
        """
        if self._phase_buf is None:
            self._phase_buf = np.empty(self._n_states,
                                       dtype=self._precision.complex_dtype)
        return self._phase_buf

    def _mixer_scratch(self, block: np.ndarray) -> np.ndarray:
        return np.empty_like(block)

    def _apply_phase_block(self, block: np.ndarray, gammas: np.ndarray,
                           plan: Any) -> None:
        """Vectorized phase operator on a ``(rows, 2^n)`` block.

        ``exp(-i γ_b c)`` is broadcast across the batch: when the plan's
        unique-value phase table applies, one ``exp`` over the ``(rows, U)``
        distinct values plus per-row gathers (into the per-sub-batch gather
        buffer) replaces ``rows · 2^n`` transcendentals; otherwise the
        exponential is evaluated directly, chunked over basis states so the
        ``(rows, chunk)`` temporaries stay bounded.
        """
        table = plan.phase_tables
        rows, n = block.shape
        if table is not None:
            factors = table.factors_batch(gammas, dtype=block.dtype)
            buf = self._gather_buffer()
            for r in range(rows):
                np.take(factors[r], table.inverse, out=buf)
                block[r] *= buf
            return
        costs = self._phase_costs()
        coeff = (-1j * gammas).astype(block.dtype)
        cols = max(1, _BATCH_PHASE_CHUNK // rows)
        for s in range(0, n, cols):
            e = min(s + cols, n)
            block[:, s:e] *= np.exp(coeff[:, None] * costs[s:e][None, :])

    def _block_expectations(self, block: np.ndarray, costs: np.ndarray) -> np.ndarray:
        self._phase_buf = None
        return _block_expectations(block, costs)

    def _block_results(self, block: np.ndarray) -> list[np.ndarray]:
        self._phase_buf = None
        return list(block)

    # -- output methods ------------------------------------------------------
    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector (host array)."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|² (always float64 on output)."""
        sv = np.asarray(result)
        if preserve_state:
            return (np.abs(sv) ** 2).astype(np.float64, copy=False)
        # In-place variant: square magnitudes into the state-vector buffer,
        # then return a contiguous float64 array — a strided ``.real`` view
        # of the complex buffer would halve the throughput of every
        # downstream reduction (and surprise callers expecting a plain
        # probability vector).
        np.multiply(sv, np.conj(sv), out=sv)
        return np.ascontiguousarray(sv.real, dtype=np.float64)


def _block_expectations(block: np.ndarray, costs: np.ndarray,
                        chunk: int = _BATCH_PHASE_CHUNK) -> np.ndarray:
    """Per-row ``Σ_x c[x] |ψ_x|²`` of a block, chunked over basis states."""
    rows, n = block.shape
    cols = max(1, chunk // max(rows, 1))
    out = np.zeros(rows, dtype=np.float64)
    for s in range(0, n, cols):
        e = min(s + cols, n)
        blk = block[:, s:e]
        out += (blk.real ** 2 + blk.imag ** 2) @ costs[s:e]
    return out


def staged_phase_block(gammas: np.ndarray, costs: np.ndarray, n_states: int,
                       dtype: np.dtype, *, phase_table: Any = None,
                       chunk: int = _BATCH_PHASE_CHUNK) -> np.ndarray:
    """Build a ``(rows, 2^n)`` block holding ``exp(-i γ_r c)/√N`` directly.

    The FoldInitialPhase staging kernel, shared by the ``python`` and ``c``
    backends: instead of writing the uniform superposition and then sweeping
    the layer-0 phase over it, the phase factors (scaled by the |+> norm)
    are written in one pass.  The factor·norm products are formed exactly as
    the split path forms norm·factor, so results match it bitwise.
    """
    gammas = np.asarray(gammas, dtype=np.float64)
    rows = gammas.shape[0]
    norm = np.finfo(dtype).dtype.type(1.0 / np.sqrt(n_states))
    block = np.empty((rows, n_states), dtype=dtype)
    if phase_table is not None:
        factors = phase_table.factors_batch(gammas, dtype=dtype)
        factors *= norm
        for r in range(rows):
            np.take(factors[r], phase_table.inverse, out=block[r])
        return block
    coeff = (-1j * gammas).astype(dtype)
    cols = max(1, chunk // max(rows, 1))
    for s in range(0, n_states, cols):
        e = min(s + cols, n_states)
        factors = np.exp(coeff[:, None] * costs[s:e][None, :])
        np.multiply(factors, norm, out=block[:, s:e], casting="same_kind")
    return block


class QAOAFURXSimulator(_QAOAFURPythonSimulatorBase):
    """QAOA with the transverse-field mixer ``exp(-i β Σ_i X_i)`` (NumPy)."""

    mixer_name = "x"
    _mixer_needs_scratch = True
    supports_fused_phase_mixer = True
    supports_fused_mixer_expectation = True
    mixer_self_commutes = True

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        # The X-mixer factors commute, so Trotterization is exact and unused.
        furx_all(sv, beta, self._n_qubits)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        furx_all_batch(block, betas, self._n_qubits, scratch=scratch)

    def _apply_phase_mixer_block(self, block: np.ndarray, gammas: np.ndarray,
                                 betas: np.ndarray, op: Any,
                                 scratch: np.ndarray | None, plan: Any) -> None:
        """FusedPhaseMixerOp kernel: the phase rides the first gemm pass."""
        furx_phase_all_batch(block, gammas, betas, self._n_qubits,
                             phase_table=plan.phase_tables,
                             costs=self._phase_costs(), scratch=scratch,
                             phase_buf=self._gather_buffer())

    def _apply_mixer_expectation_block(self, block: np.ndarray,
                                       gammas: np.ndarray | None,
                                       betas: np.ndarray, op: Any,
                                       scratch: np.ndarray | None,
                                       costs: np.ndarray, plan: Any) -> np.ndarray:
        """FusedMixerExpectationOp kernel: reduce out of the ping-pong buffer.

        The final mixer's copy-back is skipped (``copy_back=False`` returns
        whichever of block/scratch holds the result) and the expectation is
        reduced straight from it — one full state-block write saved.
        """
        if gammas is not None:
            out = furx_phase_all_batch(block, gammas, betas, self._n_qubits,
                                       phase_table=plan.phase_tables,
                                       costs=self._phase_costs(), scratch=scratch,
                                       phase_buf=self._gather_buffer(),
                                       copy_back=False)
        else:
            out = furx_all_batch(block, betas, self._n_qubits, scratch=scratch,
                                 copy_back=False)
        self._phase_buf = None
        return _block_expectations(out, costs)


class QAOAFURXYRingSimulator(_QAOAFURPythonSimulatorBase):
    """QAOA with the ring XY mixer (Hamming-weight preserving, NumPy)."""

    mixer_name = "xyring"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            furxy_ring(sv, beta / n_trotters, self._n_qubits)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        for _ in range(n_trotters):
            furxy_ring_batch(block, betas / n_trotters, self._n_qubits)


class QAOAFURXYCompleteSimulator(_QAOAFURPythonSimulatorBase):
    """QAOA with the complete-graph XY mixer (Hamming-weight preserving, NumPy)."""

    mixer_name = "xycomplete"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            furxy_complete(sv, beta / n_trotters, self._n_qubits)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        for _ in range(n_trotters):
            furxy_complete_batch(block, betas / n_trotters, self._n_qubits)
