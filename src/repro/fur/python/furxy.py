"""Hamming-weight-preserving XY mixers (ring and complete graphs).

Besides the transverse-field mixer, the paper implements the XY mixer with
Hamiltonian ``M = Σ_{<i,j>} (X_i X_j + Y_i Y_j)/2`` for ``<i,j>`` ranging over
the edges of a ring or of the complete graph (Sec. III-B).  The two-qubit
factor ``exp(-i β (XX + YY)/2)`` acts as the identity on ``|00>`` and ``|11>``
and as the SU(2) rotation ``[[cos β, −i sin β], [−i sin β, cos β]]`` on the
``{|01>, |10>}`` subspace — hence it never changes the Hamming weight of a
basis state, which is what enforces cardinality constraints (e.g. the
portfolio budget) without penalty terms.

As in QOKit, the mixer is applied as an *ordered product* of these two-qubit
rotations (a first-order Trotterization of the summed Hamiltonian); the same
ordering is used by the gate-based baseline so cross-backend tests compare the
exact same unitary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "apply_xy_su2",
    "furxy",
    "furxy_ring",
    "furxy_complete",
    "ring_edges",
    "complete_edges",
]


def ring_edges(n_qubits: int) -> list[tuple[int, int]]:
    """Edge ordering of the ring XY mixer: (0,1), (1,2), …, (n−2,n−1), (n−1,0)."""
    if n_qubits < 2:
        raise ValueError("XY ring mixer needs at least 2 qubits")
    edges = [(i, i + 1) for i in range(n_qubits - 1)]
    if n_qubits > 2:
        edges.append((n_qubits - 1, 0))
    return edges


def complete_edges(n_qubits: int) -> list[tuple[int, int]]:
    """Edge ordering of the complete-graph XY mixer: all (i, j), i < j, lexicographic."""
    if n_qubits < 2:
        raise ValueError("XY complete mixer needs at least 2 qubits")
    return [(i, j) for i in range(n_qubits) for j in range(i + 1, n_qubits)]


def apply_xy_su2(statevector: np.ndarray, a: complex, b: complex,
                 qubit_i: int, qubit_j: int) -> np.ndarray:
    """Apply an SU(2) rotation on the ``{|01>, |10>}`` subspace of two qubits.

    The rotation ``[[a, −b*], [b, a*]]`` mixes the amplitude with
    ``bit_i = 1, bit_j = 0`` (first basis vector) and ``bit_i = 0, bit_j = 1``
    (second); amplitudes with equal bits are untouched.  This is the SU(4)
    extension of Algorithm 1 mentioned in the paper, specialized to the
    Hamming-weight-preserving block structure.
    """
    if qubit_i == qubit_j:
        raise ValueError("XY rotation requires two distinct qubits")
    n_states = statevector.shape[0]
    lo_q, hi_q = (qubit_i, qubit_j) if qubit_i < qubit_j else (qubit_j, qubit_i)
    if (1 << (hi_q + 1)) > n_states:
        raise ValueError(f"qubit {hi_q} out of range for state vector of length {n_states}")
    # Axis layout: (top, bit hi_q, mid, bit lo_q, low)
    view = statevector.reshape(-1, 2, 1 << (hi_q - lo_q - 1), 2, 1 << lo_q)
    # Amplitude with bit_i = 1, bit_j = 0 / bit_i = 0, bit_j = 1, respecting
    # which of (i, j) is the high/low axis.
    if qubit_i > qubit_j:  # qubit_i is hi_q
        amp_10 = view[:, 1, :, 0, :]
        amp_01 = view[:, 0, :, 1, :]
    else:  # qubit_j is hi_q
        amp_10 = view[:, 0, :, 1, :]
        amp_01 = view[:, 1, :, 0, :]
    tmp = amp_10.copy()
    amp_10 *= a
    amp_10 -= np.conj(b) * amp_01
    amp_01 *= np.conj(a)
    amp_01 += b * tmp
    return statevector


def furxy(statevector: np.ndarray, beta: float, qubit_i: int, qubit_j: int) -> np.ndarray:
    """Apply ``exp(-i β (X_i X_j + Y_i Y_j)/2)``, in place."""
    a = complex(np.cos(beta))
    b = -1j * complex(np.sin(beta))
    return apply_xy_su2(statevector, a, b, qubit_i, qubit_j)


def furxy_ring(statevector: np.ndarray, beta: float, n_qubits: int) -> np.ndarray:
    """Apply the ring XY mixer (Trotterized), in place."""
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    for i, j in ring_edges(n_qubits):
        furxy(statevector, beta, i, j)
    return statevector


def furxy_complete(statevector: np.ndarray, beta: float, n_qubits: int) -> np.ndarray:
    """Apply the complete-graph XY mixer (Trotterized), in place."""
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    for i, j in complete_edges(n_qubits):
        furxy(statevector, beta, i, j)
    return statevector
