"""Hamming-weight-preserving XY mixers (ring and complete graphs).

Besides the transverse-field mixer, the paper implements the XY mixer with
Hamiltonian ``M = Σ_{<i,j>} (X_i X_j + Y_i Y_j)/2`` for ``<i,j>`` ranging over
the edges of a ring or of the complete graph (Sec. III-B).  The two-qubit
factor ``exp(-i β (XX + YY)/2)`` acts as the identity on ``|00>`` and ``|11>``
and as the SU(2) rotation ``[[cos β, −i sin β], [−i sin β, cos β]]`` on the
``{|01>, |10>}`` subspace — hence it never changes the Hamming weight of a
basis state, which is what enforces cardinality constraints (e.g. the
portfolio budget) without penalty terms.

As in QOKit, the mixer is applied as an *ordered product* of these two-qubit
rotations (a first-order Trotterization of the summed Hamiltonian); the same
ordering is used by the gate-based baseline so cross-backend tests compare the
exact same unitary.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "apply_xy_su2",
    "apply_xy_su2_batch",
    "furxy",
    "furxy_ring",
    "furxy_ring_batch",
    "furxy_complete",
    "furxy_complete_batch",
    "ring_edges",
    "complete_edges",
]


def ring_edges(n_qubits: int) -> list[tuple[int, int]]:
    """Edge ordering of the ring XY mixer: (0,1), (1,2), …, (n−2,n−1), (n−1,0)."""
    if n_qubits < 2:
        raise ValueError("XY ring mixer needs at least 2 qubits")
    edges = [(i, i + 1) for i in range(n_qubits - 1)]
    if n_qubits > 2:
        edges.append((n_qubits - 1, 0))
    return edges


def complete_edges(n_qubits: int) -> list[tuple[int, int]]:
    """Edge ordering of the complete-graph XY mixer: all (i, j), i < j, lexicographic."""
    if n_qubits < 2:
        raise ValueError("XY complete mixer needs at least 2 qubits")
    return [(i, j) for i in range(n_qubits) for j in range(i + 1, n_qubits)]


def apply_xy_su2(statevector: np.ndarray, a: complex, b: complex,
                 qubit_i: int, qubit_j: int) -> np.ndarray:
    """Apply an SU(2) rotation on the ``{|01>, |10>}`` subspace of two qubits.

    The rotation ``[[a, −b*], [b, a*]]`` mixes the amplitude with
    ``bit_i = 1, bit_j = 0`` (first basis vector) and ``bit_i = 0, bit_j = 1``
    (second); amplitudes with equal bits are untouched.  This is the SU(4)
    extension of Algorithm 1 mentioned in the paper, specialized to the
    Hamming-weight-preserving block structure.
    """
    if qubit_i == qubit_j:
        raise ValueError("XY rotation requires two distinct qubits")
    n_states = statevector.shape[0]
    lo_q, hi_q = (qubit_i, qubit_j) if qubit_i < qubit_j else (qubit_j, qubit_i)
    if (1 << (hi_q + 1)) > n_states:
        raise ValueError(f"qubit {hi_q} out of range for state vector of length {n_states}")
    # State-dtype coefficients keep the update free of widened temporaries.
    a = statevector.dtype.type(a)
    b = statevector.dtype.type(b)
    # Axis layout: (top, bit hi_q, mid, bit lo_q, low)
    view = statevector.reshape(-1, 2, 1 << (hi_q - lo_q - 1), 2, 1 << lo_q)
    # Amplitude with bit_i = 1, bit_j = 0 / bit_i = 0, bit_j = 1, respecting
    # which of (i, j) is the high/low axis.
    if qubit_i > qubit_j:  # qubit_i is hi_q
        amp_10 = view[:, 1, :, 0, :]
        amp_01 = view[:, 0, :, 1, :]
    else:  # qubit_j is hi_q
        amp_10 = view[:, 0, :, 1, :]
        amp_01 = view[:, 1, :, 0, :]
    tmp = amp_10.copy()
    amp_10 *= a
    amp_10 -= np.conj(b) * amp_01
    amp_01 *= np.conj(a)
    amp_01 += b * tmp
    return statevector


def furxy(statevector: np.ndarray, beta: float, qubit_i: int, qubit_j: int) -> np.ndarray:
    """Apply ``exp(-i β (X_i X_j + Y_i Y_j)/2)``, in place."""
    a = complex(np.cos(beta))
    b = -1j * complex(np.sin(beta))
    return apply_xy_su2(statevector, a, b, qubit_i, qubit_j)


# ---------------------------------------------------------------------------
# Batched kernels — one NumPy op covers a whole (B, 2^n) block of states.
# ---------------------------------------------------------------------------

def _batch_xy_coefficient(coeff: complex | np.ndarray, rows: int,
                          dtype: np.dtype) -> np.ndarray:
    """Normalize a coefficient to a scalar or (rows, 1, 1, 1) broadcaster.

    Cast to the block's complex dtype so the update runs at state precision.
    """
    arr = np.asarray(coeff, dtype=dtype)
    if arr.ndim == 0:
        return arr[()]
    if arr.shape != (rows,):
        raise ValueError(f"coefficient batch has shape {arr.shape}, expected ({rows},)")
    return arr.reshape(rows, 1, 1, 1)


def apply_xy_su2_batch(block: np.ndarray, a: complex | np.ndarray,
                       b: complex | np.ndarray,
                       qubit_i: int, qubit_j: int) -> np.ndarray:
    """Batched ``{|01>, |10>}``-subspace rotation on every row of a block.

    The ``(B, 2^n)`` block is reshaped to
    ``(B, top, 2, mid, 2, low)`` so one vectorized update covers all rows;
    ``a`` and ``b`` may be scalars or length-``B`` arrays (one rotation per
    schedule, broadcast along the state axes).
    """
    if block.ndim != 2:
        raise ValueError(f"batched kernel expects a (B, 2^n) block, got shape {block.shape}")
    if qubit_i == qubit_j:
        raise ValueError("XY rotation requires two distinct qubits")
    rows, n_states = block.shape
    lo_q, hi_q = (qubit_i, qubit_j) if qubit_i < qubit_j else (qubit_j, qubit_i)
    if (1 << (hi_q + 1)) > n_states:
        raise ValueError(f"qubit {hi_q} out of range for state vectors of length {n_states}")
    view = block.reshape(rows, -1, 2, 1 << (hi_q - lo_q - 1), 2, 1 << lo_q)
    if qubit_i > qubit_j:  # qubit_i is hi_q
        amp_10 = view[:, :, 1, :, 0, :]
        amp_01 = view[:, :, 0, :, 1, :]
    else:  # qubit_j is hi_q
        amp_10 = view[:, :, 0, :, 1, :]
        amp_01 = view[:, :, 1, :, 0, :]
    a_c = _batch_xy_coefficient(a, rows, block.dtype)
    b_c = _batch_xy_coefficient(b, rows, block.dtype)
    tmp = amp_10.copy()
    amp_10 *= a_c
    amp_10 -= np.conjugate(b_c) * amp_01
    amp_01 *= np.conjugate(a_c)
    amp_01 += b_c * tmp
    return block


def furxy_ring_batch(block: np.ndarray, betas: np.ndarray, n_qubits: int) -> np.ndarray:
    """Batched ring XY mixer: ``exp(-i β_b M_ring)`` on every row, in place."""
    rows, a, b = _validate_furxy_batch(block, betas, n_qubits)
    for i, j in ring_edges(n_qubits):
        apply_xy_su2_batch(block, a, b, i, j)
    return block


def furxy_complete_batch(block: np.ndarray, betas: np.ndarray, n_qubits: int) -> np.ndarray:
    """Batched complete-graph XY mixer on every row, in place."""
    rows, a, b = _validate_furxy_batch(block, betas, n_qubits)
    for i, j in complete_edges(n_qubits):
        apply_xy_su2_batch(block, a, b, i, j)
    return block


def _validate_furxy_batch(block: np.ndarray, betas: np.ndarray,
                          n_qubits: int) -> tuple[int, np.ndarray, np.ndarray]:
    if block.ndim != 2 or block.shape[1] != (1 << n_qubits):
        raise ValueError(
            f"batched kernel expects a (B, {1 << n_qubits}) block, got shape {block.shape}"
        )
    rows = block.shape[0]
    betas_arr = np.broadcast_to(np.asarray(betas, dtype=np.float64), (rows,))
    return rows, np.cos(betas_arr).astype(np.complex128), \
        (-1j * np.sin(betas_arr)).astype(np.complex128)


def furxy_ring(statevector: np.ndarray, beta: float, n_qubits: int) -> np.ndarray:
    """Apply the ring XY mixer (Trotterized), in place."""
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    for i, j in ring_edges(n_qubits):
        furxy(statevector, beta, i, j)
    return statevector


def furxy_complete(statevector: np.ndarray, beta: float, n_qubits: int) -> np.ndarray:
    """Apply the complete-graph XY mixer (Trotterized), in place."""
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    for i, j in complete_edges(n_qubits):
        furxy(statevector, beta, i, j)
    return statevector
