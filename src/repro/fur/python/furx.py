"""Fast uniform SU(2) rotations on a state vector (Algorithms 1 and 2).

These kernels implement the paper's mixer-application primitive: a single
SU(2) rotation applied to one qubit of a 2^n state vector, in place
(Algorithm 1), and the "uniform" transform applying the same rotation to every
qubit in sequence (Algorithm 2).  For the transverse-field mixer
``exp(-i β Σ_i X_i)`` the per-qubit rotation is ``exp(-i β X)``; one full pass
over all qubits has the same cost as one fast Walsh–Hadamard transform, which
is the minimum possible for an operator coupling all 2^n amplitudes.

The NumPy implementation reshapes the state vector so the target qubit becomes
an explicit axis and updates the two half-slices with vectorized arithmetic.
The update uses a single temporary of half the state-vector size (the paper's
CUDA kernel updates amplitude pairs truly in place; in NumPy a half-slice
temporary is the idiomatic equivalent — see ``repro.fur.cvect`` for the
cache-blocked variant that bounds the temporary size).
"""

from __future__ import annotations

import cmath

import numpy as np

__all__ = [
    "apply_su2",
    "furx",
    "furx_all",
    "su2_x_rotation",
    "fwht_inplace",
]


def su2_x_rotation(beta: float) -> tuple[complex, complex]:
    """SU(2) parameters ``(a, b)`` of ``exp(-i β X)``.

    The gate is ``cos(β) I − i sin(β) X``; in the paper's parameterization
    ``U = [[a, −b*], [b, a*]]`` this is ``a = cos β``, ``b = −i sin β``.
    """
    return complex(np.cos(beta)), -1j * complex(np.sin(beta))


def apply_su2(statevector: np.ndarray, a: complex, b: complex, qubit: int) -> np.ndarray:
    """Apply ``U = [[a, −b*], [b, a*]]`` to ``qubit`` of ``statevector``, in place.

    This is Algorithm 1 with the index arithmetic replaced by a reshape: axis
    layout ``(high bits, target bit, low bits)`` exposes the amplitude pairs
    ``(y_{l1}, y_{l2})`` as two contiguous slabs.

    Parameters
    ----------
    statevector:
        Complex array of length 2^n, modified in place and also returned.
    a, b:
        SU(2) matrix entries (``|a|² + |b|² = 1`` for a unitary; not enforced,
        which allows non-unitary SU(2)-shaped updates in tests).
    qubit:
        Target qubit, with qubit ``q`` addressing stride ``2**q``.
    """
    n_states = statevector.shape[0]
    stride = 1 << qubit
    if qubit < 0 or stride * 2 > n_states:
        raise ValueError(f"qubit {qubit} out of range for state vector of length {n_states}")
    view = statevector.reshape(-1, 2, stride)
    lo = view[:, 0, :]
    hi = view[:, 1, :]
    tmp = lo.copy()
    # y_l1 <- a*y_l1 - b*.y_l2 ; y_l2 <- b*y_l1_old + a*.y_l2   (simultaneous)
    lo *= a
    lo -= np.conj(b) * hi
    hi *= np.conj(a)
    hi += b * tmp
    return statevector


def furx(statevector: np.ndarray, beta: float, qubit: int) -> np.ndarray:
    """Apply ``exp(-i β X)`` to a single qubit, in place (one mixer factor)."""
    a, b = su2_x_rotation(beta)
    return apply_su2(statevector, a, b, qubit)


def furx_all(statevector: np.ndarray, beta: float, n_qubits: int) -> np.ndarray:
    """Apply the full transverse-field mixer ``exp(-i β Σ_i X_i)``, in place.

    This is Algorithm 2: the product of commuting single-qubit rotations is
    applied one qubit at a time.  At ``β = π/2`` the operation reduces (up to a
    global phase) to the Walsh–Hadamard transform, the connection highlighted
    in Sec. III-B of the paper.
    """
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    a, b = su2_x_rotation(beta)
    for q in range(n_qubits):
        apply_su2(statevector, a, b, q)
    return statevector


def fwht_inplace(vector: np.ndarray) -> np.ndarray:
    """Unnormalized fast Walsh–Hadamard transform, in place.

    Provided for the mixer-strategy ablation (Sec. VII discusses the
    alternative of simulating the mixer with two WHTs sandwiching a diagonal):
    ``exp(-i β Σ X_i) = H^{⊗n} · exp(-i β Σ Z_i) · H^{⊗n}``.  The butterfly
    below is the standard radix-2 transform with the same access pattern as
    :func:`apply_su2`.
    """
    n_states = vector.shape[0]
    if n_states & (n_states - 1):
        raise ValueError("FWHT requires a power-of-two length")
    h = 1
    while h < n_states:
        view = vector.reshape(-1, 2, h)
        lo = view[:, 0, :].copy()
        hi = view[:, 1, :]
        view[:, 0, :] = lo + hi
        view[:, 1, :] = lo - hi
        h *= 2
    return vector
