"""Fast uniform SU(2) rotations on a state vector (Algorithms 1 and 2).

These kernels implement the paper's mixer-application primitive: a single
SU(2) rotation applied to one qubit of a 2^n state vector, in place
(Algorithm 1), and the "uniform" transform applying the same rotation to every
qubit in sequence (Algorithm 2).  For the transverse-field mixer
``exp(-i β Σ_i X_i)`` the per-qubit rotation is ``exp(-i β X)``; one full pass
over all qubits has the same cost as one fast Walsh–Hadamard transform, which
is the minimum possible for an operator coupling all 2^n amplitudes.

The NumPy implementation reshapes the state vector so the target qubit becomes
an explicit axis and updates the two half-slices with vectorized arithmetic.
The update uses a single temporary of half the state-vector size (the paper's
CUDA kernel updates amplitude pairs truly in place; in NumPy a half-slice
temporary is the idiomatic equivalent — see ``repro.fur.cvect`` for the
cache-blocked variant that bounds the temporary size).
"""

from __future__ import annotations

import cmath

import numpy as np

__all__ = [
    "apply_su2",
    "apply_su2_batch",
    "furx",
    "furx_all",
    "furx_all_batch",
    "furx_phase_all_batch",
    "su2_x_rotation",
    "su2_x_rotation_batch",
    "fwht_inplace",
]

#: Qubits fused per gemm pass of the batched mixer (2^4 = 16-dim group
#: unitaries keep the matmul arithmetic-intensity high without blowing up the
#: 2^k per-group flop count).
BATCH_GROUP_QUBITS: int = 4


def su2_x_rotation(beta: float) -> tuple[complex, complex]:
    """SU(2) parameters ``(a, b)`` of ``exp(-i β X)``.

    The gate is ``cos(β) I − i sin(β) X``; in the paper's parameterization
    ``U = [[a, −b*], [b, a*]]`` this is ``a = cos β``, ``b = −i sin β``.
    """
    return complex(np.cos(beta)), -1j * complex(np.sin(beta))


def apply_su2(statevector: np.ndarray, a: complex, b: complex, qubit: int) -> np.ndarray:
    """Apply ``U = [[a, −b*], [b, a*]]`` to ``qubit`` of ``statevector``, in place.

    This is Algorithm 1 with the index arithmetic replaced by a reshape: axis
    layout ``(high bits, target bit, low bits)`` exposes the amplitude pairs
    ``(y_{l1}, y_{l2})`` as two contiguous slabs.

    Parameters
    ----------
    statevector:
        Complex array of length 2^n, modified in place and also returned.
    a, b:
        SU(2) matrix entries (``|a|² + |b|² = 1`` for a unitary; not enforced,
        which allows non-unitary SU(2)-shaped updates in tests).
    qubit:
        Target qubit, with qubit ``q`` addressing stride ``2**q``.
    """
    n_states = statevector.shape[0]
    stride = 1 << qubit
    if qubit < 0 or stride * 2 > n_states:
        raise ValueError(f"qubit {qubit} out of range for state vector of length {n_states}")
    # Cast the coefficients to the state dtype so complex64 states never pay
    # for widened complex128 temporaries in the pair update.
    a = statevector.dtype.type(a)
    b = statevector.dtype.type(b)
    view = statevector.reshape(-1, 2, stride)
    lo = view[:, 0, :]
    hi = view[:, 1, :]
    tmp = lo.copy()
    # y_l1 <- a*y_l1 - b*.y_l2 ; y_l2 <- b*y_l1_old + a*.y_l2   (simultaneous)
    lo *= a
    lo -= np.conj(b) * hi
    hi *= np.conj(a)
    hi += b * tmp
    return statevector


def furx(statevector: np.ndarray, beta: float, qubit: int) -> np.ndarray:
    """Apply ``exp(-i β X)`` to a single qubit, in place (one mixer factor)."""
    a, b = su2_x_rotation(beta)
    return apply_su2(statevector, a, b, qubit)


def furx_all(statevector: np.ndarray, beta: float, n_qubits: int) -> np.ndarray:
    """Apply the full transverse-field mixer ``exp(-i β Σ_i X_i)``, in place.

    This is Algorithm 2: the product of commuting single-qubit rotations is
    applied one qubit at a time.  At ``β = π/2`` the operation reduces (up to a
    global phase) to the Walsh–Hadamard transform, the connection highlighted
    in Sec. III-B of the paper.
    """
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    a, b = su2_x_rotation(beta)
    for q in range(n_qubits):
        apply_su2(statevector, a, b, q)
    return statevector


# ---------------------------------------------------------------------------
# Batched kernels — one NumPy op covers a whole (B, 2^n) block of states.
# ---------------------------------------------------------------------------

def su2_x_rotation_batch(betas: np.ndarray,
                         dtype: np.dtype | type = np.complex128
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Per-schedule SU(2) parameters ``(a_b, b_b)`` of ``exp(-i β_b X)``."""
    b_arr = np.asarray(betas, dtype=np.float64)
    return (np.cos(b_arr).astype(dtype),
            (-1j * np.sin(b_arr)).astype(dtype))


def _batch_coefficient(coeff: complex | np.ndarray, rows: int,
                       dtype: np.dtype) -> np.ndarray:
    """Normalize an SU(2) coefficient to a scalar or (rows, 1, 1) broadcaster.

    The coefficient is cast to the block's complex dtype so the pair update
    runs entirely at state precision.
    """
    arr = np.asarray(coeff, dtype=dtype)
    if arr.ndim == 0:
        return arr[()]
    if arr.shape != (rows,):
        raise ValueError(f"coefficient batch has shape {arr.shape}, expected ({rows},)")
    return arr.reshape(rows, 1, 1)


def apply_su2_batch(block: np.ndarray, a: complex | np.ndarray,
                    b: complex | np.ndarray, qubit: int) -> np.ndarray:
    """Batched Algorithm 1: apply ``[[a, −b*], [b, a*]]`` to one qubit of every row.

    ``block`` is a C-contiguous ``(B, 2^n)`` array (one state per row); the
    reshape to ``(B, high, 2, stride)`` exposes all ``B`` amplitude-pair slabs
    to a single vectorized update.  ``a`` and ``b`` may be scalars (same
    rotation on every row) or length-``B`` arrays (one rotation per schedule,
    broadcast along the state axes).
    """
    if block.ndim != 2:
        raise ValueError(f"batched kernel expects a (B, 2^n) block, got shape {block.shape}")
    rows, n_states = block.shape
    stride = 1 << qubit
    if qubit < 0 or stride * 2 > n_states:
        raise ValueError(f"qubit {qubit} out of range for state vectors of length {n_states}")
    view = block.reshape(rows, -1, 2, stride)
    lo = view[:, :, 0, :]
    hi = view[:, :, 1, :]
    a_c = _batch_coefficient(a, rows, block.dtype)
    b_c = _batch_coefficient(b, rows, block.dtype)
    tmp = lo.copy()
    lo *= a_c
    lo -= np.conjugate(b_c) * hi
    hi *= np.conjugate(a_c)
    hi += b_c * tmp
    return block


def _su2_batch_matrices(betas: np.ndarray,
                        dtype: np.dtype | type = np.complex128) -> np.ndarray:
    """Stacked single-qubit mixers ``exp(-i β_b X)``, shape (B, 2, 2)."""
    a, b = su2_x_rotation_batch(betas, dtype=dtype)
    u = np.empty((a.shape[0], 2, 2), dtype=dtype)
    u[:, 0, 0] = a
    u[:, 1, 1] = a
    u[:, 0, 1] = b
    u[:, 1, 0] = b
    return u


def _group_kron(u: np.ndarray, k: int) -> np.ndarray:
    """Row-wise ``u ⊗ … ⊗ u`` (k factors), shape (B, 2^k, 2^k).

    All factors are equal, so the qubit-ordering of the Kronecker product is
    irrelevant; the result is the group unitary on ``k`` adjacent qubits.
    """
    out = u
    for _ in range(k - 1):
        d = out.shape[1]
        out = (out[:, :, None, :, None] * u[:, None, :, None, :]).reshape(-1, 2 * d, 2 * d)
    return out


def furx_all_batch(block: np.ndarray, betas: np.ndarray, n_qubits: int, *,
                   group_size: int = BATCH_GROUP_QUBITS,
                   scratch: np.ndarray | None = None,
                   copy_back: bool = True) -> np.ndarray:
    """Batched Algorithm 2: ``exp(-i β_b Σ_i X_i)`` on every row of a block.

    Instead of 2×2 pair updates (one memory sweep per qubit), qubits are fused
    into groups of ``group_size``: each pass contracts a ``(2^k, 2^k)``
    per-row group unitary against the block via one stacked ``matmul``, which
    cuts the number of full-block memory sweeps by ``group_size`` and turns
    the mixer into gemm work.  Passes ping-pong between ``block`` and
    ``scratch``; the final result is always written back into ``block``
    (modified in place and returned), unless ``copy_back=False`` — then the
    buffer holding the result is returned without the write-back (read-only
    consumers like the fused expectation reduction skip a full block sweep).

    ``scratch`` must be a buffer with ``block``'s shape and dtype (allocated
    here when omitted; callers evolving many layers should preallocate one).
    """
    rows, _ = _validate_group_kernel_block(block, n_qubits, group_size)
    betas_arr = np.broadcast_to(np.asarray(betas, dtype=np.float64), (rows,))
    # Group unitaries at the block's dtype: the stacked matmuls then dispatch
    # to the matching-precision gemm instead of a widened fallback.
    u = _su2_batch_matrices(betas_arr, dtype=block.dtype)
    scratch = _check_scratch(block, scratch)
    return _group_pass_loop(block, scratch, u, n_qubits, 0, group_size,
                            copy_back=copy_back)


def _validate_group_kernel_block(block: np.ndarray, n_qubits: int,
                                 group_size: int) -> tuple[int, int]:
    """Shared argument validation of the gemm-grouped batch kernels."""
    if block.ndim != 2:
        raise ValueError(f"batched kernel expects a (B, 2^n) block, got shape {block.shape}")
    rows, n_states = block.shape
    if n_states != (1 << n_qubits):
        raise ValueError(
            f"state vectors of length {n_states} do not match n={n_qubits}"
        )
    if group_size < 1:
        raise ValueError("group_size must be at least 1")
    return rows, n_states


def _check_scratch(block: np.ndarray, scratch: np.ndarray | None) -> np.ndarray:
    if scratch is None:
        return np.empty_like(block)
    if scratch.shape != block.shape or scratch.dtype != block.dtype:
        raise ValueError("scratch must match the block's shape and dtype")
    return scratch


def _group_pass_loop(block: np.ndarray, scratch: np.ndarray, u: np.ndarray,
                     n_qubits: int, q_start: int, group_size: int,
                     start_in_scratch: bool = False,
                     copy_back: bool = True) -> np.ndarray:
    """The gemm-grouped pass loop over qubits ``q_start … n−1``.

    Passes ping-pong between ``block`` and ``scratch``; the final result is
    written back into ``block`` — unless ``copy_back=False``, in which case
    the buffer actually holding the result (``block`` or ``scratch``) is
    returned as-is, saving a full block write+read when the caller only
    *reads* the result (the fused mixer→expectation reduction).
    ``start_in_scratch`` indicates the current state lives in ``scratch``
    (used by the fused phase kernel, whose phase multiply lands there).
    """
    rows, n_states = block.shape
    src, dst = (scratch, block) if start_in_scratch else (block, scratch)
    q = q_start
    while q < n_qubits:
        k = min(group_size, n_qubits - q)
        group_u = _group_kron(u, k)
        dim = 1 << k
        stride = 1 << q
        groups = n_states // (dim * stride)
        if stride == 1:
            # Group axis is contiguous-last: one big (rows·groups, dim) gemm
            # per row against U^T beats a degenerate stride-1 stacked matmul.
            np.matmul(src.reshape(rows, groups, dim), group_u.transpose(0, 2, 1),
                      out=dst.reshape(rows, groups, dim))
        else:
            np.matmul(group_u[:, None], src.reshape(rows, groups, dim, stride),
                      out=dst.reshape(rows, groups, dim, stride))
        src, dst = dst, src
        q += k
    if src is not block and copy_back:
        np.copyto(block, src)
        return block
    return src


#: Amplitudes (summed over all rows) per chunk of the fused phase+first-pass
#: sweep — ~4 MiB of complex128 (8192 columns at the benchmark's B=32), the
#: measured sweet spot where the freshly phased chunk is still cache-warm for
#: the first group gemm while the per-chunk dispatch overhead stays amortized.
_FUSED_PHASE_CHUNK: int = 1 << 18


def furx_phase_all_batch(block: np.ndarray, gammas: np.ndarray, betas: np.ndarray,
                         n_qubits: int, *,
                         phase_table=None, costs: np.ndarray | None = None,
                         group_size: int = BATCH_GROUP_QUBITS,
                         scratch: np.ndarray | None = None,
                         phase_buf: np.ndarray | None = None,
                         chunk: int = _FUSED_PHASE_CHUNK,
                         copy_back: bool = True) -> np.ndarray:
    """Fused layer kernel: per-row ``exp(-i β_b Σ X_i) · exp(-i γ_b C)``.

    The separate batched phase sweep re-streams the whole ``(B, 2^n)`` block
    through memory before the mixer touches it; here the phase rides the
    mixer's chunk traversal instead.  The state axis is walked in cache-
    sized column chunks: each chunk is phased in place (factors gathered
    from the unique-value table when one applies, direct ``exp`` over
    ``costs`` otherwise) and the mixer's leading stride-1 group gemm runs on
    it immediately, reading the freshly phased chunk cache-hot through a
    contiguous view — phase + first pass stream the block exactly once.
    Only that leading pass joins the chunk loop: chunking the wider-stride
    passes splits them into strided sub-gemms that fall off the BLAS fast
    path and cost more than the cache locality buys (measured).  The
    remaining passes run the standard ping-pong loop, with the chunk-local
    pass alternating buffers exactly like the global loop would — parity
    works out with no extra copy-back.  ``phase_buf``
    optionally supplies the per-chunk gather buffer (callers on the hot
    path pass a persistent one — the workspace scratch or the simulator's
    phase buffer — so warmed-up layers allocate nothing).  Numerics are
    identical to ``apply_phase`` followed by :func:`furx_all_batch`: the
    batched group gemms are per-group independent, so chunking the group
    axis does not change a single floating-point operation.
    """
    rows, n_states = _validate_group_kernel_block(block, n_qubits, group_size)
    if phase_table is None and costs is None:
        raise ValueError("provide a phase_table or a costs diagonal")
    gammas_arr = np.broadcast_to(np.asarray(gammas, dtype=np.float64), (rows,))
    betas_arr = np.broadcast_to(np.asarray(betas, dtype=np.float64), (rows,))
    u = _su2_batch_matrices(betas_arr, dtype=block.dtype)
    scratch = _check_scratch(block, scratch)
    if phase_table is not None:
        factors = phase_table.factors_batch(gammas_arr, dtype=block.dtype)
        inverse = phase_table.inverse
    else:
        coeff = (-1j * gammas_arr).astype(block.dtype)
    # Per-row chunk width: a power of two so every chunk-local pass's group
    # extent divides it, shrunk to a caller-provided gather buffer rather
    # than allocating a bigger one (warmed-up layers stay allocation-free).
    cols = max(1, chunk // max(rows, 1))
    cols = 1 << (cols.bit_length() - 1)
    if (phase_buf is not None and phase_buf.ndim == 1 and phase_buf.shape[0] >= 1
            and phase_buf.dtype == block.dtype):
        cols = min(cols, 1 << (int(phase_buf.shape[0]).bit_length() - 1))
        pbuf = phase_buf
    else:
        pbuf = None
    cols = min(cols, n_states)
    if pbuf is None or pbuf.shape[0] < cols:
        pbuf = np.empty(cols, dtype=block.dtype)
    # At most the leading stride-1 pass runs inside the chunk loop (see the
    # docstring for why wider-stride passes stay global).
    k = min(group_size, n_qubits)
    dim = 1 << k
    fuse_first_pass = dim <= cols
    if fuse_first_pass:
        gmat = _group_kron(u, k).transpose(0, 2, 1)
        view_src = block.reshape(rows, -1, dim)
        view_dst = scratch.reshape(rows, -1, dim)
    for s in range(0, n_states, cols):
        e = min(s + cols, n_states)
        buf = pbuf[: e - s]
        for r in range(rows):
            if phase_table is not None:
                np.take(factors[r], inverse[s:e], out=buf)
            else:
                np.multiply(costs[s:e], coeff[r], out=buf)
                np.exp(buf, out=buf)
            block[r, s:e] *= buf
        if fuse_first_pass:
            np.matmul(view_src[:, s // dim:e // dim], gmat,
                      out=view_dst[:, s // dim:e // dim])
    # Continue the ping-pong from wherever the fused pass left the state
    # (scratch when the first pass ran inside the chunk loop).
    return _group_pass_loop(block, scratch, u, n_qubits,
                            k if fuse_first_pass else 0, group_size,
                            start_in_scratch=fuse_first_pass,
                            copy_back=copy_back)


def fwht_inplace(vector: np.ndarray) -> np.ndarray:
    """Unnormalized fast Walsh–Hadamard transform, in place.

    Provided for the mixer-strategy ablation (Sec. VII discusses the
    alternative of simulating the mixer with two WHTs sandwiching a diagonal):
    ``exp(-i β Σ X_i) = H^{⊗n} · exp(-i β Σ Z_i) · H^{⊗n}``.  The butterfly
    below is the standard radix-2 transform with the same access pattern as
    :func:`apply_su2`.
    """
    n_states = vector.shape[0]
    if n_states & (n_states - 1):
        raise ValueError("FWHT requires a power-of-two length")
    h = 1
    while h < n_states:
        view = vector.reshape(-1, 2, h)
        lo = view[:, 0, :].copy()
        hi = view[:, 1, :]
        view[:, 0, :] = lo + hi
        view[:, 1, :] = lo - hi
        h *= 2
    return vector
