"""Capability tiers for simulator backends.

Not every simulator family can do everything the fastest ones can.  The FUR
state-vector backends materialise the full state, so they can return
statevectors, expectations and individual amplitudes; the tensor-network
backend contracts amplitudes one at a time and can therefore serve
expectation traffic but never hand back a ``2^n`` statevector.  Rather than
letting such requests fail deep inside the engine with an ``AttributeError``,
each backend declares a *capability tier* and the registry, the execution
engine and the serving layer all validate requests against it up front.

Tiers (ordered from most to least capable):

* ``full`` — statevector evolution, expectations and amplitudes.
* ``expectation-only`` — can reduce a schedule to ``<C>`` but cannot
  return the evolved state (e.g. tensor-network contraction).
* ``amplitude-only`` — can compute individual amplitudes only.

Operations are the verbs requests are validated against: ``statevector``,
``expectation`` and ``amplitude``.
"""

from __future__ import annotations

__all__ = [
    "CAPABILITY_TIERS",
    "CAPABILITY_OPERATIONS",
    "TIER_OPERATIONS",
    "UnsupportedCapabilityError",
    "resolve_capability_tier",
    "tier_supports",
    "require_capability",
]

CAPABILITY_TIERS = ("full", "expectation-only", "amplitude-only")

CAPABILITY_OPERATIONS = ("statevector", "expectation", "amplitude")

# Which operations each tier can serve.
TIER_OPERATIONS = {
    "full": frozenset({"statevector", "expectation", "amplitude"}),
    "expectation-only": frozenset({"expectation"}),
    "amplitude-only": frozenset({"amplitude"}),
}


class UnsupportedCapabilityError(RuntimeError):
    """A request needs an operation the chosen backend's tier cannot serve.

    Raised at admission/resolution/construction time (registry, engine entry
    points, serve routing) instead of surfacing as an ``AttributeError`` deep
    inside the engine.
    """


def resolve_capability_tier(tier: str) -> str:
    """Validate and canonicalise a capability-tier name."""
    if tier not in TIER_OPERATIONS:
        raise ValueError(
            f"unknown capability tier {tier!r}; expected one of {CAPABILITY_TIERS}"
        )
    return tier


def tier_supports(tier: str, operation: str) -> bool:
    """Whether ``tier`` can serve ``operation``."""
    if operation not in CAPABILITY_OPERATIONS:
        raise ValueError(
            f"unknown operation {operation!r}; expected one of {CAPABILITY_OPERATIONS}"
        )
    return operation in TIER_OPERATIONS[resolve_capability_tier(tier)]


def require_capability(obj, operation: str, *, backend: str | None = None) -> None:
    """Raise :class:`UnsupportedCapabilityError` unless ``obj`` supports ``operation``.

    ``obj`` is either a tier name or anything with a ``capability_tier``
    attribute (a simulator instance or class).  ``backend`` overrides the name
    used in the error message.
    """
    tier = obj if isinstance(obj, str) else getattr(obj, "capability_tier", "full")
    if tier_supports(tier, operation):
        return
    name = backend
    if name is None:
        name = getattr(obj, "backend_name", None) or type(obj).__name__
    raise UnsupportedCapabilityError(
        f"backend {name!r} is {tier!r} and cannot serve {operation!r} requests; "
        f"pick a backend from available_backends(capability={operation!r})"
    )
