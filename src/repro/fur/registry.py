"""Backend registry and the ``repro.simulator`` construction facade.

The paper's portability claim (Listings 1–3: identical user code across CPU,
GPU and distributed backends) is carried by a single extension point:

* :class:`BackendSpec` — capability metadata for one backend family: the
  mixers it implements, its device class, whether it is distributed, its
  capability tier (``full`` vs ``expectation-only`` vs ``amplitude-only`` —
  see :mod:`repro.fur.capabilities`), and a priority used to resolve
  ``backend="auto"``;
* :class:`BackendRegistry` — name/alias resolution, capability filtering and
  lazy loading over a set of specs;
* :func:`register_backend` — decorator through which backends self-register a
  lazy loader (the optional GPU/MPI families are only imported when first
  requested, so a missing optional dependency never breaks ``import repro``);
* :func:`simulator` — the one construction facade (re-exported as
  ``repro.simulator``) used by :func:`repro.qaoa.get_qaoa_objective`, the
  examples and the benchmark harness.

Typical use::

    import repro

    sim = repro.simulator(12, terms=terms)                  # fastest available
    sim = repro.simulator(12, terms=terms, backend="python")
    sim = repro.simulator(12, terms=terms, mixer="xyring")  # XY-ring mixer

Registering a new backend from outside the package::

    from repro.fur.registry import register_backend

    @register_backend("mybackend", mixers=("x",), device="cpu", priority=5)
    def _load_mybackend():
        from mypkg import MySimulator
        return {"x": MySimulator}

Installed third-party packages can skip the import-time registration call
entirely by advertising a :class:`BackendSpec` in the ``repro.fur.backends``
setuptools entry-point group; :func:`load_entry_point_backends` scans the
group once at ``repro.fur`` import time.
"""

from __future__ import annotations

import difflib
import inspect
import warnings
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

from .capabilities import (
    UnsupportedCapabilityError,
    resolve_capability_tier,
    tier_supports,
)
from .precision import KNOWN_PRECISIONS, resolve_precision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import QAOAFastSimulatorBase

__all__ = [
    "BackendSpec",
    "BackendRegistry",
    "UnsupportedBackendKwargError",
    "registry",
    "register_backend",
    "get_backend",
    "get_simulator_class",
    "available_backends",
    "simulator",
    "load_entry_point_backends",
    "ENTRY_POINT_GROUP",
]

#: setuptools entry-point group scanned for third-party backend specs.
ENTRY_POINT_GROUP = "repro.fur.backends"

#: Mixer families defined by the paper (transverse-field X, ring XY, complete XY).
KNOWN_MIXERS = ("x", "xyring", "xycomplete")

#: Loader signature: zero-argument callable returning mixer -> simulator class.
BackendLoader = Callable[[], dict[str, type]]


class UnsupportedBackendKwargError(TypeError):
    """A constructor kwarg was passed to a backend that does not accept it.

    Raised by the :func:`simulator` facade at resolution time — before the
    backend constructor runs — so a mis-targeted kwarg (``n_shards`` on a
    non-sharded backend, ``inner`` outside the sharded family, ...) surfaces
    as a typed error naming the backend and the backends that *do* accept
    the kwarg, instead of leaking the constructor's raw ``TypeError``.
    Subclasses ``TypeError`` so existing ``except TypeError`` call sites
    keep working.
    """


def _unexpected_constructor_kwargs(cls: type, kwargs: dict) -> list[str]:
    """Kwargs the backend class's constructor signature cannot bind.

    The constructor signature is authoritative (registry metadata is only
    used to phrase the error message).  A constructor taking ``**kwargs``
    validates its own keywords, so nothing is flagged for it; signatures
    that cannot be introspected are skipped the same way.
    """
    try:
        sig = inspect.signature(cls.__init__)
    except (TypeError, ValueError):  # pragma: no cover - C-level __init__
        return []
    params = sig.parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()):
        return []
    accepted = {name for name, p in params.items()
                if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                              inspect.Parameter.KEYWORD_ONLY)}
    return sorted(k for k in kwargs if k not in accepted)


@dataclass
class BackendSpec:
    """Capability metadata plus a lazy loader for one backend family.

    Parameters
    ----------
    name:
        Canonical backend name (``"c"``, ``"python"``, ``"gpu"``, ...).
    loader:
        Zero-argument callable returning ``{mixer_name: simulator_class}``.
        Called at most once on success; import errors are remembered so the
        ``auto`` resolution can skip unavailable backends cheaply.
    aliases:
        Alternative names accepted wherever a backend name is (QOKit
        compatibility names like ``"nbcuda"`` live here).
    mixers:
        Mixer names the family implements.
    device:
        Device class the state vector lives on (``"cpu"`` or ``"gpu"``).
    distributed:
        Whether the backend spreads the state over multiple ranks.  The
        ``auto`` resolution never picks a distributed backend implicitly.
    precisions:
        Simulation precisions the family implements (``"double"`` and/or
        ``"single"`` — see :mod:`repro.fur.precision`).  Defaults to
        double-only; backends must opt in to the complex64 path.
    capabilities:
        Capability tier (see :mod:`repro.fur.capabilities`): ``"full"``
        (statevector + expectation + amplitude), ``"expectation-only"``
        or ``"amplitude-only"``.  Resolution validates requests against it
        and ``auto`` only ever picks full-tier backends.
    plan_rewrites:
        Names of the plan-rewrite optimizer passes (:mod:`repro.fur.rewrite`)
        at least one of the family's simulator classes has kernels for
        (e.g. ``"fuse-phase-mixer"``, ``"coalesce-exchanges"``).  Capability
        *metadata* for introspection — the authoritative per-class gate is
        the provider attribute the pass checks at compile time (kernels may
        be mixer-specific).
    priority:
        Resolution order for ``backend="auto"`` — highest available priority
        wins.
    dynamic_priority:
        Optional zero-argument callable returning the priority ``auto``
        resolution should use *right now* (e.g. the ``jit`` family outranks
        ``c`` only while its compiled path is live and keeps its static rank
        on the numpy delegation rung).  Must be cheap — it runs on every
        ``auto`` resolution — and exceptions fall back to the static
        ``priority``.  ``names()``/``describe()`` keep the static order so
        introspection never triggers runtime probes.
    description:
        One-line human-readable summary (shown by ``describe()``).
    describe_extra:
        Optional zero-argument callable returning one extra runtime-state
        line for ``describe()`` (e.g. the ``jit`` family reports which
        implementation path is live and its effective thread count).
        Evaluated lazily, only when ``describe()`` is called.
    constructor_kwargs:
        Keyword arguments the family's simulator constructors accept beyond
        ``(n_qubits, terms, costs)`` — introspection *metadata* used by the
        :func:`simulator` facade to point a mis-targeted kwarg at the
        backends that do accept it (the constructors' signatures stay
        authoritative for what actually binds).
    """

    name: str
    loader: BackendLoader
    aliases: tuple[str, ...] = ()
    mixers: tuple[str, ...] = ("x",)
    device: str = "cpu"
    distributed: bool = False
    precisions: tuple[str, ...] = ("double",)
    capabilities: str = "full"
    plan_rewrites: tuple[str, ...] = ()
    priority: int = 0
    dynamic_priority: Callable[[], int] | None = None
    description: str = ""
    describe_extra: Callable[[], str] | None = None
    constructor_kwargs: tuple[str, ...] = ()
    _classes: dict[str, type] | None = field(default=None, repr=False)
    _load_error: BaseException | None = field(default=None, repr=False)

    def supports_mixer(self, mixer: str) -> bool:
        """Whether this family implements the given mixer."""
        return mixer in self.mixers

    def supports_precision(self, precision: str) -> bool:
        """Whether this family implements the given simulation precision."""
        return resolve_precision(precision).name in self.precisions

    def supports_capability(self, operation: str) -> bool:
        """Whether the family's tier serves one operation
        (``"statevector"``, ``"expectation"`` or ``"amplitude"``)."""
        return tier_supports(self.capabilities, operation)

    def supports_rewrite(self, name: str) -> bool:
        """Whether the family advertises kernels for one plan rewrite."""
        return name in self.plan_rewrites

    def effective_priority(self) -> int:
        """The priority ``auto`` resolution ranks this family at right now.

        Evaluates ``dynamic_priority`` when present; a probe that raises
        falls back to the static :attr:`priority` (resolution must never
        fail because a runtime probe did).
        """
        if self.dynamic_priority is not None:
            try:
                return int(self.dynamic_priority())
            except Exception:
                return self.priority
        return self.priority

    @property
    def available(self) -> bool:
        """Whether the backend's modules import successfully (cached)."""
        try:
            self.load()
        except Exception:
            return False
        return True

    def load(self) -> dict[str, type]:
        """Import the backend and return its mixer -> class mapping (cached)."""
        if self._classes is not None:
            return self._classes
        if self._load_error is not None:
            raise self._load_error
        try:
            classes = dict(self.loader())
        except Exception as exc:  # remember failures: auto must skip fast.
            # KeyboardInterrupt and friends propagate unmemoized so an
            # interrupted slow import can be retried later.
            self._load_error = exc
            raise
        missing = [m for m in self.mixers if m not in classes]
        if missing:
            raise RuntimeError(
                f"backend {self.name!r} declared mixers {sorted(missing)} "
                "but its loader did not provide them"
            )
        self._classes = classes
        return classes

    def simulator_class(self, mixer: str = "x") -> type[QAOAFastSimulatorBase]:
        """The simulator class for one mixer (loading the backend if needed)."""
        if not self.supports_mixer(mixer):
            raise ValueError(
                f"backend {self.name!r} does not implement the {mixer!r} mixer "
                f"(it implements: {', '.join(self.mixers)})"
            )
        return self.load()[mixer]


class BackendRegistry:
    """Name/alias resolution and capability filtering over backend specs."""

    def __init__(self) -> None:
        self._specs: dict[str, BackendSpec] = {}
        self._aliases: dict[str, str] = {}

    # -- registration --------------------------------------------------------
    def register(self, spec: BackendSpec, *, overwrite: bool = False) -> BackendSpec:
        """Add a backend spec; rejects name/alias collisions unless ``overwrite``."""
        if not overwrite:
            taken = self._specs.keys() | self._aliases.keys()
            clashes = {spec.name, *spec.aliases} & taken
            if clashes:
                raise ValueError(
                    f"backend name(s) already registered: {sorted(clashes)}"
                )
        if "auto" in (spec.name, *spec.aliases):
            raise ValueError("'auto' is reserved for automatic backend resolution")
        if spec.name in self._specs:  # overwrite: drop the old spec's aliases
            self.unregister(spec.name)
        self._specs[spec.name] = spec
        for alias in spec.aliases:
            self._aliases[alias] = spec.name
        return spec

    def unregister(self, name: str) -> None:
        """Remove a backend and its aliases (used by tests and plugins)."""
        spec = self._specs.pop(name, None)
        if spec is None:
            raise KeyError(f"backend {name!r} is not registered")
        for alias in spec.aliases:
            if self._aliases.get(alias) == name:
                del self._aliases[alias]

    def register_backend(self, name: str, *, aliases: Iterable[str] = (),
                         mixers: Iterable[str] = ("x",), device: str = "cpu",
                         distributed: bool = False,
                         precisions: Iterable[str] = ("double",),
                         capabilities: str = "full",
                         plan_rewrites: Iterable[str] = (),
                         priority: int = 0,
                         dynamic_priority: Callable[[], int] | None = None,
                         description: str = "",
                         describe_extra: Callable[[], str] | None = None,
                         constructor_kwargs: Iterable[str] = (),
                         overwrite: bool = False) -> Callable[[BackendLoader], BackendLoader]:
        """Decorator form of :meth:`register` for a lazy loader function.

        The decorated function is the backend's loader: called once, on first
        use, and must return ``{mixer_name: simulator_class}``.
        """

        def decorate(loader: BackendLoader) -> BackendLoader:
            self.register(
                BackendSpec(
                    name=name,
                    loader=loader,
                    aliases=tuple(aliases),
                    mixers=tuple(mixers),
                    device=device,
                    distributed=distributed,
                    precisions=tuple(resolve_precision(p).name for p in precisions),
                    capabilities=resolve_capability_tier(capabilities),
                    plan_rewrites=tuple(plan_rewrites),
                    priority=priority,
                    dynamic_priority=dynamic_priority,
                    description=description or (loader.__doc__ or "").strip().split("\n")[0],
                    describe_extra=describe_extra,
                    constructor_kwargs=tuple(constructor_kwargs),
                ),
                overwrite=overwrite,
            )
            return loader

        return decorate

    # -- inspection ----------------------------------------------------------
    def names(self) -> list[str]:
        """Canonical backend names, highest resolution priority first."""
        return sorted(self._specs, key=lambda n: -self._specs[n].priority)

    def aliases(self) -> dict[str, str]:
        """Alias -> canonical-name mapping (copy)."""
        return dict(self._aliases)

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def __iter__(self):
        return iter(self.names())

    def describe(self) -> str:
        """Human-readable table of registered backends and capabilities."""
        lines = []
        for name in self.names():
            spec = self._specs[name]
            tags = [spec.device, spec.capabilities]
            if spec.distributed:
                tags.append("distributed")
            alias_note = f" (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
            rewrite_note = (f" rewrites={','.join(spec.plan_rewrites)}"
                            if spec.plan_rewrites else "")
            lines.append(
                f"{name:>10}  [{'/'.join(tags)}] mixers={','.join(spec.mixers)} "
                f"precisions={','.join(spec.precisions)}{rewrite_note} "
                f"priority={spec.priority}{alias_note}  {spec.description}"
            )
            if spec.describe_extra is not None:
                try:
                    extra = spec.describe_extra()
                except Exception as exc:  # introspection must never raise
                    extra = f"(describe_extra failed: {exc!r})"
                lines.append(f"{'':>10}  {extra}")
        return "\n".join(lines)

    def backends_accepting_kwarg(self, kwarg: str) -> list[str]:
        """Canonical names of backends whose constructors accept ``kwarg``.

        Driven by the registrations' ``constructor_kwargs`` metadata; listed
        highest resolution priority first (like :meth:`names`).
        """
        return [name for name in self.names()
                if kwarg in self._specs[name].constructor_kwargs]

    def _unsupported_kwarg_error(self, backend: str, cls: type,
                                 unexpected: list[str]) -> UnsupportedBackendKwargError:
        """Build the typed error for constructor kwargs the backend rejects."""
        accepted = sorted(
            name for name, p in inspect.signature(cls.__init__).parameters.items()
            if name not in ("self", "n_qubits", "terms", "costs")
            and p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                           inspect.Parameter.KEYWORD_ONLY)
        )
        parts = [
            f"backend {backend!r} does not accept constructor "
            f"{'kwargs' if len(unexpected) > 1 else 'kwarg'} "
            f"{', '.join(repr(k) for k in unexpected)}"
        ]
        if accepted:
            parts.append(f"it accepts: {', '.join(accepted)}")
        for kwarg in unexpected:
            takers = [n for n in self.backends_accepting_kwarg(kwarg)
                      if n != backend]
            if takers:
                parts.append(
                    f"backends accepting {kwarg!r}: {', '.join(takers)}")
        return UnsupportedBackendKwargError("; ".join(parts))

    # -- resolution ----------------------------------------------------------
    def _unknown_backend_error(self, name: str) -> ValueError:
        canonical = sorted(self._specs)
        aliases = sorted(self._aliases)
        message = (
            f"unknown simulator backend {name!r}; "
            f"backends: {', '.join(canonical)}; "
            f"aliases: {', '.join(aliases)}; "
            "or 'auto' to pick the fastest available"
        )
        close = difflib.get_close_matches(name, canonical + aliases + ["auto"], n=3)
        if close:
            message += f". Did you mean {' or '.join(repr(c) for c in close)}?"
        return ValueError(message)

    def spec(self, name: str) -> BackendSpec:
        """Look up a spec by canonical name or alias (no import triggered)."""
        canonical = self._aliases.get(name, name)
        try:
            return self._specs[canonical]
        except KeyError:
            raise self._unknown_backend_error(name) from None

    def resolve(self, name: str = "auto", *, mixer: str | None = None,
                precision: str | None = None,
                capability: str | None = None) -> BackendSpec:
        """Resolve a backend request to a concrete, importable spec.

        With ``name="auto"``, the highest-priority non-distributed backend
        that imports successfully (and implements ``mixer`` and
        ``precision``, if given) is chosen — so a broken optional dependency
        silently falls back to the next-fastest family instead of failing
        construction.  ``capability`` names the operation the caller needs
        (``"statevector"``, ``"expectation"`` or ``"amplitude"``): ``auto``
        filters candidates by it (and restricts to the ``full`` tier when it
        is omitted), while an explicitly named backend that cannot serve it
        raises :class:`~repro.fur.capabilities.UnsupportedCapabilityError`.
        """
        if precision is not None:
            precision = resolve_precision(precision).name
        if name == "auto":
            if mixer is not None and not any(
                s.supports_mixer(mixer) for s in self._specs.values()
            ):
                known = sorted({m for s in self._specs.values() for m in s.mixers})
                raise ValueError(
                    f"unknown mixer {mixer!r}; registered backends implement: "
                    f"{', '.join(known)}"
                )
            candidates = [
                s for s in sorted(
                    map(self._specs.__getitem__, self.names()),
                    key=lambda s: -s.effective_priority(),
                )
                if not s.distributed
                and (s.supports_capability(capability) if capability is not None
                     else s.capabilities == "full")
                and (mixer is None or s.supports_mixer(mixer))
                and (precision is None or s.supports_precision(precision))
            ]
            errors: list[str] = []
            for spec in candidates:
                if spec.available:
                    return spec
                errors.append(f"{spec.name}: {spec._load_error!r}")
            detail = f" (load failures: {'; '.join(errors)})" if errors else ""
            wanted = []
            if mixer is not None:
                wanted.append(f"the {mixer!r} mixer")
            if precision is not None:
                wanted.append(f"{precision!r} precision")
            raise RuntimeError(
                f"no available backend implements {' with '.join(wanted)}{detail}"
                if wanted
                else f"no simulator backend is available{detail}"
            )
        spec = self.spec(name)
        if capability is not None and not spec.supports_capability(capability):
            supporting = sorted(s.name for s in self._specs.values()
                                if s.supports_capability(capability))
            raise UnsupportedCapabilityError(
                f"backend {spec.name!r} is {spec.capabilities!r} and cannot "
                f"serve {capability!r} requests (backends implementing "
                f"{capability!r}: {', '.join(supporting) or 'none'})"
            )
        if mixer is not None and not spec.supports_mixer(mixer):
            supporting = [s.name for s in self._specs.values() if s.supports_mixer(mixer)]
            raise ValueError(
                f"backend {spec.name!r} does not implement the {mixer!r} mixer "
                f"(it implements: {', '.join(spec.mixers)}; "
                f"backends implementing {mixer!r}: {', '.join(sorted(supporting)) or 'none'})"
            )
        if precision is not None and not spec.supports_precision(precision):
            supporting = [s.name for s in self._specs.values()
                          if s.supports_precision(precision)]
            raise ValueError(
                f"backend {spec.name!r} does not implement {precision!r} precision "
                f"(it implements: {', '.join(spec.precisions)}; "
                f"backends implementing {precision!r}: "
                f"{', '.join(sorted(supporting)) or 'none'})"
            )
        return spec

    def simulator_class(self, name: str = "auto", mixer: str = "x",
                        precision: str | None = None) -> type[QAOAFastSimulatorBase]:
        """Resolve and load the simulator class for a backend/mixer pair."""
        return self.resolve(name, mixer=mixer,
                            precision=precision).simulator_class(mixer)


#: The process-wide registry all public entry points consult.
registry = BackendRegistry()

#: Module-level decorator bound to the process-wide registry.
register_backend = registry.register_backend


# ---------------------------------------------------------------------------
# Third-party backend discovery via setuptools entry points.
# ---------------------------------------------------------------------------

def _iter_entry_points(group: str) -> list:
    """All installed entry points of one group (compatible across py3.10+)."""
    from importlib import metadata

    try:
        return list(metadata.entry_points(group=group))
    except TypeError:  # pragma: no cover - legacy dict-shaped API
        return list(metadata.entry_points().get(group, []))


def load_entry_point_backends(target: BackendRegistry | None = None, *,
                              group: str = ENTRY_POINT_GROUP) -> list[str]:
    """Discover and register third-party backends from setuptools entry points.

    An external package advertises a backend by declaring an entry point in
    the ``repro.fur.backends`` group whose target is either a
    :class:`BackendSpec` instance or a zero-argument callable returning one::

        [project.entry-points."repro.fur.backends"]
        mybackend = "mypkg.qaoa:backend_spec"

    This function is called once at ``repro.fur`` import time (after the
    built-in families register), so installed plugins are resolvable by name
    through ``repro.simulator(..., backend="mybackend")``.  The module that
    *carries* the spec is imported during the scan (keep it lightweight);
    the spec's ``loader`` stays lazy as for built-ins, so the simulator
    implementation itself is only imported when the backend is first used.
    A broken plugin (import error, bad spec, name collision with an existing
    backend) is skipped with a ``RuntimeWarning`` rather than breaking
    ``import repro``.

    Returns the canonical names that were registered.
    """
    reg = registry if target is None else target
    registered: list[str] = []
    for ep in _iter_entry_points(group):
        try:
            obj = ep.load()
            spec = obj() if not isinstance(obj, BackendSpec) and callable(obj) else obj
            if not isinstance(spec, BackendSpec):
                raise TypeError(
                    f"entry point must provide a BackendSpec (or a callable "
                    f"returning one), got {type(spec).__name__}"
                )
            reg.register(spec)
            registered.append(spec.name)
        except Exception as exc:
            warnings.warn(
                f"skipping third-party simulator backend {ep.name!r} "
                f"from entry-point group {group!r}: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return registered


def get_backend(name: str = "auto", *, mixer: str | None = None,
                precision: str | None = None,
                capability: str | None = None) -> BackendSpec:
    """Resolve a backend name/alias to its :class:`BackendSpec`.

    This is the introspection companion of :func:`simulator`: it exposes the
    capability metadata (supported mixers, precisions, capability tier,
    device class, distributed-ness) without constructing anything.
    """
    return registry.resolve(name, mixer=mixer, precision=precision,
                            capability=capability)


def get_simulator_class(name: str = "auto", mixer: str = "x",
                        precision: str | None = None) -> type[QAOAFastSimulatorBase]:
    """The simulator class registered for a backend/mixer pair."""
    return registry.simulator_class(name, mixer, precision=precision)


def available_backends(*, mixer: str | None = None,
                       precision: str | None = None,
                       capability: str | None = None,
                       importable_only: bool = False) -> list[str]:
    """Names of registered backends, optionally filtered by capability.

    ``mixer`` restricts to families implementing that mixer; ``precision``
    to families implementing that simulation precision; ``capability`` to
    families whose tier serves that operation (``"statevector"``,
    ``"expectation"`` or ``"amplitude"``); ``importable_only`` additionally
    imports each candidate and drops the ones whose optional dependencies
    are missing.
    """
    if precision is not None:
        precision = resolve_precision(precision).name
    names = []
    for name in sorted(registry.names()):
        spec = registry.spec(name)
        if mixer is not None and not spec.supports_mixer(mixer):
            continue
        if precision is not None and not spec.supports_precision(precision):
            continue
        if capability is not None and not spec.supports_capability(capability):
            continue
        if importable_only and not spec.available:
            continue
        names.append(name)
    return names


def simulator(n_qubits: int,
              terms: Iterable[tuple[float, Iterable[int]]] | None = None,
              costs: np.ndarray | None = None, *,
              backend: str | type | Any = "auto",
              mixer: str = "x",
              precision: str | None = None,
              optimize: str | None = None,
              **simulator_kwargs: Any) -> QAOAFastSimulatorBase:
    """Construct a fast QAOA simulator — the package's single entry point.

    Parameters
    ----------
    n_qubits:
        Number of qubits.
    terms:
        Cost polynomial as ``(weight, indices)`` pairs.  Mutually exclusive
        with ``costs``.
    costs:
        Precomputed cost diagonal (skips precomputation).
    backend:
        Registry name or alias (``"auto"``, ``"c"``, ``"python"``, ``"gpu"``,
        ``"gpumpi"``, ``"cusvmpi"``, ...), a simulator *class*, or an
        already-constructed simulator instance (returned unchanged).
        ``"auto"`` picks the highest-priority available backend implementing
        the requested mixer and precision.
    mixer:
        ``"x"`` (transverse field), ``"xyring"`` or ``"xycomplete"``.
    precision:
        ``"double"`` (complex128 state, the default when unspecified) or
        ``"single"`` (complex64 state: ~2x the memory bandwidth, half the
        state memory, expectation values within the single-precision error
        envelope — see the README's Precision section).  When omitted, an
        already-constructed simulator instance passes through at whatever
        precision it was built with; an explicit value must match it.
    optimize:
        ``"default"`` (plan-rewrite optimizer passes enabled — the default
        when unspecified) or ``"none"`` (compiled execution plans keep the
        unrewritten op stream; the pinned baseline of the parity harness).
        Per-call overridable on the batched entry points.
    simulator_kwargs:
        Forwarded to the backend constructor (e.g. ``block_size`` for the
        ``c`` family, ``n_ranks`` for the distributed families).
    """
    from .base import QAOAFastSimulatorBase  # deferred: base imports first
    from .rewrite import resolve_optimize

    spec_precision = resolve_precision(precision)
    if optimize is not None:
        optimize = resolve_optimize(optimize)
    if isinstance(backend, QAOAFastSimulatorBase):
        # An unspecified precision passes the instance through at whatever
        # precision it was built with; only an explicit request is checked.
        if precision is not None and spec_precision.name != backend.precision:
            raise ValueError(
                f"simulator instance runs at {backend.precision!r} precision "
                f"but {spec_precision.name!r} was requested; construct a new "
                "simulator instead of passing an instance"
            )
        if optimize is not None and optimize != backend.optimize:
            raise ValueError(
                f"simulator instance runs at optimize={backend.optimize!r} "
                f"but {optimize!r} was requested; construct a new simulator "
                "instead of passing an instance (or override per call)"
            )
        return backend
    if isinstance(backend, str):
        cls = registry.simulator_class(backend, mixer,
                                       precision=spec_precision.name)
    elif isinstance(backend, type) and issubclass(backend, QAOAFastSimulatorBase):
        cls = backend
    else:
        raise TypeError(
            "backend must be a registry name, a QAOAFastSimulatorBase subclass "
            f"or instance; got {backend!r}"
        )
    if not spec_precision.is_double:
        # Only forwarded when non-default so third-party simulator classes
        # without a ``precision`` keyword keep working through the facade.
        simulator_kwargs["precision"] = spec_precision.name
    if optimize is not None and optimize != "default":
        # Same convention as ``precision``: only a non-default level is
        # forwarded, so classes without an ``optimize`` keyword keep working.
        simulator_kwargs["optimize"] = optimize
    # Validate backend-specific kwargs before the constructor runs, so a
    # mis-targeted kwarg raises the typed registry error (naming the
    # backends that do accept it) instead of the constructor's TypeError.
    unexpected = _unexpected_constructor_kwargs(cls, simulator_kwargs)
    if unexpected:
        backend_name = getattr(cls, "backend_name", None) or (
            backend if isinstance(backend, str) else cls.__name__)
        raise registry._unsupported_kwarg_error(backend_name, cls, unexpected)
    return cls(n_qubits, terms=terms, costs=costs, **simulator_kwargs)
