"""Cache-blocked, allocation-free FUR kernels (the paper's ``c`` backend analogue).

QOKit's fastest CPU backend is a custom C implementation whose advantages over
the plain NumPy path are (a) no per-layer temporary allocations and (b)
cache-friendly blocked traversal of the state vector.  This module reproduces
those properties in NumPy:

* every kernel works through a small preallocated scratch buffer
  (:class:`KernelWorkspace`) whose size is bounded by ``block_size`` —
  temporaries stay L2-resident regardless of the state-vector size;
* the phase operator is evaluated into a reusable complex buffer
  (``exp`` applied in place), so a full QAOA layer performs zero heap
  allocations after warm-up;
* the SU(2) pair update is performed block-by-block over the contiguous
  low-stride axis, following the cache-effects guidance of the HPC guide
  (group memory accesses, prefer in-place updates, avoid copies).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KernelWorkspace",
    "apply_su2_blocked",
    "apply_su2_batch_blocked",
    "furx_all_blocked",
    "furx_all_batch_blocked",
    "furxy_blocked",
    "furxy_batch_blocked",
    "apply_phase_inplace",
    "apply_phase_batch_inplace",
    "expectation_inplace",
    "expectation_batch_inplace",
    "probabilities_inplace",
    "DEFAULT_BLOCK_SIZE",
]

#: Default number of complex amplitudes touched per block (2^16 * 16 B = 1 MiB,
#: small enough to stay in L2 on typical server cores).
DEFAULT_BLOCK_SIZE: int = 1 << 16


class KernelWorkspace:
    """Preallocated scratch buffers shared by the blocked kernels.

    One workspace is owned by each ``c``-backend simulator instance and reused
    across layers and across repeated objective evaluations during parameter
    optimization, which is exactly the reuse pattern the paper optimizes for.
    """

    def __init__(self, n_states: int, block_size: int = DEFAULT_BLOCK_SIZE,
                 dtype: np.dtype | type = np.complex128) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = int(min(block_size, n_states))
        self.n_states = int(n_states)
        #: complex dtype of the state vectors this workspace serves
        self.dtype = np.dtype(dtype)
        #: complex scratch for SU(2) pair updates (half-block) and phases
        self.pair_scratch = np.empty(self.block_size, dtype=self.dtype)
        #: complex scratch holding exp(-i*gamma*costs) for a block
        self.phase_scratch = np.empty(self.block_size, dtype=self.dtype)
        #: real scratch for probability / expectation reductions — always
        #: float64: expectations accumulate in double regardless of state dtype
        self.real_scratch = np.empty(self.block_size, dtype=np.float64)


def apply_su2_blocked(statevector: np.ndarray, a: complex, b: complex, qubit: int,
                      workspace: KernelWorkspace) -> np.ndarray:
    """Blocked in-place application of ``U = [[a, −b*], [b, a*]]`` to one qubit.

    The state vector is viewed as ``(groups, 2, stride)`` with
    ``stride = 2**qubit``; the pair update runs over ``stride``-sized rows in
    chunks of at most ``workspace.block_size`` amplitudes so that the single
    temporary (the copy of the "low" half of the pair) never exceeds the block
    size.
    """
    n_states = statevector.shape[0]
    stride = 1 << qubit
    if qubit < 0 or stride * 2 > n_states:
        raise ValueError(f"qubit {qubit} out of range for state vector of length {n_states}")
    view = statevector.reshape(-1, 2, stride)
    n_groups = view.shape[0]
    # State-dtype coefficients keep every temporary at state precision.
    a = statevector.dtype.type(a)
    b = statevector.dtype.type(b)
    b_conj = np.conj(b)
    a_conj = np.conj(a)
    if stride >= workspace.block_size:
        # Block along the stride axis, one group at a time.
        chunk = workspace.block_size
        for g in range(n_groups):
            lo_row = view[g, 0, :]
            hi_row = view[g, 1, :]
            for s in range(0, stride, chunk):
                e = min(s + chunk, stride)
                tmp = workspace.pair_scratch[: e - s]
                np.copyto(tmp, lo_row[s:e])
                lo_row[s:e] *= a
                lo_row[s:e] -= b_conj * hi_row[s:e]
                hi_row[s:e] *= a_conj
                hi_row[s:e] += b * tmp
    else:
        # Small stride: block along the group axis instead so each chunk still
        # touches ~block_size contiguous amplitudes.
        groups_per_chunk = max(1, workspace.block_size // max(stride, 1))
        for g0 in range(0, n_groups, groups_per_chunk):
            g1 = min(g0 + groups_per_chunk, n_groups)
            lo = view[g0:g1, 0, :]
            hi = view[g0:g1, 1, :]
            count = lo.size
            tmp = workspace.pair_scratch[:count].reshape(lo.shape)
            np.copyto(tmp, lo)
            lo *= a
            lo -= b_conj * hi
            hi *= a_conj
            hi += b * tmp
    return statevector


def furx_all_blocked(statevector: np.ndarray, beta: float, n_qubits: int,
                     workspace: KernelWorkspace) -> np.ndarray:
    """Blocked Algorithm 2: apply ``exp(-i β X_i)`` to every qubit in place."""
    if statevector.shape[0] != (1 << n_qubits):
        raise ValueError(
            f"state vector length {statevector.shape[0]} does not match n={n_qubits}"
        )
    a = complex(np.cos(beta))
    b = -1j * complex(np.sin(beta))
    for q in range(n_qubits):
        apply_su2_blocked(statevector, a, b, q, workspace)
    return statevector


def _pair_update(sub_a: np.ndarray, sub_b: np.ndarray, a: complex, b: complex,
                 workspace: KernelWorkspace) -> None:
    """SU(2) pair update on two equal-shaped (possibly strided) views.

    ``sub_a`` plays the role of the first basis vector and ``sub_b`` the
    second: ``sub_a <- a·sub_a − b*·sub_b``, ``sub_b <- b·sub_a_old + a*·sub_b``.
    The only temporary is a slice of the workspace scratch buffer, so callers
    must keep chunk sizes within ``workspace.block_size``.
    """
    a = sub_a.dtype.type(a)
    b = sub_a.dtype.type(b)
    tmp = workspace.pair_scratch[: sub_a.size].reshape(sub_a.shape)
    np.copyto(tmp, sub_a)
    sub_a *= a
    sub_a -= np.conj(b) * sub_b
    sub_b *= np.conj(a)
    sub_b += b * tmp


def _su2_update_views(amp_a: np.ndarray, amp_b: np.ndarray, a: complex, b: complex,
                      workspace: KernelWorkspace) -> None:
    """Apply the pair update to two same-shaped 3D strided views, block by block.

    The chunking adapts to the view shape so that (i) each chunk fits the
    scratch buffer and (ii) the number of Python-level iterations stays at
    roughly ``size / block_size`` regardless of which axis is large.
    """
    n_top, n_mid, n_low = amp_a.shape
    block = workspace.block_size
    if n_low >= block:
        for t in range(n_top):
            for m in range(n_mid):
                for c0 in range(0, n_low, block):
                    c1 = min(c0 + block, n_low)
                    _pair_update(amp_a[t, m, c0:c1], amp_b[t, m, c0:c1], a, b, workspace)
    elif n_mid * n_low >= block:
        mid_per = max(1, block // n_low)
        for t in range(n_top):
            for m0 in range(0, n_mid, mid_per):
                m1 = min(m0 + mid_per, n_mid)
                _pair_update(amp_a[t, m0:m1, :], amp_b[t, m0:m1, :], a, b, workspace)
    else:
        top_per = max(1, block // (n_mid * n_low))
        for t0 in range(0, n_top, top_per):
            t1 = min(t0 + top_per, n_top)
            _pair_update(amp_a[t0:t1], amp_b[t0:t1], a, b, workspace)


def furxy_blocked(statevector: np.ndarray, beta: float, qubit_i: int, qubit_j: int,
                  workspace: KernelWorkspace) -> np.ndarray:
    """Blocked in-place ``exp(-i β (X_i X_j + Y_i Y_j)/2)`` on a qubit pair."""
    if qubit_i == qubit_j:
        raise ValueError("XY rotation requires two distinct qubits")
    n_states = statevector.shape[0]
    lo_q, hi_q = (qubit_i, qubit_j) if qubit_i < qubit_j else (qubit_j, qubit_i)
    if (1 << (hi_q + 1)) > n_states:
        raise ValueError(f"qubit {hi_q} out of range for state vector of length {n_states}")
    a = complex(np.cos(beta))
    b = -1j * complex(np.sin(beta))
    view = statevector.reshape(-1, 2, 1 << (hi_q - lo_q - 1), 2, 1 << lo_q)
    if qubit_i > qubit_j:
        amp_10 = view[:, 1, :, 0, :]
        amp_01 = view[:, 0, :, 1, :]
    else:
        amp_10 = view[:, 0, :, 1, :]
        amp_01 = view[:, 1, :, 0, :]
    _su2_update_views(amp_10, amp_01, a, b, workspace)
    return statevector


def apply_phase_inplace(statevector: np.ndarray, costs: np.ndarray, gamma: float,
                        workspace: KernelWorkspace) -> np.ndarray:
    """Phase operator ``sv[x] *= exp(-i γ c[x])`` with zero heap allocations.

    Works block-by-block: the phase factors for each block are computed into
    the workspace's complex scratch buffer (``exp`` evaluated in place) and
    multiplied into the state vector.
    """
    n = statevector.shape[0]
    if costs.shape[0] != n:
        raise ValueError(f"cost vector length {costs.shape[0]} does not match state length {n}")
    chunk = workspace.block_size
    for s in range(0, n, chunk):
        e = min(s + chunk, n)
        buf = workspace.phase_scratch[: e - s]
        np.multiply(costs[s:e], -1j * gamma, out=buf)
        np.exp(buf, out=buf)
        statevector[s:e] *= buf
    return statevector


# ---------------------------------------------------------------------------
# Batched blocked kernels — (B, 2^n) blocks through the same scratch buffers.
# ---------------------------------------------------------------------------

def _validate_block(svb: np.ndarray) -> tuple[int, int]:
    if svb.ndim != 2:
        raise ValueError(f"batched kernel expects a (B, 2^n) block, got shape {svb.shape}")
    return svb.shape[0], svb.shape[1]


def apply_su2_batch_blocked(svb: np.ndarray, a_rows: np.ndarray, b_rows: np.ndarray,
                            qubit: int, workspace: KernelWorkspace) -> np.ndarray:
    """Blocked batched SU(2): per-row rotations on one qubit of a state block.

    ``a_rows``/``b_rows`` hold one rotation per row.  When a single row's
    half-state exceeds the block size the rows are processed one at a time
    through :func:`apply_su2_blocked` (sharing the workspace); otherwise rows
    are chunked so each vectorized pair update touches at most
    ``workspace.block_size`` amplitudes, with the per-row coefficients
    broadcast along the state axes.
    """
    rows, n_states = _validate_block(svb)
    stride = 1 << qubit
    if qubit < 0 or stride * 2 > n_states:
        raise ValueError(f"qubit {qubit} out of range for state vectors of length {n_states}")
    a_arr = np.asarray(a_rows, dtype=svb.dtype)
    b_arr = np.asarray(b_rows, dtype=svb.dtype)
    if a_arr.shape != (rows,) or b_arr.shape != (rows,):
        raise ValueError(f"coefficient batches must have shape ({rows},)")
    half = n_states >> 1
    if half >= workspace.block_size:
        for r in range(rows):
            apply_su2_blocked(svb[r], complex(a_arr[r]), complex(b_arr[r]),
                              qubit, workspace)
        return svb
    view = svb.reshape(rows, -1, 2, stride)
    rows_per = max(1, workspace.block_size // half)
    for r0 in range(0, rows, rows_per):
        r1 = min(r0 + rows_per, rows)
        lo = view[r0:r1, :, 0, :]
        hi = view[r0:r1, :, 1, :]
        tmp = workspace.pair_scratch[: lo.size].reshape(lo.shape)
        np.copyto(tmp, lo)
        a_c = a_arr[r0:r1, None, None]
        b_c = b_arr[r0:r1, None, None]
        lo *= a_c
        lo -= np.conj(b_c) * hi
        hi *= np.conj(a_c)
        hi += b_c * tmp
    return svb


def furx_all_batch_blocked(svb: np.ndarray, betas: np.ndarray, n_qubits: int,
                           workspace: KernelWorkspace) -> np.ndarray:
    """Blocked batched Algorithm 2: per-row ``exp(-i β_b Σ_i X_i)``, in place."""
    rows, n_states = _validate_block(svb)
    if n_states != (1 << n_qubits):
        raise ValueError(
            f"state vectors of length {n_states} do not match n={n_qubits}"
        )
    betas_arr = np.broadcast_to(np.asarray(betas, dtype=np.float64), (rows,))
    a_rows = np.cos(betas_arr).astype(svb.dtype)
    b_rows = (-1j * np.sin(betas_arr)).astype(svb.dtype)
    for q in range(n_qubits):
        apply_su2_batch_blocked(svb, a_rows, b_rows, q, workspace)
    return svb


def furxy_batch_blocked(svb: np.ndarray, betas: np.ndarray, qubit_i: int, qubit_j: int,
                        workspace: KernelWorkspace) -> np.ndarray:
    """Blocked batched XY rotation: per-row angles, rows share the workspace."""
    rows, _ = _validate_block(svb)
    betas_arr = np.broadcast_to(np.asarray(betas, dtype=np.float64), (rows,))
    for r in range(rows):
        furxy_blocked(svb[r], float(betas_arr[r]), qubit_i, qubit_j, workspace)
    return svb


def apply_phase_batch_inplace(svb: np.ndarray, costs: np.ndarray, gammas: np.ndarray,
                              workspace: KernelWorkspace,
                              phase_table=None) -> np.ndarray:
    """Batched phase operator ``svb[b, x] *= exp(-i γ_b c[x])``, zero-allocation.

    With a :class:`~repro.fur.diagonal.DiagonalPhaseTable` the per-chunk phase
    factors are gathered from one ``exp`` over the ``(B, U)`` distinct values;
    otherwise the exponential is evaluated into the workspace scratch.  Chunks
    iterate basis states in the outer loop so each cost/index chunk stays
    cache-hot across all rows.
    """
    rows, n = _validate_block(svb)
    if costs.shape[0] != n:
        raise ValueError(f"cost vector length {costs.shape[0]} does not match state length {n}")
    gammas_arr = np.broadcast_to(np.asarray(gammas, dtype=np.float64), (rows,))
    chunk = workspace.block_size
    if phase_table is not None:
        factors = phase_table.factors_batch(gammas_arr,
                                            dtype=workspace.phase_scratch.dtype)
        inverse = phase_table.inverse
        for s in range(0, n, chunk):
            e = min(s + chunk, n)
            buf = workspace.phase_scratch[: e - s]
            idx = inverse[s:e]
            for r in range(rows):
                np.take(factors[r], idx, out=buf)
                svb[r, s:e] *= buf
        return svb
    for s in range(0, n, chunk):
        e = min(s + chunk, n)
        buf = workspace.phase_scratch[: e - s]
        for r in range(rows):
            np.multiply(costs[s:e], -1j * gammas_arr[r], out=buf)
            np.exp(buf, out=buf)
            svb[r, s:e] *= buf
    return svb


def expectation_batch_inplace(svb: np.ndarray, costs: np.ndarray,
                              workspace: KernelWorkspace) -> np.ndarray:
    """Per-row blocked ``Σ_x c[x] |ψ_x|²`` of a state block."""
    rows, _ = _validate_block(svb)
    out = np.empty(rows, dtype=np.float64)
    for r in range(rows):
        out[r] = expectation_inplace(svb[r], costs, workspace)
    return out


def probabilities_inplace(statevector: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Squared magnitudes of the state vector.

    If ``out`` is provided it is filled and returned; otherwise a new array is
    allocated (unavoidable: the output has a different dtype than the input).
    """
    if out is None:
        out = np.empty(statevector.shape[0], dtype=np.float64)
    np.multiply(statevector.real, statevector.real, out=out)
    out += statevector.imag * statevector.imag
    return out


def expectation_inplace(statevector: np.ndarray, costs: np.ndarray,
                        workspace: KernelWorkspace) -> float:
    """Blocked ``Σ_x c[x] |ψ_x|²`` without allocating a full probability vector."""
    n = statevector.shape[0]
    if costs.shape[0] != n:
        raise ValueError(f"cost vector length {costs.shape[0]} does not match state length {n}")
    chunk = workspace.block_size
    total = 0.0
    for s in range(0, n, chunk):
        e = min(s + chunk, n)
        buf = workspace.real_scratch[: e - s]
        blk = statevector[s:e]
        np.multiply(blk.real, blk.real, out=buf)
        buf += blk.imag * blk.imag
        total += float(np.dot(buf, costs[s:e]))
    return total
