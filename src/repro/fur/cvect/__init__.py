"""Optimized blocked CPU backend (the paper's custom-C simulator analogue)."""

from .kernels import (
    DEFAULT_BLOCK_SIZE,
    KernelWorkspace,
    apply_phase_inplace,
    apply_su2_blocked,
    expectation_inplace,
    furx_all_blocked,
    furxy_blocked,
    probabilities_inplace,
)
from .qaoa_simulator import (
    QAOAFURXSimulatorC,
    QAOAFURXYCompleteSimulatorC,
    QAOAFURXYRingSimulatorC,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "KernelWorkspace",
    "apply_phase_inplace",
    "apply_su2_blocked",
    "expectation_inplace",
    "furx_all_blocked",
    "furxy_blocked",
    "probabilities_inplace",
    "QAOAFURXSimulatorC",
    "QAOAFURXYRingSimulatorC",
    "QAOAFURXYCompleteSimulatorC",
]
