"""Optimized CPU QAOA simulators (the paper's ``c`` backend analogue).

Same public API as the ``python`` backend, but every layer runs through the
cache-blocked, allocation-free kernels in :mod:`repro.fur.cvect.kernels`.  The
simulator owns a :class:`~repro.fur.cvect.kernels.KernelWorkspace` that is
reused across layers and across repeated objective evaluations, which is the
dominant usage pattern during QAOA parameter optimization (Fig. 1 of the
paper).

Batched evaluation is orchestrated by the shared execution engine
(:mod:`repro.fur.engine`); this module only implements the
:class:`~repro.fur.engine.KernelProvider` hooks over the zero-allocation
batched blocked kernels.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import QAOAFastSimulatorBase, validate_angles
from .kernels import (
    DEFAULT_BLOCK_SIZE,
    KernelWorkspace,
    apply_phase_batch_inplace,
    apply_phase_inplace,
    expectation_batch_inplace,
    expectation_inplace,
    furx_all_blocked,
    furxy_batch_blocked,
    furxy_blocked,
    probabilities_inplace,
)
from ..python.furx import furx_all_batch, furx_phase_all_batch
from ..python.furxy import complete_edges, ring_edges
from ..python.qaoa_simulator import staged_phase_block

__all__ = [
    "QAOAFURXSimulatorC",
    "QAOAFURXYRingSimulatorC",
    "QAOAFURXYCompleteSimulatorC",
]


class _QAOAFURCSimulatorBase(QAOAFastSimulatorBase):
    """Shared blocked-kernel simulation loop; subclasses supply the mixer."""

    backend_name = "c"
    supports_fused_engine = True
    supports_staged_phase = True

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 precision: str = "double",
                 optimize: str = "default") -> None:
        self._block_size = int(block_size)
        super().__init__(n_qubits, terms=terms, costs=costs,
                         precision=precision, optimize=optimize)

    def _post_init(self) -> None:
        self._workspace = KernelWorkspace(self._n_states, self._block_size,
                                          dtype=self._precision.complex_dtype)
        # Cache a float64 view of the diagonal so the phase kernel never
        # decompresses or re-validates inside the layer loop.
        self._costs_cache = self.get_cost_diagonal()

    @property
    def workspace(self) -> KernelWorkspace:
        """The preallocated scratch buffers used by the blocked kernels."""
        return self._workspace

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        raise NotImplementedError

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> np.ndarray:
        """Evolve through ``p`` QAOA layers with blocked in-place kernels."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv = self._validate_sv0(sv0)
        phase_costs = self._phase_costs()
        for gamma, beta in zip(g, b):
            apply_phase_inplace(sv, phase_costs, float(gamma), self._workspace)
            self._apply_mixer(sv, float(beta), n_trotters)
        return sv

    # -- kernel-provider hooks (driven by repro.fur.engine) -------------------
    supports_batched_sv0 = True

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> np.ndarray:
        return self._validate_sv0_block(sv0, rows)

    def _stage_phase_block(self, gammas: np.ndarray, plan: Any) -> np.ndarray:
        """FoldInitialPhase staging: write ``exp(-i γ_r c)/√N`` in one pass."""
        return staged_phase_block(gammas, self._phase_costs(), self._n_states,
                                  self._precision.complex_dtype,
                                  phase_table=plan.phase_tables)

    def _mixer_scratch(self, block: np.ndarray) -> np.ndarray:
        return np.empty_like(block)

    def _apply_phase_block(self, block: np.ndarray, gammas: np.ndarray,
                           plan: Any) -> None:
        """Batched phase sweep through the zero-allocation blocked kernel.

        The plan carries the pre-resolved unique-value phase table (or
        ``None``, in which case the kernel evaluates ``exp`` into the
        workspace scratch chunk by chunk).
        """
        apply_phase_batch_inplace(block, self._phase_costs(), gammas,
                                  self._workspace, phase_table=plan.phase_tables)

    def _block_expectations(self, block: np.ndarray, costs: np.ndarray) -> np.ndarray:
        return expectation_batch_inplace(block, costs, self._workspace)

    # -- output methods ------------------------------------------------------
    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector (host array)."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|²."""
        return probabilities_inplace(np.asarray(result))

    def get_expectation(self, result: np.ndarray, costs=None,
                        preserve_state: bool = True, **kwargs: Any) -> float:
        """Blocked expectation value ``Σ_x c[x]|ψ_x|²`` (no 2^n temporary)."""
        resolved = self._costs_cache if costs is None else self._resolve_costs(costs)
        return expectation_inplace(np.asarray(result), resolved, self._workspace)


class QAOAFURXSimulatorC(_QAOAFURCSimulatorBase):
    """QAOA with the transverse-field mixer (blocked CPU kernels)."""

    mixer_name = "x"
    _mixer_needs_scratch = True
    supports_fused_phase_mixer = True
    supports_fused_mixer_expectation = True
    mixer_self_commutes = True

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        furx_all_blocked(sv, beta, self._n_qubits, self._workspace)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        # The gemm-grouped batch kernel beats per-qubit pair sweeps by ~4x on
        # cache-spilling blocks; it ping-pongs through the per-sub-batch
        # scratch instead of the workspace (numerics identical to
        # furx_all_blocked at machine precision).
        furx_all_batch(block, betas, self._n_qubits, scratch=scratch)

    def _apply_phase_mixer_block(self, block: np.ndarray, gammas: np.ndarray,
                                 betas: np.ndarray, op: Any,
                                 scratch: np.ndarray | None, plan: Any) -> None:
        """FusedPhaseMixerOp kernel: phase factors feed the first gemm pass
        chunk-by-chunk, so phase + pass 1 stream the block exactly once.
        The workspace's phase scratch serves as the gather buffer — the
        fused layer allocates nothing after warm-up."""
        furx_phase_all_batch(block, gammas, betas, self._n_qubits,
                             phase_table=plan.phase_tables,
                             costs=self._phase_costs(), scratch=scratch,
                             phase_buf=self._workspace.phase_scratch)

    def _apply_mixer_expectation_block(self, block: np.ndarray,
                                       gammas: np.ndarray | None,
                                       betas: np.ndarray, op: Any,
                                       scratch: np.ndarray | None,
                                       costs: np.ndarray, plan: Any) -> np.ndarray:
        """FusedMixerExpectationOp kernel: reduce out of the ping-pong buffer,
        skipping the final mixer's copy-back (one state-block write saved)."""
        if gammas is not None:
            out = furx_phase_all_batch(block, gammas, betas, self._n_qubits,
                                       phase_table=plan.phase_tables,
                                       costs=self._phase_costs(), scratch=scratch,
                                       phase_buf=self._workspace.phase_scratch,
                                       copy_back=False)
        else:
            out = furx_all_batch(block, betas, self._n_qubits, scratch=scratch,
                                 copy_back=False)
        return expectation_batch_inplace(out, costs, self._workspace)


class QAOAFURXYRingSimulatorC(_QAOAFURCSimulatorBase):
    """QAOA with the ring XY mixer (blocked CPU kernels)."""

    mixer_name = "xyring"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            for i, j in ring_edges(self._n_qubits):
                furxy_blocked(sv, beta / n_trotters, i, j, self._workspace)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        for _ in range(n_trotters):
            for i, j in ring_edges(self._n_qubits):
                furxy_batch_blocked(block, betas / n_trotters, i, j, self._workspace)


class QAOAFURXYCompleteSimulatorC(_QAOAFURCSimulatorBase):
    """QAOA with the complete-graph XY mixer (blocked CPU kernels)."""

    mixer_name = "xycomplete"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            for i, j in complete_edges(self._n_qubits):
                furxy_blocked(sv, beta / n_trotters, i, j, self._workspace)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        for _ in range(n_trotters):
            for i, j in complete_edges(self._n_qubits):
                furxy_batch_blocked(block, betas / n_trotters, i, j, self._workspace)
