"""Optimized CPU QAOA simulators (the paper's ``c`` backend analogue).

Same public API as the ``python`` backend, but every layer runs through the
cache-blocked, allocation-free kernels in :mod:`repro.fur.cvect.kernels`.  The
simulator owns a :class:`~repro.fur.cvect.kernels.KernelWorkspace` that is
reused across layers and across repeated objective evaluations, which is the
dominant usage pattern during QAOA parameter optimization (Fig. 1 of the
paper).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import QAOAFastSimulatorBase, validate_angles
from .kernels import (
    DEFAULT_BLOCK_SIZE,
    KernelWorkspace,
    apply_phase_inplace,
    expectation_inplace,
    furx_all_blocked,
    furxy_blocked,
    probabilities_inplace,
)
from ..python.furxy import complete_edges, ring_edges

__all__ = [
    "QAOAFURXSimulatorC",
    "QAOAFURXYRingSimulatorC",
    "QAOAFURXYCompleteSimulatorC",
]


class _QAOAFURCSimulatorBase(QAOAFastSimulatorBase):
    """Shared blocked-kernel simulation loop; subclasses supply the mixer."""

    backend_name = "c"

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        self._block_size = int(block_size)
        super().__init__(n_qubits, terms=terms, costs=costs)

    def _post_init(self) -> None:
        self._workspace = KernelWorkspace(self._n_states, self._block_size)
        # Cache a float64 view of the diagonal so the phase kernel never
        # decompresses or re-validates inside the layer loop.
        self._costs_cache = self.get_cost_diagonal()

    @property
    def workspace(self) -> KernelWorkspace:
        """The preallocated scratch buffers used by the blocked kernels."""
        return self._workspace

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        raise NotImplementedError

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> np.ndarray:
        """Evolve through ``p`` QAOA layers with blocked in-place kernels."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv = self._validate_sv0(sv0)
        for gamma, beta in zip(g, b):
            apply_phase_inplace(sv, self._costs_cache, float(gamma), self._workspace)
            self._apply_mixer(sv, float(beta), n_trotters)
        return sv

    # -- output methods ------------------------------------------------------
    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector (host array)."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|²."""
        return probabilities_inplace(np.asarray(result))

    def get_expectation(self, result: np.ndarray, costs=None,
                        preserve_state: bool = True, **kwargs: Any) -> float:
        """Blocked expectation value ``Σ_x c[x]|ψ_x|²`` (no 2^n temporary)."""
        resolved = self._costs_cache if costs is None else self._resolve_costs(costs)
        return expectation_inplace(np.asarray(result), resolved, self._workspace)


class QAOAFURXSimulatorC(_QAOAFURCSimulatorBase):
    """QAOA with the transverse-field mixer (blocked CPU kernels)."""

    mixer_name = "x"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        furx_all_blocked(sv, beta, self._n_qubits, self._workspace)


class QAOAFURXYRingSimulatorC(_QAOAFURCSimulatorBase):
    """QAOA with the ring XY mixer (blocked CPU kernels)."""

    mixer_name = "xyring"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            for i, j in ring_edges(self._n_qubits):
                furxy_blocked(sv, beta / n_trotters, i, j, self._workspace)


class QAOAFURXYCompleteSimulatorC(_QAOAFURCSimulatorBase):
    """QAOA with the complete-graph XY mixer (blocked CPU kernels)."""

    mixer_name = "xycomplete"

    def _apply_mixer(self, sv: np.ndarray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            for i, j in complete_edges(self._n_qubits):
                furxy_blocked(sv, beta / n_trotters, i, j, self._workspace)
