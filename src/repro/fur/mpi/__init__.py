"""Distributed FUR simulators (Algorithm 4 and the index-swap variant)."""

from .qaoa_simulator import (
    DistributedStateVector,
    QAOAFURXSimulatorCUSVMPI,
    QAOAFURXSimulatorGPUMPI,
)
from .spmd import qaoa_rank_program, run_distributed_qaoa

__all__ = [
    "DistributedStateVector",
    "QAOAFURXSimulatorGPUMPI",
    "QAOAFURXSimulatorCUSVMPI",
    "qaoa_rank_program",
    "run_distributed_qaoa",
]
