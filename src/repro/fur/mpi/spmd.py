"""SPMD formulation of Algorithm 4 for execution on a real communicator.

:mod:`repro.fur.mpi.qaoa_simulator` drives the distributed slices from a
single controller, which is ideal for deterministic testing.  This module
provides the genuinely SPMD variant — the code each rank would run under
mpi4py — written against the :class:`repro.parallel.communicator.Communicator`
interface and executed in-process with
:class:`repro.parallel.communicator.ThreadCluster`.  It is used by the
``distributed_simulation`` example and by the integration tests that exercise
the threaded communicator.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ...parallel.communicator import Communicator, ThreadCluster
from ..base import validate_angle_batches, validate_angles
from ..cvect.kernels import (
    KernelWorkspace,
    apply_phase_batch_inplace,
    apply_phase_inplace,
    apply_su2_batch_blocked,
    apply_su2_blocked,
    expectation_batch_inplace,
)
from ..diagonal import build_phase_table, precompute_cost_diagonal_slice
from ..precision import resolve_precision
from ..python.furx import su2_x_rotation, su2_x_rotation_batch

__all__ = [
    "qaoa_rank_program",
    "qaoa_rank_program_batch",
    "run_distributed_qaoa",
    "run_distributed_qaoa_batch",
]


def qaoa_rank_program(comm: Communicator, n_qubits: int,
                      terms: list[tuple[float, tuple[int, ...]]],
                      gammas: Sequence[float], betas: Sequence[float],
                      precision: str = "double") -> dict:
    """The per-rank program: evolve the local slice and reduce the objective.

    ``precision`` selects the amplitude width (``"single"`` halves both the
    local-slice memory and the alltoall traffic).  Returns a dict with the
    rank's slice (``statevector_slice``), the global expectation value
    (identical on every rank after the allreduce, always accumulated in
    float64) and the number of alltoall calls performed.
    """
    rank, size = comm.rank, comm.size
    if size & (size - 1):
        raise ValueError("the rank count must be a power of two")
    k = size.bit_length() - 1
    if 2 * k > n_qubits:
        raise ValueError(f"Algorithm 4 requires 2*log2(K) <= n; got K={size}, n={n_qubits}")
    n_local = n_qubits - k
    local_states = 1 << n_local
    g, b_angles = validate_angles(gammas, betas)
    spec = resolve_precision(precision)

    # Slice-local precomputation (Sec. III-A: no communication needed).
    costs = precompute_cost_diagonal_slice(terms, n_qubits,
                                           rank * local_states, (rank + 1) * local_states,
                                           dtype=spec.real_dtype)
    sv = np.full(local_states, 1.0 / np.sqrt(1 << n_qubits), dtype=spec.complex_dtype)
    workspace = KernelWorkspace(local_states, dtype=spec.complex_dtype)
    n_alltoall = 0

    for gamma, beta in zip(g, b_angles):
        apply_phase_inplace(sv, costs, float(gamma), workspace)
        a, b = su2_x_rotation(float(beta))
        for q in range(n_local):
            apply_su2_blocked(sv, a, b, q, workspace)
        if k > 0:
            sv = comm.alltoall(sv)
            n_alltoall += 1
            for q in range(n_qubits - k, n_qubits):
                apply_su2_blocked(sv, a, b, q - k, workspace)
            sv = comm.alltoall(sv)
            n_alltoall += 1

    # Float64 accumulation regardless of the state precision.
    probs = (np.abs(sv) ** 2).astype(np.float64, copy=False)
    local_expectation = float(np.dot(probs, np.asarray(costs, dtype=np.float64)))
    expectation = float(comm.allreduce_sum(local_expectation))
    return {
        "rank": rank,
        "statevector_slice": sv,
        "expectation": expectation,
        "n_alltoall": n_alltoall,
    }


def qaoa_rank_program_batch(comm: Communicator, n_qubits: int,
                            terms: list[tuple[float, tuple[int, ...]]],
                            gammas_batch, betas_batch,
                            precision: str = "double",
                            coalesce: bool = True) -> dict:
    """The fused batched per-rank program: evolve a local slice *block*.

    The SPMD mirror of the execution engine's fused distributed path
    (:mod:`repro.fur.engine`): each rank evolves a ``(B, local_states)``
    block through all layers — batched slice-local phase sweeps (unique-value
    phase table when the slice is repetitive), batched local SU(2) rotations,
    and the alltoall exchanges for the global qubits — then reduces every
    schedule to its objective value with one allreduce.

    With ``coalesce=True`` (the default, mirroring the engine's
    CoalesceExchanges plan rewrite) each exchange packs the whole block
    destination-major into *one* alltoall, so the collective count per layer
    is 2 regardless of the batch size; ``coalesce=False`` keeps the
    historical one-alltoall-per-schedule path (bitwise-identical results).
    Returns a dict with the rank's block, the length-``B`` ``expectations``
    array (identical on every rank, float64-accumulated) and the alltoall
    count.
    """
    rank, size = comm.rank, comm.size
    if size & (size - 1):
        raise ValueError("the rank count must be a power of two")
    k = size.bit_length() - 1
    if 2 * k > n_qubits:
        raise ValueError(f"Algorithm 4 requires 2*log2(K) <= n; got K={size}, n={n_qubits}")
    n_local = n_qubits - k
    local_states = 1 << n_local
    g, b_angles = validate_angle_batches(gammas_batch, betas_batch)
    batch = g.shape[0]
    spec = resolve_precision(precision)

    # Slice-local precomputation (Sec. III-A: no communication needed).
    costs = precompute_cost_diagonal_slice(terms, n_qubits,
                                           rank * local_states, (rank + 1) * local_states,
                                           dtype=spec.real_dtype)
    costs64 = np.asarray(costs, dtype=np.float64)
    table = build_phase_table(costs64)
    block = np.full((batch, local_states), 1.0 / np.sqrt(1 << n_qubits),
                    dtype=spec.complex_dtype)
    workspace = KernelWorkspace(local_states, dtype=spec.complex_dtype)
    n_alltoall = 0

    def exchange(blk: np.ndarray) -> int:
        """One global-qubit transposition exchange; returns the alltoall count."""
        if coalesce:
            # Destination-major packing: all rows' sub-chunks for rank d are
            # contiguous, so one collective carries the whole batch (the
            # message count stops scaling with B — same rewrite the engine's
            # CoalesceExchanges pass applies to the driver-form backend).
            packed = np.ascontiguousarray(
                blk.reshape(batch, size, -1).transpose(1, 0, 2)).reshape(-1)
            recv = comm.alltoall(packed)
            blk[:] = (recv.reshape(size, batch, -1).transpose(1, 0, 2)
                      .reshape(batch, local_states))
            return 1
        for i in range(batch):
            blk[i, :] = comm.alltoall(blk[i])
        return batch

    for layer in range(g.shape[1]):
        apply_phase_batch_inplace(block, costs, g[:, layer], workspace,
                                  phase_table=table)
        a_rows, b_rows = su2_x_rotation_batch(b_angles[:, layer])
        for q in range(n_local):
            apply_su2_batch_blocked(block, a_rows, b_rows, q, workspace)
        if k > 0:
            n_alltoall += exchange(block)
            for q in range(n_qubits - k, n_qubits):
                apply_su2_batch_blocked(block, a_rows, b_rows, q - k, workspace)
            n_alltoall += exchange(block)

    # Float64 accumulation regardless of the state precision.
    local = expectation_batch_inplace(block, costs64, workspace)
    expectations = np.asarray(comm.allreduce_sum(local), dtype=np.float64)
    return {
        "rank": rank,
        "statevector_block": block,
        "expectations": expectations,
        "n_alltoall": n_alltoall,
    }


def run_distributed_qaoa(n_qubits: int, terms: Iterable[tuple[float, Iterable[int]]],
                         gammas: Sequence[float], betas: Sequence[float],
                         n_ranks: int = 4, precision: str = "double") -> dict:
    """Run the SPMD program on a :class:`ThreadCluster` and assemble the results.

    Returns a dict with the gathered ``statevector``, the ``expectation`` and
    the per-rank result dicts (``ranks``).
    """
    term_list = [(float(w), tuple(idx)) for w, idx in terms]
    cluster = ThreadCluster(n_ranks)
    results = cluster.run(qaoa_rank_program,
                          [(n_qubits, term_list, gammas, betas, precision)] * n_ranks)
    results.sort(key=lambda r: r["rank"])
    full = np.concatenate([r["statevector_slice"] for r in results])
    return {
        "statevector": full,
        "expectation": results[0]["expectation"],
        "ranks": results,
    }


def run_distributed_qaoa_batch(n_qubits: int,
                               terms: Iterable[tuple[float, Iterable[int]]],
                               gammas_batch, betas_batch,
                               n_ranks: int = 4,
                               precision: str = "double",
                               coalesce: bool = True) -> dict:
    """Run the fused batched SPMD program on a :class:`ThreadCluster`.

    ``coalesce`` selects the batch-coalesced alltoall (see
    :func:`qaoa_rank_program_batch`).  Returns a dict with the per-schedule
    ``expectations`` array, the gathered ``(B, 2^n)`` ``statevectors`` block
    and the per-rank result dicts (``ranks``).
    """
    term_list = [(float(w), tuple(idx)) for w, idx in terms]
    cluster = ThreadCluster(n_ranks)
    results = cluster.run(
        qaoa_rank_program_batch,
        [(n_qubits, term_list, gammas_batch, betas_batch, precision,
          coalesce)] * n_ranks)
    results.sort(key=lambda r: r["rank"])
    full = np.concatenate([r["statevector_block"] for r in results], axis=1)
    return {
        "statevectors": full,
        "expectations": results[0]["expectations"],
        "ranks": results,
    }
