"""Distributed QAOA simulators over the virtual cluster (Sec. III-C, Algorithm 4).

The state vector of ``n`` qubits is split across ``K = 2^k`` virtual ranks;
rank ``r`` holds the contiguous slice of amplitudes whose top ``k`` index bits
equal ``r`` (the paper's *global qubits*).  The cost diagonal is precomputed
slice-by-slice with no communication (the locality property of Sec. III-A),
the phase operator is applied locally, and only the mixer requires moving
data.  Two communication strategies are implemented, mirroring the paper's two
distributed backends:

* :class:`QAOAFURXSimulatorGPUMPI` — the custom ``MPI_Alltoall`` strategy of
  Algorithm 4: two all-to-all exchanges per mixer application, between which
  the previously-global qubits are rotated locally at shifted positions;
* :class:`QAOAFURXSimulatorCUSVMPI` — the cuStateVec-style *distributed index
  swap*: each global qubit is swapped with the top local qubit through a
  pairwise half-slice exchange with the rank differing in that bit, rotated
  locally, and swapped back.

Both are verified bit-exact against the single-node simulators in the
test-suite.  Only the transverse-field (X) mixer is distributed — the same
restriction as the paper's large-scale LABS runs, which use the standard
mixer.

Execution model: the simulator object *drives* the per-rank slices (so results
are deterministic and the communication pattern is explicit and inspectable
via :attr:`traffic_log`); per-rank local kernels can optionally run on a
thread pool (``parallel_local=True``) to overlap work across host cores, and
an SPMD entry point compatible with
:class:`repro.parallel.communicator.ThreadCluster` is provided in
:mod:`repro.fur.mpi.spmd`.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any

import numpy as np

from ...parallel.collectives import ALLTOALL_ALGORITHMS, TrafficTrace, alltoall
from ..base import QAOAFastSimulatorBase, validate_angles
from ..cvect.kernels import (
    DEFAULT_BLOCK_SIZE,
    KernelWorkspace,
    apply_phase_batch_inplace,
    apply_phase_inplace,
    apply_su2_batch_blocked,
    apply_su2_blocked,
    expectation_batch_inplace,
)
from ..diagonal import build_phase_table, precompute_cost_diagonal_slice
from ..python.furx import su2_x_rotation, su2_x_rotation_batch

__all__ = [
    "DistributedStateVector",
    "QAOAFURXSimulatorGPUMPI",
    "QAOAFURXSimulatorCUSVMPI",
]


@dataclass
class DistributedStateVector:
    """The per-rank slices of a distributed state vector (a backend *result*)."""

    slices: list[np.ndarray]
    n_qubits: int

    @property
    def n_ranks(self) -> int:
        """Number of ranks holding slices."""
        return len(self.slices)

    def gather(self) -> np.ndarray:
        """Concatenate all slices into the full state vector (``mpi_gather=True``)."""
        return np.concatenate(self.slices)


class _DistributedFURXBase(QAOAFastSimulatorBase):
    """Shared distributed simulation logic; subclasses supply the global-qubit step.

    The class implements the execution engine's
    :class:`~repro.fur.engine.KernelProvider` protocol over *per-rank slice
    blocks* (a list of ``(rows, 2^n−k)`` arrays, one per rank), so batched
    evaluation of the distributed backends is fused exactly like the
    single-address-space families: local phase and SU(2) sweeps are batched
    across all schedules per rank, and the global-qubit communication step is
    batched per strategy (one larger exchange instead of one per schedule
    where the algorithm allows it).
    """

    mixer_name = "x"
    supports_fused_engine = True
    supports_fused_phase_mixer = True

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 n_ranks: int = 4, block_size: int = DEFAULT_BLOCK_SIZE,
                 parallel_local: bool = False,
                 precision: str = "double",
                 optimize: str = "default") -> None:
        if n_ranks <= 0 or n_ranks & (n_ranks - 1):
            raise ValueError(f"n_ranks must be a positive power of two, got {n_ranks}")
        k = n_ranks.bit_length() - 1
        if 2 * k > n_qubits:
            raise ValueError(
                f"Algorithm 4 requires 2*log2(K) <= n; got K={n_ranks}, n={n_qubits}"
            )
        self._n_ranks = int(n_ranks)
        self._k_global = k
        self._block_size = int(block_size)
        self._parallel_local = bool(parallel_local)
        self.traffic_log: list[TrafficTrace] = []
        super().__init__(n_qubits, terms=terms, costs=costs,
                         precision=precision, optimize=optimize)

    # -- construction ------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        """Number of virtual ranks (GPUs) the state is distributed over."""
        return self._n_ranks

    @property
    def n_local_qubits(self) -> int:
        """Number of local (per-rank) qubits ``n − log2 K``."""
        return self._n_qubits - self._k_global

    @property
    def local_states(self) -> int:
        """Amplitudes per rank."""
        return 1 << self.n_local_qubits

    def _precompute_diagonal(self, terms) -> np.ndarray:
        """Slice-local precomputation (no communication), then a host mirror."""
        s = self.local_states
        self._cost_slices = [
            precompute_cost_diagonal_slice(terms, self._n_qubits, r * s, (r + 1) * s)
            for r in range(self._n_ranks)
        ]
        return np.concatenate(self._cost_slices)

    def _ingest_costs(self, costs):
        host = super()._ingest_costs(costs)
        full = host.decompress() if hasattr(host, "decompress") else np.asarray(host, dtype=np.float64)
        s = self.local_states
        self._cost_slices = [full[r * s:(r + 1) * s] for r in range(self._n_ranks)]
        return host

    def _post_init(self) -> None:
        self._workspace = [KernelWorkspace(self.local_states, self._block_size,
                                           dtype=self._precision.complex_dtype)
                           for _ in range(self._n_ranks)]
        # Phase kernels stream a precision-matched diagonal slice; the float64
        # ``_cost_slices`` remain the accumulation-side (expectation) view.
        if self._precision.is_double:
            self._phase_cost_slices = self._cost_slices
        else:
            self._phase_cost_slices = [
                np.ascontiguousarray(c, dtype=self._precision.real_dtype)
                for c in self._cost_slices
            ]

    # -- helpers -------------------------------------------------------------------
    def _map_ranks(self, fn) -> None:
        """Run a per-rank callable, optionally on a thread pool."""
        if self._parallel_local and self._n_ranks > 1:
            with ThreadPoolExecutor(max_workers=min(self._n_ranks, 8)) as pool:
                list(pool.map(fn, range(self._n_ranks)))
        else:
            for r in range(self._n_ranks):
                fn(r)

    def _initial_slices(self, sv0: np.ndarray | None) -> list[np.ndarray]:
        s = self.local_states
        if sv0 is None:
            amp = 1.0 / np.sqrt(self._n_states)
            return [np.full(s, amp, dtype=self._precision.complex_dtype)
                    for _ in range(self._n_ranks)]
        full = self._validate_sv0(sv0)
        return [np.array(full[r * s:(r + 1) * s], copy=True) for r in range(self._n_ranks)]

    def _apply_phase(self, slices: list[np.ndarray], gamma: float) -> None:
        def work(r: int) -> None:
            apply_phase_inplace(slices[r], self._phase_cost_slices[r], gamma,
                                self._workspace[r])

        self._map_ranks(work)

    def _apply_local_mixer(self, slices: list[np.ndarray], a: complex, b: complex) -> None:
        """Rotations on the local qubits 0 … n−k−1 (Algorithm 4, lines 2–4)."""
        def work(r: int) -> None:
            for q in range(self.n_local_qubits):
                apply_su2_blocked(slices[r], a, b, q, self._workspace[r])

        self._map_ranks(work)

    def _apply_global_mixer(self, slices: list[np.ndarray], a: complex, b: complex) -> None:
        """Rotations on the k global qubits — strategy-specific (communication)."""
        raise NotImplementedError

    # -- kernel-provider hooks (driven by repro.fur.engine) ----------------------------
    def _engine_phase_tables(self) -> tuple:
        """Per-rank unique-value phase tables over the local diagonal slices.

        Built lazily on first plan compile and cached for the simulator's
        lifetime (alongside the slice-local diagonals); an entry is ``None``
        when that rank's slice is not repetitive enough for the gather to pay
        off, in which case the batched phase kernel falls back to the direct
        ``exp`` path for that rank.
        """
        tables = getattr(self, "_phase_table_slices", None)
        if tables is None:
            tables = tuple(build_phase_table(np.asarray(c, dtype=np.float64))
                           for c in self._cost_slices)
            self._phase_table_slices = tables
        return tables

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> list[np.ndarray]:
        """Materialize one ``(rows, local_states)`` block per rank."""
        s = self.local_states
        if sv0 is None:
            amp = 1.0 / np.sqrt(self._n_states)
            return [np.full((rows, s), amp, dtype=self._precision.complex_dtype)
                    for _ in range(self._n_ranks)]
        full = self._validate_sv0(sv0)
        return [np.repeat(full[r * s:(r + 1) * s][None, :], rows, axis=0)
                for r in range(self._n_ranks)]

    def _apply_phase_block(self, block: list[np.ndarray], gammas: np.ndarray,
                           plan: Any) -> None:
        """Batched slice-local phase sweep (no communication, Sec. III-A)."""
        tables = plan.phase_tables

        def work(r: int) -> None:
            table = None if tables is None else tables[r]
            apply_phase_batch_inplace(block[r], self._phase_cost_slices[r],
                                      gammas, self._workspace[r],
                                      phase_table=table)

        self._map_ranks(work)

    def _apply_mixer_block(self, block: list[np.ndarray], betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        """Batched transverse-field mixer over per-rank slice blocks.

        Local qubits are rotated with the batched blocked SU(2) kernel (one
        sweep covers every schedule); the global qubits go through the
        strategy's batched communication step.  ``n_trotters`` is ignored —
        the X-mixer factors commute exactly — and no ping-pong scratch is
        used (the blocked kernels run in place through the workspaces).
        """
        del n_trotters, scratch
        self._mixer_block_batch(block, betas, coalesce=False)

    def _apply_mixer_block_coalesced(self, block: list[np.ndarray],
                                     betas: np.ndarray, n_trotters: int,
                                     scratch: Any) -> None:
        """Mixer sweep with the batch-coalesced global exchange (the
        CoalesceExchanges plan rewrite)."""
        del n_trotters, scratch
        self._mixer_block_batch(block, betas, coalesce=True)

    def _mixer_block_batch(self, block: list[np.ndarray], betas: np.ndarray,
                           coalesce: bool,
                           phase: tuple[np.ndarray, Any] | None = None) -> None:
        """One batched mixer sweep; the single body both entry points share.

        ``phase=(gammas, tables)`` optionally prepends the slice-local phase
        sweep *inside* the same per-rank dispatch (the fused path): one
        ``_map_ranks`` pass instead of two, with each rank's slice block
        staying cache-hot between the phase multiply and the first rotation.
        """
        a_rows, b_rows = su2_x_rotation_batch(betas)

        def work(r: int) -> None:
            if phase is not None:
                gammas, tables = phase
                apply_phase_batch_inplace(block[r], self._phase_cost_slices[r],
                                          gammas, self._workspace[r],
                                          phase_table=None if tables is None
                                          else tables[r])
            for q in range(self.n_local_qubits):
                apply_su2_batch_blocked(block[r], a_rows, b_rows, q,
                                        self._workspace[r])

        self._map_ranks(work)
        if self._k_global > 0:
            self._apply_global_mixer_batch(block, a_rows, b_rows,
                                           coalesce=coalesce)

    def _apply_phase_mixer_block(self, block: list[np.ndarray],
                                 gammas: np.ndarray, betas: np.ndarray,
                                 op: Any, scratch: Any, plan: Any) -> None:
        """FusedPhaseMixerOp kernel over per-rank slice blocks.

        The phase sweep rides the mixer's per-rank dispatch (see
        :meth:`_mixer_block_batch`); the global step honours the op's
        ``coalesce`` flag.
        """
        del scratch
        self._mixer_block_batch(block, betas, coalesce=op.coalesce,
                                phase=(gammas, plan.phase_tables))

    def _apply_global_mixer_batch(self, block: list[np.ndarray],
                                  a_rows: np.ndarray, b_rows: np.ndarray,
                                  coalesce: bool = False) -> None:
        """Batched rotations on the k global qubits — strategy-specific."""
        raise NotImplementedError

    def _block_expectations(self, block: list[np.ndarray],
                            costs: np.ndarray) -> np.ndarray:
        """Per-schedule objective: slice-local partial sums + allreduce(sum).

        Accumulation is float64 per rank (the workspace's real scratch)
        regardless of the state precision; the reduce over ranks models the
        final ``MPI_Allreduce``.
        """
        s = self.local_states
        out = np.zeros(block[0].shape[0], dtype=np.float64)
        for r in range(self._n_ranks):
            cost_slice = np.asarray(costs[r * s:(r + 1) * s], dtype=np.float64)
            out += expectation_batch_inplace(block[r], cost_slice,
                                             self._workspace[r])
        return out

    def _block_results(self, block: list[np.ndarray]) -> list[DistributedStateVector]:
        """One :class:`DistributedStateVector` per schedule (slices copied out)."""
        rows = block[0].shape[0]
        return [
            DistributedStateVector(
                slices=[np.array(block[r][i], copy=True)
                        for r in range(self._n_ranks)],
                n_qubits=self._n_qubits,
            )
            for i in range(rows)
        ]

    # -- simulation -------------------------------------------------------------------
    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, **kwargs: Any) -> DistributedStateVector:
        """Evolve the distributed state through p QAOA layers."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        g, b_angles = validate_angles(gammas, betas)
        slices = self._initial_slices(sv0)
        for gamma, beta in zip(g, b_angles):
            self._apply_phase(slices, float(gamma))
            a, b = su2_x_rotation(float(beta))
            self._apply_local_mixer(slices, a, b)
            if self._k_global > 0:
                self._apply_global_mixer(slices, a, b)
        return DistributedStateVector(slices=slices, n_qubits=self._n_qubits)

    # -- output methods ------------------------------------------------------------------
    def get_statevector(self, result: DistributedStateVector, *, mpi_gather: bool = True,
                        **kwargs: Any) -> np.ndarray | list[np.ndarray]:
        """Full state vector (``mpi_gather=True``) or the raw per-rank slices."""
        if mpi_gather:
            return result.gather()
        return result.slices

    def get_probabilities(self, result: DistributedStateVector, preserve_state: bool = True,
                          *, mpi_gather: bool = True, **kwargs: Any) -> np.ndarray | list[np.ndarray]:
        """Measurement probabilities (gathered by default; always float64)."""
        probs = [(np.abs(s) ** 2).astype(np.float64, copy=False) for s in result.slices]
        if mpi_gather:
            return np.concatenate(probs)
        return probs

    def get_expectation(self, result: DistributedStateVector, costs=None,
                        preserve_state: bool = True, **kwargs: Any) -> float:
        """Objective value: per-rank partial inner products + an allreduce(sum)."""
        if costs is None:
            cost_slices = self._cost_slices
        else:
            full = self._resolve_costs(costs)
            s = self.local_states
            cost_slices = [full[r * s:(r + 1) * s] for r in range(self._n_ranks)]
        partial = 0.0
        for sv, c in zip(result.slices, cost_slices):
            partial += float(np.dot(np.abs(sv) ** 2, c))
        return partial

    def get_overlap(self, result: DistributedStateVector, costs=None, indices=None,
                    preserve_state: bool = True, **kwargs: Any) -> float:
        """Ground-state overlap computed slice-locally and reduced."""
        diag = self.get_cost_diagonal() if costs is None else self._resolve_costs(costs)
        if indices is None:
            indices = np.flatnonzero(diag == diag.min())
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("overlap requested against an empty set of indices")
        if idx.min() < 0 or idx.max() >= self._n_states:
            raise ValueError("overlap indices out of range")
        s = self.local_states
        total = 0.0
        for r, sv in enumerate(result.slices):
            local = idx[(idx >= r * s) & (idx < (r + 1) * s)] - r * s
            if local.size:
                total += float(np.sum(np.abs(sv[local]) ** 2))
        return total


class QAOAFURXSimulatorGPUMPI(_DistributedFURXBase):
    """Distributed FUR simulator using the Alltoall strategy (Algorithm 4)."""

    backend_name = "gpumpi"

    @property
    def supports_coalesced_exchange(self) -> bool:
        """Whether the CoalesceExchanges rewrite may fire for this instance.

        The coalesced exchange *is* the direct algorithm over whole-block
        slabs, so it only engages when ``alltoall_algorithm="direct"`` (the
        default).  A non-direct algorithm request (``ring``/``bruck``/
        ``pairwise``) keeps the per-row path — otherwise the algorithm knob
        would be silently inert and every traffic trace would degenerate to
        one direct round, defeating the communication-algorithm comparison
        the traffic model exists for.
        """
        return self.alltoall_algorithm == "direct"

    @property
    def alltoall_algorithm(self) -> str:
        """The Alltoall algorithm, fixed at construction.

        Read-only because compiled plans bake the coalesce decision derived
        from it — a post-construction mutation would silently keep serving
        plans shaped for the old algorithm out of the cache.
        """
        return self._alltoall_algorithm

    def __init__(self, n_qubits: int, terms=None, costs=None, *, n_ranks: int = 4,
                 alltoall_algorithm: str = "direct",
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 parallel_local: bool = False,
                 precision: str = "double",
                 optimize: str = "default") -> None:
        if alltoall_algorithm not in ALLTOALL_ALGORITHMS:
            raise ValueError(
                f"unknown alltoall algorithm {alltoall_algorithm!r}; "
                f"available: {sorted(ALLTOALL_ALGORITHMS)}"
            )
        self._alltoall_algorithm = alltoall_algorithm
        super().__init__(n_qubits, terms=terms, costs=costs, n_ranks=n_ranks,
                         block_size=block_size, parallel_local=parallel_local,
                         precision=precision, optimize=optimize)

    def _apply_global_mixer(self, slices: list[np.ndarray], a: complex, b: complex) -> None:
        # First Alltoall: transpose global and (top-k local) qubits.
        new_slices, trace = alltoall(slices, self.alltoall_algorithm)
        self.traffic_log.append(trace)
        for r in range(self._n_ranks):
            slices[r][:] = new_slices[r]
        # Rotate the previously-global qubits, now at local positions d = q − k.
        def work(r: int) -> None:
            for q in range(self._n_qubits - self._k_global, self._n_qubits):
                apply_su2_blocked(slices[r], a, b, q - self._k_global, self._workspace[r])

        self._map_ranks(work)
        # Second Alltoall: restore the original qubit ordering.
        new_slices, trace = alltoall(slices, self.alltoall_algorithm)
        self.traffic_log.append(trace)
        for r in range(self._n_ranks):
            slices[r][:] = new_slices[r]

    def _alltoall_block(self, block: list[np.ndarray]) -> None:
        """One Alltoall per schedule row, written back into the block in place."""
        for i in range(block[0].shape[0]):
            row_slices = [block[r][i] for r in range(self._n_ranks)]
            new_slices, trace = alltoall(row_slices, self.alltoall_algorithm)
            self.traffic_log.append(trace)
            for r in range(self._n_ranks):
                block[r][i, :] = new_slices[r]

    def _alltoall_block_coalesced(self, block: list[np.ndarray]) -> None:
        """One Alltoall for the *whole* block (the CoalesceExchanges rewrite).

        Each rank sends its ``(rows, chunk)`` slab for destination ``d`` in
        one message, so a single collective round moves the entire batch:
        the message count is ``K(K−1)`` per exchange regardless of the batch
        size, where the per-row path pays ``rows · K(K−1)``.  Byte volume is
        identical; the win is the per-message latency (and, in this driver
        substrate, the per-row dispatch and receive-buffer churn).

        The transposition ``new[d][:, s] = old[s][:, d]`` is a pairwise slab
        *swap* for every unordered rank pair — the diagonal slabs never move
        — so it runs fully in place through one reusable ``(rows, chunk)``
        staging buffer (the same structure as the index-bit-swap strategy's
        half-slice exchange; Bruck-style multi-hop staging would need a
        packing pass that costs more than it saves here, so
        ``alltoall_algorithm`` keeps applying to the per-row path only).
        The swapped slabs land exactly where the per-row transposition would
        put them, so results are bitwise identical to :meth:`_alltoall_block`.
        """
        size = self._n_ranks
        rows = block[0].shape[0]
        chunk = block[0].shape[1] // size
        trace = TrafficTrace()
        buf = getattr(self, "_coalesce_swap_buf", None)
        if buf is None or buf.shape != (rows, chunk) or buf.dtype != block[0].dtype:
            buf = np.empty((rows, chunk), dtype=block[0].dtype)
            self._coalesce_swap_buf = buf
        for r in range(size):
            for partner in range(r + 1, size):
                a = block[r][:, partner * chunk:(partner + 1) * chunk]
                b = block[partner][:, r * chunk:(r + 1) * chunk]
                np.copyto(buf, a)
                a[:] = b
                b[:] = buf
                trace.add(r, partner, a.nbytes, 0)
                trace.add(partner, r, a.nbytes, 0)
        self.traffic_log.append(trace)

    def _apply_global_mixer_batch(self, block: list[np.ndarray],
                                  a_rows: np.ndarray, b_rows: np.ndarray,
                                  coalesce: bool = False) -> None:
        """Batched Algorithm 4 global step: the rotations between the two
        Alltoall exchanges cover every schedule in one batched sweep per rank.
        ``coalesce`` selects the block-wide exchange over the per-row one."""
        exchange = (self._alltoall_block_coalesced if coalesce
                    else self._alltoall_block)
        exchange(block)

        def work(r: int) -> None:
            for q in range(self._n_qubits - self._k_global, self._n_qubits):
                apply_su2_batch_blocked(block[r], a_rows, b_rows,
                                        q - self._k_global, self._workspace[r])

        self._map_ranks(work)
        exchange(block)


class QAOAFURXSimulatorCUSVMPI(_DistributedFURXBase):
    """Distributed FUR simulator using cuStateVec-style index-bit swaps."""

    backend_name = "cusvmpi"

    def _apply_global_mixer(self, slices: list[np.ndarray], a: complex, b: complex) -> None:
        n_local = self.n_local_qubits
        half = 1 << (n_local - 1)
        trace = TrafficTrace()
        for j in range(self._k_global):
            self._swap_global_with_top_local(slices, j, half, trace)
            # The global qubit now occupies the top local position; rotate it.
            def work(r: int) -> None:
                apply_su2_blocked(slices[r], a, b, n_local - 1, self._workspace[r])

            self._map_ranks(work)
            self._swap_global_with_top_local(slices, j, half, trace)
        self.traffic_log.append(trace)

    def _apply_global_mixer_batch(self, block: list[np.ndarray],
                                  a_rows: np.ndarray, b_rows: np.ndarray,
                                  coalesce: bool = False) -> None:
        """Batched index-bit-swap global step.

        The half-slice exchange operates on the state axis of the whole
        ``(rows, local_states)`` block, so every global qubit costs one
        pairwise exchange for *all* schedules at once (rows-independent
        message count — the batched win over the looped default) and one
        batched SU(2) sweep on the top local qubit.  ``coalesce`` is
        accepted for signature compatibility and ignored: this strategy's
        exchange is already block-coalesced by construction.
        """
        del coalesce
        n_local = self.n_local_qubits
        half = 1 << (n_local - 1)
        trace = TrafficTrace()
        for j in range(self._k_global):
            self._swap_global_with_top_local(block, j, half, trace)

            def work(r: int) -> None:
                apply_su2_batch_blocked(block[r], a_rows, b_rows, n_local - 1,
                                        self._workspace[r])

            self._map_ranks(work)
            self._swap_global_with_top_local(block, j, half, trace)
        self.traffic_log.append(trace)

    def _swap_global_with_top_local(self, slices: list[np.ndarray], global_bit: int,
                                    half: int, trace: TrafficTrace) -> None:
        """Pairwise exchange implementing the index swap of rank bit ``global_bit``
        with the top local qubit.

        ``slices`` may hold 1-D per-rank state slices (the looped path) or
        2-D ``(rows, local_states)`` blocks (the fused batched path) — the
        exchange always acts on the trailing state axis.
        """
        for r in range(self._n_ranks):
            partner = r ^ (1 << global_bit)
            if partner < r:
                continue  # each unordered pair is handled once
            g = (r >> global_bit) & 1
            # rank r sends the half whose top local bit differs from its rank bit g;
            # the partner (rank bit 1-g) sends the complementary half.
            r_lo, r_hi = (0, half) if g == 1 else (half, 2 * half)
            p_lo, p_hi = (half, 2 * half) if g == 1 else (0, half)
            buf = slices[r][..., r_lo:r_hi].copy()
            slices[r][..., r_lo:r_hi] = slices[partner][..., p_lo:p_hi]
            slices[partner][..., p_lo:p_hi] = buf
            nbytes = buf.nbytes
            trace.add(r, partner, nbytes, global_bit)
            trace.add(partner, r, nbytes, global_bit)
