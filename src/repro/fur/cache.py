"""Process-wide cache of precomputed cost diagonals.

The precomputation of the 2^n cost vector is the one-time O(|T| · 2^n) cost
that the paper's fast simulators amortize over every phase-operator
application and objective evaluation (Sec. III-A).  During parameter
optimization (Fig. 1/2), however, user code frequently *reconstructs*
simulators or objectives for the same problem — progressive-depth schedules
build a fresh objective per depth, benchmark harnesses build one per backend,
and multi-start optimizers build one per restart.  Each reconstruction used to
repeat the precomputation from scratch.

This module removes that repeated cost: diagonals are cached process-wide,
keyed by a *problem fingerprint* (the qubit count plus the exact normalized
term list).  Cached arrays are returned read-only and shared by every
simulator constructed for the same problem — all consumers of the diagonal
(phase kernels, expectation reductions) only ever read it.

The cache is a small thread-safe LRU; statistics (hits / misses / evictions)
are exposed for tests and for capacity tuning.  Lookups are *single-flight*:
when several threads race for the same uncached problem (the serving layer's
micro-batch flushes run on a thread pool), exactly one thread performs the
O(|T| · 2^n) precomputation and the others wait for its result instead of
duplicating the work — ``stats.misses`` counts actual precomputations.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..problems.terms import Term, validate_terms
from .diagonal import precompute_cost_diagonal

__all__ = [
    "CacheStats",
    "DiagonalCache",
    "diagonal_cache",
    "cached_cost_diagonal",
    "problem_fingerprint",
]

#: Default number of diagonals kept alive.
DEFAULT_CACHE_SIZE = 32

#: Default byte budget.  Each entry is 8 · 2^n bytes (2 GiB at n=28), so an
#: entry-count cap alone would let a handful of large-n diagonals pin tens of
#: GiB; the byte budget is what actually bounds sweep-style workloads.
DEFAULT_CACHE_BYTES = 1 << 32  # 4 GiB


def _cache_key(terms: list[Term], n_qubits: int) -> tuple:
    """Exact hashable key for a problem: qubit count + normalized terms."""
    return (int(n_qubits), tuple((float(w), tuple(idx)) for w, idx in terms))


def problem_fingerprint(terms: Iterable[tuple[float, Iterable[int]]],
                        n_qubits: int) -> str:
    """Stable hex digest identifying a (terms, n_qubits) problem instance.

    Two problems share a fingerprint iff they have identical normalized term
    lists and qubit counts — the same condition under which the cached cost
    diagonal may be reused.  Useful as a key for on-disk artifacts (benchmark
    results, optimized parameters) as well.
    """
    normalized = validate_terms(terms, n_qubits)
    digest = hashlib.sha256(repr(_cache_key(normalized, n_qubits)).encode())
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Counters describing cache effectiveness since the last ``clear()``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def precomputations(self) -> int:
        """Number of times the full diagonal was actually computed."""
        return self.misses


class DiagonalCache:
    """Thread-safe LRU cache of read-only precomputed cost diagonals."""

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE,
                 max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        self._maxsize = int(maxsize)
        self._max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, np.ndarray] = OrderedDict()
        #: in-flight precomputations, keyed like the entries; threads that
        #: lose the single-flight race wait on the owner's event
        self._pending: dict[tuple, threading.Event] = {}
        self._nbytes = 0
        self._stats = CacheStats()
        self._enabled = True

    # -- configuration -------------------------------------------------------
    @property
    def maxsize(self) -> int:
        """Maximum number of cached diagonals."""
        return self._maxsize

    @property
    def max_bytes(self) -> int:
        """Maximum total memory the cached diagonals may occupy."""
        return self._max_bytes

    @property
    def enabled(self) -> bool:
        """Whether lookups/stores are active (disable to benchmark cold paths)."""
        return self._enabled

    def disable(self) -> None:
        """Turn the cache off; subsequent requests always recompute."""
        self._enabled = False

    def enable(self) -> None:
        """Re-enable caching after :meth:`disable`."""
        self._enabled = True

    @contextmanager
    def bypass(self):
        """Context manager that disables the cache for its duration.

        Used by benchmarks that must measure the cold precomputation path
        (e.g. the Fig. 4 "QOKit + CPU precompute" curve) without being
        short-circuited by a warm process-wide cache.
        """
        prev = self._enabled
        self._enabled = False
        try:
            yield self
        finally:
            self._enabled = prev

    # -- inspection ----------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Live counters (hits / misses / evictions)."""
        return self._stats

    def __len__(self) -> int:
        return len(self._entries)

    def currsize_bytes(self) -> int:
        """Total memory held by the cached diagonals."""
        with self._lock:
            return self._nbytes

    def clear(self) -> None:
        """Drop all entries and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
            self._stats = CacheStats()

    # -- the cache operation -------------------------------------------------
    def get(self, terms: list[Term], n_qubits: int) -> np.ndarray:
        """Return the (read-only) cost diagonal for a validated term list.

        On a miss the diagonal is precomputed, marked read-only, stored, and
        returned; on a hit the shared array is returned directly.  The terms
        must already be normalized/validated (the simulator base class
        guarantees this), so equal problems always produce equal keys.

        Misses are *single-flight*: concurrent callers for the same uncached
        problem wait for the one thread that owns the precomputation instead
        of each paying the O(|T| · 2^n) cost (and then racing to store).
        Unrelated problems still precompute concurrently — the lock is only
        held for bookkeeping, never during the computation itself.
        """
        if not self._enabled or self._maxsize == 0:
            with self._lock:
                self._stats.misses += 1
            return precompute_cost_diagonal(terms, n_qubits)
        key = _cache_key(terms, n_qubits)
        while True:
            with self._lock:
                cached = self._entries.get(key)
                if cached is not None:
                    self._entries.move_to_end(key)
                    self._stats.hits += 1
                    return cached
                pending = self._pending.get(key)
                if pending is None:
                    pending = threading.Event()
                    self._pending[key] = pending
                    break  # this thread owns the precomputation
            # Another thread is precomputing this exact problem: wait for it
            # to finish, then re-check (the entry will be a hit, unless it was
            # too large to store — in which case this thread takes ownership).
            pending.wait()
        try:
            # Compute outside the lock: precomputation is the expensive part
            # and must not serialize unrelated problems behind one another.
            diag = precompute_cost_diagonal(terms, n_qubits)
            with self._lock:
                self._stats.misses += 1
                if diag.nbytes > self._max_bytes:
                    # Too large to ever fit the budget: hand back a private
                    # (writable) array rather than evicting the whole cache
                    # for one entry.
                    return diag
                diag.setflags(write=False)
                if key not in self._entries:
                    self._entries[key] = diag
                    self._nbytes += int(diag.nbytes)
                self._entries.move_to_end(key)
                while len(self._entries) > self._maxsize or self._nbytes > self._max_bytes:
                    _, evicted = self._entries.popitem(last=False)
                    self._nbytes -= int(evicted.nbytes)
                    self._stats.evictions += 1
            return diag
        finally:
            with self._lock:
                self._pending.pop(key, None)
            pending.set()


#: The process-wide cache instance used by every CPU simulator constructor.
diagonal_cache = DiagonalCache()


def cached_cost_diagonal(terms: list[Term], n_qubits: int) -> np.ndarray:
    """Precompute (or fetch from the process-wide cache) a cost diagonal.

    The returned array is read-only when it comes from the cache; callers that
    need to mutate it must copy.
    """
    return diagonal_cache.get(terms, n_qubits)
