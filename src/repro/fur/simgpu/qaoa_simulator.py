"""Simulated-GPU QAOA simulators (the paper's ``nbcuda`` backend analogue).

The state vector and the precomputed cost diagonal are resident on a
:class:`~repro.fur.simgpu.device.SimulatedDevice`; all per-layer work happens
through device kernels, and the output methods transfer results back to the
host (honouring ``preserve_state``, as in Listing 3 of the paper).  Numerical
results are identical to the CPU backends; in addition the simulator exposes
``modeled_device_time()`` so the benchmark harness can report projected A100
timings next to measured host timings.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import QAOAFastSimulatorBase, validate_angles
from ..cvect.kernels import DEFAULT_BLOCK_SIZE, KernelWorkspace
from ..diagonal import term_masks_and_weights
from .device import A100_80GB, DeviceArray, DeviceSpec, SimulatedDevice
from .kernels import (
    device_apply_phase,
    device_expectation,
    device_furx_all,
    device_furxy_complete,
    device_furxy_ring,
    device_overlap,
    device_precompute_diagonal,
    device_probabilities,
)

__all__ = [
    "QAOAFURXSimulatorGPU",
    "QAOAFURXYRingSimulatorGPU",
    "QAOAFURXYCompleteSimulatorGPU",
]


class _QAOAFURGPUSimulatorBase(QAOAFastSimulatorBase):
    """Shared device-resident simulation loop; subclasses supply the mixer."""

    backend_name = "gpu"

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 device: SimulatedDevice | None = None,
                 device_spec: DeviceSpec = A100_80GB,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        self._device = device if device is not None else SimulatedDevice(device_spec)
        self._block_size = int(block_size)
        super().__init__(n_qubits, terms=terms, costs=costs)

    # -- construction hooks ----------------------------------------------------
    def _precompute_diagonal(self, terms) -> np.ndarray:
        """Precompute the diagonal *on the device* and mirror it on the host."""
        masks, weights, offset = term_masks_and_weights(terms, self._n_qubits)
        self._costs_device = device_precompute_diagonal(
            self._device, masks, weights, offset, 0, self._n_states
        )
        return np.array(self._costs_device.data, copy=True)

    def _ingest_costs(self, costs):
        host = super()._ingest_costs(costs)
        host_arr = host.decompress() if hasattr(host, "decompress") else np.asarray(host, dtype=np.float64)
        self._costs_device = self._device.to_device(host_arr)
        return host

    def _post_init(self) -> None:
        self._workspace = KernelWorkspace(self._n_states, self._block_size)

    # -- properties --------------------------------------------------------------
    @property
    def device(self) -> SimulatedDevice:
        """The simulated accelerator owning this simulator's buffers."""
        return self._device

    def modeled_device_time(self) -> float:
        """Modeled accelerator time accumulated so far (seconds)."""
        return self._device.modeled_time

    def reset_device_clock(self) -> None:
        """Zero the modeled-time counters (keeps allocations)."""
        self._device.reset_clock()

    # -- simulation ----------------------------------------------------------------
    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        raise NotImplementedError

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> DeviceArray:
        """Evolve through p layers on the device; returns a device-resident result."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv_host = self._validate_sv0(sv0)
        sv = self._device.to_device(sv_host)
        for gamma, beta in zip(g, b):
            device_apply_phase(sv, self._costs_device, float(gamma), self._workspace)
            self._apply_mixer(sv, float(beta), n_trotters)
        return sv

    # -- output methods (always host values) ------------------------------------------
    def get_statevector(self, result: DeviceArray, **kwargs: Any) -> np.ndarray:
        """Device→host copy of the evolved state."""
        return result.copy_to_host()

    def get_probabilities(self, result: DeviceArray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities, computed on device and copied to the host."""
        probs = device_probabilities(result, preserve_state=preserve_state)
        return probs.copy_to_host().astype(np.float64, copy=False)

    def get_expectation(self, result: DeviceArray, costs=None,
                        preserve_state: bool = True, **kwargs: Any) -> float:
        """Objective value via a device-side reduction (no 2^n host transfer)."""
        if costs is None:
            return device_expectation(result, self._costs_device, self._workspace)
        host_costs = self._resolve_costs(costs)
        costs_dev = self._device.to_device(host_costs)
        try:
            return device_expectation(result, costs_dev, self._workspace)
        finally:
            costs_dev.free()

    def get_overlap(self, result: DeviceArray, costs=None, indices=None,
                    preserve_state: bool = True, **kwargs: Any) -> float:
        """Ground-state overlap via a device-side gather + reduction."""
        if indices is None:
            diag = self.get_cost_diagonal() if costs is None else self._resolve_costs(costs)
            indices = np.flatnonzero(diag == diag.min())
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("overlap requested against an empty set of indices")
        if idx.min() < 0 or idx.max() >= self._n_states:
            raise ValueError("overlap indices out of range")
        return device_overlap(result, idx)


class QAOAFURXSimulatorGPU(_QAOAFURGPUSimulatorBase):
    """QAOA with the transverse-field mixer on the simulated GPU."""

    mixer_name = "x"

    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        device_furx_all(sv, beta, self._n_qubits, self._workspace)


class QAOAFURXYRingSimulatorGPU(_QAOAFURGPUSimulatorBase):
    """QAOA with the ring XY mixer on the simulated GPU."""

    mixer_name = "xyring"

    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            device_furxy_ring(sv, beta / n_trotters, self._n_qubits, self._workspace)


class QAOAFURXYCompleteSimulatorGPU(_QAOAFURGPUSimulatorBase):
    """QAOA with the complete-graph XY mixer on the simulated GPU."""

    mixer_name = "xycomplete"

    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            device_furxy_complete(sv, beta / n_trotters, self._n_qubits, self._workspace)
