"""Simulated-GPU QAOA simulators (the paper's ``nbcuda`` backend analogue).

The state vector and the precomputed cost diagonal are resident on a
:class:`~repro.fur.simgpu.device.SimulatedDevice`; all per-layer work happens
through device kernels, and the output methods transfer results back to the
host (honouring ``preserve_state``, as in Listing 3 of the paper).  Numerical
results are identical to the CPU backends; in addition the simulator exposes
``modeled_device_time()`` so the benchmark harness can report projected A100
timings next to measured host timings.

Batched evaluation is orchestrated by the shared execution engine
(:mod:`repro.fur.engine`); this module implements the
:class:`~repro.fur.engine.KernelProvider` hooks over device-resident blocks —
including the device transfer hooks (block upload, per-batch diagonal
staging, block release) and a device-memory-aware sub-batch capacity.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import (
    QAOAFastSimulatorBase,
    batch_block_rows,
    validate_angles,
)
from ..cvect.kernels import DEFAULT_BLOCK_SIZE, KernelWorkspace
from ..diagonal import term_masks_and_weights
from .device import A100_80GB, DeviceArray, DeviceSpec, SimulatedDevice
from .kernels import (
    device_apply_phase,
    device_apply_phase_batch,
    device_expectation,
    device_expectation_batch,
    device_furx_all,
    device_furx_all_batch,
    device_furx_phase_all_batch,
    device_furxy_complete,
    device_furxy_complete_batch,
    device_furxy_ring,
    device_furxy_ring_batch,
    device_overlap,
    device_precompute_diagonal,
    device_probabilities,
    device_split_rows,
)

__all__ = [
    "QAOAFURXSimulatorGPU",
    "QAOAFURXYRingSimulatorGPU",
    "QAOAFURXYCompleteSimulatorGPU",
]


class _QAOAFURGPUSimulatorBase(QAOAFastSimulatorBase):
    """Shared device-resident simulation loop; subclasses supply the mixer."""

    backend_name = "gpu"
    supports_fused_engine = True

    def __init__(self, n_qubits: int, terms=None, costs=None, *,
                 device: SimulatedDevice | None = None,
                 device_spec: DeviceSpec = A100_80GB,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 precision: str = "double",
                 optimize: str = "default") -> None:
        self._device = device if device is not None else SimulatedDevice(device_spec)
        self._block_size = int(block_size)
        super().__init__(n_qubits, terms=terms, costs=costs,
                         precision=precision, optimize=optimize)

    # -- construction hooks ----------------------------------------------------
    def _precompute_diagonal(self, terms) -> np.ndarray:
        """Precompute the diagonal *on the device* and mirror it on the host.

        The host mirror is always float64 (the expectation-accumulation
        policy); at single precision the device copy is downcast to float32 —
        half the diagonal traffic of every phase kernel — via one modeled
        cast kernel.
        """
        masks, weights, offset = term_masks_and_weights(terms, self._n_qubits)
        full = device_precompute_diagonal(
            self._device, masks, weights, offset, 0, self._n_states
        )
        host = np.array(full.data, copy=True)
        if self._precision.real_dtype != full.dtype:
            cast = self._device.empty(self._n_states, dtype=self._precision.real_dtype)
            cast.data[:] = full.data
            self._device.charge_kernel(full.nbytes + cast.nbytes)
            full.free()
            full = cast
        self._costs_device = full
        return host

    def _ingest_costs(self, costs):
        host = super()._ingest_costs(costs)
        host_arr = host.decompress() if hasattr(host, "decompress") else np.asarray(host, dtype=np.float64)
        self._costs_device = self._device.to_device(
            np.ascontiguousarray(host_arr, dtype=self._precision.real_dtype))
        return host

    def _post_init(self) -> None:
        self._workspace = KernelWorkspace(self._n_states, self._block_size,
                                          dtype=self._precision.complex_dtype)

    # -- properties --------------------------------------------------------------
    @property
    def device(self) -> SimulatedDevice:
        """The simulated accelerator owning this simulator's buffers."""
        return self._device

    def modeled_device_time(self) -> float:
        """Modeled accelerator time accumulated so far (seconds)."""
        return self._device.modeled_time

    def reset_device_clock(self) -> None:
        """Zero the modeled-time counters (keeps allocations)."""
        self._device.reset_clock()

    # -- simulation ----------------------------------------------------------------
    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        raise NotImplementedError

    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> DeviceArray:
        """Evolve through p layers on the device; returns a device-resident result."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        sv_host = self._validate_sv0(sv0)
        sv = self._device.to_device(sv_host)
        for gamma, beta in zip(g, b):
            device_apply_phase(sv, self._costs_device, float(gamma), self._workspace)
            self._apply_mixer(sv, float(beta), n_trotters)
        return sv

    # -- kernel-provider hooks (driven by repro.fur.engine) -----------------------
    def _batch_rows(self, remaining: int, memory_budget: float | None) -> int:
        """Sub-batch rows bounded by both the host budget and device memory.

        Called by the engine once per sub-batch: :func:`device_split_rows`
        keeps earlier sub-batches' per-row results resident, so the
        free-memory estimate must be re-derived as rows accumulate.  A row
        costs two state vectors while its block and split results coexist;
        at least one row is always attempted (the device allocator raises
        :class:`MemoryError` if it truly cannot fit).
        """
        itemsize = self._precision.complex_itemsize
        rows = batch_block_rows(remaining, self._n_states, memory_budget,
                                blocks=2, itemsize=itemsize)
        free = (self._device.spec.memory_capacity
                - self._device.stats.allocated_bytes)
        # complex64 amplitudes halve the per-row device cost, doubling the
        # rows device_split_rows can keep resident per sub-batch.
        per_row = 2 * itemsize * self._n_states
        device_rows = int(free // per_row)
        return max(1, min(rows, device_rows))

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> DeviceArray:
        """Upload a ``(rows, 2^n)`` block to the device."""
        sv = self._validate_sv0(sv0)
        return self._device.to_device(np.repeat(sv[None, :], rows, axis=0))

    def _mixer_scratch(self, block: DeviceArray) -> np.ndarray:
        # The gemm-grouped batch mixer ping-pongs through host scratch; the
        # modeled device clock charges the real kernel's traffic regardless.
        return np.empty_like(block.data)

    def _apply_phase_block(self, block: DeviceArray, gammas: np.ndarray,
                           plan: Any) -> None:
        device_apply_phase_batch(block, self._costs_device, gammas,
                                 self._workspace, phase_table=plan.phase_tables)

    def _block_expectations(self, block: DeviceArray, costs: DeviceArray) -> np.ndarray:
        return device_expectation_batch(block, costs, self._workspace)

    def _block_results(self, block: DeviceArray) -> list[DeviceArray]:
        return device_split_rows(block)

    def _release_block(self, block: DeviceArray) -> None:
        block.free()

    def _stage_batch_costs(self, resolved: np.ndarray) -> DeviceArray:
        """Device copy of the batch diagonal (the resident one when default).

        A user-supplied diagonal is staged transiently for the batch and
        freed by :meth:`_release_batch_costs`; the default diagonal reuses
        the always-resident device copy.
        """
        if resolved is self._default_costs():
            return self._costs_device
        return self._device.to_device(np.ascontiguousarray(resolved))

    def _release_batch_costs(self, staged: DeviceArray) -> None:
        if staged is not self._costs_device:
            staged.free()

    # -- output methods (always host values) ------------------------------------------
    def get_statevector(self, result: DeviceArray, **kwargs: Any) -> np.ndarray:
        """Device→host copy of the evolved state."""
        return result.copy_to_host()

    def get_probabilities(self, result: DeviceArray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities, computed on device and copied to the host."""
        probs = device_probabilities(result, preserve_state=preserve_state)
        return probs.copy_to_host().astype(np.float64, copy=False)

    def get_expectation(self, result: DeviceArray, costs=None,
                        preserve_state: bool = True, **kwargs: Any) -> float:
        """Objective value via a device-side reduction (no 2^n host transfer)."""
        if costs is None:
            return device_expectation(result, self._costs_device, self._workspace)
        host_costs = self._resolve_costs(costs)
        costs_dev = self._device.to_device(np.ascontiguousarray(host_costs))
        try:
            return device_expectation(result, costs_dev, self._workspace)
        finally:
            costs_dev.free()

    def get_overlap(self, result: DeviceArray, costs=None, indices=None,
                    preserve_state: bool = True, **kwargs: Any) -> float:
        """Ground-state overlap via a device-side gather + reduction."""
        if indices is None:
            diag = self.get_cost_diagonal() if costs is None else self._resolve_costs(costs)
            indices = np.flatnonzero(diag == diag.min())
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("overlap requested against an empty set of indices")
        if idx.min() < 0 or idx.max() >= self._n_states:
            raise ValueError("overlap indices out of range")
        return device_overlap(result, idx)


class QAOAFURXSimulatorGPU(_QAOAFURGPUSimulatorBase):
    """QAOA with the transverse-field mixer on the simulated GPU."""

    mixer_name = "x"
    _mixer_needs_scratch = True
    supports_fused_phase_mixer = True

    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        device_furx_all(sv, beta, self._n_qubits, self._workspace)

    def _apply_mixer_block(self, svb: DeviceArray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        device_furx_all_batch(svb, betas, self._n_qubits, self._workspace,
                              scratch=scratch)

    def _apply_phase_mixer_block(self, svb: DeviceArray, gammas: np.ndarray,
                                 betas: np.ndarray, op: Any,
                                 scratch: np.ndarray | None, plan: Any) -> None:
        """FusedPhaseMixerOp kernel: one fewer block RMW on the device clock."""
        device_furx_phase_all_batch(svb, self._costs_device, gammas, betas,
                                    self._n_qubits, self._workspace,
                                    phase_table=plan.phase_tables,
                                    scratch=scratch)


class QAOAFURXYRingSimulatorGPU(_QAOAFURGPUSimulatorBase):
    """QAOA with the ring XY mixer on the simulated GPU."""

    mixer_name = "xyring"

    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            device_furxy_ring(sv, beta / n_trotters, self._n_qubits, self._workspace)

    def _apply_mixer_block(self, svb: DeviceArray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        for _ in range(n_trotters):
            device_furxy_ring_batch(svb, betas / n_trotters, self._n_qubits,
                                    self._workspace)


class QAOAFURXYCompleteSimulatorGPU(_QAOAFURGPUSimulatorBase):
    """QAOA with the complete-graph XY mixer on the simulated GPU."""

    mixer_name = "xycomplete"

    def _apply_mixer(self, sv: DeviceArray, beta: float, n_trotters: int) -> None:
        for _ in range(n_trotters):
            device_furxy_complete(sv, beta / n_trotters, self._n_qubits, self._workspace)

    def _apply_mixer_block(self, svb: DeviceArray, betas: np.ndarray,
                           n_trotters: int, scratch: np.ndarray | None) -> None:
        for _ in range(n_trotters):
            device_furxy_complete_batch(svb, betas / n_trotters, self._n_qubits,
                                        self._workspace)
