"""Simulated-GPU backend (the paper's numba-CUDA ``nbcuda`` simulator analogue)."""

from .device import (
    A100_40GB,
    A100_80GB,
    DeviceArray,
    DeviceSpec,
    DeviceStats,
    SimulatedDevice,
)
from .qaoa_simulator import (
    QAOAFURXSimulatorGPU,
    QAOAFURXYCompleteSimulatorGPU,
    QAOAFURXYRingSimulatorGPU,
)

__all__ = [
    "DeviceSpec",
    "DeviceStats",
    "DeviceArray",
    "SimulatedDevice",
    "A100_40GB",
    "A100_80GB",
    "QAOAFURXSimulatorGPU",
    "QAOAFURXYRingSimulatorGPU",
    "QAOAFURXYCompleteSimulatorGPU",
]
