"""Simulated GPU device: memory spaces, transfers and a kernel timing model.

The paper's ``nbcuda`` backend runs numba-CUDA kernels on an NVIDIA A100; no
GPU exists in this environment, so this module provides the substitute
substrate (see DESIGN.md §2).  It reproduces the two properties of the GPU
code path that matter for the reproduction:

* **explicit memory spaces** — arrays live on the device
  (:class:`DeviceArray`), host↔device transfers are explicit and counted, and
  output methods must decide whether to preserve device state
  (the ``preserve_state`` / ``mpi_gather`` options of the paper's API);
* **a bandwidth-bound timing model** — every kernel charges
  ``bytes_moved / memory_bandwidth + launch_overhead`` to the device clock, so
  benchmarks can report *modeled A100 time* next to measured host time (the
  FUR kernels are memory-bound streaming kernels, which makes this model
  faithful to first order).

Kernels execute numerically on the host through NumPy — results are exact;
only the clock is simulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DeviceSpec", "DeviceStats", "SimulatedDevice", "DeviceArray", "A100_40GB", "A100_80GB"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static characteristics of the simulated accelerator."""

    name: str
    memory_capacity: float      # bytes
    memory_bandwidth: float     # bytes/s (HBM streaming)
    pcie_bandwidth: float       # bytes/s (host <-> device)
    kernel_launch_overhead: float  # seconds per kernel launch

    def __post_init__(self) -> None:
        for attr in ("memory_capacity", "memory_bandwidth", "pcie_bandwidth"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.kernel_launch_overhead < 0:
            raise ValueError("kernel_launch_overhead must be non-negative")


#: The paper's single-node GPU (Polaris login runs / Fig. 3-4): A100 80 GB.
A100_80GB = DeviceSpec(name="A100-80GB", memory_capacity=80e9, memory_bandwidth=1.9e12,
                       pcie_bandwidth=25e9, kernel_launch_overhead=5e-6)
#: The paper's distributed-node GPU (Fig. 5): A100 40 GB.
A100_40GB = DeviceSpec(name="A100-40GB", memory_capacity=40e9, memory_bandwidth=1.5e12,
                       pcie_bandwidth=25e9, kernel_launch_overhead=5e-6)


@dataclass
class DeviceStats:
    """Counters accumulated by a :class:`SimulatedDevice`."""

    kernels_launched: int = 0
    bytes_processed: int = 0
    host_to_device_bytes: int = 0
    device_to_host_bytes: int = 0
    modeled_time: float = 0.0
    allocated_bytes: int = 0
    peak_allocated_bytes: int = 0

    def reset_clock(self) -> None:
        """Zero the modeled-time and counter fields (allocation state is kept)."""
        self.kernels_launched = 0
        self.bytes_processed = 0
        self.host_to_device_bytes = 0
        self.device_to_host_bytes = 0
        self.modeled_time = 0.0


class SimulatedDevice:
    """A single simulated accelerator with its own memory-space accounting."""

    def __init__(self, spec: DeviceSpec = A100_80GB) -> None:
        self.spec = spec
        self.stats = DeviceStats()

    # -- memory management -----------------------------------------------------
    def _track_alloc(self, nbytes: int) -> None:
        if self.stats.allocated_bytes + nbytes > self.spec.memory_capacity:
            raise MemoryError(
                f"simulated device {self.spec.name} out of memory: "
                f"{self.stats.allocated_bytes + nbytes:.3e} bytes requested, "
                f"capacity {self.spec.memory_capacity:.3e}"
            )
        self.stats.allocated_bytes += nbytes
        self.stats.peak_allocated_bytes = max(self.stats.peak_allocated_bytes,
                                              self.stats.allocated_bytes)

    def _track_free(self, nbytes: int) -> None:
        self.stats.allocated_bytes = max(0, self.stats.allocated_bytes - nbytes)

    def empty(self, shape, dtype=np.complex128) -> "DeviceArray":
        """Allocate an uninitialized device array."""
        data = np.empty(shape, dtype=dtype)
        self._track_alloc(data.nbytes)
        return DeviceArray(self, data)

    def zeros(self, shape, dtype=np.complex128) -> "DeviceArray":
        """Allocate a zero-filled device array (charged as one fill kernel)."""
        arr = self.empty(shape, dtype=dtype)
        arr.data.fill(0)
        self.charge_kernel(arr.data.nbytes)
        return arr

    def to_device(self, host_array: np.ndarray) -> "DeviceArray":
        """Copy a host array to the device (charged at PCIe bandwidth)."""
        data = np.array(host_array, copy=True)
        self._track_alloc(data.nbytes)
        self.stats.host_to_device_bytes += data.nbytes
        self.stats.modeled_time += data.nbytes / self.spec.pcie_bandwidth
        return DeviceArray(self, data)

    # -- timing model ------------------------------------------------------------
    def charge_kernel(self, bytes_moved: int, launches: int = 1) -> None:
        """Charge a memory-bound kernel to the device clock."""
        if bytes_moved < 0 or launches < 0:
            raise ValueError("bytes_moved and launches must be non-negative")
        self.stats.kernels_launched += launches
        self.stats.bytes_processed += bytes_moved
        self.stats.modeled_time += (bytes_moved / self.spec.memory_bandwidth
                                    + launches * self.spec.kernel_launch_overhead)

    def charge_device_to_host(self, nbytes: int) -> None:
        """Charge a device→host transfer."""
        self.stats.device_to_host_bytes += nbytes
        self.stats.modeled_time += nbytes / self.spec.pcie_bandwidth

    @property
    def modeled_time(self) -> float:
        """Accumulated modeled device time in seconds."""
        return self.stats.modeled_time

    def reset_clock(self) -> None:
        """Reset all counters (keeps allocations)."""
        self.stats.reset_clock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SimulatedDevice({self.spec.name}, allocated="
                f"{self.stats.allocated_bytes / 1e9:.2f} GB, "
                f"modeled_time={self.stats.modeled_time:.3e} s)")


class DeviceArray:
    """An array resident in a simulated device's memory space.

    Wraps a NumPy array; arithmetic on device arrays must go through the
    kernels in :mod:`repro.fur.simgpu.kernels` (which charge the device clock)
    rather than plain NumPy operators — mirroring how CUDA device arrays are
    only touched by kernels.
    """

    def __init__(self, device: SimulatedDevice, data: np.ndarray) -> None:
        self.device = device
        self.data = data

    @property
    def shape(self):
        """Array shape."""
        return self.data.shape

    @property
    def dtype(self):
        """Array dtype."""
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        """Size in bytes."""
        return int(self.data.nbytes)

    def copy_to_host(self) -> np.ndarray:
        """Copy the contents back to the host (charged at PCIe bandwidth)."""
        self.device.charge_device_to_host(self.nbytes)
        return np.array(self.data, copy=True)

    def free(self) -> None:
        """Release the allocation from the device's memory accounting."""
        self.device._track_free(self.nbytes)
        self.data = np.empty(0, dtype=self.data.dtype)

    def __len__(self) -> int:
        return self.data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeviceArray(shape={self.data.shape}, dtype={self.data.dtype}, device={self.device.spec.name})"
