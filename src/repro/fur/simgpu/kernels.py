"""Device kernels for the simulated-GPU backend.

Each function mirrors one CUDA kernel of the paper's ``nbcuda`` backend:
numerically it delegates to the blocked CPU kernels (results are bit-identical
to the ``c`` backend), and it charges the owning
:class:`~repro.fur.simgpu.device.SimulatedDevice` clock with the bytes the
real kernel would stream through HBM plus one launch overhead, so that modeled
GPU timings can be reported alongside measured host timings.
"""

from __future__ import annotations

import numpy as np

from ..cvect.kernels import (
    KernelWorkspace,
    apply_phase_batch_inplace,
    apply_phase_inplace,
    apply_su2_blocked,
    expectation_batch_inplace,
    furxy_batch_blocked,
    furxy_blocked,
)
from ..diagonal import apply_terms_to_slice
from .device import DeviceArray

__all__ = [
    "device_furx_all",
    "device_furx_all_batch",
    "device_furx_phase_all_batch",
    "device_furxy_ring",
    "device_furxy_ring_batch",
    "device_furxy_complete",
    "device_furxy_complete_batch",
    "device_apply_phase",
    "device_apply_phase_batch",
    "device_precompute_diagonal",
    "device_probabilities",
    "device_expectation",
    "device_expectation_batch",
    "device_overlap",
    "device_split_rows",
]


def _check_device_pair(a: DeviceArray, b: DeviceArray) -> None:
    if a.device is not b.device:
        raise ValueError("operands live on different simulated devices")


def device_furx_all(sv: DeviceArray, beta: float, n_qubits: int,
                    workspace: KernelWorkspace) -> DeviceArray:
    """Transverse-field mixer on the device: n kernels, each streaming the slice."""
    a = complex(np.cos(beta))
    b = -1j * complex(np.sin(beta))
    for q in range(n_qubits):
        apply_su2_blocked(sv.data, a, b, q, workspace)
        sv.device.charge_kernel(2 * sv.nbytes)
    return sv


def device_furxy_ring(sv: DeviceArray, beta: float, n_qubits: int,
                      workspace: KernelWorkspace) -> DeviceArray:
    """Ring XY mixer on the device (one kernel per edge, half the slice touched)."""
    from ..python.furxy import ring_edges

    for i, j in ring_edges(n_qubits):
        furxy_blocked(sv.data, beta, i, j, workspace)
        sv.device.charge_kernel(sv.nbytes)
    return sv


def device_furxy_complete(sv: DeviceArray, beta: float, n_qubits: int,
                          workspace: KernelWorkspace) -> DeviceArray:
    """Complete-graph XY mixer on the device."""
    from ..python.furxy import complete_edges

    for i, j in complete_edges(n_qubits):
        furxy_blocked(sv.data, beta, i, j, workspace)
        sv.device.charge_kernel(sv.nbytes)
    return sv


def device_apply_phase(sv: DeviceArray, costs: DeviceArray, gamma: float,
                       workspace: KernelWorkspace) -> DeviceArray:
    """Phase operator kernel: one fused read of the diagonal + RMW of the state."""
    _check_device_pair(sv, costs)
    apply_phase_inplace(sv.data, costs.data, gamma, workspace)
    sv.device.charge_kernel(2 * sv.nbytes + costs.nbytes)
    return sv


def device_precompute_diagonal(device, masks: np.ndarray, weights: np.ndarray,
                               offset: float, start: int, stop: int,
                               dtype=np.float64) -> DeviceArray:
    """Precompute a cost-vector slice on the device (Sec. III-A GPU kernel).

    One in-place accumulation pass over the slice per term: the locality the
    paper exploits for GPU parallelism and communication-free distribution.
    """
    out = device.empty(stop - start, dtype=dtype)
    host = apply_terms_to_slice(masks, weights, offset, start, stop)
    out.data[:] = host.astype(dtype)
    # one read-modify-write of the 8-byte accumulator per term
    device.charge_kernel(max(len(masks), 1) * 2 * 8 * (stop - start), launches=max(len(masks), 1))
    return out


def device_probabilities(sv: DeviceArray, preserve_state: bool = True) -> DeviceArray:
    """Norm-square kernel; with ``preserve_state=False`` it reuses the state buffer.

    The device-resident probabilities match the state's real dtype (float32
    for a complex64 state — half the device memory and traffic); output
    methods cast to float64 once the values reach the host.
    """
    device = sv.device
    if preserve_state:
        out = device.empty(sv.shape, dtype=sv.data.real.dtype)
        np.multiply(sv.data.real, sv.data.real, out=out.data)
        out.data += sv.data.imag * sv.data.imag
        device.charge_kernel(sv.nbytes + out.nbytes)
        return out
    # In-place: overwrite the real view of the state vector, as the paper's
    # GPU get_probabilities(preserve_state=False) does to halve peak memory.
    probs = sv.data.real
    np.multiply(sv.data.real, sv.data.real, out=probs)
    probs += sv.data.imag * sv.data.imag
    device.charge_kernel(sv.nbytes)
    return DeviceArray(device, probs)


def device_expectation(sv: DeviceArray, costs: DeviceArray,
                       workspace: KernelWorkspace) -> float:
    """Expectation kernel ``Σ c[x] |ψ_x|²`` (single reduction pass)."""
    _check_device_pair(sv, costs)
    from ..cvect.kernels import expectation_inplace

    # The blocked reduction accumulates in the workspace's float64 scratch
    # regardless of the diagonal's (possibly float32) device dtype.
    value = expectation_inplace(sv.data, costs.data, workspace)
    sv.device.charge_kernel(sv.nbytes + costs.nbytes)
    return value


# ---------------------------------------------------------------------------
# Device-block batch kernels — a (B, 2^n) block resident on the device.
# ---------------------------------------------------------------------------

def device_apply_phase_batch(svb: DeviceArray, costs: DeviceArray, gammas: np.ndarray,
                             workspace: KernelWorkspace, phase_table=None) -> DeviceArray:
    """Batched phase kernel: one diagonal read shared by every block row."""
    _check_device_pair(svb, costs)
    apply_phase_batch_inplace(svb.data, costs.data, gammas, workspace,
                              phase_table=phase_table)
    svb.device.charge_kernel(2 * svb.nbytes + costs.nbytes)
    return svb


def device_furx_all_batch(svb: DeviceArray, betas: np.ndarray, n_qubits: int,
                          workspace: KernelWorkspace,
                          scratch: np.ndarray | None = None) -> DeviceArray:
    """Batched transverse-field mixer: n kernels, each streaming the block.

    Numerics run through the gemm-grouped host kernel (identical results,
    much faster host wall-clock); callers evolving many layers should pass a
    preallocated ``scratch`` block for its ping-pong buffer.  The modeled
    device time still charges the real CUDA kernel's traffic — one
    read-modify-write of the block per qubit.
    """
    from ..python.furx import furx_all_batch

    furx_all_batch(svb.data, betas, n_qubits, scratch=scratch)
    svb.device.charge_kernel(2 * svb.nbytes * n_qubits, launches=n_qubits)
    return svb


def device_furx_phase_all_batch(svb: DeviceArray, costs: DeviceArray,
                                gammas: np.ndarray, betas: np.ndarray,
                                n_qubits: int, workspace: KernelWorkspace,
                                phase_table=None,
                                scratch: np.ndarray | None = None) -> DeviceArray:
    """Fused phase + transverse-field mixer over a device block.

    The phase multiply rides the first mixer sweep (the FusePhaseIntoMixer
    plan rewrite), so the modeled traffic is ``n`` read-modify-writes of the
    block plus one diagonal read — one full block RMW and one kernel launch
    fewer than the split phase + mixer kernels.
    """
    from ..python.furx import furx_phase_all_batch

    _check_device_pair(svb, costs)
    furx_phase_all_batch(svb.data, gammas, betas, n_qubits,
                         phase_table=phase_table, costs=costs.data,
                         scratch=scratch, phase_buf=workspace.phase_scratch)
    svb.device.charge_kernel(2 * svb.nbytes * n_qubits + costs.nbytes,
                             launches=n_qubits)
    return svb


def device_furxy_ring_batch(svb: DeviceArray, betas: np.ndarray, n_qubits: int,
                            workspace: KernelWorkspace) -> DeviceArray:
    """Batched ring XY mixer (one kernel per edge over the block)."""
    from ..python.furxy import ring_edges

    edges = ring_edges(n_qubits)
    for i, j in edges:
        furxy_batch_blocked(svb.data, betas, i, j, workspace)
    svb.device.charge_kernel(svb.nbytes * len(edges), launches=len(edges))
    return svb


def device_furxy_complete_batch(svb: DeviceArray, betas: np.ndarray, n_qubits: int,
                                workspace: KernelWorkspace) -> DeviceArray:
    """Batched complete-graph XY mixer over the block."""
    from ..python.furxy import complete_edges

    edges = complete_edges(n_qubits)
    for i, j in edges:
        furxy_batch_blocked(svb.data, betas, i, j, workspace)
    svb.device.charge_kernel(svb.nbytes * len(edges), launches=len(edges))
    return svb


def device_expectation_batch(svb: DeviceArray, costs: DeviceArray,
                             workspace: KernelWorkspace) -> np.ndarray:
    """Per-row expectation reduction over a device block (host scalars out)."""
    _check_device_pair(svb, costs)
    values = expectation_batch_inplace(svb.data, costs.data, workspace)
    svb.device.charge_kernel(svb.nbytes + costs.nbytes)
    return values


def device_split_rows(svb: DeviceArray) -> list[DeviceArray]:
    """Split a device block into per-row device arrays and free the block.

    One device-to-device copy kernel per row; the block allocation is
    released afterwards, so peak device memory is (block + rows) during the
    split and (rows) after it.
    """
    device = svb.device
    rows: list[DeviceArray] = []
    for r in range(svb.data.shape[0]):
        row = device.empty(svb.data.shape[1], dtype=svb.dtype)
        np.copyto(row.data, svb.data[r])
        device.charge_kernel(2 * row.nbytes)
        rows.append(row)
    svb.free()
    return rows


def device_overlap(sv: DeviceArray, indices: np.ndarray) -> float:
    """Overlap kernel: sum of probabilities over the given basis-state indices."""
    values = sv.data[indices]
    sv.device.charge_kernel(values.nbytes * 2)
    return float(np.sum(values.real ** 2 + values.imag ** 2))
