"""QAOA simulators of the ``jit`` backend (single-pass tiled kernels).

The classes here are thin :class:`~repro.fur.engine.KernelProvider`
adapters over :mod:`repro.fur.jit.kernels`: every engine hook maps to one
compiled kernel call, so a fused op really is a single pass over the
``(rows, 2^n)`` block.  Unlike the gemm-formulated backends the X mixer
runs fully in place (``_mixer_needs_scratch = False``), which also doubles
the rows each sub-batch fits into the engine's memory budget, and it sets
``supports_single_pass`` so the rewrite cost model prices its mixer sweeps
at ~2 streamed passes instead of one per qubit.

Kernel compilation is lazy: the first engine hook on a new ``(dtype, n,
mixer)`` signature triggers it (numba type specialization, or the one-time
shared-object build of the C path) and books the wall-clock seconds into
``EngineStats.kernel_compile_time_s`` — never into execution time.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from ..base import QAOAFastSimulatorBase, validate_angles
from ..python.qaoa_simulator import staged_phase_block
from . import kernels

__all__ = [
    "QAOAFURXSimulatorJIT",
    "QAOAFURXYRingSimulatorJIT",
    "QAOAFURXYCompleteSimulatorJIT",
]


class _QAOAFURJITSimulatorBase(QAOAFastSimulatorBase):
    """Shared provider plumbing; subclasses supply the mixer kernel."""

    backend_name = "jit"
    supports_fused_engine = True
    supports_staged_phase = True
    supports_fused_phase_mixer = True

    # -- lazy per-signature kernel compilation -------------------------------
    def _ensure_kernels(self) -> None:
        """Compile (or warm) this signature's kernels; book compile time."""
        spent = kernels.ensure_kernels(self._precision.complex_dtype,
                                       self._n_qubits, self.mixer_name)
        if spent:
            self.engine.stats.kernel_compile_time_s += spent

    def _mixer_rows(self, block: np.ndarray, betas: np.ndarray,
                    n_trotters: int) -> None:
        raise NotImplementedError

    # -- looped evaluation ---------------------------------------------------
    def simulate_qaoa(self, gammas: Sequence[float], betas: Sequence[float],
                      sv0: np.ndarray | None = None, *, n_trotters: int = 1,
                      **kwargs: Any) -> np.ndarray:
        """Evolve one schedule through ``p`` layers (1-row kernel calls)."""
        if kwargs:
            raise TypeError(f"unexpected keyword arguments: {sorted(kwargs)}")
        if n_trotters < 1:
            raise ValueError("n_trotters must be at least 1")
        g, b = validate_angles(gammas, betas)
        self._ensure_kernels()
        sv = self._validate_sv0(sv0)
        block = sv.reshape(1, -1)
        costs = self._phase_costs()
        for gamma, beta in zip(g, b):
            kernels.phase_block(block, np.array([float(gamma)]), costs=costs)
            self._mixer_rows(block, np.array([float(beta)]), n_trotters)
        return sv

    # -- kernel-provider hooks (driven by repro.fur.engine) ------------------
    supports_batched_sv0 = True

    def _stage_block(self, sv0: np.ndarray | None, rows: int) -> np.ndarray:
        return self._validate_sv0_block(sv0, rows)

    def _stage_phase_block(self, gammas: np.ndarray, plan: Any) -> np.ndarray:
        return staged_phase_block(gammas, self._phase_costs(), self._n_states,
                                  self._precision.complex_dtype,
                                  phase_table=plan.phase_tables)

    def _apply_phase_block(self, block: np.ndarray, gammas: np.ndarray,
                           plan: Any) -> None:
        self._ensure_kernels()
        kernels.phase_block(block, gammas, phase_table=plan.phase_tables,
                            costs=self._phase_costs())

    def _block_expectations(self, block: np.ndarray,
                            costs: np.ndarray) -> np.ndarray:
        self._ensure_kernels()
        return kernels.expectation_block(block, costs)

    def _block_results(self, block: np.ndarray) -> list[np.ndarray]:
        return list(block)

    # -- output methods ------------------------------------------------------
    def get_statevector(self, result: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Return the evolved state vector (host array)."""
        return np.asarray(result)

    def get_probabilities(self, result: np.ndarray, preserve_state: bool = True,
                          **kwargs: Any) -> np.ndarray:
        """Measurement probabilities |ψ_x|² (always float64 on output)."""
        sv = np.asarray(result)
        if preserve_state:
            return (np.abs(sv) ** 2).astype(np.float64, copy=False)
        np.multiply(sv, np.conj(sv), out=sv)
        return np.ascontiguousarray(sv.real, dtype=np.float64)


class QAOAFURXSimulatorJIT(_QAOAFURJITSimulatorBase):
    """Transverse-field X mixer, one cache-blocked pass per fused layer."""

    mixer_name = "x"
    _mixer_needs_scratch = False  # in-place butterflies: no ping-pong buffer
    supports_fused_mixer_expectation = True
    mixer_self_commutes = True
    supports_single_pass = True

    def _mixer_rows(self, block: np.ndarray, betas: np.ndarray,
                    n_trotters: int) -> None:
        # X-mixer factors commute: Trotterization is exact and unused.
        kernels.furx_block(block, betas)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        self._ensure_kernels()
        kernels.furx_block(block, betas)

    def _apply_phase_mixer_block(self, block: np.ndarray, gammas: np.ndarray,
                                 betas: np.ndarray, op: Any, scratch: Any,
                                 plan: Any) -> None:
        """FusedPhaseMixerOp kernel: phase + all butterflies, tile by tile."""
        self._ensure_kernels()
        kernels.furx_phase_block(block, gammas, betas,
                                 phase_table=plan.phase_tables,
                                 costs=self._phase_costs())

    def _apply_mixer_expectation_block(self, block: np.ndarray,
                                       gammas: np.ndarray | None,
                                       betas: np.ndarray, op: Any,
                                       scratch: Any, costs: np.ndarray,
                                       plan: Any) -> np.ndarray:
        """FusedMixerExpectationOp kernel: the reduction rides the sweep."""
        self._ensure_kernels()
        return kernels.furx_expectation_block(block, gammas, betas, costs,
                                              phase_table=plan.phase_tables,
                                              costs=self._phase_costs())


class _QAOAFURXYJITSimulatorBase(_QAOAFURJITSimulatorBase):
    """Shared XY plumbing (ordered-edge butterflies, Trotterized)."""

    _xy_kind = "ring"

    def _mixer_rows(self, block: np.ndarray, betas: np.ndarray,
                    n_trotters: int) -> None:
        kernels.furxy_block(block, None, betas, kind=self._xy_kind,
                            n_trotters=n_trotters)

    def _apply_mixer_block(self, block: np.ndarray, betas: np.ndarray,
                           n_trotters: int, scratch: Any) -> None:
        self._ensure_kernels()
        kernels.furxy_block(block, None, betas, kind=self._xy_kind,
                            n_trotters=n_trotters)

    def _apply_phase_mixer_block(self, block: np.ndarray, gammas: np.ndarray,
                                 betas: np.ndarray, op: Any, scratch: Any,
                                 plan: Any) -> None:
        self._ensure_kernels()
        kernels.furxy_block(block, gammas, betas, kind=self._xy_kind,
                            n_trotters=getattr(op, "n_trotters", 1),
                            phase_table=plan.phase_tables,
                            costs=self._phase_costs())


class QAOAFURXYRingSimulatorJIT(_QAOAFURXYJITSimulatorBase):
    """Ring XY mixer (Hamming-weight preserving), compiled edge sweeps."""

    mixer_name = "xyring"
    _xy_kind = "ring"


class QAOAFURXYCompleteSimulatorJIT(_QAOAFURXYJITSimulatorBase):
    """Complete-graph XY mixer, compiled edge sweeps."""

    mixer_name = "xycomplete"
    _xy_kind = "complete"
