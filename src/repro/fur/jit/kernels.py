"""Single-pass cache-blocked fused kernels (the ``jit`` backend tier).

Every other CPU backend executes a fused op as a *sequence* of numpy passes
over the ``(rows, 2^n)`` block — a phase-table gather, then one gemm per
butterfly group — so throughput is pinned to memory bandwidth times the pass
count.  The kernels here execute an entire fused op in one pass: per
cache-sized tile of each row they apply the phase multiply and *all* SU(2)
butterflies whose stride fits the tile, then finish the few high-qubit
strides with streaming sweeps.  ~6 flops/amplitude/qubit instead of the gemm
formulation's ~32, and the block is read once, not once per qubit group.

Three execution paths provide the same public functions (the dual-path idiom
of SNIPPETS.md Snippet 1, ``delande/and-python``):

* ``numba`` — ``@njit(parallel=True, cache=True)`` kernels, used when numba
  imports (the ``pip install repro[jit]`` extra);
* ``cc`` — the identical tiled loop structure as C, compiled at first use
  with the system compiler and driven through :mod:`ctypes` (the shared
  object is cached on disk keyed by a source hash, so the compile cost is
  paid once per machine);
* ``numpy`` — delegates to the ``python`` backend's multi-pass kernels, so
  the backend stays importable and correct with no compiler and no numba.

:func:`active_path` reports which path is live; ``REPRO_JIT_PATH`` forces
one (``numba``/``cc``/``numpy``/``auto``), falling down the ladder when the
requested path is unavailable.  ``REPRO_NUM_THREADS`` bounds the worker
count of both the numba thread pool and the ctypes row pool.  Kernel
compilation is lazy and cached per ``(path, dtype, n_qubits, mixer)``
signature: :func:`ensure_kernels` returns the seconds newly spent compiling
(zero on a warm signature) so providers can report compile time separately
from execution time in :class:`~repro.fur.engine.EngineStats`.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import time
from typing import Any

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "KNOWN_PATHS",
    "DEFAULT_TILE_QUBITS",
    "active_path",
    "requested_num_threads",
    "effective_num_threads",
    "ensure_kernels",
    "compiler_info",
    "phase_block",
    "furx_block",
    "furx_phase_block",
    "furx_expectation_block",
    "furxy_block",
    "expectation_block",
    "mixer_edges",
]

# --------------------------------------------------------------------------
# Optional-dependency detection (dual-path idiom: try numba, remember).
# --------------------------------------------------------------------------

try:  # pragma: no cover - exercised only where numba is installed
    import numba
    from numba import njit, prange

    NUMBA_AVAILABLE = True
except ImportError:
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Identity decorator standing in for numba.njit."""
        def decorate(func):
            return func
        if args and callable(args[0]) and not kwargs:
            return args[0]
        return decorate

    prange = range

#: Execution paths in ladder order (first available wins).
KNOWN_PATHS = ("numba", "cc", "numpy")

#: Default tile size in qubits: 2^11 complex128 amplitudes = 32 KiB, half a
#: typical L1D, leaving room for the factor table.  Measured throughput is
#: flat over tile_q 9..13 on the reference machine.
DEFAULT_TILE_QUBITS = 11

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


# --------------------------------------------------------------------------
# Thread-count knob (REPRO_NUM_THREADS).
# --------------------------------------------------------------------------

def requested_num_threads() -> int | None:
    """The ``REPRO_NUM_THREADS`` request, or ``None`` when unset/invalid."""
    raw = os.environ.get("REPRO_NUM_THREADS", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def effective_num_threads() -> int:
    """Worker threads the active path will actually use.

    The ``numba`` path asks numba (after applying the env request); the
    ``cc`` path sizes its row pool to ``min(request, cpu_count)``; the
    ``numpy`` path runs single-threaded (numpy's internal threading aside).
    """
    path = active_path()
    if path == "numba":  # pragma: no cover - requires numba
        _apply_numba_threads()
        return int(numba.get_num_threads())
    if path == "cc":
        cpus = os.cpu_count() or 1
        requested = requested_num_threads()
        return min(requested, cpus) if requested is not None else cpus
    return 1


def _apply_numba_threads() -> None:  # pragma: no cover - requires numba
    requested = requested_num_threads()
    if requested is not None:
        numba.set_num_threads(min(requested, numba.config.NUMBA_NUM_THREADS))


_row_pool = None
_row_pool_size = 0
_row_pool_lock = threading.Lock()


def _parallel_rows(rows: int, run_slice) -> None:
    """Run ``run_slice(r0, r1)`` over row ranges, threaded when it pays.

    ctypes releases the GIL for the duration of each foreign call, so row
    slices of the block are processed concurrently by a persistent pool
    sized by :func:`effective_num_threads`.
    """
    global _row_pool, _row_pool_size
    workers = min(effective_num_threads(), rows)
    if workers <= 1:
        run_slice(0, rows)
        return
    from concurrent.futures import ThreadPoolExecutor

    with _row_pool_lock:
        if _row_pool is None or _row_pool_size < workers:
            if _row_pool is not None:
                _row_pool.shutdown(wait=False)
            _row_pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-jit")
            _row_pool_size = workers
        pool = _row_pool
    chunk = -(-rows // workers)
    futures = [pool.submit(run_slice, r0, min(r0 + chunk, rows))
               for r0 in range(0, rows, chunk)]
    for future in futures:
        future.result()


# --------------------------------------------------------------------------
# The C path: one embedded source, compiled at first use, loaded via ctypes.
# --------------------------------------------------------------------------

# The per-precision kernel family is generated from one template (tokens
# @REAL@ / @SUF@) so the float32 path is structurally identical to float64.
_C_TEMPLATE = r"""
/* ---- @SUF@ (@REAL@) kernels ------------------------------------------- */

static void butterfly_span_@SUF@(@REAL@ *lo, @REAL@ *hi, ptrdiff_t count,
                                 @REAL@ c, @REAL@ s)
{
    for (ptrdiff_t k = 0; k < count; ++k) {
        @REAL@ ar = lo[2 * k], ai = lo[2 * k + 1];
        @REAL@ br = hi[2 * k], bi = hi[2 * k + 1];
        lo[2 * k]     = c * ar + s * bi;
        lo[2 * k + 1] = c * ai - s * br;
        hi[2 * k]     = c * br + s * ai;
        hi[2 * k + 1] = c * bi - s * ar;
    }
}

/* last-stride butterfly fused with the cost-weighted norm reduction */
static double butterfly_span_expec_@SUF@(@REAL@ *lo, @REAL@ *hi,
                                         ptrdiff_t count, @REAL@ c, @REAL@ s,
                                         const double *clo, const double *chi)
{
    double total = 0.0, part = 0.0;
    for (ptrdiff_t k = 0; k < count; ++k) {
        @REAL@ ar = lo[2 * k], ai = lo[2 * k + 1];
        @REAL@ br = hi[2 * k], bi = hi[2 * k + 1];
        @REAL@ lr = c * ar + s * bi, li = c * ai - s * br;
        @REAL@ hr = c * br + s * ai, hi_ = c * bi - s * ar;
        lo[2 * k] = lr;  lo[2 * k + 1] = li;
        hi[2 * k] = hr;  hi[2 * k + 1] = hi_;
        part += clo[k] * ((double)lr * lr + (double)li * li)
              + chi[k] * ((double)hr * hr + (double)hi_ * hi_);
        if ((k & 4095) == 4095) { total += part; part = 0.0; }
    }
    return total + part;
}

/* phase multiply over a span: mode 1 = unique-value table gather,
 * mode 2 = direct cos/sin of -gamma*cost */
static void phase_span_@SUF@(@REAL@ *tx, ptrdiff_t s0, ptrdiff_t len,
                             int mode, const @REAL@ *factors_row,
                             const int64_t *inverse, double gamma,
                             const @REAL@ *pcosts)
{
    if (mode == 1) {
        const int64_t *idx = inverse + s0;
        for (ptrdiff_t i = 0; i < len; ++i) {
            @REAL@ fr = factors_row[2 * idx[i]];
            @REAL@ fi = factors_row[2 * idx[i] + 1];
            @REAL@ ar = tx[2 * i], ai = tx[2 * i + 1];
            tx[2 * i]     = ar * fr - ai * fi;
            tx[2 * i + 1] = ar * fi + ai * fr;
        }
    } else if (mode == 2) {
        const @REAL@ *cost = pcosts + s0;
        for (ptrdiff_t i = 0; i < len; ++i) {
            double th = -gamma * (double)cost[i];
            @REAL@ fr = (@REAL@)cos(th), fi = (@REAL@)sin(th);
            @REAL@ ar = tx[2 * i], ai = tx[2 * i + 1];
            tx[2 * i]     = ar * fr - ai * fi;
            tx[2 * i + 1] = ar * fi + ai * fr;
        }
    }
}

static double reduce_span_@SUF@(const @REAL@ *tx, ptrdiff_t s0, ptrdiff_t len,
                                const double *ecosts)
{
    const double *cost = ecosts + s0;
    double total = 0.0, part = 0.0;
    for (ptrdiff_t i = 0; i < len; ++i) {
        @REAL@ ar = tx[2 * i], ai = tx[2 * i + 1];
        part += cost[i] * ((double)ar * ar + (double)ai * ai);
        if ((i & 4095) == 4095) { total += part; part = 0.0; }
    }
    return total + part;
}

/* fused phase + full X mixer on one row, single cache-blocked pass:
 * per tile apply the phase multiply and every butterfly whose stride fits
 * the tile, then finish the high strides with streaming sweeps */
static void furx_row_@SUF@(@REAL@ *x, int n_qubits, double c_, double s_,
                           int mode, const @REAL@ *factors_row,
                           const int64_t *inverse, double gamma,
                           const @REAL@ *pcosts, int tile_q)
{
    const @REAL@ c = (@REAL@)c_, s = (@REAL@)s_;
    const ptrdiff_t n = (ptrdiff_t)1 << n_qubits;
    const int t = tile_q < n_qubits ? tile_q : n_qubits;
    const ptrdiff_t T = (ptrdiff_t)1 << t;
    for (ptrdiff_t s0 = 0; s0 < n; s0 += T) {
        @REAL@ *tx = x + 2 * s0;
        if (mode)
            phase_span_@SUF@(tx, s0, T, mode, factors_row, inverse, gamma,
                             pcosts);
        for (int q = 0; q < t; ++q) {
            const ptrdiff_t stride = (ptrdiff_t)1 << q;
            for (ptrdiff_t base = 0; base < T; base += 2 * stride)
                butterfly_span_@SUF@(tx + 2 * base,
                                     tx + 2 * (base + stride), stride, c, s);
        }
    }
    for (int q = t; q < n_qubits; ++q) {
        const ptrdiff_t stride = (ptrdiff_t)1 << q;
        for (ptrdiff_t base = 0; base < n; base += 2 * stride)
            butterfly_span_@SUF@(x + 2 * base, x + 2 * (base + stride),
                                 stride, c, s);
    }
}

void jit_furx_@SUF@(@REAL@ *block, ptrdiff_t rows, int n_qubits,
                    const double *cs, const double *ss, int mode,
                    const @REAL@ *factors, ptrdiff_t n_unique,
                    const int64_t *inverse, const double *gammas,
                    const @REAL@ *pcosts, int tile_q)
{
    const ptrdiff_t n = (ptrdiff_t)1 << n_qubits;
    for (ptrdiff_t r = 0; r < rows; ++r)
        furx_row_@SUF@(block + 2 * r * n, n_qubits, cs[r], ss[r], mode,
                       factors ? factors + 2 * r * n_unique : 0, inverse,
                       gammas ? gammas[r] : 0.0, pcosts, tile_q);
}

/* fused phase + X mixer + expectation: the trailing reduction rides the
 * mixer's own sweep — the last-stride butterfly (or, when every stride fits
 * one tile, the tile itself) accumulates sum(cost * |amp|^2) as it writes */
void jit_furx_expec_@SUF@(@REAL@ *block, ptrdiff_t rows, int n_qubits,
                          const double *cs, const double *ss, int mode,
                          const @REAL@ *factors, ptrdiff_t n_unique,
                          const int64_t *inverse, const double *gammas,
                          const @REAL@ *pcosts, int tile_q,
                          const double *ecosts, double *out)
{
    const ptrdiff_t n = (ptrdiff_t)1 << n_qubits;
    const int t = tile_q < n_qubits ? tile_q : n_qubits;
    const ptrdiff_t T = (ptrdiff_t)1 << t;
    for (ptrdiff_t r = 0; r < rows; ++r) {
        @REAL@ *x = block + 2 * r * n;
        const @REAL@ c = (@REAL@)cs[r], s = (@REAL@)ss[r];
        const @REAL@ *factors_row = factors ? factors + 2 * r * n_unique : 0;
        const double gamma = gammas ? gammas[r] : 0.0;
        double acc = 0.0;
        for (ptrdiff_t s0 = 0; s0 < n; s0 += T) {
            @REAL@ *tx = x + 2 * s0;
            if (mode)
                phase_span_@SUF@(tx, s0, T, mode, factors_row, inverse,
                                 gamma, pcosts);
            for (int q = 0; q < t; ++q) {
                const ptrdiff_t stride = (ptrdiff_t)1 << q;
                for (ptrdiff_t base = 0; base < T; base += 2 * stride)
                    butterfly_span_@SUF@(tx + 2 * base,
                                         tx + 2 * (base + stride),
                                         stride, c, s);
            }
            if (t == n_qubits)
                acc += reduce_span_@SUF@(tx, s0, T, ecosts);
        }
        for (int q = t; q < n_qubits - 1; ++q) {
            const ptrdiff_t stride = (ptrdiff_t)1 << q;
            for (ptrdiff_t base = 0; base < n; base += 2 * stride)
                butterfly_span_@SUF@(x + 2 * base, x + 2 * (base + stride),
                                     stride, c, s);
        }
        if (t < n_qubits) {
            const ptrdiff_t stride = n >> 1;
            acc = butterfly_span_expec_@SUF@(x, x + 2 * stride, stride, c, s,
                                             ecosts, ecosts + stride);
        }
        out[r] = acc;
    }
}

void jit_phase_@SUF@(@REAL@ *block, ptrdiff_t rows, ptrdiff_t n_states,
                     int mode, const @REAL@ *factors, ptrdiff_t n_unique,
                     const int64_t *inverse, const double *gammas,
                     const @REAL@ *pcosts)
{
    for (ptrdiff_t r = 0; r < rows; ++r)
        phase_span_@SUF@(block + 2 * r * n_states, 0, n_states, mode,
                         factors ? factors + 2 * r * n_unique : 0, inverse,
                         gammas ? gammas[r] : 0.0, pcosts);
}

void jit_expec_@SUF@(const @REAL@ *block, ptrdiff_t rows, ptrdiff_t n_states,
                     const double *ecosts, double *out)
{
    for (ptrdiff_t r = 0; r < rows; ++r)
        out[r] = reduce_span_@SUF@(block + 2 * r * n_states, 0, n_states,
                                   ecosts);
}

/* ordered-edge XY mixer (ring or complete, edges normalized a < b), with
 * optional leading phase multiply; the {|01>,|10>} subspace rotation is the
 * same (c, s) butterfly applied to the (x|1<<a, x|1<<b) pairs */
void jit_furxy_@SUF@(@REAL@ *block, ptrdiff_t rows, int n_qubits,
                     const double *cs, const double *ss, int n_trotters,
                     const int64_t *edges, ptrdiff_t n_edges, int mode,
                     const @REAL@ *factors, ptrdiff_t n_unique,
                     const int64_t *inverse, const double *gammas,
                     const @REAL@ *pcosts)
{
    const ptrdiff_t n = (ptrdiff_t)1 << n_qubits;
    for (ptrdiff_t r = 0; r < rows; ++r) {
        @REAL@ *x = block + 2 * r * n;
        const @REAL@ c = (@REAL@)cs[r], s = (@REAL@)ss[r];
        if (mode)
            phase_span_@SUF@(x, 0, n, mode,
                             factors ? factors + 2 * r * n_unique : 0,
                             inverse, gammas ? gammas[r] : 0.0, pcosts);
        for (int trot = 0; trot < n_trotters; ++trot)
            for (ptrdiff_t e = 0; e < n_edges; ++e) {
                const ptrdiff_t sa = (ptrdiff_t)1 << edges[2 * e];
                const ptrdiff_t sb = (ptrdiff_t)1 << edges[2 * e + 1];
                for (ptrdiff_t h = 0; h < n; h += 2 * sb)
                    for (ptrdiff_t m = h; m < h + sb; m += 2 * sa)
                        for (ptrdiff_t l = m; l < m + sa; ++l)
                            butterfly_span_@SUF@(x + 2 * (l + sa),
                                                 x + 2 * (l + sb), 1, c, s);
            }
    }
}
"""

_C_PRELUDE = """\
/* Generated by repro.fur.jit.kernels — do not edit (cached by source hash). */
#include <math.h>
#include <stddef.h>
#include <stdint.h>
"""


def _c_source() -> str:
    parts = [_C_PRELUDE]
    for real, suf in (("double", "f64"), ("float", "f32")):
        parts.append(_C_TEMPLATE.replace("@REAL@", real).replace("@SUF@", suf))
    return "".join(parts)


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


_clib: ctypes.CDLL | None = None
_clib_error: BaseException | None = None
_c_build_seconds: float = 0.0
_c_compiler: str | None = None
_clib_lock = threading.Lock()


def _cache_dir() -> str:
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache")
    try:
        path = os.path.join(base, "repro-jit")
        os.makedirs(path, exist_ok=True)
        return path
    except OSError:
        return tempfile.mkdtemp(prefix="repro-jit-")


def _build_clib() -> ctypes.CDLL:
    """Compile the embedded source (once per machine) and load it."""
    global _c_build_seconds, _c_compiler
    source = _c_source()
    tag = hashlib.sha256(source.encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"libreprojit-{tag}.so")
    if not os.path.exists(lib_path):
        compiler = _find_compiler()
        if compiler is None:
            raise RuntimeError("no C compiler found (tried cc, gcc, clang)")
        _c_compiler = compiler
        src_path = os.path.join(cache, f"reprojit-{tag}.c")
        with open(src_path, "w") as fh:
            fh.write(source)
        tmp_path = f"{lib_path}.{os.getpid()}.tmp"
        base_cmd = [compiler, "-O3", "-fPIC", "-shared", "-std=c99",
                    src_path, "-o", tmp_path, "-lm"]
        start = time.perf_counter()
        result = subprocess.run(base_cmd[:2] + ["-march=native"] + base_cmd[2:],
                                capture_output=True, text=True)
        if result.returncode != 0:  # e.g. compilers without -march=native
            result = subprocess.run(base_cmd, capture_output=True, text=True)
        if result.returncode != 0:
            raise RuntimeError(
                f"C kernel compilation failed with {compiler}: "
                f"{result.stderr.strip()[:500]}"
            )
        os.replace(tmp_path, lib_path)  # atomic under concurrent builds
        _c_build_seconds = time.perf_counter() - start
    lib = ctypes.CDLL(lib_path)
    _declare_argtypes(lib)
    return lib


def _declare_argtypes(lib: ctypes.CDLL) -> None:
    p = ctypes.c_void_p
    ssz = ctypes.c_ssize_t
    i = ctypes.c_int
    for suf in ("f64", "f32"):
        fn = getattr(lib, f"jit_furx_{suf}")
        fn.restype = None
        fn.argtypes = [p, ssz, i, p, p, i, p, ssz, p, p, p, i]
        fn = getattr(lib, f"jit_furx_expec_{suf}")
        fn.restype = None
        fn.argtypes = [p, ssz, i, p, p, i, p, ssz, p, p, p, i, p, p]
        fn = getattr(lib, f"jit_phase_{suf}")
        fn.restype = None
        fn.argtypes = [p, ssz, ssz, i, p, ssz, p, p, p]
        fn = getattr(lib, f"jit_expec_{suf}")
        fn.restype = None
        fn.argtypes = [p, ssz, ssz, p, p]
        fn = getattr(lib, f"jit_furxy_{suf}")
        fn.restype = None
        fn.argtypes = [p, ssz, i, p, p, i, p, ssz, i, p, ssz, p, p, p]


def _load_clib() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` when unavailable (cached)."""
    global _clib, _clib_error
    with _clib_lock:
        if _clib is not None:
            return _clib
        if _clib_error is not None:
            return None
        try:
            _clib = _build_clib()
        except Exception as exc:
            _clib_error = exc
            return None
        return _clib


def compiler_info() -> str | None:
    """The compiler used by the ``cc`` path (None on other paths)."""
    return _c_compiler


# --------------------------------------------------------------------------
# Path resolution.
# --------------------------------------------------------------------------

_active_path: str | None = None


def active_path() -> str:
    """Which implementation serves the public kernels (resolved lazily).

    Ladder: ``numba`` when importable, else ``cc`` when a compiler (or a
    cached shared object) is available, else ``numpy``.  ``REPRO_JIT_PATH``
    starts the ladder lower (e.g. ``numpy`` forces the fallback; useful for
    tests and for excluding the compile cost in constrained environments).
    """
    global _active_path
    if _active_path is None:
        forced = os.environ.get("REPRO_JIT_PATH", "auto").strip().lower()
        start = forced if forced in KNOWN_PATHS else "numba"
        ladder = KNOWN_PATHS[KNOWN_PATHS.index(start):]
        for candidate in ladder:
            if candidate == "numba" and NUMBA_AVAILABLE:
                _active_path = "numba"
                break
            if candidate == "cc" and _load_clib() is not None:
                _active_path = "cc"
                break
        else:
            _active_path = "numpy"
    return _active_path


def _reset_path_cache() -> None:
    """Forget the resolved path (test hook, re-reads REPRO_JIT_PATH)."""
    global _active_path
    _active_path = None


# --------------------------------------------------------------------------
# Lazy per-signature compilation with separate time accounting.
# --------------------------------------------------------------------------

_ensured: set[tuple] = set()
_c_time_reported = False
_ensure_lock = threading.Lock()


def ensure_kernels(dtype: Any, n_qubits: int, mixer: str) -> float:
    """Make the kernels for one ``(dtype, n, mixer)`` signature ready.

    Returns the wall-clock seconds *newly* spent compiling for this
    signature (0.0 when it was already warm): the one-time shared-object
    build on the ``cc`` path, or the numba type-specialization triggered by
    a tiny dummy invocation on the ``numba`` path (numba specializes on
    argument *types*, so warming a 4-state block compiles the kernels the
    full-size block will run).  Providers add the result to
    ``EngineStats.kernel_compile_time_s``.
    """
    global _c_time_reported
    path = active_path()
    key = (path, np.dtype(dtype).str, int(n_qubits), mixer)
    with _ensure_lock:
        if key in _ensured:
            return 0.0
        spent = 0.0
        if path == "cc":
            if not _c_time_reported:
                spent = _c_build_seconds
                _c_time_reported = True
        elif path == "numba":  # pragma: no cover - requires numba
            _apply_numba_threads()
            start = time.perf_counter()
            _warm_numba(np.dtype(dtype), mixer)
            spent = time.perf_counter() - start
        _ensured.add(key)
        return spent


def _warm_numba(dtype: np.dtype, mixer: str) -> None:  # pragma: no cover
    """Compile the numba kernels for one dtype by calling them on 4 states."""
    block = np.full((1, 4), 0.5 + 0.0j, dtype=dtype)
    angles = np.full(1, 0.25)
    real = np.zeros(4, dtype=_real_dtype(dtype))
    out = np.zeros(1)
    factors = np.empty((0, 0), dtype=dtype)
    if mixer == "x":
        _nb_furx(block.copy(), angles, angles, 2, factors, _EMPTY_I64,
                 angles, real, DEFAULT_TILE_QUBITS)
        _nb_furx_expec(block.copy(), angles, angles, 2, factors, _EMPTY_I64,
                       angles, real, DEFAULT_TILE_QUBITS,
                       np.zeros(4), out)
    else:
        edges = np.array([[0, 1]], dtype=np.int64)
        _nb_furxy(block.copy(), angles, angles, 1, edges, 2, factors,
                  _EMPTY_I64, angles, real)
    _nb_phase(block.copy(), 2, factors, _EMPTY_I64, angles, real)
    _nb_expec(block, np.zeros(4), out)


def _real_dtype(dtype: np.dtype) -> np.dtype:
    return np.dtype(np.float32 if np.dtype(dtype) == np.complex64
                    else np.float64)


# --------------------------------------------------------------------------
# Shared argument staging.
# --------------------------------------------------------------------------

def _check_block(block: np.ndarray) -> tuple[int, int, int]:
    if block.ndim != 2 or not block.flags.c_contiguous:
        raise ValueError("block must be a C-contiguous (rows, 2^n) array")
    rows, n_states = block.shape
    n_qubits = int(n_states).bit_length() - 1
    if (1 << n_qubits) != n_states:
        raise ValueError(f"block width {n_states} is not a power of two")
    return rows, n_states, n_qubits


def _phase_args(block: np.ndarray, gammas: np.ndarray | None,
                phase_table: Any, costs: np.ndarray | None):
    """Normalize the phase inputs to (mode, factors, inverse, gammas, costs).

    mode 0 = no phase, 1 = unique-value table gather, 2 = direct cos/sin.
    All arrays come back C-contiguous at the dtypes the compiled kernels
    expect (complex factors at block dtype, int64 inverse, float64 gammas,
    real costs at the block's real dtype).
    """
    real = _real_dtype(block.dtype)
    if gammas is None:
        return (0, np.empty((0, 0), dtype=block.dtype), _EMPTY_I64,
                _EMPTY_F64, np.empty(0, dtype=real))
    g = np.ascontiguousarray(gammas, dtype=np.float64)
    if phase_table is not None:
        factors = np.ascontiguousarray(
            phase_table.factors_batch(g, dtype=block.dtype))
        inverse = np.ascontiguousarray(phase_table.inverse, dtype=np.int64)
        return 1, factors, inverse, g, np.empty(0, dtype=real)
    if costs is None:
        raise ValueError("phase application needs a phase_table or costs")
    pcosts = np.ascontiguousarray(costs, dtype=real)
    return 2, np.empty((0, 0), dtype=block.dtype), _EMPTY_I64, g, pcosts


def _ptr(arr: np.ndarray):
    return ctypes.c_void_p(arr.ctypes.data) if arr.size else None


def _suffix(block: np.ndarray) -> str:
    return "f32" if block.dtype == np.complex64 else "f64"


def mixer_edges(kind: str, n_qubits: int) -> np.ndarray:
    """The ordered, (low, high)-normalized edge list of one XY mixer.

    Matches the application order of the ``python`` backend's
    :func:`~repro.fur.python.furxy.furxy_ring`/``furxy_complete`` exactly —
    the XY mixer is an *ordered* product, so edge order is part of the
    contract.  (The subspace butterfly is symmetric under swapping the two
    amplitudes, so normalizing each edge to (min, max) is value-preserving.)
    """
    from ..python.furxy import complete_edges, ring_edges

    pairs = (ring_edges(n_qubits) if kind == "ring"
             else complete_edges(n_qubits))
    edges = np.array([(min(i, j), max(i, j)) for i, j in pairs],
                     dtype=np.int64)
    return np.ascontiguousarray(edges)


# --------------------------------------------------------------------------
# Public kernels: X mixer family.
# --------------------------------------------------------------------------

def furx_phase_block(block: np.ndarray, gammas: np.ndarray | None,
                     betas: np.ndarray, *, phase_table: Any = None,
                     costs: np.ndarray | None = None,
                     tile_q: int = DEFAULT_TILE_QUBITS) -> None:
    """Fused phase + full X mixer on every row of a block, in place.

    ``gammas=None`` skips the phase (plain ``exp(-i β_r Σ X)``); otherwise
    each row is multiplied by ``exp(-i γ_r c)`` as its first tile touch.
    Semantics match :func:`repro.fur.python.furx.furx_phase_all_batch`.
    """
    rows, n_states, n_qubits = _check_block(block)
    path = active_path()
    if path == "numpy":
        _np_furx_phase(block, gammas, betas, n_qubits, phase_table, costs)
        return
    mode, factors, inverse, g, pcosts = _phase_args(block, gammas,
                                                    phase_table, costs)
    b = np.ascontiguousarray(betas, dtype=np.float64)
    cs, ss = np.cos(b), np.sin(b)
    if path == "numba":  # pragma: no cover - requires numba
        _nb_furx(block, cs, ss, mode, factors, inverse, g, pcosts, tile_q)
        return
    lib = _load_clib()
    fn = getattr(lib, f"jit_furx_{_suffix(block)}")
    n_unique = factors.shape[1]

    def run_slice(r0: int, r1: int) -> None:
        fn(_ptr(block[r0:r1]), r1 - r0, n_qubits, _ptr(cs[r0:r1]),
           _ptr(ss[r0:r1]), mode, _ptr(factors[r0:r1]), n_unique,
           _ptr(inverse), _ptr(g[r0:r1]) if mode else None, _ptr(pcosts),
           tile_q)

    _parallel_rows(rows, run_slice)


def furx_block(block: np.ndarray, betas: np.ndarray, *,
               tile_q: int = DEFAULT_TILE_QUBITS) -> None:
    """Full X mixer ``exp(-i β_r Σ_i X_i)`` on every row, in place."""
    furx_phase_block(block, None, betas, tile_q=tile_q)


def furx_expectation_block(block: np.ndarray, gammas: np.ndarray | None,
                           betas: np.ndarray, ecosts: np.ndarray, *,
                           phase_table: Any = None,
                           costs: np.ndarray | None = None,
                           tile_q: int = DEFAULT_TILE_QUBITS) -> np.ndarray:
    """Fused (phase +) X mixer + expectation: per-row ``Σ c|ψ|²`` (float64).

    The reduction rides the mixer's final sweep instead of re-reading the
    block; the block still holds the evolved state afterwards.
    """
    rows, n_states, n_qubits = _check_block(block)
    ecosts = np.ascontiguousarray(ecosts, dtype=np.float64)
    path = active_path()
    if path == "numpy":
        _np_furx_phase(block, gammas, betas, n_qubits, phase_table, costs)
        return _np_expectations(block, ecosts)
    mode, factors, inverse, g, pcosts = _phase_args(block, gammas,
                                                    phase_table, costs)
    b = np.ascontiguousarray(betas, dtype=np.float64)
    cs, ss = np.cos(b), np.sin(b)
    out = np.zeros(rows, dtype=np.float64)
    if path == "numba":  # pragma: no cover - requires numba
        _nb_furx_expec(block, cs, ss, mode, factors, inverse, g, pcosts,
                       tile_q, ecosts, out)
        return out
    lib = _load_clib()
    fn = getattr(lib, f"jit_furx_expec_{_suffix(block)}")
    n_unique = factors.shape[1]

    def run_slice(r0: int, r1: int) -> None:
        fn(_ptr(block[r0:r1]), r1 - r0, n_qubits, _ptr(cs[r0:r1]),
           _ptr(ss[r0:r1]), mode, _ptr(factors[r0:r1]), n_unique,
           _ptr(inverse), _ptr(g[r0:r1]) if mode else None, _ptr(pcosts),
           tile_q, _ptr(ecosts), _ptr(out[r0:r1]))

    _parallel_rows(rows, run_slice)
    return out


# --------------------------------------------------------------------------
# Public kernels: XY mixer family, phase-only sweep, expectation-only.
# --------------------------------------------------------------------------

def furxy_block(block: np.ndarray, gammas: np.ndarray | None,
                betas: np.ndarray, *, kind: str, n_trotters: int = 1,
                phase_table: Any = None,
                costs: np.ndarray | None = None) -> None:
    """(Phase +) ordered XY mixer (``kind`` = "ring"/"complete"), in place.

    Applies ``n_trotters`` repetitions at angle ``β_r / n_trotters`` in the
    exact edge order of the ``python`` backend's kernels.
    """
    if kind not in ("ring", "complete"):
        raise ValueError(f"kind must be 'ring' or 'complete', got {kind!r}")
    rows, n_states, n_qubits = _check_block(block)
    path = active_path()
    if path == "numpy":
        _np_furxy(block, gammas, betas, n_qubits, kind, n_trotters,
                  phase_table, costs)
        return
    mode, factors, inverse, g, pcosts = _phase_args(block, gammas,
                                                    phase_table, costs)
    b = np.ascontiguousarray(betas, dtype=np.float64) / n_trotters
    cs, ss = np.cos(b), np.sin(b)
    edges = mixer_edges(kind, n_qubits)
    if path == "numba":  # pragma: no cover - requires numba
        _nb_furxy(block, cs, ss, n_trotters, edges, mode, factors, inverse,
                  g, pcosts)
        return
    lib = _load_clib()
    fn = getattr(lib, f"jit_furxy_{_suffix(block)}")
    n_unique = factors.shape[1]

    def run_slice(r0: int, r1: int) -> None:
        fn(_ptr(block[r0:r1]), r1 - r0, n_qubits, _ptr(cs[r0:r1]),
           _ptr(ss[r0:r1]), n_trotters, _ptr(edges), len(edges), mode,
           _ptr(factors[r0:r1]), n_unique, _ptr(inverse),
           _ptr(g[r0:r1]) if mode else None, _ptr(pcosts))

    _parallel_rows(rows, run_slice)


def phase_block(block: np.ndarray, gammas: np.ndarray, *,
                phase_table: Any = None,
                costs: np.ndarray | None = None) -> None:
    """Phase operator ``row_r *= exp(-i γ_r c)`` on every row, in place."""
    rows, n_states, _ = _check_block(block)
    path = active_path()
    if path == "numpy":
        _np_phase(block, gammas, phase_table, costs)
        return
    mode, factors, inverse, g, pcosts = _phase_args(block, gammas,
                                                    phase_table, costs)
    if path == "numba":  # pragma: no cover - requires numba
        _nb_phase(block, mode, factors, inverse, g, pcosts)
        return
    lib = _load_clib()
    fn = getattr(lib, f"jit_phase_{_suffix(block)}")
    n_unique = factors.shape[1]

    def run_slice(r0: int, r1: int) -> None:
        fn(_ptr(block[r0:r1]), r1 - r0, n_states, mode,
           _ptr(factors[r0:r1]), n_unique, _ptr(inverse), _ptr(g[r0:r1]),
           _ptr(pcosts))

    _parallel_rows(rows, run_slice)


def expectation_block(block: np.ndarray, ecosts: np.ndarray) -> np.ndarray:
    """Per-row ``Σ_x c[x] |ψ_x|²`` of a block (float64, one fused read)."""
    rows, n_states, _ = _check_block(block)
    ecosts = np.ascontiguousarray(ecosts, dtype=np.float64)
    path = active_path()
    if path == "numpy":
        return _np_expectations(block, ecosts)
    out = np.zeros(rows, dtype=np.float64)
    if path == "numba":  # pragma: no cover - requires numba
        _nb_expec(block, ecosts, out)
        return out
    lib = _load_clib()
    fn = getattr(lib, f"jit_expec_{_suffix(block)}")

    def run_slice(r0: int, r1: int) -> None:
        fn(_ptr(block[r0:r1]), r1 - r0, n_states, _ptr(ecosts),
           _ptr(out[r0:r1]))

    _parallel_rows(rows, run_slice)
    return out


# --------------------------------------------------------------------------
# numpy fallback path: delegate to the python backend's multi-pass kernels.
# --------------------------------------------------------------------------

_NP_PHASE_CHUNK = 1 << 20


def _np_furx_phase(block, gammas, betas, n_qubits, phase_table, costs):
    from ..python.furx import furx_all_batch, furx_phase_all_batch

    betas = np.asarray(betas, dtype=np.float64)
    scratch = np.empty_like(block)
    if gammas is None:
        furx_all_batch(block, betas, n_qubits, scratch=scratch)
    else:
        furx_phase_all_batch(block, np.asarray(gammas, dtype=np.float64),
                             betas, n_qubits, phase_table=phase_table,
                             costs=costs, scratch=scratch)


def _np_furxy(block, gammas, betas, n_qubits, kind, n_trotters,
              phase_table, costs):
    from ..python.furxy import furxy_complete_batch, furxy_ring_batch

    if gammas is not None:
        _np_phase(block, gammas, phase_table, costs)
    betas = np.asarray(betas, dtype=np.float64) / n_trotters
    apply = furxy_ring_batch if kind == "ring" else furxy_complete_batch
    for _ in range(n_trotters):
        apply(block, betas, n_qubits)


def _np_phase(block, gammas, phase_table, costs):
    rows, n = block.shape
    g = np.asarray(gammas, dtype=np.float64)
    if phase_table is not None:
        factors = phase_table.factors_batch(g, dtype=block.dtype)
        buf = np.empty(n, dtype=block.dtype)
        for r in range(rows):
            np.take(factors[r], phase_table.inverse, out=buf)
            block[r] *= buf
        return
    if costs is None:
        raise ValueError("phase application needs a phase_table or costs")
    coeff = (-1j * g).astype(block.dtype)
    cols = max(1, _NP_PHASE_CHUNK // rows)
    for s in range(0, n, cols):
        e = min(s + cols, n)
        block[:, s:e] *= np.exp(coeff[:, None] * costs[s:e][None, :])


def _np_expectations(block, ecosts):
    from ..python.qaoa_simulator import _block_expectations

    return _block_expectations(block, ecosts)


# --------------------------------------------------------------------------
# numba path: the same tiled loop structure, JIT-compiled per dtype.
# --------------------------------------------------------------------------

if NUMBA_AVAILABLE:  # pragma: no cover - requires numba

    @njit(parallel=True, cache=True)
    def _nb_furx(block, cs, ss, mode, factors, inverse, gammas, pcosts,
                 tile_q):
        rows, n = block.shape
        nq = 0
        while (1 << nq) < n:
            nq += 1
        t = min(tile_q, nq)
        tile = 1 << t
        for r in prange(rows):
            x = block[r]
            c = cs[r]
            s = ss[r]
            for s0 in range(0, n, tile):
                if mode == 1:
                    for i in range(s0, s0 + tile):
                        x[i] = x[i] * factors[r, inverse[i]]
                elif mode == 2:
                    g = gammas[r]
                    for i in range(s0, s0 + tile):
                        th = -g * pcosts[i]
                        x[i] = x[i] * complex(np.cos(th), np.sin(th))
                for q in range(t):
                    stride = 1 << q
                    for base in range(s0, s0 + tile, 2 * stride):
                        for k in range(base, base + stride):
                            a = x[k]
                            b = x[k + stride]
                            x[k] = complex(c * a.real + s * b.imag,
                                           c * a.imag - s * b.real)
                            x[k + stride] = complex(c * b.real + s * a.imag,
                                                    c * b.imag - s * a.real)
            for q in range(t, nq):
                stride = 1 << q
                for base in range(0, n, 2 * stride):
                    for k in range(base, base + stride):
                        a = x[k]
                        b = x[k + stride]
                        x[k] = complex(c * a.real + s * b.imag,
                                       c * a.imag - s * b.real)
                        x[k + stride] = complex(c * b.real + s * a.imag,
                                                c * b.imag - s * a.real)

    @njit(parallel=True, cache=True)
    def _nb_furx_expec(block, cs, ss, mode, factors, inverse, gammas,
                       pcosts, tile_q, ecosts, out):
        rows, n = block.shape
        nq = 0
        while (1 << nq) < n:
            nq += 1
        t = min(tile_q, nq)
        tile = 1 << t
        for r in prange(rows):
            x = block[r]
            c = cs[r]
            s = ss[r]
            acc = 0.0
            for s0 in range(0, n, tile):
                if mode == 1:
                    for i in range(s0, s0 + tile):
                        x[i] = x[i] * factors[r, inverse[i]]
                elif mode == 2:
                    g = gammas[r]
                    for i in range(s0, s0 + tile):
                        th = -g * pcosts[i]
                        x[i] = x[i] * complex(np.cos(th), np.sin(th))
                for q in range(t):
                    stride = 1 << q
                    for base in range(s0, s0 + tile, 2 * stride):
                        for k in range(base, base + stride):
                            a = x[k]
                            b = x[k + stride]
                            x[k] = complex(c * a.real + s * b.imag,
                                           c * a.imag - s * b.real)
                            x[k + stride] = complex(c * b.real + s * a.imag,
                                                    c * b.imag - s * a.real)
                if t == nq:
                    for i in range(s0, s0 + tile):
                        v = x[i]
                        acc += ecosts[i] * (v.real * v.real
                                            + v.imag * v.imag)
            for q in range(t, nq - 1):
                stride = 1 << q
                for base in range(0, n, 2 * stride):
                    for k in range(base, base + stride):
                        a = x[k]
                        b = x[k + stride]
                        x[k] = complex(c * a.real + s * b.imag,
                                       c * a.imag - s * b.real)
                        x[k + stride] = complex(c * b.real + s * a.imag,
                                                c * b.imag - s * a.real)
            if t < nq:
                stride = n >> 1
                acc = 0.0
                for k in range(stride):
                    a = x[k]
                    b = x[k + stride]
                    lo = complex(c * a.real + s * b.imag,
                                 c * a.imag - s * b.real)
                    hi = complex(c * b.real + s * a.imag,
                                 c * b.imag - s * a.real)
                    x[k] = lo
                    x[k + stride] = hi
                    acc += ecosts[k] * (lo.real * lo.real
                                        + lo.imag * lo.imag)
                    acc += ecosts[k + stride] * (hi.real * hi.real
                                                 + hi.imag * hi.imag)
            out[r] = acc

    @njit(parallel=True, cache=True)
    def _nb_furxy(block, cs, ss, n_trotters, edges, mode, factors, inverse,
                  gammas, pcosts):
        rows, n = block.shape
        n_edges = edges.shape[0]
        for r in prange(rows):
            x = block[r]
            c = cs[r]
            s = ss[r]
            if mode == 1:
                for i in range(n):
                    x[i] = x[i] * factors[r, inverse[i]]
            elif mode == 2:
                g = gammas[r]
                for i in range(n):
                    th = -g * pcosts[i]
                    x[i] = x[i] * complex(np.cos(th), np.sin(th))
            for _ in range(n_trotters):
                for e in range(n_edges):
                    sa = 1 << edges[e, 0]
                    sb = 1 << edges[e, 1]
                    for h in range(0, n, 2 * sb):
                        for m in range(h, h + sb, 2 * sa):
                            for l in range(m, m + sa):
                                a = x[l + sa]
                                b = x[l + sb]
                                x[l + sa] = complex(c * a.real + s * b.imag,
                                                    c * a.imag - s * b.real)
                                x[l + sb] = complex(c * b.real + s * a.imag,
                                                    c * b.imag - s * a.real)

    @njit(parallel=True, cache=True)
    def _nb_phase(block, mode, factors, inverse, gammas, pcosts):
        rows, n = block.shape
        for r in prange(rows):
            x = block[r]
            if mode == 1:
                for i in range(n):
                    x[i] = x[i] * factors[r, inverse[i]]
            elif mode == 2:
                g = gammas[r]
                for i in range(n):
                    th = -g * pcosts[i]
                    x[i] = x[i] * complex(np.cos(th), np.sin(th))

    @njit(parallel=True, cache=True)
    def _nb_expec(block, ecosts, out):
        rows, n = block.shape
        for r in prange(rows):
            x = block[r]
            acc = 0.0
            for i in range(n):
                v = x[i]
                acc += ecosts[i] * (v.real * v.real + v.imag * v.imag)
            out[r] = acc
