"""The ``jit`` backend: single-pass cache-blocked fused kernels.

See :mod:`repro.fur.jit.kernels` for the dual-path (numba / compiled-C /
numpy) kernel implementations and :mod:`repro.fur.jit.qaoa_simulator` for
the :class:`~repro.fur.engine.KernelProvider` classes registered under the
``jit`` backend name (alias ``numba``).
"""

from .kernels import (
    NUMBA_AVAILABLE,
    active_path,
    effective_num_threads,
    ensure_kernels,
    requested_num_threads,
)
from .qaoa_simulator import (
    QAOAFURXSimulatorJIT,
    QAOAFURXYCompleteSimulatorJIT,
    QAOAFURXYRingSimulatorJIT,
)

__all__ = [
    "NUMBA_AVAILABLE",
    "active_path",
    "effective_num_threads",
    "requested_num_threads",
    "ensure_kernels",
    "QAOAFURXSimulatorJIT",
    "QAOAFURXYRingSimulatorJIT",
    "QAOAFURXYCompleteSimulatorJIT",
]
